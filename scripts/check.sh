#!/usr/bin/env bash
# Full verification: the tier-1 suite in Release, plus the kernel
# differential tests under AddressSanitizer+UBSan in Debug (the batched
# kernels do unaligned loads and tail handling worth checking hard), plus
# the MapReduce attempt/speculation layer under ThreadSanitizer (backup
# attempts, cancel tokens, and the commit race are cross-thread protocols).
#
# Each sanitizer also re-runs the MapReduce and fault-tolerance suites
# with HAMMING_SHUFFLE_BUDGET=65536, which forces every job through the
# external shuffle's spill/merge paths (file I/O, CRC framing, streaming
# merge) under a tight 64 KiB memory budget.
#
# Usage: scripts/check.sh [--skip-asan] [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_TSAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
done

echo "==> tier-1: configure + build + ctest (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "==> skipping ASan pass (--skip-asan)"
else
  echo "==> sanitizers: Debug + ASan/UBSan kernel differential (build-asan/)"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DHAMMING_SANITIZE=ON \
    >/dev/null
  cmake --build build-asan -j --target hamming_tests
  ./build-asan/tests/hamming_tests \
    --gtest_filter='CodeStore.*:Kernels.*:LocalCounters.*'
  echo "==> ASan: MapReduce + external shuffle under a 64 KiB budget"
  HAMMING_SHUFFLE_BUDGET=65536 ./build-asan/tests/hamming_tests \
    --gtest_filter='MapReduce*:FaultTolerance*:PlanFaultTolerance*:Shuffle*'
fi

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "==> skipping TSan pass (--skip-tsan)"
else
  echo "==> sanitizers: Debug + TSan over the MapReduce runtime (build-tsan/)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DHAMMING_TSAN=ON \
    >/dev/null
  cmake --build build-tsan -j --target hamming_tests
  ./build-tsan/tests/hamming_tests --gtest_filter=\
'MapReduce*:FaultTolerance*:PlanFaultTolerance*:CancelToken*:ThreadPool*:Concurrency*'
  echo "==> TSan: MapReduce + external shuffle under a 64 KiB budget"
  HAMMING_SHUFFLE_BUDGET=65536 ./build-tsan/tests/hamming_tests --gtest_filter=\
'MapReduce*:FaultTolerance*:PlanFaultTolerance*:Shuffle*'
fi

echo "==> all checks passed"

#!/usr/bin/env bash
# Full verification: the tier-1 suite in Release, plus the kernel
# differential tests under AddressSanitizer+UBSan in Debug (the batched
# kernels do unaligned loads and tail handling worth checking hard), plus
# the MapReduce attempt/speculation layer under ThreadSanitizer (backup
# attempts, cancel tokens, and the commit race are cross-thread protocols).
#
# Each sanitizer also re-runs the MapReduce and fault-tolerance suites
# with HAMMING_SHUFFLE_BUDGET=65536, which forces every job through the
# external shuffle's spill/merge paths (file I/O, CRC framing, streaming
# merge) under a tight 64 KiB memory budget.
#
# The observability step runs one traced + metered job (bench/trace_demo)
# and validates both artifacts: the Chrome trace must parse as JSON and
# carry name/ph/ts/pid/tid on every event with spans on more than one
# node process, and the metrics snapshot must hold the per-reducer load
# histogram with a sane skew coefficient. The TSan pass also covers the
# metrics shard-merge and trace-collector suites (concurrent recording).
#
# The serving step runs the query-engine load generator in smoke mode
# (bench/bench_serving --smoke: closed- and open-loop over batched and
# unbatched engine configs) and validates the JSON artifact: every
# latency row must carry ordered p50/p99/p999, each config must report a
# positive max-sustainable rate, and the batched/unbatched speedup
# summary must be present. The smoke run also drives the mixed
# insert/delete/query churn workload against a ConcurrentHAIndex, and
# the validator requires the churn row: a positive mutation rate,
# published epochs, and ordered percentiles, proving reads-during-writes
# actually ran. The TSan pass also runs the Serving* suites (worker
# pool, batcher, admission control under concurrent clients) plus the
# epoch/snapshot suites (ConcurrentIndex*, ChurnStress*, DynamicHAAudit*:
# snapshot immutability, N-reader/1-mutator churn, swap-remove
# invariants) — the data-race gate for the concurrent index.
#
# The lint stage runs the repo-invariant linter (tools/lint/lint.py:
# layering DAG, raw-sync ban, metric-arg purity) — first its --self-test
# (seeded violations must be detected, the negative test), then the real
# tree — plus clang-tidy over src/ when a clang-tidy binary is on PATH.
# The tidy sweep is blocking: .clang-tidy promotes every enabled family
# to an error, so any finding fails this script.
#
# The analyze stage runs the semantic concurrency analyzer
# (tools/analyze/analyze.py): lock-order verification against
# tools/analyze/lock_order.toml (undeclared nesting edges, cycles,
# leaf-lock violations, callbacks under locks, CondVar waits with a
# second mutex held), epoch-pin discipline (no non-leaf lock
# acquisition, CondVar block, or user callback while an EpochPublisher
# snapshot is pinned), and AST-accurate Status/Result discard checking
# (the [[nodiscard]] rule that used to be a lint.py regex). Like lint,
# it runs --self-test (every seeded fixture must fire) before the real
# tree, and the real tree must be clean modulo tools/analyze/
# baseline.json (which ships empty; entries carry expiry dates).
#
# The fuzz-smoke stage builds the fuzz harnesses (fuzz/) and replays
# their seed corpora plus a fixed number of deterministic mutations;
# same inputs every run, so it is a gate, not a campaign. fuzz_vertical
# differentially checks the bit-plane vertical kernels against the
# horizontal layout.
#
# The ubsan stage builds with -fsanitize=undefined alone (build-ubsan/,
# HAMMING_UBSAN=ON, trap-on-first-report) and runs the FULL ctest
# suite — the combined ASan+UBSan stage only covers the kernel/shuffle
# test filter, and shift/overflow bugs in the bit-sliced kernels are
# exactly what a whole-suite UBSan pass exists to catch.
#
# Usage: scripts/check.sh [--skip-asan] [--skip-tsan] [--skip-ubsan]
#                         [--skip-lint] [--skip-analyze] [--skip-fuzz]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_TSAN=0
SKIP_UBSAN=0
SKIP_LINT=0
SKIP_ANALYZE=0
SKIP_FUZZ=0
for arg in "$@"; do
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-ubsan" ]] && SKIP_UBSAN=1
  [[ "$arg" == "--skip-lint" ]] && SKIP_LINT=1
  [[ "$arg" == "--skip-analyze" ]] && SKIP_ANALYZE=1
  [[ "$arg" == "--skip-fuzz" ]] && SKIP_FUZZ=1
done

echo "==> tier-1: configure + build + ctest (build/)"
cmake -B build -S . -DHAMMING_FUZZERS=ON >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_LINT" == "1" ]]; then
  echo "==> skipping lint stage (--skip-lint)"
else
  echo "==> lint: repo-invariant linter self-test (negative test)"
  python3 tools/lint/lint.py --self-test
  echo "==> lint: tools/lint over the tree (compile_commands.json: build/)"
  python3 tools/lint/lint.py --build-dir build
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> lint: clang-tidy (.clang-tidy profile, blocking) over src/"
    find src -name '*.cc' -print0 | xargs -0 -P "$(nproc)" -n 8 \
      clang-tidy -p build --quiet
  else
    echo "==> lint: clang-tidy not on PATH; skipping tidy sweep"
  fi
fi

if [[ "$SKIP_ANALYZE" == "1" ]]; then
  echo "==> skipping analyze stage (--skip-analyze)"
else
  echo "==> analyze: semantic analyzer self-test (negative test)"
  python3 tools/analyze/analyze.py --self-test
  echo "==> analyze: lock-order + epoch-pin + discard passes over src/"
  python3 tools/analyze/analyze.py --build-dir build
fi

if [[ "$SKIP_FUZZ" == "1" ]]; then
  echo "==> skipping fuzz-smoke stage (--skip-fuzz)"
else
  echo "==> fuzz-smoke: seed corpora + 500 deterministic mutations each"
  ./build/fuzz/fuzz_serde fuzz/corpus/serde -mutate=500
  ./build/fuzz/fuzz_spill fuzz/corpus/spill -mutate=500
  ./build/fuzz/fuzz_json  fuzz/corpus/json  -mutate=500
  ./build/fuzz/fuzz_vertical fuzz/corpus/vertical -mutate=500
fi

echo "==> observability: traced job + JSON artifact validation"
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
./build/bench/trace_demo "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json"
python3 - "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
for e in events:
    for field in ("name", "ph", "pid", "tid"):
        assert field in e, f"trace event missing {field!r}: {e}"
    if e["ph"] != "M":  # metadata records carry no timestamp
        assert "ts" in e, f"trace event missing 'ts': {e}"
assert any(e["ph"] == "X" for e in events), "no complete spans"
assert len({e["pid"] for e in events}) > 1, "no per-node processes"
with open(sys.argv[2]) as f:
    metrics = json.load(f)
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, f"metrics missing {section!r}"
load = metrics["histograms"]["mr.reduce_input_records"]
assert load["count"] > 0 and load["skew_max_over_mean"] >= 1.0
print(f"trace OK ({len(events)} events), metrics OK "
      f"({len(metrics['histograms'])} histograms)")
PY

echo "==> serving: load-generator smoke + latency artifact validation"
./build/bench/bench_serving --smoke --out="$OBS_DIR/serving.json"
python3 - "$OBS_DIR/serving.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert rows, "serving report has no rows"
latency_rows = [r for r in rows if r["section"] in ("closed_loop", "open_loop")]
assert latency_rows, "no latency rows"
for r in latency_rows:
    for field in ("qps", "p50_us", "p99_us", "p999_us"):
        assert field in r, f"latency row missing {field!r}: {r}"
    assert r["p50_us"] <= r["p99_us"] <= r["p999_us"], f"percentiles out of order: {r}"
sustainable = [r for r in rows if r["section"] == "max_sustainable"]
assert len(sustainable) == 2, "expected one max_sustainable row per engine config"
assert all(r["max_sustainable_qps"] > 0 for r in sustainable), "no sustainable rate found"
speedup = [r for r in rows if r["section"] == "summary"]
assert speedup and "batched_over_unbatched" in speedup[0], "missing speedup summary"
churn = [r for r in rows if r["section"] == "churn"]
assert churn, "missing churn row (mixed insert/delete/query workload)"
for r in churn:
    for field in ("threads", "insert_fraction", "delete_fraction", "inserts",
                  "deletes", "mutations_per_sec", "epochs_published",
                  "completed", "qps", "p50_us", "p99_us", "p999_us"):
        assert field in r, f"churn row missing {field!r}: {r}"
    assert r["mutations_per_sec"] > 0, f"churn ran no mutations: {r}"
    assert r["epochs_published"] > 0, f"churn published no epochs: {r}"
    assert r["completed"] > 0, f"churn completed no queries: {r}"
    assert r["p50_us"] <= r["p99_us"] <= r["p999_us"], f"percentiles out of order: {r}"
telemetry = [r for r in rows if r["section"] == "telemetry"]
assert {r["config"] for r in telemetry} == {"telemetry_off", "telemetry_on"}, \
    "missing telemetry A/B rows"
overhead = [r for r in rows if r["section"] == "summary"
            and r.get("config") == "telemetry_overhead"]
assert overhead and "overhead_pct" in overhead[0], "missing telemetry overhead"
slow_rows = [r for r in rows if r["section"] == "slow_query"]
assert slow_rows, "missing slow_query exemplar rows"
for r in slow_rows:
    assert r["e2e_us"] >= r["service_us"] >= 0, f"bad exemplar latencies: {r}"
totals = [r for r in rows if r["section"] == "telemetry_totals"]
assert totals and totals[0]["queries_logged"] > 0, "query log recorded nothing"
assert totals[0]["windows_closed"] > 0, "time series closed no windows"
assert totals[0]["trace_events"] > 0, "trace collected no events"
print(f"serving OK ({len(latency_rows)} latency rows, "
      f"batched/unbatched {speedup[0]['batched_over_unbatched']:.2f}x, "
      f"churn {churn[0]['mutations_per_sec']:.0f} mut/s over "
      f"{churn[0]['epochs_published']:.0f} epochs, "
      f"telemetry overhead {overhead[0]['overhead_pct']:.2f}%)")
PY

echo "==> serving: telemetry artifacts (windows, exemplars, request spans)"
# The report tool doubles as the schema check: it exits non-zero on
# malformed JSONL, missing fields, or out-of-order percentiles.
python3 tools/telemetry_report/telemetry_report.py \
  --timeseries="$OBS_DIR/serving_timeseries.jsonl" \
  --querylog="$OBS_DIR/serving_querylog.jsonl" --top=3
python3 - "$OBS_DIR/serving_trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
serving_pids = {e["pid"] for e in events
                if e["ph"] == "M" and e.get("name") == "process_name"
                and e.get("args", {}).get("name") == "serving"}
assert serving_pids, "no auxiliary serving process in trace"
workers = [e for e in events if e["ph"] == "M" and e.get("name") == "thread_name"
           and e["pid"] in serving_pids]
assert workers, "serving process has no named worker lanes"
reqs = [e for e in events if e.get("cat") == "request" and e["ph"] == "X"]
assert reqs, "no per-request spans in trace"
phases = {e["name"] for e in events if e.get("cat") == "request.phase"}
for needed in ("queue", "batch_form", "epoch_pin", "kernel", "respond"):
    assert needed in phases, f"missing request phase span {needed!r}: {phases}"
print(f"telemetry trace OK ({len(reqs)} request spans, "
      f"{len(workers)} worker lanes, phases: {sorted(phases)})")
PY

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "==> skipping ASan pass (--skip-asan)"
else
  echo "==> sanitizers: Debug + ASan/UBSan kernel differential (build-asan/)"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DHAMMING_SANITIZE=ON \
    >/dev/null
  cmake --build build-asan -j --target hamming_tests
  ./build-asan/tests/hamming_tests \
    --gtest_filter='CodeStore.*:VerticalStore.*:Kernels.*:LocalCounters.*:FuzzCorpus.*:StorageTest.SpillFuzz*'
  echo "==> ASan: MapReduce + external shuffle under a 64 KiB budget"
  HAMMING_SHUFFLE_BUDGET=65536 ./build-asan/tests/hamming_tests \
    --gtest_filter='MapReduce*:FaultTolerance*:PlanFaultTolerance*:Shuffle*'
fi

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "==> skipping TSan pass (--skip-tsan)"
else
  echo "==> sanitizers: Debug + TSan over the MapReduce runtime (build-tsan/)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DHAMMING_TSAN=ON \
    >/dev/null
  cmake --build build-tsan -j --target hamming_tests
  ./build-tsan/tests/hamming_tests --gtest_filter=\
'MapReduce*:FaultTolerance*:PlanFaultTolerance*:CancelToken*:ThreadPool*:Concurrency*:Metrics*:TraceJson*:VerticalStore*:Kernels.VerticalScanSharedAcrossThreads:Serving*:ConcurrentIndex*:ChurnStress*:DynamicHAAudit*:Telemetry*'
  echo "==> TSan: MapReduce + external shuffle under a 64 KiB budget"
  HAMMING_SHUFFLE_BUDGET=65536 ./build-tsan/tests/hamming_tests --gtest_filter=\
'MapReduce*:FaultTolerance*:PlanFaultTolerance*:Shuffle*'
fi

if [[ "$SKIP_UBSAN" == "1" ]]; then
  echo "==> skipping UBSan pass (--skip-ubsan)"
else
  echo "==> sanitizers: Debug + standalone UBSan, full suite (build-ubsan/)"
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=Debug -DHAMMING_UBSAN=ON \
    >/dev/null
  cmake --build build-ubsan -j
  (cd build-ubsan && ctest --output-on-failure -j)
fi

echo "==> all checks passed"

#!/usr/bin/env bash
# Full verification: the tier-1 suite in Release, plus the kernel
# differential tests under AddressSanitizer+UBSan in Debug (the batched
# kernels do unaligned loads and tail handling worth checking hard).
#
# Usage: scripts/check.sh [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
[[ "${1:-}" == "--skip-asan" ]] && SKIP_ASAN=1

echo "==> tier-1: configure + build + ctest (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "==> skipping sanitizer pass (--skip-asan)"
  exit 0
fi

echo "==> sanitizers: Debug + ASan/UBSan kernel differential (build-asan/)"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DHAMMING_SANITIZE=ON \
  >/dev/null
cmake --build build-asan -j --target hamming_tests
./build-asan/tests/hamming_tests \
  --gtest_filter='CodeStore.*:Kernels.*:LocalCounters.*'

echo "==> all checks passed"

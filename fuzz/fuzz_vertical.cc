// Fuzz harness for the bit-plane vertical kernel path
// (kernels/vertical_code_store.h + the vertical BatchWithinDistance).
//
// The input chooses a code length, a threshold and a store's worth of
// codes; the harness then
//  1. transposes the store and checks the differential round trip
//     (IsTransposeOf + per-slot Get),
//  2. runs the same threshold query through the horizontal and the
//     vertical kernels and traps on any slot-set divergence,
//  3. exercises the incremental maintenance path (Append / SwapRemove)
//     and re-checks equivalence afterwards.
// Any disagreement between the layouts is a correctness bug by
// definition — the vertical scan must be byte-identical to the
// horizontal one for every (bits, h, n, tail) combination.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "code/binary_code.h"
#include "fuzz_targets.h"
#include "kernels/code_store.h"
#include "kernels/hamming_kernels.h"
#include "kernels/vertical_code_store.h"

namespace hamming_fuzz {
namespace {

using hamming::BinaryCode;
using hamming::kernels::BatchWithinDistance;
using hamming::kernels::CodeStore;
using hamming::kernels::VerticalCodeStore;
using hamming::kernels::VerticalScanStats;

// Deterministic bit source: the payload bytes first, then an LCG stream
// seeded from them, so short inputs still produce full-size codes.
class BitSource {
 public:
  BitSource(const uint8_t* data, std::size_t size)
      : data_(data), size_(size), state_(0x9e3779b97f4a7c15ull + size) {
    for (std::size_t i = 0; i < size; ++i) {
      state_ = state_ * 6364136223846793005ull + data[i];
    }
  }

  bool NextBit() {
    if (pos_ < size_ * 8) {
      const bool bit = (data_[pos_ / 8] >> (pos_ % 8)) & 1;
      ++pos_;
      return bit;
    }
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return (state_ >> 60) & 1;
  }

  BinaryCode NextCode(std::size_t bits) {
    BinaryCode code(bits);
    for (std::size_t p = 0; p < bits; ++p) code.SetBit(p, NextBit());
    return code;
  }

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  uint64_t state_;
};

std::vector<uint32_t> SortedSlots(std::vector<uint32_t> slots) {
  std::sort(slots.begin(), slots.end());
  return slots;
}

// Both layouts must report the identical slot set for the same query.
void CheckEquivalence(const BinaryCode& query, const CodeStore& store,
                      const VerticalCodeStore& vstore, std::size_t h) {
  std::vector<uint32_t> horizontal;
  BatchWithinDistance(query, store, h, &horizontal);
  std::vector<uint32_t> vertical;
  VerticalScanStats stats;
  BatchWithinDistance(query, vstore, h, &vertical, &stats);
  HAMMING_FUZZ_CHECK(SortedSlots(horizontal) == SortedSlots(vertical));
  // Stats sanity: blocks_scanned counts every visited block (pruned
  // ones included), and no scan reads more planes than exist.
  HAMMING_FUZZ_CHECK(stats.blocks_scanned == vstore.num_blocks());
  HAMMING_FUZZ_CHECK(stats.blocks_pruned <= stats.blocks_scanned);
  HAMMING_FUZZ_CHECK(stats.planes_scanned <=
                     stats.blocks_scanned * vstore.bits());
  const std::size_t count =
      hamming::kernels::BatchCount(query, vstore, h, nullptr);
  HAMMING_FUZZ_CHECK(count == vertical.size());
}

}  // namespace

void RunVerticalFuzzInput(const uint8_t* data, std::size_t size) {
  if (size < 4) return;
  // Header: bits in [1, 512], threshold in [0, bits + 1] (one past the
  // maximum exercises the everything-matches fast path).
  const std::size_t bits =
      1 + ((static_cast<std::size_t>(data[0]) |
            (static_cast<std::size_t>(data[1]) << 8)) %
           BinaryCode::kMaxBits);
  const std::size_t h = data[2] % (bits + 2);
  // Code count spans the interesting block shapes: empty store, single
  // partial block, full block, and multi-block with a ragged tail.
  const std::size_t n =
      (static_cast<std::size_t>(data[3]) * 11 + size) % 1200;

  BitSource source(data + 4, size - 4);
  const BinaryCode query = source.NextCode(bits);

  CodeStore store;
  VerticalCodeStore incremental;
  incremental.Reset(bits);
  for (std::size_t i = 0; i < n; ++i) {
    const BinaryCode code = source.NextCode(bits);
    HAMMING_FUZZ_CHECK(store.Append(code).ok());
    HAMMING_FUZZ_CHECK(incremental.Append(code).ok());
  }

  // Differential round trip: bulk transpose == incremental appends, and
  // both reproduce every lane of the horizontal store.
  VerticalCodeStore bulk;
  store.TransposeInto(&bulk);
  HAMMING_FUZZ_CHECK(bulk.IsTransposeOf(store));
  HAMMING_FUZZ_CHECK(incremental.IsTransposeOf(store));
  for (std::size_t i = 0; i < n; i += 97) {
    HAMMING_FUZZ_CHECK(bulk.Get(i) == store.Get(i));
  }

  CheckEquivalence(query, store, bulk, h);

  // Maintenance path: swap-remove a fuzz-chosen slot, append one more
  // code, and require the layouts to still agree.
  if (n > 0) {
    const std::size_t victim = (data[3] * 131 + size) % n;
    store.SwapRemove(victim);
    bulk.SwapRemove(victim);
    const BinaryCode extra = source.NextCode(bits);
    HAMMING_FUZZ_CHECK(store.Append(extra).ok());
    HAMMING_FUZZ_CHECK(bulk.Append(extra).ok());
    HAMMING_FUZZ_CHECK(bulk.IsTransposeOf(store));
    CheckEquivalence(query, store, bulk, h);
  }
}

}  // namespace hamming_fuzz

#if !defined(HAMMING_FUZZ_NO_ENTRY)
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  hamming_fuzz::RunVerticalFuzzInput(data, size);
  return 0;
}
#endif

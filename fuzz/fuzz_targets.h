// Shared declarations for the fuzz harnesses.
//
// Each harness lives in its own fuzz_*.cc and exposes its logic as a
// named Run*FuzzInput function; the libFuzzer entry point
// LLVMFuzzerTestOneInput is a thin wrapper compiled out when
// HAMMING_FUZZ_NO_ENTRY is defined, so tests/test_fuzz_corpus.cc can
// link all three harnesses into one binary and replay the seed corpora
// under ASan.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hamming_fuzz {

/// Drives common/serde.h: decodes the input as an op stream against a
/// BufferReader (bounds/overflow paths) and round-trips fuzz-chosen
/// values through BufferWriter -> BufferReader, trapping on mismatch.
void RunSerdeFuzzInput(const uint8_t* data, std::size_t size);

/// Drives storage/file_io.h: writes the input bytes to a temp file and
/// streams records out of it with SpillSegmentCursor (header/index CRC,
/// page framing, record length prefixes). Malformed files must surface
/// as Status, never as UB.
void RunSpillFuzzInput(const uint8_t* data, std::size_t size);

/// Drives observability/json.h: JsonUnescape on the raw input, plus the
/// escape -> unescape round-trip invariant on arbitrary bytes.
void RunJsonFuzzInput(const uint8_t* data, std::size_t size);

/// Drives kernels/vertical_code_store.h: builds a fuzz-chosen code
/// store, transposes it (bulk and incrementally), and traps if the
/// vertical plane-pruning scan ever disagrees with the horizontal
/// kernel, or if the transpose round trip loses a bit.
void RunVerticalFuzzInput(const uint8_t* data, std::size_t size);

}  // namespace hamming_fuzz

// Trap so the failure is caught by the fuzzer / sanitizer with a stack
// trace; fuzz invariants must hold in every build type (no assert()).
#define HAMMING_FUZZ_CHECK(cond)            \
  do {                                      \
    if (!(cond)) __builtin_trap();          \
  } while (0)

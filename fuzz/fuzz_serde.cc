// Fuzz harness for the shuffle serialization layer (common/serde.h).
//
// Two phases per input:
//  1. Decode: the input bytes are treated as a hostile buffer and read
//     through every BufferReader getter in a rotating order. Every
//     getter must either succeed or return a Status — out-of-bounds
//     reads, varint overflow (> 10 bytes / bit 63) and overlong
//     encodings are the interesting paths.
//  2. Round-trip: the input also picks a sequence of typed values that
//     are written with BufferWriter and read back; any mismatch traps.
#include <cstring>
#include <string>
#include <vector>

#include "common/serde.h"
#include "fuzz_targets.h"

namespace hamming_fuzz {
namespace {

using hamming::BufferReader;
using hamming::BufferWriter;
using hamming::Status;

void DecodePhase(const uint8_t* data, std::size_t size) {
  if (size == 0) return;
  BufferReader reader(data + 1, size - 1);
  unsigned op = data[0];
  for (int iter = 0; iter < 4096 && !reader.AtEnd(); ++iter) {
    const std::size_t before = reader.remaining();
    Status s;
    switch (op % 8) {
      case 0: {
        uint64_t v;
        s = reader.GetVarint64(&v);
        break;
      }
      case 1: {
        int64_t v;
        s = reader.GetVarint64Signed(&v);
        break;
      }
      case 2: {
        uint32_t v;
        s = reader.GetFixed32(&v);
        break;
      }
      case 3: {
        uint64_t v;
        s = reader.GetFixed64(&v);
        break;
      }
      case 4: {
        double v;
        s = reader.GetDouble(&v);
        break;
      }
      case 5: {
        std::string v;
        s = reader.GetString(&v);
        break;
      }
      case 6: {
        std::vector<uint8_t> v;
        s = reader.GetBytes(&v);
        break;
      }
      default: {
        uint8_t buf[7];
        s = reader.GetRaw(buf, 1 + op % 7);
        break;
      }
    }
    if (!s.ok()) break;
    // Every successful getter consumes at least one byte; anything else
    // would let a malformed stream spin a reader forever.
    HAMMING_FUZZ_CHECK(reader.remaining() < before);
    op = op * 1664525u + 1013904223u;  // LCG walk over the op space
  }
}

void RoundTripPhase(const uint8_t* data, std::size_t size) {
  // Consume (op, value) pairs: 1 tag byte + 8 little-endian value bytes.
  BufferWriter writer;
  std::vector<std::pair<unsigned, uint64_t>> script;
  for (std::size_t i = 0; i + 9 <= size && script.size() < 512; i += 9) {
    uint64_t v = 0;
    std::memcpy(&v, data + i + 1, 8);
    const unsigned tag = data[i] % 6;
    script.emplace_back(tag, v);
    switch (tag) {
      case 0: writer.PutVarint64(v); break;
      case 1: writer.PutVarint64Signed(static_cast<int64_t>(v)); break;
      case 2: writer.PutFixed32(static_cast<uint32_t>(v)); break;
      case 3: writer.PutFixed64(v); break;
      case 4: {
        std::string s(v % 64, static_cast<char>('a' + v % 26));
        writer.PutString(s);
        break;
      }
      default: {
        std::vector<uint8_t> bytes(v % 64, static_cast<uint8_t>(v));
        writer.PutBytes(bytes.data(), bytes.size());
        break;
      }
    }
  }
  BufferReader reader(writer.buffer());
  for (const auto& [tag, v] : script) {
    switch (tag) {
      case 0: {
        uint64_t got;
        HAMMING_FUZZ_CHECK(reader.GetVarint64(&got).ok());
        HAMMING_FUZZ_CHECK(got == v);
        break;
      }
      case 1: {
        int64_t got;
        HAMMING_FUZZ_CHECK(reader.GetVarint64Signed(&got).ok());
        HAMMING_FUZZ_CHECK(got == static_cast<int64_t>(v));
        break;
      }
      case 2: {
        uint32_t got;
        HAMMING_FUZZ_CHECK(reader.GetFixed32(&got).ok());
        HAMMING_FUZZ_CHECK(got == static_cast<uint32_t>(v));
        break;
      }
      case 3: {
        uint64_t got;
        HAMMING_FUZZ_CHECK(reader.GetFixed64(&got).ok());
        HAMMING_FUZZ_CHECK(got == v);
        break;
      }
      case 4: {
        std::string got;
        HAMMING_FUZZ_CHECK(reader.GetString(&got).ok());
        HAMMING_FUZZ_CHECK(got ==
                           std::string(v % 64, static_cast<char>('a' + v % 26)));
        break;
      }
      default: {
        std::vector<uint8_t> got;
        HAMMING_FUZZ_CHECK(reader.GetBytes(&got).ok());
        HAMMING_FUZZ_CHECK(
            got == std::vector<uint8_t>(v % 64, static_cast<uint8_t>(v)));
        break;
      }
    }
  }
  HAMMING_FUZZ_CHECK(reader.AtEnd());
}

}  // namespace

void RunSerdeFuzzInput(const uint8_t* data, std::size_t size) {
  DecodePhase(data, size);
  RoundTripPhase(data, size);
}

}  // namespace hamming_fuzz

#if !defined(HAMMING_FUZZ_NO_ENTRY)
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  hamming_fuzz::RunSerdeFuzzInput(data, size);
  return 0;
}
#endif

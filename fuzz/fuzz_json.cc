// Fuzz harness for the JSON string escaper/unescaper
// (observability/json.h).
//
// Invariants checked on every input:
//  * JsonUnescape on arbitrary bytes either fails cleanly or produces a
//    string whose re-escape unescapes back to the same value (stability).
//  * Escape -> unescape on arbitrary bytes is the identity — every
//    metrics snapshot, trace event and fault-injection message passes
//    through AppendJsonEscaped, so a byte sequence it mangles would
//    corrupt the exported files.
#include <string>
#include <string_view>

#include "observability/json.h"
#include "fuzz_targets.h"

namespace hamming_fuzz {

void RunJsonFuzzInput(const uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  std::string decoded;
  if (hamming::obs::JsonUnescape(input, &decoded)) {
    const std::string escaped = hamming::obs::JsonEscaped(decoded);
    std::string decoded_again;
    HAMMING_FUZZ_CHECK(hamming::obs::JsonUnescape(escaped, &decoded_again));
    HAMMING_FUZZ_CHECK(decoded_again == decoded);
  }

  const std::string escaped = hamming::obs::JsonEscaped(input);
  std::string back;
  HAMMING_FUZZ_CHECK(hamming::obs::JsonUnescape(escaped, &back));
  HAMMING_FUZZ_CHECK(back == input);
}

}  // namespace hamming_fuzz

#if !defined(HAMMING_FUZZ_NO_ENTRY)
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  hamming_fuzz::RunJsonFuzzInput(data, size);
  return 0;
}
#endif

// Fuzz harness for the external shuffle's on-disk spill format
// (storage/file_io.h).
//
// The input's first byte selects the segment to read; the remaining
// bytes become the file contents. SpillSegmentCursor::Open validates the
// fixed header, segment index and its CRC; Next streams CRC-framed pages
// and length-prefixed records. Whatever the bytes are, every malformed
// shape — truncated header, lying segment index, corrupt page CRC,
// record lengths past the page end — must come back as a Status, never
// as an out-of-bounds read or an unbounded loop.
#include <cstdio>
#include <string>
#include <vector>

#include "storage/file_io.h"
#include "fuzz_targets.h"

#include <unistd.h>

namespace hamming_fuzz {
namespace {

std::string TempPath() {
  const char* base = ::getenv("TMPDIR");
  std::string dir = base != nullptr && base[0] != '\0' ? base : "/tmp";
  return dir + "/hamming_fuzz_spill_" + std::to_string(::getpid()) + ".bin";
}

}  // namespace

void RunSpillFuzzInput(const uint8_t* data, std::size_t size) {
  if (size == 0) return;
  const std::size_t segment = data[0] % 4;
  const std::string path = TempPath();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    HAMMING_FUZZ_CHECK(f != nullptr);
    if (size > 1) {
      HAMMING_FUZZ_CHECK(std::fwrite(data + 1, 1, size - 1, f) == size - 1);
    }
    std::fclose(f);
  }

  auto cursor = hamming::storage::SpillSegmentCursor::Open(path, segment);
  if (cursor.ok()) {
    std::vector<uint8_t> key, value;
    bool done = false;
    // A record costs >= 2 on-disk bytes, so a terminating cursor over a
    // `size`-byte file cannot produce more than `size` records; anything
    // past that bound means Next stopped making progress.
    std::size_t guard = size + 16;
    while (!done) {
      HAMMING_FUZZ_CHECK(guard-- > 0);
      if (!cursor.ValueOrDie()->Next(&key, &value, &done).ok()) break;
    }
  }
  std::remove(path.c_str());
}

}  // namespace hamming_fuzz

#if !defined(HAMMING_FUZZ_NO_ENTRY)
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  hamming_fuzz::RunSpillFuzzInput(data, size);
  return 0;
}
#endif

// Deterministic driver for the fuzz harnesses when libFuzzer is not
// available (the default toolchain here is GCC).
//
// Modes:
//   fuzz_serde corpus_dir [files...]            replay every corpus file
//   fuzz_serde corpus_dir -mutate=N [-seed=S]   additionally run N
//       deterministic mutations of every corpus file
//
// Mutations come from a fixed xorshift64* stream seeded by
// (seed, file index, iteration), so two runs over the same corpus
// execute byte-identical inputs — this is the "fuzz smoke" mode
// scripts/check.sh gates on: no wall-clock budget, no RNG from the
// environment, same coverage every run. Real open-ended campaigns use
// -DHAMMING_LIBFUZZER=ON with Clang instead.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size);

namespace {

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

// Applies 1-4 mutation ops: bit flip, byte overwrite, truncate, extend.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& base,
                            uint64_t seed) {
  std::vector<uint8_t> out = base;
  uint64_t state = seed | 1;
  const int ops = 1 + static_cast<int>(XorShift(&state) % 4);
  for (int i = 0; i < ops; ++i) {
    switch (XorShift(&state) % 4) {
      case 0:  // bit flip
        if (!out.empty()) {
          const uint64_t r = XorShift(&state);
          out[r % out.size()] ^= static_cast<uint8_t>(1u << (r >> 32) % 8);
        }
        break;
      case 1:  // byte overwrite
        if (!out.empty()) {
          const uint64_t r = XorShift(&state);
          out[r % out.size()] = static_cast<uint8_t>(r >> 32);
        }
        break;
      case 2:  // truncate
        if (!out.empty()) out.resize(XorShift(&state) % out.size());
        break;
      default: {  // extend with random bytes
        const std::size_t n = 1 + XorShift(&state) % 16;
        for (std::size_t j = 0; j < n; ++j) {
          out.push_back(static_cast<uint8_t>(XorShift(&state)));
        }
        break;
      }
    }
  }
  return out;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  long mutations = 0;
  uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "-mutate=", 8) == 0) {
      mutations = std::atol(a + 8);
    } else if (std::strncmp(a, "-seed=", 6) == 0) {
      seed = static_cast<uint64_t>(std::atoll(a + 6));
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [corpus_dir|file]... [-mutate=N] [-seed=S]\n",
                   argv[0]);
      return 2;
    } else {
      paths.emplace_back(a);
    }
  }

  // Expand directories, then sort for run-to-run determinism.
  std::vector<std::string> files;
  for (const auto& p : paths) {
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "%s: no corpus files given\n", argv[0]);
    return 2;
  }

  std::size_t executed = 0;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::vector<uint8_t> base = ReadFile(files[fi]);
    LLVMFuzzerTestOneInput(base.data(), base.size());
    ++executed;
    for (long m = 0; m < mutations; ++m) {
      const uint64_t s =
          seed * 0x9E3779B97F4A7C15ull + fi * 0xBF58476D1CE4E5B9ull +
          static_cast<uint64_t>(m);
      const std::vector<uint8_t> input = Mutate(base, s);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++executed;
    }
  }
  std::printf("fuzz-smoke: %zu inputs OK (%zu corpus files, %ld mutations "
              "each, seed %llu)\n",
              executed, files.size(), mutations,
              static_cast<unsigned long long>(seed));
  return 0;
}

// Near-duplicate image detection — the paper's motivating application
// (Section 1): hash high-dimensional image features into binary codes
// with a learned Spectral Hashing function, then answer "find all images
// within Hamming distance h of this one" with the HA-Index, comparing
// against the linear-scan baseline.
//
//   $ ./build/examples/image_dedup
#include <cstdio>

#include "observability/stopwatch.h"
#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "index/dynamic_ha_index.h"
#include "index/linear_scan.h"

int main() {
  using namespace hamming;

  // A synthetic image collection with NUS-WIDE-like 225-d color-moment
  // features (see DESIGN.md for the substitution rationale).
  const std::size_t kImages = 20000;
  std::printf("generating %zu synthetic image feature vectors (225-d)...\n",
              kImages);
  FloatMatrix images = GenerateDataset(DatasetKind::kNusWide, kImages);

  // Train the similarity hash on a sample and hash the collection.
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  FloatMatrix sample = images.GatherRows([&] {
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < 2000; ++i) ids.push_back(i * 10);
    return ids;
  }());
  auto hash = SpectralHashing::Train(sample, hopts).ValueOrDie();
  std::vector<BinaryCode> codes = hash->HashAll(images);
  std::printf("hashed to %zu-bit binary codes\n", hash->code_bits());

  // Index the codes.
  obs::Stopwatch watch;
  DynamicHAIndex index;
  if (Status st = index.Build(codes); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("H-Build over %zu codes: %.1f ms, memory %s\n", codes.size(),
              watch.ElapsedMillis(), index.Memory().ToString().c_str());

  // Pretend image 4242 was re-uploaded with slight edits: perturb its
  // features a little and look for near-duplicates.
  std::vector<double> edited(images.Row(4242).begin(),
                             images.Row(4242).end());
  Rng rng(7);
  for (double& v : edited) v += rng.Gaussian(0.0, 1e-3);
  BinaryCode probe = hash->Hash(edited);

  // A batch of one through the batch-first surface; a real dedup
  // pipeline would coalesce many probes per SearchBatch call.
  hamming::QueryRequest req = hamming::QueryRequest::Range(probe, 3);
  hamming::QueryResponse resp;
  watch.Restart();
  // Well-formed probe over matching spans; failure is impossible.
  (void)index.SearchBatch({&req, 1}, {&resp, 1});
  double ha_ms = watch.ElapsedMillis();
  std::vector<TupleId> dup = std::move(resp.ids);

  LinearScanIndex scan;
  // Build on in-memory codes cannot fail.
  (void)scan.Build(codes);
  watch.Restart();
  // Same well-formed probe as above; failure is impossible.
  (void)scan.SearchBatch({&req, 1}, {&resp, 1});
  double scan_ms = watch.ElapsedMillis();
  std::vector<TupleId> dup_scan = std::move(resp.ids);

  std::printf("\nnear-duplicates of edited image 4242 (h<=3): %zu found\n",
              dup.size());
  bool found_original = false;
  for (TupleId id : dup) {
    if (id == 4242) found_original = true;
  }
  std::printf("original recovered: %s\n", found_original ? "yes" : "NO");
  std::printf("HA-Index: %.3f ms   linear scan: %.3f ms   speedup: %.1fx\n",
              ha_ms, scan_ms, scan_ms / (ha_ms > 0 ? ha_ms : 1e-9));
  std::printf("(both methods agree: %s)\n",
              Sorted(dup) == Sorted(dup_scan) ? "yes" : "NO");
  return found_original && Sorted(dup) == Sorted(dup_scan) ? 0 : 1;
}

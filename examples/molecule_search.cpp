// Chemical similarity search: Tanimoto-threshold queries over molecular
// fingerprints answered through Hamming-distance machinery — the
// transformation the paper cites from HmSearch [14].
//
//   $ ./build/examples/molecule_search
#include <cstdio>

#include "chem/tanimoto.h"
#include "observability/stopwatch.h"

int main() {
  using namespace hamming;

  const std::size_t kLibrary = 100000;
  std::printf("generating %zu synthetic 166-bit MACCS-like fingerprints...\n",
              kLibrary);
  auto library = chem::GenerateFingerprints(kLibrary, 166, 64);
  // Real libraries contain families of close variants (salt forms,
  // tautomers, stereoisomers): register a few per base molecule.
  Rng rng(11);
  for (std::size_t v = 0; v < kLibrary / 10; ++v) {
    BinaryCode fp = library[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kLibrary) - 1))];
    for (int f = 0; f < 2; ++f) {
      if (rng.Bernoulli(0.8)) {
        fp.FlipBit(static_cast<std::size_t>(rng.UniformInt(0, 165)));
      }
    }
    library.push_back(fp);
  }

  obs::Stopwatch watch;
  auto searcher = chem::TanimotoSearcher::Build(library).ValueOrDie();
  std::printf("built %zu popcount buckets in %.1f ms\n",
              searcher.num_buckets(), watch.ElapsedMillis());

  // Screen a few query molecules at decreasing similarity thresholds.
  const std::size_t queries[] = {7, 1234, 50001};
  for (std::size_t qi : queries) {
    const auto& q = library[qi];
    std::printf("\nquery molecule #%zu (popcount %zu):\n", qi, q.PopCount());
    for (double t : {0.95, 0.9, 0.8}) {
      watch.Restart();
      auto hits = searcher.Search(q, t).ValueOrDie();
      double ms = watch.ElapsedMillis();
      // Verify against a full scan for the report.
      watch.Restart();
      std::size_t scan_hits = 0;
      for (const auto& fp : library) {
        if (chem::TanimotoSimilarity(q, fp) >= t - 1e-12) ++scan_hits;
      }
      double scan_ms = watch.ElapsedMillis();
      std::printf("  T >= %.2f: %6zu hits in %8.3f ms  "
                  "(scan: %8.1f ms, agrees: %s, speedup %5.0fx)\n",
                  t, hits.size(), ms, scan_ms,
                  hits.size() == scan_hits ? "yes" : "NO",
                  scan_ms / (ms > 0 ? ms : 1e-9));
    }
  }
  return 0;
}

// Distributed Hamming-join on the MapReduce runtime — the full Section 5
// pipeline: sample, learn hash, pick Gray-order pivots, build the global
// HA-Index with a MapReduce job, broadcast it, and join. Prints the
// per-phase times and the shuffle/broadcast accounting of all three
// competing plans.
//
//   $ ./build/examples/distributed_join
#include <cstdio>

#include "dataset/generators.h"
#include "mrjoin/mrha.h"
#include "mrjoin/pgbj.h"
#include "mrjoin/pmh.h"

int main() {
  using namespace hamming;
  using namespace hamming::mrjoin;

  const std::size_t kRows = 4000;
  std::printf("self-joining %zu NUS-WIDE-like tuples, h=3, on a simulated "
              "16-node cluster\n\n", kRows);
  FloatMatrix data = GenerateDataset(DatasetKind::kNusWide, kRows);

  // MRHA-Index, Option A.
  {
    mr::Cluster cluster({16, 4, 0});
    MrhaOptions opts;
    opts.num_partitions = 16;
    auto result = RunMrhaJoin(data, data, opts, &cluster).ValueOrDie();
    const auto& t = result.phase_seconds;
    std::printf("MRHA-Index-A: %zu result pairs\n", result.pairs.size());
    std::printf("  phases (s): sample %.3f | learn-hash %.3f | pivots %.3f "
                "| build %.3f | join %.3f\n",
                t.sampling, t.learn_hash, t.pivot_selection, t.index_build,
                t.join);
    std::printf("  shuffle %.2f MB, broadcast %.2f MB\n\n",
                result.shuffle_bytes / 1048576.0,
                result.broadcast_bytes / 1048576.0);
  }
  // MRHA-Index, Option B (leafless broadcast + post-join).
  {
    mr::Cluster cluster({16, 4, 0});
    MrhaOptions opts;
    opts.num_partitions = 16;
    opts.option = MrhaOption::kB;
    auto result = RunMrhaJoin(data, data, opts, &cluster).ValueOrDie();
    std::printf("MRHA-Index-B: %zu result pairs\n", result.pairs.size());
    std::printf("  shuffle %.2f MB, broadcast %.2f MB\n\n",
                result.shuffle_bytes / 1048576.0,
                result.broadcast_bytes / 1048576.0);
  }
  // PMH-10 baseline.
  {
    mr::Cluster cluster({16, 4, 0});
    PmhOptions opts;
    opts.num_partitions = 16;
    auto result = RunPmhJoin(data, data, opts, &cluster).ValueOrDie();
    std::printf("PMH-10:       %zu result pairs\n", result.pairs.size());
    std::printf("  shuffle %.2f MB, broadcast %.2f MB\n\n",
                result.shuffle_bytes / 1048576.0,
                result.broadcast_bytes / 1048576.0);
  }
  // PGBJ exact kNN-join baseline.
  {
    mr::Cluster cluster({16, 4, 0});
    PgbjOptions opts;
    opts.num_partitions = 16;
    opts.k = 10;
    auto result = RunPgbjJoin(data, data, opts, &cluster).ValueOrDie();
    std::printf("PGBJ (exact kNN-join, k=10): %zu rows\n",
                result.rows.size());
    std::printf("  shuffle %.2f MB, broadcast %.2f MB\n",
                result.shuffle_bytes / 1048576.0,
                result.broadcast_bytes / 1048576.0);
  }
  return 0;
}

// Quickstart: index binary codes in a Dynamic HA-Index and answer a
// Hamming range query — the Table 2 / Example 1 walk-through from the
// paper, in a dozen lines of library code.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "index/dynamic_ha_index.h"

int main() {
  using hamming::BinaryCode;
  using hamming::DynamicHAIndex;

  // Table 2a: dataset S as 9-bit binary codes.
  const char* table_s[] = {"001001010", "001011101", "011001100",
                           "101001010", "101110110", "101011101",
                           "101101010", "111001100"};
  std::vector<BinaryCode> codes;
  for (const char* row : table_s) {
    codes.push_back(BinaryCode::FromString(row).ValueOrDie());
  }

  // Build the index (H-Build: Gray sort + sliding-window FLSSeq
  // sharing); window 2 reproduces the two-leaf grouping of Figure 3.
  hamming::DynamicHAIndexOptions opts;
  opts.window = 2;
  DynamicHAIndex index(opts);
  hamming::Status st = index.Build(codes);
  if (!st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Example 1: h-select(tq, S) with tq = "101100010" and h = 3, through
  // the batch-first query surface (a batch of one).
  auto tq = BinaryCode::FromString("101100010").ValueOrDie();
  hamming::QueryRequest req = hamming::QueryRequest::Range(tq, /*radius=*/3);
  hamming::QueryResponse resp;
  st = index.SearchBatch({&req, 1}, {&resp, 1});
  if (!st.ok() || !resp.status.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 (st.ok() ? resp.status : st).ToString().c_str());
    return 1;
  }

  std::printf("h-select(tq=%s, h=3) = {", tq.ToString().c_str());
  auto ids = hamming::Sorted(resp.ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::printf("%st%u", i ? ", " : "", ids[i]);
  }
  std::printf("}\n");
  std::printf("expected (paper Example 1): {t0, t3, t4, t6}\n");

  auto stats = index.Stats();
  std::printf("index: %zu leaves, %zu internal nodes, depth %zu\n",
              stats.num_leaves, stats.num_internal_nodes, stats.depth);
  return ids == std::vector<hamming::TupleId>{0, 3, 4, 6} ? 0 : 1;
}

// Similarity-aware relational operators in action — the paper's stated
// future work [27]: screen a batch of uploaded images against a blocklist
// with the Hamming semi-join (SimilarityIntersect), and persist the
// prepared tables for the next batch.
//
//   $ ./build/examples/content_moderation
#include <cstdio>

#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "ops/operators.h"
#include "storage/persist.h"

int main() {
  using namespace hamming;

  // A blocklist of 2,000 known-bad image signatures and a batch of
  // 10,000 fresh uploads; 50 uploads are perturbed copies of blocklist
  // entries.
  const std::size_t kBlocklist = 2000;
  const std::size_t kUploads = 10000;
  const std::size_t kPlanted = 50;
  std::printf("preparing blocklist (%zu) and upload batch (%zu, %zu "
              "planted near-duplicates)...\n",
              kBlocklist, kUploads, kPlanted);
  GeneratorOptions gopts;
  FloatMatrix blocklist = GenerateDataset(DatasetKind::kNusWide, kBlocklist,
                                          gopts);
  gopts.seed = 777;
  FloatMatrix uploads = GenerateDataset(DatasetKind::kNusWide, kUploads,
                                        gopts);
  Rng rng(5);
  for (std::size_t p = 0; p < kPlanted; ++p) {
    std::size_t src = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kBlocklist) - 1));
    auto dst = uploads.MutableRow(p * (kUploads / kPlanted));
    auto ref = blocklist.Row(src);
    for (std::size_t j = 0; j < dst.size(); ++j) {
      dst[j] = ref[j] + rng.Gaussian(0.0, 1e-3);
    }
  }

  // One shared hash, trained on the blocklist.
  SpectralHashingOptions hopts;
  hopts.code_bits = 64;
  auto hash = std::shared_ptr<const SimilarityHash>(
      SpectralHashing::Train(blocklist, hopts).ValueOrDie().release());
  auto block_table =
      HammingTable::FromFeatures(std::move(blocklist), hash).ValueOrDie();
  auto upload_table =
      HammingTable::FromFeatures(std::move(uploads), hash).ValueOrDie();

  // Semi-join: which uploads have a blocklisted near-duplicate?
  auto flagged =
      ops::SimilarityIntersect(upload_table, block_table, /*h=*/3, {})
          .ValueOrDie();
  auto clean =
      ops::SimilarityDifference(upload_table, block_table, /*h=*/3, {})
          .ValueOrDie();
  std::printf("\nflagged %zu uploads, passed %zu\n", flagged.size(),
              clean.size());
  std::size_t planted_hits = 0;
  for (TupleId id : flagged) {
    if (id % (kUploads / kPlanted) == 0 && id / (kUploads / kPlanted) <
        kPlanted) {
      ++planted_hits;
    }
  }
  std::printf("planted near-duplicates caught: %zu / %zu\n", planted_hits,
              kPlanted);

  // Persist the blocklist table so tomorrow's batch reuses it.
  const char* path = "/tmp/hammingdb_blocklist.tbl";
  if (Status st = storage::SaveTable(path, block_table); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto reloaded = storage::LoadTable(path).ValueOrDie();
  std::printf("blocklist persisted to %s and reloaded (%zu entries, "
              "hash %s)\n",
              path, reloaded.size(),
              reloaded.hash() ? "restored" : "missing");
  std::remove(path);
  return planted_hits >= kPlanted * 9 / 10 ? 0 : 1;
}

// Content-based image search: approximate k-nearest-neighbour retrieval
// through the Hamming layer (Section 2's kNN-select pipeline — hash,
// Hamming range search with threshold escalation, re-rank by true
// distance), with recall measured against the exact scan.
//
//   $ ./build/examples/knn_image_search
#include <cstdio>

#include "observability/stopwatch.h"
#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "index/dynamic_ha_index.h"
#include "knn/exact_knn.h"
#include "knn/hamming_knn.h"

int main() {
  using namespace hamming;

  const std::size_t kImages = 30000;
  const std::size_t kQueries = 20;
  const std::size_t kK = 10;
  std::printf("generating %zu Flickr-like GIST vectors (512-d)...\n",
              kImages);
  FloatMatrix images = GenerateDataset(DatasetKind::kFlickr, kImages);
  FloatMatrix queries = GenerateQueries(DatasetKind::kFlickr, kQueries);

  SpectralHashingOptions hopts;
  hopts.code_bits = 64;
  FloatMatrix sample = images.GatherRows([&] {
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < 1500; ++i) ids.push_back(i * 20);
    return ids;
  }());
  std::printf("training Spectral Hashing (64-bit codes)...\n");
  auto hash = SpectralHashing::Train(sample, hopts).ValueOrDie();
  auto codes = hash->HashAll(images);

  DynamicHAIndex index;
  if (Status st = index.Build(codes); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  HammingKnnSearcher searcher(&index, hash.get(), &images);

  std::printf("\n%-8s %14s %14s %8s\n", "query", "approx(ms)", "exact(ms)",
              "recall");
  double total_recall = 0.0;
  double approx_total = 0.0, exact_total = 0.0;
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    obs::Stopwatch watch;
    auto approx = searcher.Search(queries.Row(qi), kK).ValueOrDie();
    double approx_ms = watch.ElapsedMillis();
    watch.Restart();
    auto exact = ExactKnn(images, queries.Row(qi), kK);
    double exact_ms = watch.ElapsedMillis();
    std::vector<std::size_t> ids;
    for (const auto& n : approx) ids.push_back(n.id);
    double recall = RecallAtK(exact, ids);
    total_recall += recall;
    approx_total += approx_ms;
    exact_total += exact_ms;
    std::printf("%-8zu %14.3f %14.3f %8.2f\n", qi, approx_ms, exact_ms,
                recall);
  }
  std::printf("\navg recall@%zu: %.3f, avg speedup vs exact scan: %.1fx\n",
              kK, total_recall / kQueries,
              exact_total / (approx_total > 0 ? approx_total : 1e-9));
  return total_recall / kQueries > 0.2 ? 0 : 1;
}

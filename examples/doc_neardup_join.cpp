// Near-duplicate document detection as a Hamming-join — the web-mirror /
// plagiarism / spam use case the paper cites from Manku et al. [4]:
// join a crawl batch R against a corpus S on Hamming distance of their
// topic-vector codes.
//
//   $ ./build/examples/doc_neardup_join
#include <cstdio>

#include "observability/stopwatch.h"
#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "index/dynamic_ha_index.h"
#include "join/centralized_join.h"

int main() {
  using namespace hamming;

  // Corpus S: DBPedia-like 250-topic LDA vectors; crawl batch R: a
  // smaller set drawn from the same topic distribution.
  const std::size_t kCorpus = 8000;
  const std::size_t kBatch = 800;
  std::printf("generating corpus (%zu docs) and crawl batch (%zu docs)...\n",
              kCorpus, kBatch);
  GeneratorOptions gopts;
  FloatMatrix corpus = GenerateDataset(DatasetKind::kDbpedia, kCorpus, gopts);
  gopts.seed = 1234;
  FloatMatrix batch = GenerateDataset(DatasetKind::kDbpedia, kBatch, gopts);

  // One hash function for both sides (trained on the corpus). 64-bit
  // codes keep the h<=3 neighbourhood selective on topic vectors.
  SpectralHashingOptions hopts;
  hopts.code_bits = 64;
  auto hash = SpectralHashing::Train(corpus, hopts).ValueOrDie();
  auto corpus_codes = hash->HashAll(corpus);
  auto batch_codes = hash->HashAll(batch);

  // Index-probe join (HA-Index on the batch, probe with the corpus —
  // index the smaller side, as Section 5 prescribes for R).
  obs::Stopwatch watch;
  DynamicHAIndex index;
  auto pairs =
      IndexProbeJoin(&index, batch_codes, corpus_codes, /*h=*/3)
          .ValueOrDie();
  double indexed_ms = watch.ElapsedMillis();

  watch.Restart();
  auto truth = NestedLoopsJoin(batch_codes, corpus_codes, /*h=*/3);
  double nested_ms = watch.ElapsedMillis();

  NormalizePairs(&pairs);
  NormalizePairs(&truth);

  std::printf("\nh-join(batch, corpus) with h<=3: %zu near-duplicate pairs\n",
              pairs.size());
  std::size_t flagged = 0;
  std::vector<bool> seen(kBatch, false);
  for (const auto& p : pairs) {
    if (!seen[p.r]) {
      seen[p.r] = true;
      ++flagged;
    }
  }
  std::printf("crawl docs with at least one near-duplicate: %zu / %zu\n",
              flagged, kBatch);
  std::printf("index-probe join: %.1f ms   nested loops: %.1f ms   "
              "speedup: %.1fx\n",
              indexed_ms, nested_ms,
              nested_ms / (indexed_ms > 0 ? indexed_ms : 1e-9));
  std::printf("results agree with nested loops: %s\n",
              pairs == truth ? "yes" : "NO");
  return pairs == truth ? 0 : 1;
}

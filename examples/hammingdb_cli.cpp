// hammingdb_cli: build, persist, inspect and query HA-Indexes from the
// command line — the minimal operational surface a deployment needs.
//
//   hammingdb_cli build <codes.txt> <index.hdb>   # one 0/1 string per line
//   hammingdb_cli stats <index.hdb>
//   hammingdb_cli query <index.hdb> <code> <h>
//
//   $ printf '001001010\n101001010\n' > /tmp/codes.txt
//   $ ./build/examples/hammingdb_cli build /tmp/codes.txt /tmp/idx.hdb
//   $ ./build/examples/hammingdb_cli query /tmp/idx.hdb 101100010 3
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "observability/stopwatch.h"
#include "storage/persist.h"

namespace {

using namespace hamming;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hammingdb_cli build <codes.txt> <index.hdb>\n"
               "  hammingdb_cli stats <index.hdb>\n"
               "  hammingdb_cli query <index.hdb> <code> <h>\n");
  return 2;
}

int Build(const char* codes_path, const char* index_path) {
  std::ifstream in(codes_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", codes_path);
    return 1;
  }
  std::vector<BinaryCode> codes;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto code = BinaryCode::FromString(line);
    if (!code.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", codes_path, lineno,
                   code.status().ToString().c_str());
      return 1;
    }
    codes.push_back(*code);
  }
  obs::Stopwatch watch;
  DynamicHAIndex index;
  if (Status st = index.Build(codes); !st.ok()) {
    std::fprintf(stderr, "H-Build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double build_ms = watch.ElapsedMillis();
  if (Status st = storage::SaveIndex(index_path, index); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto stats = index.Stats();
  std::printf("indexed %zu codes in %.1f ms -> %s\n", codes.size(),
              build_ms, index_path);
  std::printf("  %zu leaves, %zu internal nodes, depth %zu, memory %s\n",
              stats.num_leaves, stats.num_internal_nodes, stats.depth,
              index.Memory().ToString().c_str());
  return 0;
}

int Stats(const char* index_path) {
  auto index = storage::LoadIndex(index_path);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto stats = index->Stats();
  std::printf("%s: %zu tuples\n", index_path, index->size());
  std::printf("  leaves: %zu\n", stats.num_leaves);
  std::printf("  internal nodes: %zu\n", stats.num_internal_nodes);
  std::printf("  edges: %zu\n", stats.num_edges);
  std::printf("  depth: %zu\n", stats.depth);
  std::printf("  memory: %s\n", index->Memory().ToString().c_str());
  return 0;
}

int Query(const char* index_path, const char* code_str, const char* h_str) {
  auto index = storage::LoadIndex(index_path);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto code = BinaryCode::FromString(code_str);
  if (!code.ok()) {
    std::fprintf(stderr, "bad query code: %s\n",
                 code.status().ToString().c_str());
    return 1;
  }
  long h = std::atol(h_str);
  if (h < 0) {
    std::fprintf(stderr, "threshold must be non-negative\n");
    return 1;
  }
  obs::Stopwatch watch;
  auto result =
      index->SearchWithDistances(*code, static_cast<std::size_t>(h));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  double ms = watch.ElapsedMillis();
  std::sort(result->begin(), result->end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  for (const auto& [id, dist] : *result) {
    std::printf("%u\t%u\n", id, dist);
  }
  std::fprintf(stderr, "%zu matches in %.3f ms\n", result->size(), ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0 && argc == 4) {
    return Build(argv[2], argv[3]);
  }
  if (std::strcmp(argv[1], "stats") == 0 && argc == 3) {
    return Stats(argv[2]);
  }
  if (std::strcmp(argv[1], "query") == 0 && argc == 5) {
    return Query(argv[2], argv[3], argv[4]);
  }
  return Usage();
}

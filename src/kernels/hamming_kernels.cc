#include "kernels/hamming_kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace hamming::kernels {

// Range kernels defined by the AVX2 translation unit (compiled with
// -mavx2 when the toolchain supports it; see src/CMakeLists.txt).
#if defined(HAMMING_HAVE_AVX2_TU)
namespace detail {
void BatchDistanceRangeAvx2(const CodeStore& store, const uint64_t* qwords,
                            std::size_t base, std::size_t len, uint32_t* out);
void BatchXorPopcountAvx2(uint64_t query_word, const uint64_t* values,
                          std::size_t n, uint16_t* out);
void RangeHitsAvx2(const CodeStore& store, const uint64_t* qwords, uint32_t h,
                   std::size_t base, std::size_t len,
                   std::vector<SlotDistance>* hits);
std::size_t VerticalScanAvx2(const VerticalCodeStore& store,
                             const uint64_t* qmask, std::size_t h,
                             std::vector<uint32_t>* out_slots,
                             VerticalScanStats* stats);
}  // namespace detail
#endif

// Range kernels defined by the AVX-512 translation unit (compiled with
// -mavx512f -mavx512bw -mavx512vpopcntdq when HAMMING_AVX512 is on).
#if defined(HAMMING_HAVE_AVX512_TU)
namespace detail {
void BatchDistanceRangeAvx512(const CodeStore& store, const uint64_t* qwords,
                              std::size_t base, std::size_t len,
                              uint32_t* out);
void RangeHitsAvx512(const CodeStore& store, const uint64_t* qwords,
                     uint32_t h, std::size_t base, std::size_t len,
                     std::vector<SlotDistance>* hits);
std::size_t VerticalScanAvx512(const VerticalCodeStore& store,
                               const uint64_t* qmask, std::size_t h,
                               std::vector<uint32_t>* out_slots,
                               VerticalScanStats* stats);
}  // namespace detail
#endif

// Portable vertical scan (hamming_kernels_vertical.cc); always built.
namespace detail {
std::size_t VerticalScanPortable(const VerticalCodeStore& store,
                                 const uint64_t* qmask, std::size_t h,
                                 std::vector<uint32_t>* out_slots,
                                 VerticalScanStats* stats);
}  // namespace detail

namespace {

// ---- Portable range kernels ---------------------------------------------

// out[i] = distance(query, code base+i) for i in [0, len). Blocks of 8
// codes keep eight accumulators live while one query word streams
// against eight contiguous lane words — the form GCC keeps in registers.
void BatchDistanceRangePortable(const CodeStore& store, const uint64_t* qwords,
                                std::size_t base, std::size_t len,
                                uint32_t* out) {
  const std::size_t nw = store.words();
  if (nw == 1) {
    const uint64_t q0 = qwords[0];
    const uint64_t* lane = store.Lane(0) + base;
    for (std::size_t i = 0; i < len; ++i) {
      out[i] = static_cast<uint32_t>(std::popcount(lane[i] ^ q0));
    }
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint32_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t w = 0; w < nw; ++w) {
      const uint64_t q = qwords[w];
      const uint64_t* lane = store.Lane(w) + base + i;
      for (std::size_t j = 0; j < 8; ++j) {
        acc[j] += static_cast<uint32_t>(std::popcount(lane[j] ^ q));
      }
    }
    std::copy_n(acc, 8, out + i);
  }
  for (; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(std::popcount(store.Lane(w)[base + i] ^
                                               qwords[w]));
    }
    out[i] = d;
  }
}

void BatchXorPopcountPortable(uint64_t query_word, const uint64_t* values,
                              std::size_t n, uint16_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint16_t>(std::popcount(values[i] ^ query_word));
  }
}

// Fused range scan: appends (slot, distance) for every code in
// [base, base+len) within distance h, without materializing a dists[]
// array. Semantically BatchDistanceRange + a <= h filter.
void RangeHitsPortable(const CodeStore& store, const uint64_t* qwords,
                       uint32_t h, std::size_t base, std::size_t len,
                       std::vector<SlotDistance>* hits) {
  const std::size_t nw = store.words();
  if (nw == 1) {
    const uint64_t q0 = qwords[0];
    const uint64_t* lane = store.Lane(0) + base;
    for (std::size_t i = 0; i < len; ++i) {
      const uint32_t d = static_cast<uint32_t>(std::popcount(lane[i] ^ q0));
      if (d <= h) hits->push_back({static_cast<uint32_t>(base + i), d});
    }
    return;
  }
  for (std::size_t i = 0; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(std::popcount(store.Lane(w)[base + i] ^
                                               qwords[w]));
    }
    if (d <= h) hits->push_back({static_cast<uint32_t>(base + i), d});
  }
}

// ---- Dispatch -----------------------------------------------------------

std::atomic<Backend> g_backend = [] {
#if defined(HAMMING_HAVE_AVX512_TU)
  if (Avx512Supported()) return Backend::kAvx512;
#endif
#if defined(HAMMING_HAVE_AVX2_TU)
  if (Avx2Supported()) return Backend::kAvx2;
#endif
  return Backend::kPortable;
}();

// Layout policy for BatchWithinDistanceDual, seeded once from the
// HAMMING_KERNEL_LAYOUT environment variable.
LayoutPolicy LayoutPolicyFromEnv() {
  const char* env = std::getenv("HAMMING_KERNEL_LAYOUT");
  if (env == nullptr) return LayoutPolicy::kAuto;
  std::array<char, 16> buf{};
  std::size_t n = 0;
  for (; env[n] != '\0' && n + 1 < buf.size(); ++n) {
    buf[n] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(env[n])));
  }
  if (std::strcmp(buf.data(), "horizontal") == 0) {
    return LayoutPolicy::kForceHorizontal;
  }
  if (std::strcmp(buf.data(), "vertical") == 0) {
    return LayoutPolicy::kForceVertical;
  }
  return LayoutPolicy::kAuto;  // "auto", unset, or unrecognized
}

std::atomic<LayoutPolicy> g_layout_policy = LayoutPolicyFromEnv();

void BatchDistanceRange(const CodeStore& store, const uint64_t* qwords,
                        std::size_t base, std::size_t len, uint32_t* out) {
  if (len == 0) return;
  if (store.words() == 0) {
    std::fill_n(out, len, 0u);
    return;
  }
#if defined(HAMMING_HAVE_AVX512_TU)
  if (g_backend.load(std::memory_order_relaxed) == Backend::kAvx512) {
    detail::BatchDistanceRangeAvx512(store, qwords, base, len, out);
    return;
  }
#endif
#if defined(HAMMING_HAVE_AVX2_TU)
  if (g_backend.load(std::memory_order_relaxed) == Backend::kAvx2) {
    detail::BatchDistanceRangeAvx2(store, qwords, base, len, out);
    return;
  }
#endif
  BatchDistanceRangePortable(store, qwords, base, len, out);
}

// Backend dispatch for the fused range scan (mirrors BatchDistanceRange).
// A zero-word store (bits == 0) never enters the vector paths' lane loop,
// so every code matches at distance 0 on all tiers — same as the dists[]
// path would report.
void RangeHits(const CodeStore& store, const uint64_t* qwords, uint32_t h,
               std::size_t base, std::size_t len,
               std::vector<SlotDistance>* hits) {
  if (len == 0) return;
#if defined(HAMMING_HAVE_AVX512_TU)
  if (g_backend.load(std::memory_order_relaxed) == Backend::kAvx512) {
    detail::RangeHitsAvx512(store, qwords, h, base, len, hits);
    return;
  }
#endif
#if defined(HAMMING_HAVE_AVX2_TU)
  if (g_backend.load(std::memory_order_relaxed) == Backend::kAvx2) {
    detail::RangeHitsAvx2(store, qwords, h, base, len, hits);
    return;
  }
#endif
  RangeHitsPortable(store, qwords, h, base, len, hits);
}

// Shared body of the vertical BatchWithinDistance / BatchCount: handles
// the degenerate radii, spreads the query into per-plane broadcast
// masks, and dispatches on the active backend.
std::size_t VerticalScanDispatch(const BinaryCode& query,
                                 const VerticalCodeStore& store, std::size_t h,
                                 std::vector<uint32_t>* out_slots,
                                 VerticalScanStats* stats) {
  if (store.empty()) return 0;
  const std::size_t bits = store.bits();
  if (h >= bits) {
    // Every code is within distance h; zero planes touched.
    if (out_slots != nullptr) {
      for (std::size_t i = 0; i < store.size(); ++i) {
        out_slots->push_back(static_cast<uint32_t>(i));
      }
    }
    if (stats != nullptr) stats->blocks_scanned += store.num_blocks();
    return store.size();
  }
  // qmask[p] is all-ones when query bit p is set: the scan's mismatch
  // word for plane p is plane_row ^ qmask[p].
  std::array<uint64_t, BinaryCode::kMaxBits> qmask;
  for (std::size_t p = 0; p < bits; ++p) {
    qmask[p] = query.GetBit(p) ? ~0ull : 0ull;
  }
#if defined(HAMMING_HAVE_AVX512_TU)
  if (g_backend.load(std::memory_order_relaxed) == Backend::kAvx512) {
    return detail::VerticalScanAvx512(store, qmask.data(), h, out_slots,
                                      stats);
  }
#endif
#if defined(HAMMING_HAVE_AVX2_TU)
  if (g_backend.load(std::memory_order_relaxed) == Backend::kAvx2) {
    return detail::VerticalScanAvx2(store, qmask.data(), h, out_slots, stats);
  }
#endif
  return detail::VerticalScanPortable(store, qmask.data(), h, out_slots,
                                      stats);
}

// Tile size for the scratch-buffered scans: 1024 distances = 4 KB on the
// stack, small enough to stay L1-resident alongside the lanes.
constexpr std::size_t kTile = 1024;

}  // namespace

bool Avx2Supported() {
#if defined(HAMMING_HAVE_AVX2_TU) && defined(__x86_64__)
  // Explicit init: this is reachable from namespace-scope initializers
  // (g_backend), which may run before GCC's own cpu-model constructor.
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool Avx512Supported() {
#if defined(HAMMING_HAVE_AVX512_TU) && defined(__x86_64__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

Backend ActiveBackend() { return g_backend.load(std::memory_order_relaxed); }

void SetBackend(Backend backend) {
  // Graceful degradation: an unsupported tier falls to the best one the
  // machine actually has.
  if (backend == Backend::kAvx512 && !Avx512Supported()) {
    backend = Backend::kAvx2;
  }
  if (backend == Backend::kAvx2 && !Avx2Supported()) {
    backend = Backend::kPortable;
  }
  g_backend.store(backend, std::memory_order_relaxed);
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kPortable:
      return "portable";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

LayoutPolicy ActiveLayoutPolicy() {
  return g_layout_policy.load(std::memory_order_relaxed);
}

void SetLayoutPolicy(LayoutPolicy policy) {
  g_layout_policy.store(policy, std::memory_order_relaxed);
}

const char* LayoutPolicyName(LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kAuto:
      return "auto";
    case LayoutPolicy::kForceHorizontal:
      return "horizontal";
    case LayoutPolicy::kForceVertical:
      return "vertical";
  }
  return "unknown";
}

const char* LayoutName(KernelLayout layout) {
  switch (layout) {
    case KernelLayout::kHorizontal:
      return "horizontal";
    case KernelLayout::kVertical:
      return "vertical";
  }
  return "unknown";
}

KernelLayout ChooseLayout(std::size_t bits, std::size_t h, std::size_t n) {
  // Vertical wins when (a) the store amortizes the per-block counter
  // setup and (b) the radius is selective enough that plane pruning
  // fires early; h*8 <= bits tracks the measured crossover (see
  // EXPERIMENTS.md) across 64..512-bit codes.
  if (n >= kVerticalMinCodes && h * 8 <= bits) return KernelLayout::kVertical;
  return KernelLayout::kHorizontal;
}

void BatchDistance(const BinaryCode& query, const CodeStore& store,
                   uint32_t* out) {
  BatchDistanceRange(store, query.words().data(), 0, store.size(), out);
}

void BatchDistance(const BinaryCode& query, const CodeStore& store,
                   std::vector<uint32_t>* out) {
  out->resize(store.size());
  BatchDistance(query, store, out->data());
}

void BatchWithinDistance(const BinaryCode& query, const CodeStore& store,
                         std::size_t h, std::vector<uint32_t>* out_slots) {
  const std::size_t n = store.size();
  const uint32_t h32 = h > 0xffffffffull ? 0xffffffffu
                                         : static_cast<uint32_t>(h);
  uint32_t dists[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    BatchDistanceRange(store, query.words().data(), base, len, dists);
    for (std::size_t i = 0; i < len; ++i) {
      if (dists[i] <= h32) {
        out_slots->push_back(static_cast<uint32_t>(base + i));
      }
    }
  }
}

void BatchWithinDistance(const BinaryCode& query,
                         const VerticalCodeStore& store, std::size_t h,
                         std::vector<uint32_t>* out_slots,
                         VerticalScanStats* stats) {
  VerticalScanDispatch(query, store, h, out_slots, stats);
}

std::size_t BatchCount(const BinaryCode& query, const VerticalCodeStore& store,
                       std::size_t h, VerticalScanStats* stats) {
  return VerticalScanDispatch(query, store, h, nullptr, stats);
}

KernelLayout BatchWithinDistanceDual(const BinaryCode& query,
                                     const CodeStore& store,
                                     const VerticalCodeStore* mirror,
                                     std::size_t h,
                                     std::vector<uint32_t>* out_slots,
                                     VerticalScanStats* stats) {
  bool want_vertical;
  switch (ActiveLayoutPolicy()) {
    case LayoutPolicy::kForceHorizontal:
      want_vertical = false;
      break;
    case LayoutPolicy::kForceVertical:
      want_vertical = true;
      break;
    default:
      want_vertical =
          ChooseLayout(store.bits(), h, store.size()) == KernelLayout::kVertical;
  }
  // The mirror must actually be the transpose of `store` (same length,
  // same slot count); anything else — absent, mid-rebuild, or lagging —
  // falls back to the always-correct horizontal lanes.
  if (want_vertical && mirror != nullptr && !mirror->empty() &&
      mirror->size() == store.size() && mirror->bits() == store.bits()) {
    VerticalScanDispatch(query, *mirror, h, out_slots, stats);
    return KernelLayout::kVertical;
  }
  BatchWithinDistance(query, store, h, out_slots);
  return KernelLayout::kHorizontal;
}

void BatchXorPopcount(uint64_t query_word, const uint64_t* values,
                      std::size_t n, uint16_t* out) {
#if defined(HAMMING_HAVE_AVX2_TU)
  // The AVX-512 tier reuses the AVX2 one-word kernel: n here is a node
  // fan-out, far too small for 512-bit vectors to pay off.
  const Backend b = g_backend.load(std::memory_order_relaxed);
  if (b == Backend::kAvx2 || b == Backend::kAvx512) {
    detail::BatchXorPopcountAvx2(query_word, values, n, out);
    return;
  }
#endif
  BatchXorPopcountPortable(query_word, values, n, out);
}

std::vector<std::pair<uint32_t, uint32_t>> BatchKnn(const BinaryCode& query,
                                                    const CodeStore& store,
                                                    std::size_t k) {
  std::vector<std::pair<uint32_t, uint32_t>> heap;  // (distance, slot) max-heap
  if (k == 0) return heap;
  heap.reserve(std::min(k, store.size()) + 1);
  auto cmp = [](const std::pair<uint32_t, uint32_t>& a,
                const std::pair<uint32_t, uint32_t>& b) {
    // Max-heap on (distance, slot): the root is the worst kept neighbour,
    // with the larger slot losing ties so the final set is deterministic.
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  };
  const std::size_t n = store.size();
  uint32_t dists[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    BatchDistanceRange(store, query.words().data(), base, len, dists);
    for (std::size_t i = 0; i < len; ++i) {
      const std::pair<uint32_t, uint32_t> cand{
          dists[i], static_cast<uint32_t>(base + i)};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (cmp(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(heap.size());
  for (const auto& [d, slot] : heap) out.emplace_back(slot, d);
  return out;
}

void MultiWithinDistance(const CodeStore& store,
                         const BinaryCode* const* queries,
                         const std::size_t* radii, std::size_t nq,
                         std::vector<std::vector<SlotDistance>>* out_hits) {
  out_hits->assign(nq, {});
  const std::size_t n = store.size();
  if (n == 0 || nq == 0) return;
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    // The tile's lane words are hot in cache after the first query's
    // pass; the remaining nq-1 passes recompute distances from L1/L2
    // instead of re-streaming the store from memory. The fused RangeHits
    // kernel keeps the threshold compare in-register and touches memory
    // only for actual matches, so those re-passes cost a few
    // instructions per code — without the fusion the per-query scalar
    // unpack+filter would dominate and coalescing would buy nothing.
    for (std::size_t q = 0; q < nq; ++q) {
      const std::size_t h = radii[q];
      const uint32_t h32 =
          h > 0xffffffffull ? 0xffffffffu : static_cast<uint32_t>(h);
      RangeHits(store, queries[q]->words().data(), h32, base, len,
                &(*out_hits)[q]);
    }
  }
}

void MultiKnn(const CodeStore& store, const BinaryCode* const* queries,
              const std::size_t* ks, std::size_t nq,
              std::vector<std::vector<std::pair<uint32_t, uint32_t>>>* out) {
  out->assign(nq, {});
  if (nq == 0) return;
  auto cmp = [](const std::pair<uint32_t, uint32_t>& a,
                const std::pair<uint32_t, uint32_t>& b) {
    // Same (distance, slot) max-heap ordering as BatchKnn, so the final
    // neighbour sets are bit-identical to the single-query kernel.
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  };
  // heaps[q] holds (distance, slot) with the worst kept neighbour at the
  // root; O(sum ks) memory total.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> heaps(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    heaps[q].reserve(std::min(ks[q], store.size()) + 1);
  }
  const std::size_t n = store.size();
  uint32_t dists[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    for (std::size_t q = 0; q < nq; ++q) {
      const std::size_t k = ks[q];
      if (k == 0) continue;
      BatchDistanceRange(store, queries[q]->words().data(), base, len, dists);
      auto& heap = heaps[q];
      for (std::size_t i = 0; i < len; ++i) {
        const std::pair<uint32_t, uint32_t> cand{
            dists[i], static_cast<uint32_t>(base + i)};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), cmp);
        } else if (cmp(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), cmp);
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), cmp);
        }
      }
    }
  }
  for (std::size_t q = 0; q < nq; ++q) {
    auto& heap = heaps[q];
    std::sort_heap(heap.begin(), heap.end(), cmp);
    auto& result = (*out)[q];
    result.reserve(heap.size());
    for (const auto& [d, slot] : heap) result.emplace_back(slot, d);
  }
}

}  // namespace hamming::kernels

// Flat, word-stride (structure-of-arrays) storage for equal-length codes.
//
// BinaryCode is an array-of-structs: every code owns eight 64-bit words
// regardless of length, so scanning a million 64-bit codes touches 64 MB
// of mostly-dead cache lines and the compiler cannot vectorize across
// codes. CodeStore transposes that layout: word w of every stored code
// lives contiguously in lane w,
//
//   lane 0:  [ c0.w0 | c1.w0 | c2.w0 | ... | pad ]
//   lane 1:  [ c0.w1 | c1.w1 | c2.w1 | ... | pad ]
//   ...
//
// so the batched kernels (hamming_kernels.h) stream one query word
// against 8+ codes per inner-loop iteration with no wasted bytes. Only
// SignificantWords() lanes are kept; lanes are padded to a multiple of
// kLaneAlign zero words so SIMD paths can load full vectors past size().
#pragma once

#include <cstdint>
#include <vector>

#include "code/binary_code.h"
#include "common/status.h"

namespace hamming::kernels {

class VerticalCodeStore;

/// \brief Contiguous word-stride storage for same-length binary codes.
class CodeStore {
 public:
  /// Lane padding granularity, in 64-bit words. Eight words = one cache
  /// line = two AVX2 vectors; every lane's length is a multiple of this
  /// and the pad words are kept zero.
  static constexpr std::size_t kLaneAlign = 8;

  CodeStore() = default;
  /// Creates an empty store accepting codes of `bits` length.
  explicit CodeStore(std::size_t bits) { Reset(bits); }

  /// \brief Clears and fixes the code length (0 = adopt first Append).
  void Reset(std::size_t bits);

  /// \brief Builds a store over `codes` (all must share one length).
  static Result<CodeStore> FromCodes(const std::vector<BinaryCode>& codes);

  /// \brief Appends one code; adopts its length if the store is empty.
  Status Append(const BinaryCode& code);

  /// \brief Replaces slot `i` by the last code and shrinks by one (the
  /// same swap-remove every index's Delete uses).
  void SwapRemove(std::size_t i);

  void Clear() { Reset(bits_); }

  /// \brief Rebuilds `out` as the bit-plane-major transpose of this
  /// store, straight from the word lanes (64x64 bit-matrix transposes;
  /// no intermediate BinaryCode copies). `out->IsTransposeOf(*this)`
  /// holds afterwards and serves as the differential round-trip check.
  void TransposeInto(VerticalCodeStore* out) const;

  /// \brief Reconstructs the code stored at slot `i`.
  BinaryCode Get(std::size_t i) const;

  /// \brief True iff slot `i` holds exactly `code` (word compare, no
  /// BinaryCode materialization).
  bool Matches(std::size_t i, const BinaryCode& code) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bits() const { return bits_; }
  /// Number of stored word lanes (== SignificantWords of the codes).
  std::size_t words() const { return nwords_; }
  /// Slots per lane (size() rounded up to kLaneAlign); pad slots are 0.
  std::size_t stride() const { return stride_; }

  /// \brief Lane `w`: word w of codes 0..size(), then zero padding.
  const uint64_t* Lane(std::size_t w) const { return data_.data() + w * stride_; }

  /// \brief Packed-bytes accounting consistent with BinaryCode::PackedBytes.
  std::size_t PackedBytes() const { return size_ * ((bits_ + 7) / 8); }
  /// \brief Actual buffer footprint (includes padding).
  std::size_t BufferBytes() const { return data_.size() * sizeof(uint64_t); }

 private:
  void Grow(std::size_t new_stride);

  std::size_t bits_ = 0;
  std::size_t nwords_ = 0;
  std::size_t size_ = 0;
  std::size_t stride_ = 0;
  // nwords_ lanes of stride_ words each; lane w at [w*stride_, (w+1)*stride_).
  std::vector<uint64_t> data_;
};

}  // namespace hamming::kernels

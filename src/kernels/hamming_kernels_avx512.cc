// AVX-512 range kernels: native vpopcntq over eight 64-bit code words
// per 512-bit vector, and the vertical bit-sliced scan with one vector
// per plane row. This translation unit is the only one compiled with
// -mavx512f -mavx512bw -mavx512vpopcntdq (src/CMakeLists.txt, gated by
// the HAMMING_AVX512 option); the runtime dispatch in hamming_kernels.cc
// selects it only when the CPU reports all three features, so a binary
// built with this TU still runs (on the AVX2 or portable tier) on older
// machines.
#include "kernels/hamming_kernels.h"

#if defined(HAMMING_HAVE_AVX512_TU)

#include <immintrin.h>

#include <algorithm>

#include "kernels/vertical_scan_inl.h"

namespace hamming::kernels::detail {

namespace {

// ~a & b. Spelled with vpternlog (imm 0x0c = ~A & B) instead of
// _mm512_andnot_si512: GCC 12's andnot goes through
// _mm512_undefined_epi32 and trips -Wmaybe-uninitialized (PR 105593).
inline __m512i AndNot512(__m512i a, __m512i b) {
  return _mm512_ternarylogic_epi64(a, b, b, 0x0c);
}

}  // namespace

void BatchDistanceRangeAvx512(const CodeStore& store, const uint64_t* qwords,
                              std::size_t base, std::size_t len,
                              uint32_t* out) {
  const std::size_t nw = store.words();
  std::size_t i = 0;
  // Eight codes (one vector) per iteration; the tail falls through to a
  // scalar loop so callers may pass unpadded ranges.
  for (; i + 8 <= len; i += 8) {
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t w = 0; w < nw; ++w) {
      const __m512i q = _mm512_set1_epi64(static_cast<long long>(qwords[w]));
      const __m512i v = _mm512_loadu_si512(store.Lane(w) + base + i);
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_xor_si512(v, q)));
    }
    alignas(64) uint64_t counts[8];
    _mm512_store_si512(counts, acc);
    for (std::size_t j = 0; j < 8; ++j) {
      out[i + j] = static_cast<uint32_t>(counts[j]);
    }
  }
  for (; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(
          __builtin_popcountll(store.Lane(w)[base + i] ^ qwords[w]));
    }
    out[i] = d;
  }
}

namespace {

// Appends the masked lanes of one 8-code distance vector. Out of line
// from the scan loops on purpose: it only runs on actual matches.
inline void EmitMasked512(__m512i dists, __mmask8 m, std::size_t slot0,
                          std::vector<SlotDistance>* hits) {
  alignas(64) uint64_t counts[8];
  _mm512_store_si512(counts, dists);
  for (std::size_t j = 0; j < 8; ++j) {
    if ((m >> j) & 1) {
      hits->push_back({static_cast<uint32_t>(slot0 + j),
                       static_cast<uint32_t>(counts[j])});
    }
  }
}

}  // namespace

void RangeHitsAvx512(const CodeStore& store, const uint64_t* qwords,
                     uint32_t h, std::size_t base, std::size_t len,
                     std::vector<SlotDistance>* hits) {
  const std::size_t nw = store.words();
  const __m512i hv = _mm512_set1_epi64(static_cast<long long>(h));
  std::size_t i = 0;
  if (nw == 1) {
    // One-word codes (<= 64 bits): the popcount IS the distance, so the
    // hot loop is four independent load+xor+popcnt+compare chains and a
    // single combined-mask branch per 32 codes. This path sets the
    // re-pass speed of a coalesced batch over an L1-hot tile, so it is
    // kept free of the general path's per-word inner loop and of any
    // accumulator dependency chain.
    const __m512i q = _mm512_set1_epi64(static_cast<long long>(qwords[0]));
    const uint64_t* lane = store.Lane(0) + base;
    for (; i + 32 <= len; i += 32) {
      const __m512i d0 = _mm512_popcnt_epi64(
          _mm512_xor_si512(_mm512_loadu_si512(lane + i), q));
      const __m512i d1 = _mm512_popcnt_epi64(
          _mm512_xor_si512(_mm512_loadu_si512(lane + i + 8), q));
      const __m512i d2 = _mm512_popcnt_epi64(
          _mm512_xor_si512(_mm512_loadu_si512(lane + i + 16), q));
      const __m512i d3 = _mm512_popcnt_epi64(
          _mm512_xor_si512(_mm512_loadu_si512(lane + i + 24), q));
      const __mmask8 m0 = _mm512_cmple_epu64_mask(d0, hv);
      const __mmask8 m1 = _mm512_cmple_epu64_mask(d1, hv);
      const __mmask8 m2 = _mm512_cmple_epu64_mask(d2, hv);
      const __mmask8 m3 = _mm512_cmple_epu64_mask(d3, hv);
      if ((m0 | m1 | m2 | m3) != 0) {
        EmitMasked512(d0, m0, base + i, hits);
        EmitMasked512(d1, m1, base + i + 8, hits);
        EmitMasked512(d2, m2, base + i + 16, hits);
        EmitMasked512(d3, m3, base + i + 24, hits);
      }
    }
    for (; i + 8 <= len; i += 8) {
      const __m512i d = _mm512_popcnt_epi64(
          _mm512_xor_si512(_mm512_loadu_si512(lane + i), q));
      const __mmask8 m = _mm512_cmple_epu64_mask(d, hv);
      if (m != 0) EmitMasked512(d, m, base + i, hits);
    }
    const uint64_t q0 = qwords[0];
    for (; i < len; ++i) {
      const uint32_t d =
          static_cast<uint32_t>(__builtin_popcountll(lane[i] ^ q0));
      if (d <= h) hits->push_back({static_cast<uint32_t>(base + i), d});
    }
    return;
  }
  // Fused distance + threshold: the compare stays in-register (vpcmpuq)
  // and the slow lane — spilling counts and appending hits — runs only
  // when the 8-code mask is nonzero, which on selective radii is almost
  // never. This is what lets a coalesced batch re-run the compute over
  // an L1-hot tile at a few instructions per code instead of paying the
  // scalar unpack+filter of the dists[] path per query.
  for (; i + 8 <= len; i += 8) {
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t w = 0; w < nw; ++w) {
      const __m512i q = _mm512_set1_epi64(static_cast<long long>(qwords[w]));
      const __m512i v = _mm512_loadu_si512(store.Lane(w) + base + i);
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_xor_si512(v, q)));
    }
    const __mmask8 m = _mm512_cmple_epu64_mask(acc, hv);
    if (m != 0) {
      alignas(64) uint64_t counts[8];
      _mm512_store_si512(counts, acc);
      for (std::size_t j = 0; j < 8; ++j) {
        if ((m >> j) & 1) {
          hits->push_back({static_cast<uint32_t>(base + i + j),
                           static_cast<uint32_t>(counts[j])});
        }
      }
    }
  }
  for (; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(
          __builtin_popcountll(store.Lane(w)[base + i] ^ qwords[w]));
    }
    if (d <= h) hits->push_back({static_cast<uint32_t>(base + i), d});
  }
}

// Vertical (bit-sliced) threshold scan, AVX-512 form: one 512-bit vector
// covers a whole plane row, so the counters and alive mask are single
// registers and the carry-save pair step (see the portable kernel in
// hamming_kernels_vertical.cc) runs once per plane pair.
std::size_t VerticalScanAvx512(const VerticalCodeStore& store,
                               const uint64_t* qmask, std::size_t h,
                               std::vector<uint32_t>* out_slots,
                               VerticalScanStats* stats) {
  constexpr std::size_t kW = VerticalCodeStore::kWordsPerPlane;
  const std::size_t bits = store.bits();
  const std::size_t n = store.size();
  const std::size_t nplanes = CounterPlanes(h);
  const uint64_t bias = CounterBias(h);
  std::size_t matches = 0;
  uint64_t planes_read = 0;
  uint64_t blocks_pruned = 0;
  __m512i cnt[kMaxCounterPlanes];
  for (std::size_t b = 0; b < store.num_blocks(); ++b) {
    const std::size_t block_base = b * VerticalCodeStore::kBlockCodes;
    const std::size_t lanes =
        std::min(VerticalCodeStore::kBlockCodes, n - block_base);
    alignas(64) uint64_t valid[kW];
    for (std::size_t g = 0; g < kW; ++g) valid[g] = ValidMaskWord(lanes, g);
    __m512i alive = _mm512_load_si512(valid);
    for (std::size_t i = 0; i < nplanes; ++i) {
      // Saturation bias: carry out of the top plane == count > h.
      cnt[i] =
          ((bias >> i) & 1) ? _mm512_set1_epi64(-1) : _mm512_setzero_si512();
    }
    const uint64_t* planes = store.BlockPlanes(b);
    bool dead = false;
    std::size_t p = 0;
    for (; p + 1 < bits; p += 2) {
      const __m512i va = _mm512_xor_si512(
          _mm512_loadu_si512(planes + p * kW),
          _mm512_set1_epi64(static_cast<long long>(qmask[p])));
      const __m512i vb = _mm512_xor_si512(
          _mm512_loadu_si512(planes + (p + 1) * kW),
          _mm512_set1_epi64(static_cast<long long>(qmask[p + 1])));
      const __m512i s = _mm512_xor_si512(va, vb);
      __m512i carry = _mm512_or_si512(_mm512_and_si512(va, vb),
                                      _mm512_and_si512(cnt[0], s));
      cnt[0] = _mm512_xor_si512(cnt[0], s);
      for (std::size_t i = 1; i < nplanes; ++i) {
        const __m512i t = _mm512_and_si512(cnt[i], carry);
        cnt[i] = _mm512_xor_si512(cnt[i], carry);
        carry = t;
      }
      alive = AndNot512(carry, alive);
      planes_read += 2;
      if (_mm512_test_epi64_mask(alive, alive) == 0) {
        dead = true;
        break;
      }
    }
    if (!dead && p < bits) {  // odd trailing plane
      __m512i carry = _mm512_xor_si512(
          _mm512_loadu_si512(planes + p * kW),
          _mm512_set1_epi64(static_cast<long long>(qmask[p])));
      for (std::size_t i = 0; i < nplanes; ++i) {
        const __m512i t = _mm512_and_si512(cnt[i], carry);
        cnt[i] = _mm512_xor_si512(cnt[i], carry);
        carry = t;
      }
      alive = AndNot512(carry, alive);
      planes_read += 1;
    }
    if (dead) {
      ++blocks_pruned;
      continue;
    }
    // Bias makes `alive` the exact <= h survivor set.
    alignas(64) uint64_t survivors[kW];
    _mm512_store_si512(survivors, alive);
    matches += EmitSurvivors(block_base, survivors, out_slots);
  }
  if (stats != nullptr) {
    stats->planes_scanned += planes_read;
    stats->blocks_pruned += blocks_pruned;
    stats->blocks_scanned += store.num_blocks();
  }
  return matches;
}

}  // namespace hamming::kernels::detail

#endif  // HAMMING_HAVE_AVX512_TU

// Shared scalar pieces of the vertical (bit-sliced) threshold scan.
//
// The three backend TUs (portable / AVX2 / AVX-512) differ only in how
// they run the plane loop — 64-bit words, two 256-bit vectors, or one
// 512-bit vector per plane row. The surrounding logic is identical and
// lives here: tail-lane masking, the counter-plane count, and survivor
// extraction. Internal to src/kernels; not part of the public API.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "kernels/vertical_code_store.h"

namespace hamming::kernels::detail {

/// Upper bound on bit-sliced counter planes: h < bits <= 512, so counts
/// are capped at 511 and 9 planes always suffice.
inline constexpr std::size_t kMaxCounterPlanes = 9;

/// Counter planes needed to represent counts in [0, h] plus an overflow
/// signal: the smallest P with 2^P >= h+1 (overflow beyond 2^P-1 is
/// folded into the per-lane alive mask instead of a wider counter).
inline std::size_t CounterPlanes(std::size_t h) {
  return h == 0 ? 1 : std::bit_width(static_cast<uint64_t>(h));
}

/// Saturation bias preloaded into every lane's counter: with counters
/// starting at 2^P - 1 - h, the carry out of plane P-1 fires on the
/// (h+1)-th mismatch exactly — the overflow test IS the > h test. Lanes
/// still alive after the last plane therefore hold count <= h with no
/// comparison epilogue, and pruning triggers at the earliest plane the
/// threshold permits instead of at the next power of two.
inline uint64_t CounterBias(std::size_t h) {
  return (uint64_t{1} << CounterPlanes(h)) - 1 - h;
}

/// Valid-lane mask for 64-lane group g of a block holding `lanes` codes:
/// pad lanes (all-zero planes) must never be reported as matches.
inline uint64_t ValidMaskWord(std::size_t lanes, std::size_t g) {
  const std::size_t lo = g * 64;
  if (lanes >= lo + 64) return ~0ull;
  if (lanes <= lo) return 0;
  return (1ull << (lanes - lo)) - 1;
}

/// Appends the set lanes of `survivors` (ascending) as absolute slots
/// and returns how many there were. `out_slots` may be null (BatchCount).
inline std::size_t EmitSurvivors(std::size_t block_base,
                                 const uint64_t* survivors,
                                 std::vector<uint32_t>* out_slots) {
  std::size_t count = 0;
  for (std::size_t g = 0; g < VerticalCodeStore::kWordsPerPlane; ++g) {
    uint64_t m = survivors[g];
    count += static_cast<std::size_t>(std::popcount(m));
    if (out_slots == nullptr) continue;
    const std::size_t lane_base = block_base + g * 64;
    while (m != 0) {
      const int l = std::countr_zero(m);
      m &= m - 1;
      out_slots->push_back(
          static_cast<uint32_t>(lane_base + static_cast<std::size_t>(l)));
    }
  }
  return count;
}

}  // namespace hamming::kernels::detail

#include "kernels/vertical_code_store.h"

#include <algorithm>
#include <bit>

#include "kernels/code_store.h"

namespace hamming::kernels {
namespace {

// In-place 64x64 bit-matrix anti-transpose (Hacker's Delight 7-3): on
// return, bit j of m[t] equals the former bit (63-t) of m[63-j] — the
// classic routine transposes about the anti-diagonal when rows and bits
// are both numbered LSB-first. Feeding rows in reversed order therefore
// yields out[t] bit j = in[j] bit (63-t), i.e. word bit 63-t of code j —
// exactly code bit 64w+t under BinaryCode's MSB-first convention, so the
// plane index is simply p = 64w + t. The routine is an involution, which
// IsTransposeOf exploits to reconstruct the original lane words.
void Transpose64(uint64_t m[64]) {
  std::size_t j = 32;
  uint64_t mask = 0x00000000ffffffffull;
  while (j != 0) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
      m[k] ^= t;
      m[k + j] ^= t << j;
    }
    j >>= 1;
    mask ^= mask << j;
  }
}

}  // namespace

void VerticalCodeStore::Reset(std::size_t bits) {
  bits_ = bits;
  size_ = 0;
  blocks_ = 0;
  data_.clear();
}

void VerticalCodeStore::EnsureBlocks(std::size_t nblocks) {
  const std::size_t row_words = bits_ * kWordsPerPlane;
  const std::size_t alloc = row_words == 0 ? 0 : data_.size() / row_words;
  if (nblocks > alloc) {
    // Doubling growth: a block append is pure memory extension, no
    // relayout of existing planes.
    const std::size_t grown = std::max<std::size_t>(nblocks, alloc * 2);
    data_.resize(grown * row_words, 0);
  }
  blocks_ = std::max(blocks_, nblocks);
}

bool VerticalCodeStore::GetRawBit(std::size_t slot, std::size_t plane) const {
  const std::size_t lane = slot % kBlockCodes;
  const uint64_t* row =
      BlockPlanes(slot / kBlockCodes) + plane * kWordsPerPlane;
  return (row[lane >> 6] >> (lane & 63)) & 1;
}

void VerticalCodeStore::SetRawBit(std::size_t slot, std::size_t plane,
                                  bool value) {
  const std::size_t lane = slot % kBlockCodes;
  uint64_t* row =
      MutableBlockPlanes(slot / kBlockCodes) + plane * kWordsPerPlane;
  const uint64_t bit = 1ull << (lane & 63);
  if (value) {
    row[lane >> 6] |= bit;
  } else {
    row[lane >> 6] &= ~bit;
  }
}

Status VerticalCodeStore::Append(const BinaryCode& code) {
  if (size_ == 0 && bits_ == 0) bits_ = code.size();
  if (code.size() != bits_) {
    return Status::InvalidArgument("VerticalCodeStore: code length mismatch");
  }
  const std::size_t slot = size_;
  EnsureBlocks(slot / kBlockCodes + 1);
  // Scatter only the set bits: pad slots are already zero (fresh memory
  // or cleared by SwapRemove), so OR-ing suffices.
  uint64_t* planes = MutableBlockPlanes(slot / kBlockCodes);
  const std::size_t lane = slot % kBlockCodes;
  const std::size_t group = lane >> 6;
  const uint64_t bit = 1ull << (lane & 63);
  const auto& words = code.words();
  for (std::size_t w = 0; w < code.SignificantWords(); ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      const int t = std::countr_zero(word);
      word &= word - 1;
      // MSB-first code convention: word bit t holds code bit 64w+63-t.
      const std::size_t p = 64 * w + 63 - static_cast<std::size_t>(t);
      planes[p * kWordsPerPlane + group] |= bit;
    }
  }
  ++size_;
  return Status::OK();
}

void VerticalCodeStore::SwapRemove(std::size_t i) {
  const std::size_t last = size_ - 1;
  for (std::size_t p = 0; p < bits_; ++p) {
    const bool moved = GetRawBit(last, p);
    if (i != last) SetRawBit(i, p, moved);
    if (moved) SetRawBit(last, p, false);  // keep pad lanes zero
  }
  --size_;
  blocks_ = (size_ + kBlockCodes - 1) / kBlockCodes;
}

BinaryCode VerticalCodeStore::Get(std::size_t i) const {
  BinaryCode code(bits_);
  for (std::size_t p = 0; p < bits_; ++p) {
    if (GetRawBit(i, p)) code.SetBit(p, true);
  }
  return code;
}

void VerticalCodeStore::AssignTransposed(const CodeStore& src) {
  Reset(src.bits());
  size_ = src.size();
  blocks_ = (size_ + kBlockCodes - 1) / kBlockCodes;
  data_.assign(blocks_ * bits_ * kWordsPerPlane, 0);
  uint64_t m[64];
  for (std::size_t b = 0; b < blocks_; ++b) {
    uint64_t* planes = MutableBlockPlanes(b);
    for (std::size_t g = 0; g < kWordsPerPlane; ++g) {
      const std::size_t base = b * kBlockCodes + g * 64;
      if (base >= src.size()) break;  // remaining groups stay zero
      // CodeStore lanes are padded to stride (a multiple of 8, not 64):
      // copy what exists and zero-fill the rest of the 64-slot group.
      // Rows go in reversed so the anti-transpose lands plane p = 64w+t
      // in m[t] with lanes in ascending order (see Transpose64).
      const std::size_t avail = std::min<std::size_t>(64, src.stride() - base);
      for (std::size_t w = 0; w < src.words(); ++w) {
        const uint64_t* lane = src.Lane(w) + base;
        std::fill(m, m + 64, 0);
        for (std::size_t j = 0; j < avail; ++j) m[63 - j] = lane[j];
        Transpose64(m);
        const std::size_t pbase = 64 * w;
        for (std::size_t t = 0; t < 64; ++t) {
          const std::size_t p = pbase + t;
          if (p < bits_) planes[p * kWordsPerPlane + g] = m[t];
        }
      }
    }
  }
}

bool VerticalCodeStore::IsTransposeOf(const CodeStore& src) const {
  if (size_ != src.size()) return false;
  // Both empty: vacuously transposes. CodeStore learns its width from
  // the first Append, so an empty source reports bits() == 0 even when
  // this store was Reset to a concrete width.
  if (size_ == 0) return true;
  if (bits_ != src.bits()) return false;
  uint64_t m[64];
  for (std::size_t b = 0; b < blocks_; ++b) {
    const uint64_t* planes = BlockPlanes(b);
    for (std::size_t g = 0; g < kWordsPerPlane; ++g) {
      const std::size_t base = b * kBlockCodes + g * 64;
      for (std::size_t w = 0; w < src.words(); ++w) {
        // Gather this group's plane words and apply the involution: the
        // anti-transpose of the plane words is the reversed row array,
        // so m[63-j] must reproduce lane word j, pads included.
        const std::size_t pbase = 64 * w;
        for (std::size_t t = 0; t < 64; ++t) {
          const std::size_t p = pbase + t;
          m[t] = p < bits_ ? planes[p * kWordsPerPlane + g] : 0;
        }
        Transpose64(m);
        const std::size_t avail =
            base < src.stride()
                ? std::min<std::size_t>(64, src.stride() - base)
                : 0;
        const uint64_t* lane = avail > 0 ? src.Lane(w) + base : nullptr;
        for (std::size_t j = 0; j < 64; ++j) {
          const uint64_t expect = j < avail ? lane[j] : 0;
          if (m[63 - j] != expect) return false;
        }
      }
    }
  }
  // All slots beyond size_ inside allocated blocks must be zero too;
  // covered above because src pads are zero and blocks_ covers size_.
  return true;
}

}  // namespace hamming::kernels

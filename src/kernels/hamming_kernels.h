// Batched Hamming-distance kernels over CodeStore lanes.
//
// Every routine here is semantically identical to a loop of scalar
// BinaryCode::Distance / WithinDistance calls — the differential test in
// tests/test_kernels.cc enforces bit-for-bit agreement — but processes
// 64-bit words across blocks of 8+ codes per inner loop over the
// word-stride lanes, so the per-code cost is one fused XOR+popcount per
// significant word with no per-code call, branch, or cache-line waste.
//
// Three implementations sit behind a runtime dispatch:
//  * portable — std::popcount over 8-code blocks; builds everywhere.
//  * AVX2 — vpshufb nibble-LUT popcount, 4 codes per 256-bit vector
//    (compiled only when the toolchain supports -mavx2, selected only
//    when the CPU reports AVX2).
//  * AVX-512 — vpopcntq, 8 codes per 512-bit vector (compiled only when
//    HAMMING_AVX512 resolves ON, selected only when the CPU reports
//    AVX-512F+BW+VPOPCNTDQ).
// SetBackend() pins one implementation; tests run the differential suite
// under every supported backend to prove they agree.
//
// Orthogonally to the backend, threshold queries choose between two data
// layouts:
//  * horizontal — the CodeStore word lanes above: full distance per code.
//  * vertical — a VerticalCodeStore bit-plane mirror: per-lane distance
//    counters accumulate plane-by-plane in bit-sliced form across 512
//    codes at once, and a whole block is abandoned the moment every
//    lane's running count already exceeds h. On selective (small-h)
//    queries most blocks die within the first few planes, so the scan
//    reads a fraction of the planes the horizontal kernel must touch.
// BatchWithinDistanceDual applies the heuristic (see ChooseLayout) with
// an env override HAMMING_KERNEL_LAYOUT=auto|horizontal|vertical.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "code/binary_code.h"
#include "kernels/code_store.h"
#include "kernels/vertical_code_store.h"

namespace hamming::kernels {

/// \brief Which kernel implementation executes the batched routines.
enum class Backend {
  kPortable,  // std::popcount blockwise
  kAvx2,      // vpshufb popcount, 4 codes / vector
  kAvx512,    // vpopcntq, 8 codes / vector
};

/// \brief True when this build has the AVX2 kernels AND the CPU has AVX2.
bool Avx2Supported();

/// \brief True when this build has the AVX-512 kernels AND the CPU has
/// AVX-512F, AVX-512BW, and AVX-512VPOPCNTDQ.
bool Avx512Supported();

/// \brief The backend the batched routines currently execute.
Backend ActiveBackend();

/// \brief Pins the backend (tests/benchmarks). Requesting a tier the
/// machine lacks silently falls back to the best supported one.
void SetBackend(Backend backend);

/// \brief Human-readable backend name ("portable", "avx2", "avx512").
const char* BackendName(Backend backend);

/// \brief Which storage layout a threshold scan ran against.
enum class KernelLayout {
  kHorizontal,  // CodeStore word lanes
  kVertical,    // VerticalCodeStore bit planes
};

/// \brief Layout selection policy for BatchWithinDistanceDual.
enum class LayoutPolicy {
  kAuto,             // heuristic on (bits, h, n); the default
  kForceHorizontal,  // always scan CodeStore lanes
  kForceVertical,    // always scan the vertical mirror when present
};

/// \brief The layout policy in effect. Initialized once from the
/// HAMMING_KERNEL_LAYOUT environment variable (auto|horizontal|vertical,
/// case-insensitive; unset or unrecognized = auto).
LayoutPolicy ActiveLayoutPolicy();

/// \brief Pins the layout policy (tests/benchmarks).
void SetLayoutPolicy(LayoutPolicy policy);

/// \brief Policy name ("auto", "horizontal", "vertical").
const char* LayoutPolicyName(LayoutPolicy policy);

/// \brief Layout name ("horizontal", "vertical").
const char* LayoutName(KernelLayout layout);

/// \brief Smallest store for which the vertical layout can win: below
/// ~8 blocks the per-query setup (query mask spread, counter reset per
/// block) swamps the plane pruning.
inline constexpr std::size_t kVerticalMinCodes = 4096;

/// \brief The heuristic behind LayoutPolicy::kAuto: vertical iff the
/// store is large enough to amortize per-block setup AND the radius is
/// selective enough (h*8 <= bits) that plane pruning bites early.
KernelLayout ChooseLayout(std::size_t bits, std::size_t h, std::size_t n);

/// \brief Observability counters filled by one vertical scan.
struct VerticalScanStats {
  uint64_t planes_scanned = 0;  // plane rows actually read
  uint64_t blocks_pruned = 0;   // blocks abandoned before the last plane
  uint64_t blocks_scanned = 0;  // total blocks visited
};

/// \brief out[i] = Hamming distance of `query` to store code i, for all
/// i in [0, store.size()). `out` must hold store.size() entries.
void BatchDistance(const BinaryCode& query, const CodeStore& store,
                   uint32_t* out);

/// \brief Vector-returning convenience overload of BatchDistance.
void BatchDistance(const BinaryCode& query, const CodeStore& store,
                   std::vector<uint32_t>* out);

/// \brief Appends to `out_slots` every store slot whose code is within
/// Hamming distance h of `query`, in ascending slot order.
void BatchWithinDistance(const BinaryCode& query, const CodeStore& store,
                         std::size_t h, std::vector<uint32_t>* out_slots);

/// \brief Vertical-layout threshold scan: appends matching slots in
/// ascending order, identical results to the horizontal overload above.
/// `stats`, when non-null, receives plane/block pruning counts.
void BatchWithinDistance(const BinaryCode& query,
                         const VerticalCodeStore& store, std::size_t h,
                         std::vector<uint32_t>* out_slots,
                         VerticalScanStats* stats = nullptr);

/// \brief Counts the slots within distance h without materializing them
/// (vertical layout; popcounts the survivor masks per block).
std::size_t BatchCount(const BinaryCode& query, const VerticalCodeStore& store,
                       std::size_t h, VerticalScanStats* stats = nullptr);

/// \brief Layout-dispatching threshold scan: uses `mirror` (the
/// bit-plane transpose of `store`, may be null or stale) when the active
/// policy/heuristic picks vertical AND the mirror matches the store's
/// size and bits; otherwise scans the horizontal lanes. Returns the
/// layout actually used. `stats` is only filled by the vertical path.
KernelLayout BatchWithinDistanceDual(const BinaryCode& query,
                                     const CodeStore& store,
                                     const VerticalCodeStore* mirror,
                                     std::size_t h,
                                     std::vector<uint32_t>* out_slots,
                                     VerticalScanStats* stats = nullptr);

/// \brief out[i] = popcount(values[i] ^ query_word): the one-word batch
/// used for per-segment node distances (StaticHAIndex phase 1). Counts
/// fit uint16 because one word has at most 64 differing bits.
void BatchXorPopcount(uint64_t query_word, const uint64_t* values,
                      std::size_t n, uint16_t* out);

/// \brief The k store slots nearest to `query`, as (slot, distance)
/// pairs sorted ascending by (distance, slot). A bounded max-heap is fed
/// from blockwise batch distances, so memory stays O(k) regardless of
/// store size.
std::vector<std::pair<uint32_t, uint32_t>> BatchKnn(const BinaryCode& query,
                                                    const CodeStore& store,
                                                    std::size_t k);

/// \brief One (slot, exact distance) match of a multi-query scan.
struct SlotDistance {
  uint32_t slot;
  uint32_t dist;
  bool operator==(const SlotDistance& o) const {
    return slot == o.slot && dist == o.dist;
  }
};

/// \brief Multi-query threshold scan: out_hits[q] = every store slot
/// within Hamming distance radii[q] of *queries[q], as (slot, distance)
/// in ascending slot order — per query identical to BatchWithinDistance
/// plus the distances a BatchDistance pass would report.
///
/// The store is streamed ONCE per tile for all nq queries (tile loop
/// outside, query loop inside), so a coalesced batch pays the lane
/// memory traffic once instead of nq times — the amortization the
/// serving layer's batcher exists to harvest. All queries must have the
/// store's code length.
void MultiWithinDistance(const CodeStore& store,
                         const BinaryCode* const* queries,
                         const std::size_t* radii, std::size_t nq,
                         std::vector<std::vector<SlotDistance>>* out_hits);

/// \brief Multi-query exact kNN with the same tile-major traversal:
/// out[q] = BatchKnn(*queries[q], store, ks[q]), bit-identical, with one
/// bounded max-heap per query fed from shared tile distances.
void MultiKnn(const CodeStore& store, const BinaryCode* const* queries,
              const std::size_t* ks, std::size_t nq,
              std::vector<std::vector<std::pair<uint32_t, uint32_t>>>* out);

}  // namespace hamming::kernels

// Batched Hamming-distance kernels over CodeStore lanes.
//
// Every routine here is semantically identical to a loop of scalar
// BinaryCode::Distance / WithinDistance calls — the differential test in
// tests/test_kernels.cc enforces bit-for-bit agreement — but processes
// 64-bit words across blocks of 8+ codes per inner loop over the
// word-stride lanes, so the per-code cost is one fused XOR+popcount per
// significant word with no per-code call, branch, or cache-line waste.
//
// Two implementations sit behind a runtime dispatch:
//  * portable — std::popcount over 8-code blocks; builds everywhere.
//  * AVX2 — vpshufb nibble-LUT popcount, 4 codes per 256-bit vector
//    (compiled only when the toolchain supports -mavx2, selected only
//    when the CPU reports AVX2).
// SetBackend() pins one implementation; tests run the differential suite
// under both to prove they agree.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "code/binary_code.h"
#include "kernels/code_store.h"

namespace hamming::kernels {

/// \brief Which kernel implementation executes the batched routines.
enum class Backend {
  kPortable,  // std::popcount blockwise
  kAvx2,      // vpshufb popcount, 4 codes / vector
};

/// \brief True when this build has the AVX2 kernels AND the CPU has AVX2.
bool Avx2Supported();

/// \brief The backend the batched routines currently execute.
Backend ActiveBackend();

/// \brief Pins the backend (tests/benchmarks). Requesting kAvx2 on a
/// machine without it silently keeps kPortable.
void SetBackend(Backend backend);

/// \brief Human-readable backend name ("portable", "avx2").
const char* BackendName(Backend backend);

/// \brief out[i] = Hamming distance of `query` to store code i, for all
/// i in [0, store.size()). `out` must hold store.size() entries.
void BatchDistance(const BinaryCode& query, const CodeStore& store,
                   uint32_t* out);

/// \brief Vector-returning convenience overload of BatchDistance.
void BatchDistance(const BinaryCode& query, const CodeStore& store,
                   std::vector<uint32_t>* out);

/// \brief Appends to `out_slots` every store slot whose code is within
/// Hamming distance h of `query`, in ascending slot order.
void BatchWithinDistance(const BinaryCode& query, const CodeStore& store,
                         std::size_t h, std::vector<uint32_t>* out_slots);

/// \brief out[i] = popcount(values[i] ^ query_word): the one-word batch
/// used for per-segment node distances (StaticHAIndex phase 1). Counts
/// fit uint16 because one word has at most 64 differing bits.
void BatchXorPopcount(uint64_t query_word, const uint64_t* values,
                      std::size_t n, uint16_t* out);

/// \brief The k store slots nearest to `query`, as (slot, distance)
/// pairs sorted ascending by (distance, slot). A bounded max-heap is fed
/// from blockwise batch distances, so memory stays O(k) regardless of
/// store size.
std::vector<std::pair<uint32_t, uint32_t>> BatchKnn(const BinaryCode& query,
                                                    const CodeStore& store,
                                                    std::size_t k);

}  // namespace hamming::kernels

// Bit-plane-major ("vertical") storage for equal-length codes.
//
// CodeStore keeps word w of every code contiguous (code-major lanes);
// VerticalCodeStore transposes one level further down and keeps *bit
// plane* p of every code contiguous, grouped into blocks of kBlockCodes
// codes:
//
//   block 0, plane 0:  [ bit 0 of codes 0..511 ]   (8 × uint64)
//   block 0, plane 1:  [ bit 1 of codes 0..511 ]
//   ...
//   block 1, plane 0:  [ bit 0 of codes 512..1023 ]
//
// A plane row is 64 bytes — two AVX2 vectors or one AVX-512 vector — so
// a threshold scan streams plane rows against a broadcast query bit and
// accumulates per-lane distances in bit-sliced counters, abandoning a
// whole block as soon as every lane's running count exceeds the radius
// (hamming_kernels.h, the vertical BatchWithinDistance/BatchCount).
// Pad lanes of the tail block are kept zero, mirroring CodeStore's pad
// invariant, and are masked out of every scan by the kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "code/binary_code.h"
#include "common/status.h"

namespace hamming::kernels {

class CodeStore;

/// \brief Plane-major (transposed) storage for same-length binary codes.
class VerticalCodeStore {
 public:
  /// Codes per block. One plane row of a block is kBlockCodes bits =
  /// kWordsPerPlane uint64 words = one 64-byte cache line.
  static constexpr std::size_t kBlockCodes = 512;
  static constexpr std::size_t kWordsPerPlane = kBlockCodes / 64;

  VerticalCodeStore() = default;
  explicit VerticalCodeStore(std::size_t bits) { Reset(bits); }

  /// \brief Clears and fixes the code length (0 = adopt first Append).
  void Reset(std::size_t bits);

  void Clear() { Reset(bits_); }

  /// \brief Appends one code (bit-scatter, O(bits)); adopts its length
  /// if the store is empty. Bulk ingest should transpose an existing
  /// CodeStore via AssignTransposed instead.
  Status Append(const BinaryCode& code);

  /// \brief Replaces slot `i` by the last code and shrinks by one —
  /// the same swap-remove semantics as CodeStore::SwapRemove, so a
  /// mirrored pair of stores stays slot-aligned under deletes.
  void SwapRemove(std::size_t i);

  /// \brief Rebuilds this store as the transpose of `src` using 64×64
  /// bit-matrix transposes over the word-stride lanes — no per-bit
  /// scatter and no intermediate BinaryCode materialization.
  void AssignTransposed(const CodeStore& src);

  /// \brief Differential round-trip check: true iff this store holds
  /// exactly the codes of `src` (word-exact, including zero pads).
  bool IsTransposeOf(const CodeStore& src) const;

  /// \brief Reconstructs the code stored at slot `i` (bit-gather; for
  /// tests and spot checks, not hot paths).
  BinaryCode Get(std::size_t i) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bits() const { return bits_; }
  std::size_t num_blocks() const { return blocks_; }

  /// \brief Plane rows of block `b`: bits_ consecutive rows of
  /// kWordsPerPlane words each; row p covers bit p of the block's codes
  /// (lane l of the block = word l/64, bit l%64).
  const uint64_t* BlockPlanes(std::size_t b) const {
    return data_.data() + b * bits_ * kWordsPerPlane;
  }

  /// \brief Packed-bytes accounting consistent with CodeStore.
  std::size_t PackedBytes() const { return size_ * ((bits_ + 7) / 8); }
  /// \brief Actual buffer footprint (includes tail-block padding).
  std::size_t BufferBytes() const { return data_.size() * sizeof(uint64_t); }

 private:
  void EnsureBlocks(std::size_t nblocks);
  uint64_t* MutableBlockPlanes(std::size_t b) {
    return data_.data() + b * bits_ * kWordsPerPlane;
  }
  bool GetRawBit(std::size_t slot, std::size_t plane) const;
  void SetRawBit(std::size_t slot, std::size_t plane, bool value);

  std::size_t bits_ = 0;
  std::size_t size_ = 0;
  std::size_t blocks_ = 0;
  // blocks_ blocks of bits_ plane rows of kWordsPerPlane words each.
  std::vector<uint64_t> data_;
};

}  // namespace hamming::kernels

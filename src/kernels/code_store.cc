#include "kernels/code_store.h"

#include <algorithm>

#include "kernels/vertical_code_store.h"

namespace hamming::kernels {

void CodeStore::TransposeInto(VerticalCodeStore* out) const {
  out->AssignTransposed(*this);
}

void CodeStore::Reset(std::size_t bits) {
  bits_ = bits;
  nwords_ = (bits + 63) >> 6;
  size_ = 0;
  stride_ = 0;
  data_.clear();
}

Result<CodeStore> CodeStore::FromCodes(const std::vector<BinaryCode>& codes) {
  CodeStore store;
  if (codes.empty()) return store;
  store.Reset(codes[0].size());
  store.Grow((codes.size() + kLaneAlign - 1) / kLaneAlign * kLaneAlign);
  for (const auto& c : codes) {
    HAMMING_RETURN_NOT_OK(store.Append(c));
  }
  return store;
}

void CodeStore::Grow(std::size_t new_stride) {
  if (new_stride <= stride_) return;
  std::vector<uint64_t> grown(nwords_ * new_stride, 0);
  for (std::size_t w = 0; w < nwords_; ++w) {
    std::copy_n(data_.data() + w * stride_, size_,
                grown.data() + w * new_stride);
  }
  data_ = std::move(grown);
  stride_ = new_stride;
}

Status CodeStore::Append(const BinaryCode& code) {
  if (size_ == 0 && bits_ == 0) Reset(code.size());
  if (code.size() != bits_) {
    return Status::InvalidArgument("CodeStore: code length mismatch");
  }
  if (size_ == stride_) {
    Grow(std::max<std::size_t>(kLaneAlign, stride_ * 2));
  }
  const auto& words = code.words();
  for (std::size_t w = 0; w < nwords_; ++w) {
    data_[w * stride_ + size_] = words[w];
  }
  ++size_;
  return Status::OK();
}

void CodeStore::SwapRemove(std::size_t i) {
  const std::size_t last = size_ - 1;
  for (std::size_t w = 0; w < nwords_; ++w) {
    uint64_t* lane = data_.data() + w * stride_;
    lane[i] = lane[last];
    lane[last] = 0;  // keep pad slots zero for the SIMD overread
  }
  --size_;
}

BinaryCode CodeStore::Get(std::size_t i) const {
  BinaryCode code(bits_);
  auto& words = code.mutable_words();
  for (std::size_t w = 0; w < nwords_; ++w) {
    words[w] = data_[w * stride_ + i];
  }
  return code;
}

bool CodeStore::Matches(std::size_t i, const BinaryCode& code) const {
  if (code.size() != bits_) return false;
  const auto& words = code.words();
  for (std::size_t w = 0; w < nwords_; ++w) {
    if (data_[w * stride_ + i] != words[w]) return false;
  }
  return true;
}

}  // namespace hamming::kernels

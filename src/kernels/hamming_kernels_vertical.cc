// Portable vertical (bit-sliced) threshold scan.
//
// Per 512-code block, per-lane Hamming distances accumulate in P =
// CounterPlanes(h) bit-sliced counter words: counter bit i of lane l
// lives in bit l of cnt[i]. Planes are consumed two at a time through a
// carry-save step — the two mismatch words collapse into (sum, carry)
// with one full adder, so each pair costs one ripple through the P
// counter planes instead of two. Counters are preloaded with
// CounterBias(h) = 2^P - 1 - h, so the carry out of the top plane fires
// on the (h+1)-th mismatch exactly: a lane that overflows is > h and
// drops out of `alive` permanently, and a lane alive after the last
// plane is <= h with no comparison epilogue. The moment `alive`
// empties, the rest of the block's planes are skipped — that early exit
// is the whole point of the layout: selective queries kill most blocks
// within the first few planes.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "kernels/hamming_kernels.h"
#include "kernels/vertical_scan_inl.h"

namespace hamming::kernels::detail {

std::size_t VerticalScanPortable(const VerticalCodeStore& store,
                                 const uint64_t* qmask, std::size_t h,
                                 std::vector<uint32_t>* out_slots,
                                 VerticalScanStats* stats) {
  constexpr std::size_t kW = VerticalCodeStore::kWordsPerPlane;
  const std::size_t bits = store.bits();
  const std::size_t n = store.size();
  const std::size_t nplanes = CounterPlanes(h);
  const uint64_t bias = CounterBias(h);
  std::size_t matches = 0;
  uint64_t planes_read = 0;
  uint64_t blocks_pruned = 0;
  uint64_t cnt[kMaxCounterPlanes][kW];
  uint64_t alive[kW];
  for (std::size_t b = 0; b < store.num_blocks(); ++b) {
    const std::size_t block_base = b * VerticalCodeStore::kBlockCodes;
    const std::size_t lanes =
        std::min(VerticalCodeStore::kBlockCodes, n - block_base);
    for (std::size_t g = 0; g < kW; ++g) {
      alive[g] = ValidMaskWord(lanes, g);
      for (std::size_t i = 0; i < nplanes; ++i) {
        cnt[i][g] = ((bias >> i) & 1) ? ~0ull : 0;
      }
    }
    const uint64_t* planes = store.BlockPlanes(b);
    bool dead = false;
    std::size_t p = 0;
    for (; p + 1 < bits; p += 2) {
      const uint64_t* ra = planes + p * kW;
      const uint64_t* rb = ra + kW;
      const uint64_t qa = qmask[p];
      const uint64_t qb = qmask[p + 1];
      uint64_t any = 0;
      for (std::size_t g = 0; g < kW; ++g) {
        const uint64_t xa = ra[g] ^ qa;
        const uint64_t xb = rb[g] ^ qb;
        // Full adder over the two mismatch bits: sum goes into counter
        // plane 0, and the (a&b) carry merges with plane 0's own carry —
        // the two are mutually exclusive, so OR is exact.
        const uint64_t s = xa ^ xb;
        uint64_t carry = (xa & xb) | (cnt[0][g] & s);
        cnt[0][g] ^= s;
        for (std::size_t i = 1; i < nplanes; ++i) {
          const uint64_t t = cnt[i][g] & carry;
          cnt[i][g] ^= carry;
          carry = t;
        }
        alive[g] &= ~carry;  // biased overflow => count > h, lane dead
        any |= alive[g];
      }
      planes_read += 2;
      if (any == 0) {
        dead = true;
        break;
      }
    }
    if (!dead && p < bits) {  // odd trailing plane
      const uint64_t* ra = planes + p * kW;
      const uint64_t qa = qmask[p];
      for (std::size_t g = 0; g < kW; ++g) {
        uint64_t carry = ra[g] ^ qa;
        for (std::size_t i = 0; i < nplanes; ++i) {
          const uint64_t t = cnt[i][g] & carry;
          cnt[i][g] ^= carry;
          carry = t;
        }
        alive[g] &= ~carry;
      }
      planes_read += 1;
    }
    if (dead) {
      ++blocks_pruned;
      continue;
    }
    // Bias makes `alive` the exact <= h survivor set.
    matches += EmitSurvivors(block_base, alive, out_slots);
  }
  if (stats != nullptr) {
    stats->planes_scanned += planes_read;
    stats->blocks_pruned += blocks_pruned;
    stats->blocks_scanned += store.num_blocks();
  }
  return matches;
}

}  // namespace hamming::kernels::detail

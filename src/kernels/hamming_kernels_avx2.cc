// AVX2 range kernels: XOR + vpshufb nibble-LUT popcount, four 64-bit
// code words per 256-bit vector. This translation unit is the only one
// compiled with -mavx2 (src/CMakeLists.txt adds the flag when the
// toolchain accepts it); callers reach it through the runtime dispatch
// in hamming_kernels.cc, which selects it only when the CPU reports
// AVX2. Results are bit-identical to the portable path — both are
// plain per-word popcounts, only the instruction schedule differs.
#include "kernels/hamming_kernels.h"

#if defined(HAMMING_HAVE_AVX2_TU)

#include <immintrin.h>

#include <algorithm>

#include "kernels/vertical_scan_inl.h"

namespace hamming::kernels::detail {

namespace {

// Per-64-bit-lane popcount of v: nibble lookup (vpshufb) + horizontal
// byte sum (vpsadbw). The classic Mula kernel.
inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

}  // namespace

void BatchDistanceRangeAvx2(const CodeStore& store, const uint64_t* qwords,
                            std::size_t base, std::size_t len, uint32_t* out) {
  const std::size_t nw = store.words();
  std::size_t i = 0;
  // Eight codes (two vectors) per iteration; lanes are never overread —
  // the tail falls through to the scalar loop so callers may pass
  // unpadded ranges.
  for (; i + 8 <= len; i += 8) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (std::size_t w = 0; w < nw; ++w) {
      const __m256i q = _mm256_set1_epi64x(static_cast<long long>(qwords[w]));
      const uint64_t* lane = store.Lane(w) + base + i;
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane + 4));
      acc0 = _mm256_add_epi64(acc0, Popcount256(_mm256_xor_si256(v0, q)));
      acc1 = _mm256_add_epi64(acc1, Popcount256(_mm256_xor_si256(v1, q)));
    }
    alignas(32) uint64_t counts[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts), acc0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts + 4), acc1);
    for (std::size_t j = 0; j < 8; ++j) {
      out[i + j] = static_cast<uint32_t>(counts[j]);
    }
  }
  for (; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(
          __builtin_popcountll(store.Lane(w)[base + i] ^ qwords[w]));
    }
    out[i] = d;
  }
}

void BatchXorPopcountAvx2(uint64_t query_word, const uint64_t* values,
                          std::size_t n, uint16_t* out) {
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(query_word));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + i));
    const __m256i cnt = Popcount256(_mm256_xor_si256(v, q));
    alignas(32) uint64_t counts[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts), cnt);
    out[i] = static_cast<uint16_t>(counts[0]);
    out[i + 1] = static_cast<uint16_t>(counts[1]);
    out[i + 2] = static_cast<uint16_t>(counts[2]);
    out[i + 3] = static_cast<uint16_t>(counts[3]);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint16_t>(
        __builtin_popcountll(values[i] ^ query_word));
  }
}

void RangeHitsAvx2(const CodeStore& store, const uint64_t* qwords,
                   uint32_t h, std::size_t base, std::size_t len,
                   std::vector<SlotDistance>* hits) {
  const std::size_t nw = store.words();
  // Distances are at most 64*nw, far below 2^63, so the signed compare
  // is exact: acc <= h  <=>  !(acc > h).
  const __m256i hv = _mm256_set1_epi64x(static_cast<long long>(h));
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (std::size_t w = 0; w < nw; ++w) {
      const __m256i q = _mm256_set1_epi64x(static_cast<long long>(qwords[w]));
      const uint64_t* lane = store.Lane(w) + base + i;
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane + 4));
      acc0 = _mm256_add_epi64(acc0, Popcount256(_mm256_xor_si256(v0, q)));
      acc1 = _mm256_add_epi64(acc1, Popcount256(_mm256_xor_si256(v1, q)));
    }
    // Sign bit of each 64-bit lane of the cmpgt result, inverted: a set
    // bit means distance <= h. Hit extraction only runs on a nonzero
    // mask, which on selective radii is the rare case.
    const int over0 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(acc0, hv)));
    const int over1 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(acc1, hv)));
    const unsigned m =
        static_cast<unsigned>((~over0 & 0xf) | ((~over1 & 0xf) << 4));
    if (m != 0) {
      alignas(32) uint64_t counts[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(counts), acc0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(counts + 4), acc1);
      for (std::size_t j = 0; j < 8; ++j) {
        if ((m >> j) & 1) {
          hits->push_back({static_cast<uint32_t>(base + i + j),
                           static_cast<uint32_t>(counts[j])});
        }
      }
    }
  }
  for (; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(
          __builtin_popcountll(store.Lane(w)[base + i] ^ qwords[w]));
    }
    if (d <= h) hits->push_back({static_cast<uint32_t>(base + i), d});
  }
}

// Vertical (bit-sliced) threshold scan, AVX2 form: each plane row of a
// 512-code block is two 256-bit vectors, the bit-sliced counters and
// alive mask live in registers, and the same carry-save pair step as the
// portable kernel (hamming_kernels_vertical.cc) runs on vector words.
std::size_t VerticalScanAvx2(const VerticalCodeStore& store,
                             const uint64_t* qmask, std::size_t h,
                             std::vector<uint32_t>* out_slots,
                             VerticalScanStats* stats) {
  constexpr std::size_t kW = VerticalCodeStore::kWordsPerPlane;
  const std::size_t bits = store.bits();
  const std::size_t n = store.size();
  const std::size_t nplanes = CounterPlanes(h);
  const uint64_t bias = CounterBias(h);
  std::size_t matches = 0;
  uint64_t planes_read = 0;
  uint64_t blocks_pruned = 0;
  __m256i cnt[kMaxCounterPlanes][2];
  __m256i alive[2];
  for (std::size_t b = 0; b < store.num_blocks(); ++b) {
    const std::size_t block_base = b * VerticalCodeStore::kBlockCodes;
    const std::size_t lanes =
        std::min(VerticalCodeStore::kBlockCodes, n - block_base);
    alignas(32) uint64_t valid[kW];
    for (std::size_t g = 0; g < kW; ++g) valid[g] = ValidMaskWord(lanes, g);
    alive[0] = _mm256_load_si256(reinterpret_cast<const __m256i*>(valid));
    alive[1] = _mm256_load_si256(reinterpret_cast<const __m256i*>(valid + 4));
    for (std::size_t i = 0; i < nplanes; ++i) {
      // Saturation bias: carry out of the top plane == count > h.
      const __m256i fill =
          ((bias >> i) & 1) ? _mm256_set1_epi64x(-1) : _mm256_setzero_si256();
      cnt[i][0] = fill;
      cnt[i][1] = fill;
    }
    const uint64_t* planes = store.BlockPlanes(b);
    bool dead = false;
    std::size_t p = 0;
    for (; p + 1 < bits; p += 2) {
      const uint64_t* ra = planes + p * kW;
      const uint64_t* rb = ra + kW;
      const __m256i qa = _mm256_set1_epi64x(static_cast<long long>(qmask[p]));
      const __m256i qb =
          _mm256_set1_epi64x(static_cast<long long>(qmask[p + 1]));
      for (std::size_t half = 0; half < 2; ++half) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ra + 4 * half));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(rb + 4 * half));
        const __m256i xa = _mm256_xor_si256(va, qa);
        const __m256i xb = _mm256_xor_si256(vb, qb);
        const __m256i s = _mm256_xor_si256(xa, xb);
        __m256i carry = _mm256_or_si256(_mm256_and_si256(xa, xb),
                                        _mm256_and_si256(cnt[0][half], s));
        cnt[0][half] = _mm256_xor_si256(cnt[0][half], s);
        for (std::size_t i = 1; i < nplanes; ++i) {
          const __m256i t = _mm256_and_si256(cnt[i][half], carry);
          cnt[i][half] = _mm256_xor_si256(cnt[i][half], carry);
          carry = t;
        }
        alive[half] = _mm256_andnot_si256(carry, alive[half]);
      }
      planes_read += 2;
      const __m256i any = _mm256_or_si256(alive[0], alive[1]);
      if (_mm256_testz_si256(any, any)) {
        dead = true;
        break;
      }
    }
    if (!dead && p < bits) {  // odd trailing plane
      const uint64_t* ra = planes + p * kW;
      const __m256i qa = _mm256_set1_epi64x(static_cast<long long>(qmask[p]));
      for (std::size_t half = 0; half < 2; ++half) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ra + 4 * half));
        __m256i carry = _mm256_xor_si256(va, qa);
        for (std::size_t i = 0; i < nplanes; ++i) {
          const __m256i t = _mm256_and_si256(cnt[i][half], carry);
          cnt[i][half] = _mm256_xor_si256(cnt[i][half], carry);
          carry = t;
        }
        alive[half] = _mm256_andnot_si256(carry, alive[half]);
      }
      planes_read += 1;
    }
    if (dead) {
      ++blocks_pruned;
      continue;
    }
    // Bias makes `alive` the exact <= h survivor set.
    alignas(32) uint64_t survivors[kW];
    _mm256_store_si256(reinterpret_cast<__m256i*>(survivors), alive[0]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(survivors + 4), alive[1]);
    matches += EmitSurvivors(block_base, survivors, out_slots);
  }
  if (stats != nullptr) {
    stats->planes_scanned += planes_read;
    stats->blocks_pruned += blocks_pruned;
    stats->blocks_scanned += store.num_blocks();
  }
  return matches;
}

}  // namespace hamming::kernels::detail

#endif  // HAMMING_HAVE_AVX2_TU

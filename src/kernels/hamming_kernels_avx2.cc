// AVX2 range kernels: XOR + vpshufb nibble-LUT popcount, four 64-bit
// code words per 256-bit vector. This translation unit is the only one
// compiled with -mavx2 (src/CMakeLists.txt adds the flag when the
// toolchain accepts it); callers reach it through the runtime dispatch
// in hamming_kernels.cc, which selects it only when the CPU reports
// AVX2. Results are bit-identical to the portable path — both are
// plain per-word popcounts, only the instruction schedule differs.
#include "kernels/hamming_kernels.h"

#if defined(HAMMING_HAVE_AVX2_TU)

#include <immintrin.h>

namespace hamming::kernels::detail {

namespace {

// Per-64-bit-lane popcount of v: nibble lookup (vpshufb) + horizontal
// byte sum (vpsadbw). The classic Mula kernel.
inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

}  // namespace

void BatchDistanceRangeAvx2(const CodeStore& store, const uint64_t* qwords,
                            std::size_t base, std::size_t len, uint32_t* out) {
  const std::size_t nw = store.words();
  std::size_t i = 0;
  // Eight codes (two vectors) per iteration; lanes are never overread —
  // the tail falls through to the scalar loop so callers may pass
  // unpadded ranges.
  for (; i + 8 <= len; i += 8) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (std::size_t w = 0; w < nw; ++w) {
      const __m256i q = _mm256_set1_epi64x(static_cast<long long>(qwords[w]));
      const uint64_t* lane = store.Lane(w) + base + i;
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane + 4));
      acc0 = _mm256_add_epi64(acc0, Popcount256(_mm256_xor_si256(v0, q)));
      acc1 = _mm256_add_epi64(acc1, Popcount256(_mm256_xor_si256(v1, q)));
    }
    alignas(32) uint64_t counts[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts), acc0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts + 4), acc1);
    for (std::size_t j = 0; j < 8; ++j) {
      out[i + j] = static_cast<uint32_t>(counts[j]);
    }
  }
  for (; i < len; ++i) {
    uint32_t d = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      d += static_cast<uint32_t>(
          __builtin_popcountll(store.Lane(w)[base + i] ^ qwords[w]));
    }
    out[i] = d;
  }
}

void BatchXorPopcountAvx2(uint64_t query_word, const uint64_t* values,
                          std::size_t n, uint16_t* out) {
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(query_word));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + i));
    const __m256i cnt = Popcount256(_mm256_xor_si256(v, q));
    alignas(32) uint64_t counts[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts), cnt);
    out[i] = static_cast<uint16_t>(counts[0]);
    out[i + 1] = static_cast<uint16_t>(counts[1]);
    out[i + 2] = static_cast<uint16_t>(counts[2]);
    out[i + 3] = static_cast<uint16_t>(counts[3]);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint16_t>(
        __builtin_popcountll(values[i] ^ query_word));
  }
}

}  // namespace hamming::kernels::detail

#endif  // HAMMING_HAVE_AVX2_TU

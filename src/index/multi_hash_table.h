// Manku et al.'s multi-hash-table index [4] ("MH-k" in Table 4).
//
// The fingerprint is cut into b contiguous blocks. If two codes are
// within Hamming distance h, their differing bits touch at most h blocks,
// so for *some* choice of h dropped blocks the remaining k = b - h blocks
// match exactly (pigeonhole). The index therefore keeps one hash table
// per k-subset of blocks, keyed by the concatenation of those blocks,
// with the full fingerprint replicated into every table ("this algorithm
// needs to replicate the database multiple times" — Section 2). A query
// probes each table with its own key and verifies the bucket by full
// XOR+popcount.
//
// MH-4 at h = 3 uses b = 4 (C(4,3) = 4 tables, 1-block keys); MH-10 uses
// b = 5 (C(5,3) = 10 tables, 2-block keys) — more tables buy longer,
// more selective keys at the price of more replicated memory, exactly
// the trade Table 4 shows.
#pragma once

#include <unordered_map>

#include "index/hamming_index.h"
#include "kernels/code_store.h"
#include "kernels/vertical_code_store.h"

namespace hamming {

/// \brief Block-combination multi-table index, exact for h <= h_max.
class MultiHashTableIndex final : public HammingIndex {
 public:
  /// \param num_tables requested table budget; the largest b with
  ///   C(b, h_max) <= num_tables is chosen and all C(b, h_max) block
  ///   combinations are materialized (so the pigeonhole guarantee holds).
  /// \param h_max largest query threshold the layout stays exact for.
  explicit MultiHashTableIndex(std::size_t num_tables, std::size_t h_max = 3)
      : requested_tables_(num_tables), h_max_(h_max) {}

  std::string name() const override {
    return "MH-" + std::to_string(requested_tables_);
  }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return stored_.size(); }
  MemoryBreakdown Memory() const override;

  /// \brief True when the pigeonhole guarantee holds for threshold h.
  bool ExactFor(std::size_t h) const { return h <= h_max_; }

  /// \brief Actual number of materialized tables (C(b, h_max)).
  std::size_t num_tables() const { return combos_.size(); }
  std::size_t num_blocks() const { return num_blocks_; }

  /// \brief Serializes the full index — every table's buckets with their
  /// replicated fingerprints. This is what the PMH MapReduce plan
  /// broadcasts, and why Manku-style duplication is expensive to ship.
  void Serialize(BufferWriter* w) const;
  static Result<MultiHashTableIndex> Deserialize(BufferReader* r);

 private:
  /// One hash bucket: parallel id / word-stride code arrays, so bucket
  /// verification is a single batched kernel pass instead of a scalar
  /// WithinDistance per replicated fingerprint.
  struct Bucket {
    std::vector<TupleId> ids;
    kernels::CodeStore codes;
    // Bit-plane mirror of `codes`, materialized lazily once the bucket
    // reaches the vertical kernel's profitability floor (most buckets are
    // tiny and never pay the transpose).
    kernels::VerticalCodeStore vcodes;
  };

  /// Appends one replicated fingerprint to a bucket, keeping the
  /// bit-plane mirror in sync once the bucket is large enough for the
  /// vertical scan to pay off.
  static Status AppendToBucket(Bucket* bucket, TupleId id,
                               const BinaryCode& code);

  /// Lays out blocks/combinations on first use; validates key width.
  Status EnsureLayout(const BinaryCode& code);
  /// Bit range [begin, end) of block `blk`.
  std::pair<std::size_t, std::size_t> BlockRange(std::size_t blk) const;
  /// Concatenated key of the combination `combo` for `code`.
  uint64_t KeyOf(const std::vector<uint8_t>& combo,
                 const BinaryCode& code) const;

  std::size_t requested_tables_;
  std::size_t h_max_;
  std::size_t num_blocks_ = 0;
  std::size_t code_bits_ = 0;
  std::vector<std::vector<uint8_t>> combos_;  // kept blocks per table
  std::vector<std::unordered_map<uint64_t, Bucket>> tables_;
  std::unordered_map<TupleId, BinaryCode> stored_;  // Delete verification
};

}  // namespace hamming

// Greene/Parnas/Yao half-splitting index for h <= 1 ([7] in the paper:
// "Yao's algorithm recursively cuts the query binary code and each binary
// code in the dataset in half, and then finds exact matches in the
// dataset for the left or the right half of the query binary code").
//
// At most one differing bit falls in one of the two halves, so the other
// half matches exactly: the index keeps one hash table per half and a
// query probes both, verifying each candidate. This is the classic small-
// threshold design the Hamming literature (and the paper's Section 2)
// starts from; thresholds above 1 are rejected.
#pragma once

#include <unordered_map>

#include "index/hamming_index.h"

namespace hamming {

/// \brief Exact Hamming index for thresholds 0 and 1.
class YaoIndex final : public HammingIndex {
 public:
  std::string name() const override { return "Yao-Halving"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return stored_.size(); }
  MemoryBreakdown Memory() const override;

 private:
  struct Entry {
    TupleId id;
    BinaryCode code;
  };

  Status EnsureLayout(const BinaryCode& code);
  uint64_t HalfKey(bool right, const BinaryCode& code) const;

  std::size_t code_bits_ = 0;
  std::size_t split_ = 0;  // left half = [0, split), right = [split, L)
  std::unordered_map<uint64_t, std::vector<Entry>> left_;
  std::unordered_map<uint64_t, std::vector<Entry>> right_;
  std::unordered_map<TupleId, BinaryCode> stored_;
};

}  // namespace hamming

#include "index/linear_scan.h"

#include "kernels/hamming_kernels.h"

namespace hamming {

Status LinearScanIndex::Build(const std::vector<BinaryCode>& codes) {
  HAMMING_ASSIGN_OR_RETURN(codes_, kernels::CodeStore::FromCodes(codes));
  codes_.TransposeInto(&vcodes_);
  ids_.resize(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ids_[i] = static_cast<TupleId>(i);
  }
  return Status::OK();
}

Result<std::vector<TupleId>> LinearScanIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  std::vector<uint32_t> slots;
  kernels::VerticalScanStats vstats;
  kernels::BatchWithinDistanceDual(query, codes_, &vcodes_, h, &slots,
                                   &vstats);
  std::vector<TupleId> out;
  out.reserve(slots.size());
  for (uint32_t slot : slots) out.push_back(ids_[slot]);
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += ids_.size();
    stats->exact_distance_computations += ids_.size();
    stats->results += out.size();
    stats->planes_scanned += vstats.planes_scanned;
    stats->blocks_pruned += vstats.blocks_pruned;
  }
  return out;
}

Result<std::vector<std::pair<TupleId, uint32_t>>> LinearScanIndex::Knn(
    const BinaryCode& query, std::size_t k, obs::QueryStats* stats) const {
  auto nearest = kernels::BatchKnn(query, codes_, k);
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += ids_.size();
    stats->exact_distance_computations += ids_.size();
    stats->results += nearest.size();
  }
  std::vector<std::pair<TupleId, uint32_t>> out;
  out.reserve(nearest.size());
  for (const auto& [slot, dist] : nearest) {
    out.emplace_back(ids_[slot], dist);
  }
  return out;
}

Status LinearScanIndex::SearchBatch(std::span<const QueryRequest> requests,
                                    std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  const std::size_t n = ids_.size();
  // Requests whose (bits, h, n) pick the vertical layout run the exact
  // scalar plane-pruning path; the rest coalesce into one multi-query
  // horizontal scan. The split mirrors BatchWithinDistanceDual, so each
  // response is byte-identical to its scalar Search.
  const auto policy = kernels::ActiveLayoutPolicy();
  const bool mirror_ok = !vcodes_.empty() && vcodes_.size() == codes_.size() &&
                         vcodes_.bits() == codes_.bits();
  std::vector<std::size_t> coalesced;  // request indices, horizontal group
  std::vector<const BinaryCode*> queries;
  std::vector<std::size_t> radii;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    bool want_vertical;
    switch (policy) {
      case kernels::LayoutPolicy::kForceHorizontal:
        want_vertical = false;
        break;
      case kernels::LayoutPolicy::kForceVertical:
        want_vertical = true;
        break;
      default:
        want_vertical = kernels::ChooseLayout(codes_.bits(), requests[i].h,
                                              codes_.size()) ==
                        kernels::KernelLayout::kVertical;
    }
    if (want_vertical && mirror_ok) {
      std::vector<uint32_t> slots;
      kernels::VerticalScanStats vstats;
      kernels::BatchWithinDistance(requests[i].code, vcodes_, requests[i].h,
                                   &slots, &vstats);
      resp.ids.reserve(slots.size());
      for (uint32_t slot : slots) resp.ids.push_back(ids_[slot]);
      ++resp.stats.kernel_batch_calls;
      resp.stats.candidates_generated += n;
      resp.stats.exact_distance_computations += n;
      resp.stats.results += resp.ids.size();
      resp.stats.planes_scanned += vstats.planes_scanned;
      resp.stats.blocks_pruned += vstats.blocks_pruned;
    } else {
      coalesced.push_back(i);
      queries.push_back(&requests[i].code);
      radii.push_back(requests[i].h);
    }
  }
  if (!coalesced.empty()) {
    std::vector<std::vector<kernels::SlotDistance>> hits;
    kernels::MultiWithinDistance(codes_, queries.data(), radii.data(),
                                 coalesced.size(), &hits);
    for (std::size_t g = 0; g < coalesced.size(); ++g) {
      QueryResponse& resp = responses[coalesced[g]];
      resp.ids.reserve(hits[g].size());
      resp.distances.reserve(hits[g].size());
      for (const auto& hit : hits[g]) {
        resp.ids.push_back(ids_[hit.slot]);
        resp.distances.push_back(hit.dist);
      }
      resp.has_distances = true;
      ++resp.stats.kernel_batch_calls;
      resp.stats.candidates_generated += n;
      resp.stats.exact_distance_computations += n;
      resp.stats.results += resp.ids.size();
    }
  }
  return Status::OK();
}

Status LinearScanIndex::KnnBatch(std::span<const QueryRequest> requests,
                                 std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  if (requests.empty()) return Status::OK();
  std::vector<const BinaryCode*> queries;
  std::vector<std::size_t> ks;
  queries.reserve(requests.size());
  ks.reserve(requests.size());
  for (const QueryRequest& req : requests) {
    queries.push_back(&req.code);
    ks.push_back(req.k);
  }
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> nearest;
  kernels::MultiKnn(codes_, queries.data(), ks.data(), requests.size(),
                    &nearest);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    resp.neighbors.reserve(nearest[i].size());
    for (const auto& [slot, dist] : nearest[i]) {
      resp.neighbors.emplace_back(ids_[slot], dist);
    }
    ++resp.stats.kernel_batch_calls;
    resp.stats.candidates_generated += ids_.size();
    resp.stats.exact_distance_computations += ids_.size();
    resp.stats.results += resp.neighbors.size();
  }
  return Status::OK();
}

Status LinearScanIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(codes_.Append(code));
  HAMMING_RETURN_NOT_OK(vcodes_.Append(code));
  ids_.push_back(id);
  return Status::OK();
}

Status LinearScanIndex::Delete(TupleId id, const BinaryCode& code) {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id && codes_.Matches(i, code)) {
      codes_.SwapRemove(i);
      vcodes_.SwapRemove(i);
      ids_[i] = ids_.back();
      ids_.pop_back();
      return Status::OK();
    }
  }
  return Status::KeyError("tuple not found in linear scan index");
}

MemoryBreakdown LinearScanIndex::Memory() const {
  MemoryBreakdown mb;
  mb.leaf_bytes += codes_.PackedBytes();
  // The vertical mirror doubles the code bytes held; account it as
  // index overhead rather than leaf payload.
  mb.internal_bytes += vcodes_.PackedBytes();
  mb.leaf_bytes += ids_.size() * sizeof(TupleId);
  return mb;
}

}  // namespace hamming

#include "index/linear_scan.h"

namespace hamming {

Status LinearScanIndex::Build(const std::vector<BinaryCode>& codes) {
  codes_ = codes;
  ids_.resize(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ids_[i] = static_cast<TupleId>(i);
  }
  return Status::OK();
}

Result<std::vector<TupleId>> LinearScanIndex::Search(const BinaryCode& query,
                                                     std::size_t h) const {
  std::vector<TupleId> out;
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    if (codes_[i].WithinDistance(query, h)) out.push_back(ids_[i]);
  }
  return out;
}

Status LinearScanIndex::Insert(TupleId id, const BinaryCode& code) {
  codes_.push_back(code);
  ids_.push_back(id);
  return Status::OK();
}

Status LinearScanIndex::Delete(TupleId id, const BinaryCode& code) {
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    if (ids_[i] == id && codes_[i] == code) {
      codes_[i] = codes_.back();
      ids_[i] = ids_.back();
      codes_.pop_back();
      ids_.pop_back();
      return Status::OK();
    }
  }
  return Status::KeyError("tuple not found in linear scan index");
}

MemoryBreakdown LinearScanIndex::Memory() const {
  MemoryBreakdown mb;
  for (const auto& c : codes_) mb.leaf_bytes += c.PackedBytes();
  mb.leaf_bytes += ids_.size() * sizeof(TupleId);
  return mb;
}

}  // namespace hamming

#include "index/linear_scan.h"

#include "kernels/hamming_kernels.h"

namespace hamming {

Status LinearScanIndex::Build(const std::vector<BinaryCode>& codes) {
  HAMMING_ASSIGN_OR_RETURN(codes_, kernels::CodeStore::FromCodes(codes));
  codes_.TransposeInto(&vcodes_);
  ids_.resize(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ids_[i] = static_cast<TupleId>(i);
  }
  return Status::OK();
}

Result<std::vector<TupleId>> LinearScanIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  std::vector<uint32_t> slots;
  kernels::VerticalScanStats vstats;
  kernels::BatchWithinDistanceDual(query, codes_, &vcodes_, h, &slots,
                                   &vstats);
  std::vector<TupleId> out;
  out.reserve(slots.size());
  for (uint32_t slot : slots) out.push_back(ids_[slot]);
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += ids_.size();
    stats->exact_distance_computations += ids_.size();
    stats->results += out.size();
    stats->planes_scanned += vstats.planes_scanned;
    stats->blocks_pruned += vstats.blocks_pruned;
  }
  return out;
}

Result<std::vector<std::pair<TupleId, uint32_t>>> LinearScanIndex::Knn(
    const BinaryCode& query, std::size_t k, obs::QueryStats* stats) const {
  auto nearest = kernels::BatchKnn(query, codes_, k);
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += ids_.size();
    stats->exact_distance_computations += ids_.size();
    stats->results += nearest.size();
  }
  std::vector<std::pair<TupleId, uint32_t>> out;
  out.reserve(nearest.size());
  for (const auto& [slot, dist] : nearest) {
    out.emplace_back(ids_[slot], dist);
  }
  return out;
}

Status LinearScanIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(codes_.Append(code));
  HAMMING_RETURN_NOT_OK(vcodes_.Append(code));
  ids_.push_back(id);
  return Status::OK();
}

Status LinearScanIndex::Delete(TupleId id, const BinaryCode& code) {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id && codes_.Matches(i, code)) {
      codes_.SwapRemove(i);
      vcodes_.SwapRemove(i);
      ids_[i] = ids_.back();
      ids_.pop_back();
      return Status::OK();
    }
  }
  return Status::KeyError("tuple not found in linear scan index");
}

MemoryBreakdown LinearScanIndex::Memory() const {
  MemoryBreakdown mb;
  mb.leaf_bytes += codes_.PackedBytes();
  // The vertical mirror doubles the code bytes held; account it as
  // index overhead rather than leaf payload.
  mb.internal_bytes += vcodes_.PackedBytes();
  mb.leaf_bytes += ids_.size() * sizeof(TupleId);
  return mb;
}

}  // namespace hamming

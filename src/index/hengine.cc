#include "index/hengine.h"

#include <algorithm>

namespace hamming {

std::pair<std::size_t, std::size_t> HEngineIndex::SegmentRange(
    std::size_t s) const {
  std::size_t base = code_bits_ / num_segments_;
  std::size_t extra = code_bits_ % num_segments_;
  std::size_t begin = s * base + std::min(s, extra);
  std::size_t len = base + (s < extra ? 1 : 0);
  return {begin, begin + len};
}

Status HEngineIndex::Build(const std::vector<BinaryCode>& codes) {
  num_segments_ = std::max<std::size_t>(1, (h_max_ + 2) / 2);  // ceil((h+1)/2)
  code_bits_ = codes.empty() ? 0 : codes[0].size();
  if (code_bits_ != 0 && code_bits_ < num_segments_) {
    return Status::InvalidArgument("code shorter than segment count");
  }
  if (code_bits_ > 64 * num_segments_) {
    return Status::InvalidArgument(
        "HEngine segment keys are limited to 64 bits each");
  }
  tables_.assign(num_segments_, {});
  code_store_.clear();
  id_to_slot_.clear();
  code_store_.reserve(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const BinaryCode& code = codes[i];
    if (code.size() != code_bits_) {
      return Status::InvalidArgument("code length mismatch");
    }
    TupleId id = static_cast<TupleId>(i);
    uint32_t slot = static_cast<uint32_t>(code_store_.size());
    code_store_.push_back(code);
    id_to_slot_[id] = slot;
    for (std::size_t s = 0; s < num_segments_; ++s) {
      auto [b, e] = SegmentRange(s);
      tables_[s].push_back({code.SubstringAsUint64(b, e - b), id, slot});
    }
  }
  for (auto& t : tables_) std::sort(t.begin(), t.end());
  return Status::OK();
}

Status HEngineIndex::Insert(TupleId id, const BinaryCode& code) {
  if (tables_.empty()) {
    // Initialize segmentation lazily from the first inserted code.
    num_segments_ = std::max<std::size_t>(1, (h_max_ + 2) / 2);
    code_bits_ = code.size();
    if (code_bits_ < num_segments_) {
      return Status::InvalidArgument("code shorter than segment count");
    }
    if (code_bits_ > 64 * num_segments_) {
      return Status::InvalidArgument(
          "HEngine segment keys are limited to 64 bits each");
    }
    tables_.assign(num_segments_, {});
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  uint32_t slot = static_cast<uint32_t>(code_store_.size());
  code_store_.push_back(code);
  id_to_slot_[id] = slot;
  for (std::size_t s = 0; s < num_segments_; ++s) {
    auto [b, e] = SegmentRange(s);
    Entry entry{code.SubstringAsUint64(b, e - b), id, slot};
    auto& t = tables_[s];
    t.insert(std::lower_bound(t.begin(), t.end(), entry), entry);
  }
  return Status::OK();
}

Status HEngineIndex::Delete(TupleId id, const BinaryCode& code) {
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end() || code_store_[it->second] != code) {
    return Status::KeyError("tuple not found in HEngine index");
  }
  for (std::size_t s = 0; s < num_segments_; ++s) {
    auto [b, e] = SegmentRange(s);
    Entry entry{code.SubstringAsUint64(b, e - b), id, it->second};
    auto& t = tables_[s];
    auto pos = std::lower_bound(t.begin(), t.end(), entry);
    if (pos != t.end() && pos->key == entry.key && pos->id == id) {
      t.erase(pos);
    }
  }
  // The slot stays in code_store_ (stale, unreachable); the paper's
  // HEngine likewise rebuilds rather than compacting its sorted tables.
  id_to_slot_.erase(it);
  return Status::OK();
}

Result<std::vector<TupleId>> HEngineIndex::Search(const BinaryCode& query,
                                                  std::size_t h,
                                                  obs::QueryStats* stats) const {
  if (id_to_slot_.empty()) return std::vector<TupleId>{};
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  if (h > h_max_) {
    return Status::InvalidArgument(
        "HEngine was built for thresholds up to h_max");
  }
  std::vector<TupleId> out;
  // Candidates hit by several probes are verified more than once and
  // deduplicated at the end — cheaper than tracking a visited set.
  auto probe = [this, &out, &query, h, stats](std::size_t s, uint64_t key) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    const auto& t = tables_[s];
    Entry lo{key, 0, 0};
    for (auto it = std::lower_bound(t.begin(), t.end(), lo);
         it != t.end() && it->key == key; ++it) {
      if (stats != nullptr) {
        ++stats->candidates_generated;
        ++stats->exact_distance_computations;
      }
      if (code_store_[it->slot].WithinDistance(query, h)) {
        out.push_back(it->id);
      }
    }
  };

  for (std::size_t s = 0; s < num_segments_; ++s) {
    auto [b, e] = SegmentRange(s);
    std::size_t len = e - b;
    uint64_t key = query.SubstringAsUint64(b, len);
    probe(s, key);
    // All 1-bit variants of the query segment.
    for (std::size_t bit = 0; bit < len; ++bit) {
      probe(s, key ^ (1ull << (len - 1 - bit)));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->results += out.size();
  return out;
}

MemoryBreakdown HEngineIndex::Memory() const {
  MemoryBreakdown mb;
  for (const auto& t : tables_) {
    mb.internal_bytes += t.size() * sizeof(Entry);
  }
  std::size_t per_code = code_bits_ ? (code_bits_ + 7) / 8 : 0;
  mb.leaf_bytes += id_to_slot_.size() * (sizeof(TupleId) + per_code);
  return mb;
}

}  // namespace hamming

#include "index/static_ha_index.h"

#include <algorithm>
#include <bit>

#include "kernels/hamming_kernels.h"

namespace hamming {

Status StaticHAIndex::EnsureLayout(const BinaryCode& code) {
  if (code_bits_ == 0) {
    if (opts_.segment_bits == 0 || opts_.segment_bits > 64) {
      return Status::InvalidArgument("segment_bits must be in [1, 64]");
    }
    code_bits_ = code.size();
    std::size_t num_levels =
        (code_bits_ + opts_.segment_bits - 1) / opts_.segment_bits;
    levels_.resize(num_levels);
    for (std::size_t j = 0; j < num_levels; ++j) {
      levels_[j].begin = j * opts_.segment_bits;
      levels_[j].len =
          std::min(opts_.segment_bits, code_bits_ - levels_[j].begin);
    }
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  return Status::OK();
}

uint32_t StaticHAIndex::InternNode(Level* level, uint64_t value) {
  auto [it, inserted] = level->value_to_node.try_emplace(
      value, static_cast<uint32_t>(level->node_values.size()));
  if (inserted) {
    level->node_values.push_back(value);
    level->node_refcount.push_back(0);
  }
  ++level->node_refcount[it->second];
  return it->second;
}

Status StaticHAIndex::Build(const std::vector<BinaryCode>& codes) {
  code_bits_ = 0;
  levels_.clear();
  path_nodes_.clear();
  paths_.clear();
  id_to_row_.clear();
  vcodes_.Reset(0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HAMMING_RETURN_NOT_OK(Insert(static_cast<TupleId>(i), codes[i]));
  }
  return Status::OK();
}

Status StaticHAIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(EnsureLayout(code));
  if (id_to_row_.count(id)) {
    return Status::InvalidArgument("duplicate tuple id");
  }
  for (auto& level : levels_) {
    uint64_t value = code.SubstringAsUint64(level.begin, level.len);
    path_nodes_.push_back(InternNode(&level, value));
  }
  HAMMING_RETURN_NOT_OK(vcodes_.Append(code));
  id_to_row_[id] = paths_.size();
  paths_.push_back(id);
  groups_stale_ = true;
  return Status::OK();
}

void StaticHAIndex::RefreshGroups() const {
  groups_.assign(levels_.empty() ? 0 : levels_[0].node_values.size(), {});
  const std::size_t nl = levels_.size();
  for (std::size_t row = 0; row < paths_.size(); ++row) {
    groups_[path_nodes_[row * nl]].push_back(static_cast<uint32_t>(row));
  }
  groups_stale_ = false;
}

Status StaticHAIndex::Delete(TupleId id, const BinaryCode& code) {
  auto it = id_to_row_.find(id);
  if (it == id_to_row_.end()) {
    return Status::KeyError("tuple not found in SHA index");
  }
  const std::size_t row = it->second;
  const std::size_t nl = levels_.size();
  // Verify the stored path matches `code` (H-Delete's bitmatch step).
  for (std::size_t j = 0; j < nl; ++j) {
    uint64_t value = code.SubstringAsUint64(levels_[j].begin, levels_[j].len);
    uint32_t node = path_nodes_[row * nl + j];
    if (levels_[j].node_values[node] != value) {
      return Status::KeyError("code does not match stored tuple");
    }
  }
  // Decrement node frequencies; drop nodes reaching zero from the value
  // map (their slot stays to keep indices stable, mirroring the paper's
  // "remove node if frequency is 0").
  for (std::size_t j = 0; j < nl; ++j) {
    uint32_t node = path_nodes_[row * nl + j];
    if (--levels_[j].node_refcount[node] == 0) {
      levels_[j].value_to_node.erase(levels_[j].node_values[node]);
    }
  }
  // Swap-remove the path row.
  const std::size_t last = paths_.size() - 1;
  if (row != last) {
    for (std::size_t j = 0; j < nl; ++j) {
      path_nodes_[row * nl + j] = path_nodes_[last * nl + j];
    }
    paths_[row] = paths_[last];
    id_to_row_[paths_[row]] = row;
  }
  path_nodes_.resize(last * nl);
  paths_.pop_back();
  vcodes_.SwapRemove(row);  // same swap as the path row above
  id_to_row_.erase(it);
  groups_stale_ = true;
  return Status::OK();
}

Result<std::vector<TupleId>> StaticHAIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  std::vector<TupleId> out;
  SearchScratch scratch;
  bool took_path_walk = false;
  HAMMING_RETURN_NOT_OK(
      SearchOne(query, h, stats, &out, nullptr, &took_path_walk, &scratch));
  return out;
}

Status StaticHAIndex::SearchBatch(std::span<const QueryRequest> requests,
                                  std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  // One group refresh and one scratch allocation serve the whole batch.
  if (groups_stale_ && !paths_.empty()) RefreshGroups();
  SearchScratch scratch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    bool took_path_walk = false;
    Status st = SearchOne(requests[i].code, requests[i].h, &resp.stats,
                          &resp.ids, &resp.distances, &took_path_walk,
                          &scratch);
    if (!st.ok()) {
      resp.status = std::move(st);
      continue;
    }
    resp.has_distances = took_path_walk;
    if (!took_path_walk) resp.distances.clear();
  }
  return Status::OK();
}

Status StaticHAIndex::SearchOne(const BinaryCode& query, std::size_t h,
                                obs::QueryStats* stats,
                                std::vector<TupleId>* out_ids,
                                std::vector<uint32_t>* out_dists,
                                bool* took_path_walk,
                                SearchScratch* scratch) const {
  std::vector<TupleId>& out = *out_ids;
  *took_path_walk = false;
  if (paths_.empty()) return Status::OK();
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  const std::size_t nl = levels_.size();

  // Selective queries over large stores skip the node walk entirely and
  // scan the bit-plane sidecar: the vertical kernel's per-block pruning
  // beats memoized path sums when most blocks die within a few planes.
  const auto policy = kernels::ActiveLayoutPolicy();
  const bool want_vertical =
      policy == kernels::LayoutPolicy::kForceVertical ||
      (policy == kernels::LayoutPolicy::kAuto &&
       kernels::ChooseLayout(code_bits_, h, paths_.size()) ==
           kernels::KernelLayout::kVertical);
  if (want_vertical && vcodes_.size() == paths_.size()) {
    std::vector<uint32_t> slots;
    kernels::VerticalScanStats vstats;
    kernels::BatchWithinDistance(query, vcodes_, h, &slots, &vstats);
    out.reserve(slots.size());
    for (uint32_t slot : slots) out.push_back(paths_[slot]);
    if (stats != nullptr) {
      ++stats->kernel_batch_calls;
      stats->candidates_generated += paths_.size();
      stats->exact_distance_computations += paths_.size();
      stats->results += out.size();
      stats->planes_scanned += vstats.planes_scanned;
      stats->blocks_pruned += vstats.blocks_pruned;
    }
    return Status::OK();
  }
  *took_path_walk = true;

  // Phase 1: one XOR+popcount per *distinct* segment node — the shared
  // computation that distinguishes the HA-Index from per-tuple scans.
  auto& node_dist = scratch->node_dist;
  node_dist.resize(nl);
  // Suffix-minimum of per-level best distances enables a tighter prune:
  // if acc + min_rest[j] > h no path can qualify through level j.
  auto& level_min = scratch->level_min;
  level_min.assign(nl, 0);
  for (std::size_t j = 0; j < nl; ++j) {
    const Level& level = levels_[j];
    uint64_t qseg = query.SubstringAsUint64(level.begin, level.len);
    auto& dist = node_dist[j];
    dist.resize(level.node_values.size());
    // Batched XOR+popcount across the level's distinct segment values
    // (node_values is a flat uint64 array — exactly one kernel lane).
    kernels::BatchXorPopcount(qseg, level.node_values.data(),
                              level.node_values.size(), dist.data());
    if (stats != nullptr) {
      ++stats->kernel_batch_calls;
      // One shared distance per distinct segment node at this level.
      stats->signatures_enumerated += level.node_values.size();
    }
    uint16_t best = 0xffff;
    for (std::size_t v = 0; v < level.node_values.size(); ++v) {
      if (level.node_refcount[v] == 0) {
        dist[v] = 0xffff;  // dead node; no live path references it
        continue;
      }
      best = std::min(best, dist[v]);
    }
    level_min[j] = best == 0xffff ? 0 : best;
  }
  auto& min_rest = scratch->min_rest;
  min_rest.assign(nl + 1, 0);
  for (std::size_t j = nl; j-- > 0;) {
    min_rest[j] = min_rest[j + 1] + level_min[j];
  }
  if (min_rest[0] > h) return Status::OK();

  // Phase 2: walk rows grouped by their shared level-0 node — one check
  // discards a whole group (the node-sharing payoff) — then sum memoized
  // distances along each surviving path with early abandonment.
  if (groups_stale_) RefreshGroups();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].empty()) continue;
    std::size_t d0 = node_dist[0][g];
    if (d0 + min_rest[1] > h) continue;  // prunes every path through g
    if (stats != nullptr) stats->candidates_generated += groups_[g].size();
    for (uint32_t row : groups_[g]) {
      const uint32_t* path = path_nodes_.data() + row * nl;
      std::size_t acc = d0;
      bool ok = true;
      for (std::size_t j = 1; j < nl; ++j) {
        acc += node_dist[j][path[j]];
        if (acc + min_rest[j + 1] > h) {
          ok = false;
          break;
        }
      }
      // A row whose path walk completes has had its full distance summed
      // from memoized node distances — the exact computation for this
      // structure.
      if (ok && stats != nullptr) ++stats->exact_distance_computations;
      if (ok && acc <= h) {
        out.push_back(paths_[row]);
        // The completed walk IS the exact distance — record it for free
        // when the caller wants it (SearchBatch's has_distances).
        if (out_dists != nullptr) {
          out_dists->push_back(static_cast<uint32_t>(acc));
        }
      }
    }
  }
  if (stats != nullptr) stats->results += out.size();
  return Status::OK();
}

std::size_t StaticHAIndex::NodeCount() const {
  std::size_t count = 0;
  for (const auto& level : levels_) count += level.value_to_node.size();
  return count;
}

MemoryBreakdown StaticHAIndex::Memory() const {
  MemoryBreakdown mb;
  for (const auto& level : levels_) {
    // Live shared nodes: packed segment value + frequency counter.
    mb.internal_bytes +=
        level.value_to_node.size() * ((level.len + 7) / 8 + sizeof(uint32_t));
  }
  // Leaf side: per tuple, one node reference per level plus the id.
  mb.leaf_bytes += path_nodes_.size() * sizeof(uint32_t) +
                   paths_.size() * sizeof(TupleId);
  // Bit-plane sidecar for the vertical scan path.
  mb.internal_bytes += vcodes_.PackedBytes();
  return mb;
}

}  // namespace hamming

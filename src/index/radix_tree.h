// Bitwise PATRICIA / radix-tree index (Section 4.2).
//
// Codes sharing a prefix share one path-compressed edge, so the Hamming
// distance of a common prefix FLSS is computed once for all tuples below
// it; the downward-closure property (Proposition 1) lets the search prune
// a whole subtree as soon as the accumulated prefix distance exceeds h.
// The structure is prefix-sensitive — codes differing in the first bit
// split at the root however similar their tails are — which is exactly the
// weakness the HA-Index addresses.
#pragma once

#include <memory>

#include "index/hamming_index.h"

namespace hamming {

/// \brief Path-compressed binary trie over equal-length codes.
class RadixTreeIndex final : public HammingIndex {
 public:
  std::string name() const override { return "Radix-Tree"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return size_; }
  MemoryBreakdown Memory() const override;

  /// \brief Number of trie nodes (for the analysis tests).
  std::size_t NodeCount() const;

 private:
  struct Node {
    // Edge label: bits [depth, depth+label_len) of every code below.
    BinaryCode label;        // label bits stored at positions [0, label_len)
    std::size_t label_len = 0;
    std::unique_ptr<Node> child[2];
    std::vector<TupleId> ids;  // non-empty only at full-depth leaves

    bool IsLeaf() const { return !child[0] && !child[1]; }
  };

  static void CountNodes(const Node* n, std::size_t* count);
  static void AccountNode(const Node* n, MemoryBreakdown* mb);

  std::unique_ptr<Node> root_;
  std::size_t code_bits_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hamming

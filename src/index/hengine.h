// HEngine (Liu, Shen, Torng — ICDE'11), the paper's strongest centralized
// baseline before the HA-Index.
//
// Refined pigeonhole: cutting L bits into s = ceil((h+1)/2) segments
// guarantees that two codes within distance h agree on some segment up to
// at most one differing bit. HEngine keeps one sorted signature table per
// segment; a query enumerates its own segment value plus every 1-bit
// variant of it ("one-bit differing binary code" in the paper's wording)
// and binary-searches each table, verifying candidates against the full
// code. Memory is lower than Manku's full duplication but query work
// grows with h through the variant enumeration — the sensitivity to h the
// paper observes in Figure 6.
#pragma once

#include <unordered_map>

#include "index/hamming_index.h"

namespace hamming {

/// \brief HEngine-S static signature index for thresholds up to h_max.
class HEngineIndex final : public HammingIndex {
 public:
  /// \param h_max largest query threshold the segmentation must stay
  ///   exact for.
  explicit HEngineIndex(std::size_t h_max) : h_max_(h_max) {}

  std::string name() const override { return "HEngine"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return id_to_slot_.size(); }
  MemoryBreakdown Memory() const override;

  std::size_t num_segments() const { return num_segments_; }

 private:
  std::pair<std::size_t, std::size_t> SegmentRange(std::size_t s) const;

  struct Entry {
    uint64_t key;
    TupleId id;
    uint32_t slot;  // index into code_store_ for O(1) verification
    bool operator<(const Entry& other) const {
      if (key != other.key) return key < other.key;
      return id < other.id;
    }
  };

  std::size_t h_max_;
  std::size_t num_segments_ = 0;
  std::size_t code_bits_ = 0;
  std::vector<std::vector<Entry>> tables_;  // kept sorted per segment
  // Dense fingerprint store; candidate verification reads it directly
  // instead of chasing a hash map. Slots of deleted tuples go stale but
  // are unreachable (their entries are removed from every table).
  std::vector<BinaryCode> code_store_;
  std::unordered_map<TupleId, uint32_t> id_to_slot_;
};

}  // namespace hamming

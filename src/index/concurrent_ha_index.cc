#include "index/concurrent_ha_index.h"

#include <algorithm>

#include "kernels/hamming_kernels.h"
#include "observability/request_trace.h"

namespace hamming {

// ---------------------------------------------------------------------------
// Snapshot: immutable reads over (base, delta, tombstones)
// ---------------------------------------------------------------------------

Result<std::vector<TupleId>> ConcurrentHAIndex::Snapshot::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  HAMMING_ASSIGN_OR_RETURN(auto pairs, SearchWithDistances(query, h, stats));
  std::vector<TupleId> out;
  out.reserve(pairs.size());
  for (const auto& [id, dist] : pairs) out.push_back(id);
  return out;
}

Result<std::vector<std::pair<TupleId, uint32_t>>>
ConcurrentHAIndex::Snapshot::SearchWithDistances(const BinaryCode& query,
                                                 std::size_t h,
                                                 obs::QueryStats* stats) const {
  HAMMING_ASSIGN_OR_RETURN(auto out,
                           base_->SearchWithDistances(query, h, stats));
  // Deletes against the frozen base are tombstones; filter them out
  // before appending delta matches so a reinserted id cannot appear
  // twice (its tombstone hides the base copy, the delta carries the
  // live one).
  if (!tombstones_.empty()) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (tombstones_.count(out[i].first) == 0) out[kept++] = out[i];
    }
    out.resize(kept);
  }
  std::vector<uint32_t> dists;
  kernels::BatchDistance(query, insert_store_, &dists);
  for (std::size_t i = 0; i < dists.size(); ++i) {
    if (dists[i] <= h) out.emplace_back(inserts_[i].first, dists[i]);
  }
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += inserts_.size();
    stats->exact_distance_computations += inserts_.size();
    stats->results += out.size();
  }
  return out;
}

Status ConcurrentHAIndex::Snapshot::SearchBatch(
    std::span<const QueryRequest> requests,
    std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    auto got =
        SearchWithDistances(requests[i].code, requests[i].h, &resp.stats);
    if (!got.ok()) {
      resp.status = got.status();
      continue;
    }
    auto pairs = std::move(got).ValueOrDie();
    resp.ids.reserve(pairs.size());
    resp.distances.reserve(pairs.size());
    for (const auto& [id, dist] : pairs) {
      resp.ids.push_back(id);
      resp.distances.push_back(dist);
    }
    resp.has_distances = true;
  }
  return Status::OK();
}

MemoryBreakdown ConcurrentHAIndex::Snapshot::Memory() const {
  MemoryBreakdown mb = base_->Memory();
  // The delta payload is leaf-level (stored codes and their kernel
  // mirrors); tombstones are internal structure.
  for (const auto& [id, code] : inserts_) {
    mb.leaf_bytes += sizeof(TupleId) + code.PackedBytes();
  }
  mb.leaf_bytes +=
      insert_store_.BufferBytes() + insert_vstore_.BufferBytes();
  mb.internal_bytes += tombstones_.size() * sizeof(TupleId);
  return mb;
}

std::vector<std::pair<TupleId, BinaryCode>>
ConcurrentHAIndex::Snapshot::ExportTuples() const {
  std::vector<std::pair<TupleId, BinaryCode>> out = base_->ExportTuples();
  if (!tombstones_.empty()) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (tombstones_.count(out[i].first) == 0) {
        out[kept++] = std::move(out[i]);
      }
    }
    out.resize(kept);
  }
  out.insert(out.end(), inserts_.begin(), inserts_.end());
  return out;
}

// ---------------------------------------------------------------------------
// ConcurrentHAIndex: serialized mutators, publish-and-pin readers
// ---------------------------------------------------------------------------

ConcurrentHAIndex::ConcurrentHAIndex(ConcurrentHAIndexOptions opts)
    : opts_(std::move(opts)), publisher_(opts_.metrics) {
  // Snapshot search filters tombstones by id, so the base must keep its
  // per-leaf tuple-id tables (leafless Option B mode cannot be wrapped).
  opts_.base.store_tuple_ids = true;
  if (opts_.publish_threshold == 0) opts_.publish_threshold = 1;
  if (opts_.rebuild_threshold == 0) opts_.rebuild_threshold = 1;
  MutexLock lock(&write_mu_);
  base_ = std::make_shared<const DynamicHAIndex>(opts_.base);
  // Publish an empty epoch 0 so Pin() never observes null.
  Status st = PublishLocked();
  (void)st;  // publishing an empty delta cannot fail
}

Status ConcurrentHAIndex::Build(const std::vector<BinaryCode>& codes) {
  std::vector<TupleId> ids(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ids[i] = static_cast<TupleId>(i);
  }
  return BuildWithIds(ids, codes);
}

Status ConcurrentHAIndex::BuildWithIds(const std::vector<TupleId>& ids,
                                       const std::vector<BinaryCode>& codes) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("ids/codes size mismatch");
  }
  MutexLock lock(&write_mu_);
  std::unordered_map<TupleId, BinaryCode> live;
  live.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!live.emplace(ids[i], codes[i]).second) {
      return Status::InvalidArgument("duplicate tuple id in Build");
    }
  }
  auto base = std::make_shared<DynamicHAIndex>(opts_.base);
  HAMMING_RETURN_NOT_OK(base->BuildWithIds(ids, codes));
  base_ = std::move(base);
  live_ = std::move(live);
  delta_inserts_.clear();
  tombstones_.clear();
  code_bits_ = codes.empty() ? 0 : codes.front().size();
  pending_ = 0;
  return PublishLocked();
}

Status ConcurrentHAIndex::Insert(TupleId id, const BinaryCode& code) {
  MutexLock lock(&write_mu_);
  HAMMING_RETURN_NOT_OK(InsertLocked(id, code));
  return CommitMutationLocked();
}

Status ConcurrentHAIndex::Delete(TupleId id, const BinaryCode& code) {
  MutexLock lock(&write_mu_);
  HAMMING_RETURN_NOT_OK(DeleteLocked(id, code));
  return CommitMutationLocked();
}

Status ConcurrentHAIndex::InsertLocked(TupleId id, const BinaryCode& code) {
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  if (!live_.emplace(id, code).second) {
    return Status::InvalidArgument("duplicate tuple id in Insert");
  }
  // If the id was deleted from the base earlier its tombstone stays:
  // it keeps hiding the base copy while the delta carries the new one.
  delta_inserts_.emplace_back(id, code);
  return Status::OK();
}

Status ConcurrentHAIndex::DeleteLocked(TupleId id, const BinaryCode& code) {
  auto it = live_.find(id);
  if (it == live_.end() || !(it->second == code)) {
    return Status::KeyError("tuple not found in CHA index");
  }
  live_.erase(it);
  // A delta-resident insert is simply dropped; only base-resident
  // tuples need a tombstone.
  auto di = std::find_if(
      delta_inserts_.begin(), delta_inserts_.end(),
      [id](const std::pair<TupleId, BinaryCode>& p) { return p.first == id; });
  if (di != delta_inserts_.end()) {
    *di = std::move(delta_inserts_.back());
    delta_inserts_.pop_back();
  } else {
    tombstones_.insert(id);
  }
  return Status::OK();
}

Status ConcurrentHAIndex::CommitMutationLocked() {
  if (delta_inserts_.size() + tombstones_.size() >= opts_.rebuild_threshold) {
    HAMMING_RETURN_NOT_OK(RebuildBaseLocked());
    pending_ = 0;
    return PublishLocked();
  }
  if (++pending_ >= opts_.publish_threshold) {
    pending_ = 0;
    return PublishLocked();
  }
  return Status::OK();
}

Status ConcurrentHAIndex::RebuildBaseLocked() {
  std::vector<TupleId> ids;
  std::vector<BinaryCode> codes;
  ids.reserve(live_.size());
  codes.reserve(live_.size());
  for (const auto& [id, code] : live_) {
    ids.push_back(id);
    codes.push_back(code);
  }
  // Readers keep serving the old snapshot (it owns a strong reference
  // to the old base) while this H-Build runs.
  auto base = std::make_shared<DynamicHAIndex>(opts_.base);
  HAMMING_RETURN_NOT_OK(base->BuildWithIds(ids, codes));
  base_ = std::move(base);
  delta_inserts_.clear();
  tombstones_.clear();
  ++rebuilds_;
  return Status::OK();
}

Status ConcurrentHAIndex::PublishLocked() {
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->base_ = base_;
  snap->inserts_ = delta_inserts_;
  snap->insert_store_.Reset(code_bits_);
  for (const auto& [id, code] : delta_inserts_) {
    HAMMING_RETURN_NOT_OK(snap->insert_store_.Append(code));
  }
  snap->insert_vstore_.AssignTransposed(snap->insert_store_);
  snap->tombstones_ = tombstones_;
  snap->size_ = live_.size();
  snap->epoch_ = next_epoch_++;
  const uint64_t epoch = snap->epoch_;
  publisher_.Publish(std::move(snap), epoch);
  return Status::OK();
}

Result<std::vector<TupleId>> ConcurrentHAIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  return Pin()->Search(query, h, stats);
}

Status ConcurrentHAIndex::SearchBatch(std::span<const QueryRequest> requests,
                                      std::span<QueryResponse> responses) const {
  // The pin itself is the interesting serving span: it is where a batch
  // binds to one published epoch (and where reclamation pressure would
  // show up as latency). Recorded only when the serving layer installed
  // a span sink for this thread.
  obs::ScopedRequestSpan pin_span(obs::RequestPhase::kEpochPin);
  SnapshotPtr snap = Pin();
  pin_span.SetDetail(snap->epoch());
  pin_span.End();
  return snap->SearchBatch(requests, responses);
}

Status ConcurrentHAIndex::KnnBatch(std::span<const QueryRequest> requests,
                                   std::span<QueryResponse> responses) const {
  obs::ScopedRequestSpan pin_span(obs::RequestPhase::kEpochPin);
  SnapshotPtr snap = Pin();
  pin_span.SetDetail(snap->epoch());
  pin_span.End();
  return snap->KnnBatch(requests, responses);
}

Result<std::vector<std::pair<TupleId, uint32_t>>> ConcurrentHAIndex::Knn(
    const BinaryCode& query, std::size_t k, obs::QueryStats* stats) const {
  return Pin()->Knn(query, k, stats);
}

std::size_t ConcurrentHAIndex::size() const { return Pin()->size(); }

MemoryBreakdown ConcurrentHAIndex::Memory() const { return Pin()->Memory(); }

Status ConcurrentHAIndex::Publish() {
  MutexLock lock(&write_mu_);
  pending_ = 0;
  return PublishLocked();
}

uint64_t ConcurrentHAIndex::rebuilds() const {
  MutexLock lock(&write_mu_);
  return rebuilds_;
}

}  // namespace hamming

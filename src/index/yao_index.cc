#include "index/yao_index.h"

#include <algorithm>

namespace hamming {

Status YaoIndex::EnsureLayout(const BinaryCode& code) {
  if (code_bits_ == 0) {
    code_bits_ = code.size();
    if (code_bits_ < 2) {
      return Status::InvalidArgument("YaoIndex needs at least 2 bits");
    }
    split_ = code_bits_ / 2;
    if (split_ > 64 || code_bits_ - split_ > 64) {
      return Status::InvalidArgument(
          "YaoIndex half keys are limited to 64 bits each");
    }
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  return Status::OK();
}

uint64_t YaoIndex::HalfKey(bool right, const BinaryCode& code) const {
  return right ? code.SubstringAsUint64(split_, code_bits_ - split_)
               : code.SubstringAsUint64(0, split_);
}

Status YaoIndex::Build(const std::vector<BinaryCode>& codes) {
  left_.clear();
  right_.clear();
  stored_.clear();
  code_bits_ = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HAMMING_RETURN_NOT_OK(Insert(static_cast<TupleId>(i), codes[i]));
  }
  return Status::OK();
}

Status YaoIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(EnsureLayout(code));
  left_[HalfKey(false, code)].push_back({id, code});
  right_[HalfKey(true, code)].push_back({id, code});
  stored_[id] = code;
  return Status::OK();
}

Status YaoIndex::Delete(TupleId id, const BinaryCode& code) {
  auto it = stored_.find(id);
  if (it == stored_.end() || it->second != code) {
    return Status::KeyError("tuple not found in Yao index");
  }
  auto drop = [id](std::unordered_map<uint64_t, std::vector<Entry>>* table,
                   uint64_t key) {
    auto bucket_it = table->find(key);
    if (bucket_it == table->end()) return;
    auto& bucket = bucket_it->second;
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 bucket.end());
    if (bucket.empty()) table->erase(bucket_it);
  };
  drop(&left_, HalfKey(false, code));
  drop(&right_, HalfKey(true, code));
  stored_.erase(it);
  return Status::OK();
}

Result<std::vector<TupleId>> YaoIndex::Search(const BinaryCode& query,
                                              std::size_t h,
                                              obs::QueryStats* stats) const {
  if (stored_.empty()) return std::vector<TupleId>{};
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  if (h > 1) {
    return Status::InvalidArgument(
        "YaoIndex supports Hamming thresholds 0 and 1 only");
  }
  std::vector<TupleId> out;
  auto probe = [&out, &query, h, stats](
                   const std::unordered_map<uint64_t, std::vector<Entry>>&
                       table,
                   uint64_t key) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    auto it = table.find(key);
    if (it == table.end()) return;
    if (stats != nullptr) {
      stats->candidates_generated += it->second.size();
      stats->exact_distance_computations += it->second.size();
    }
    for (const Entry& e : it->second) {
      if (e.code.WithinDistance(query, h)) out.push_back(e.id);
    }
  };
  probe(left_, HalfKey(false, query));
  probe(right_, HalfKey(true, query));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->results += out.size();
  return out;
}

MemoryBreakdown YaoIndex::Memory() const {
  MemoryBreakdown mb;
  std::size_t per_code = code_bits_ ? (code_bits_ + 7) / 8 : 0;
  for (const auto* table : {&left_, &right_}) {
    mb.internal_bytes += table->size() * (sizeof(uint64_t) + sizeof(void*));
    for (const auto& [key, bucket] : *table) {
      (void)key;
      mb.internal_bytes += bucket.size() * (sizeof(TupleId) + per_code);
    }
  }
  for (const auto& [id, code] : stored_) {
    (void)id;
    mb.leaf_bytes += sizeof(TupleId) + code.PackedBytes();
  }
  return mb;
}

}  // namespace hamming

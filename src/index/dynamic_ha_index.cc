#include "index/dynamic_ha_index.h"

#include <algorithm>
#include <vector>

#include "code/gray.h"
#include "kernels/hamming_kernels.h"

namespace hamming {

uint32_t DynamicHAIndex::NewNode() {
  nodes_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Status DynamicHAIndex::Build(const std::vector<BinaryCode>& codes) {
  std::vector<TupleId> ids(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ids[i] = static_cast<TupleId>(i);
  }
  return BuildWithIds(ids, codes);
}

Status DynamicHAIndex::BuildWithIds(const std::vector<TupleId>& ids,
                                    const std::vector<BinaryCode>& codes) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("ids/codes size mismatch");
  }
  nodes_.clear();
  roots_.clear();
  buffer_.clear();
  buffer_store_.Clear();
  buffer_vstore_.Clear();
  num_tuples_ = 0;
  code_bits_ = codes.empty() ? 0 : codes[0].size();

  // Group duplicate codes; each distinct code becomes one leaf whose hash
  // table maps it to all tuple ids carrying it (Section 4.5).
  std::unordered_map<BinaryCode, std::vector<TupleId>, BinaryCodeHash> groups;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i].size() != code_bits_) {
      return Status::InvalidArgument("code length mismatch");
    }
    groups[codes[i]].push_back(ids[i]);
  }
  std::vector<std::pair<BinaryCode, std::vector<TupleId>>> group_vec;
  group_vec.reserve(groups.size());
  for (auto& [code, ids] : groups) {
    num_tuples_ += ids.size();
    group_vec.emplace_back(code, std::move(ids));
  }
  BuildForest(std::move(group_vec));
  return Status::OK();
}

void DynamicHAIndex::BuildForest(
    std::vector<std::pair<BinaryCode, std::vector<TupleId>>> groups) {
  if (groups.empty()) return;

  // Step 1 of Algorithm 1: sort by non-decreasing Gray order (or the
  // ablation alternatives).
  switch (opts_.sort_mode) {
    case BuildSortMode::kGray:
      std::sort(groups.begin(), groups.end(),
                [](const auto& a, const auto& b) {
                  int cmp = GrayRank(a.first).Compare(GrayRank(b.first));
                  if (cmp != 0) return cmp < 0;
                  return a.first < b.first;
                });
      break;
    case BuildSortMode::kLexicographic:
      std::sort(groups.begin(), groups.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      break;
    case BuildSortMode::kNone:
      break;
  }

  // Leaves.
  std::vector<uint32_t> current;
  current.reserve(groups.size());
  std::vector<uint32_t> new_roots;
  for (auto& [code, ids] : groups) {
    uint32_t leaf = NewNode();
    Node& n = nodes_[leaf];
    n.cumulative = MaskedCode::FromFullCode(code);
    n.is_leaf = true;
    n.frequency = static_cast<uint32_t>(ids.size());
    if (opts_.store_tuple_ids) n.tuple_ids = std::move(ids);
    current.push_back(leaf);
  }

  // Steps 2..: build levels bottom-up with the sliding window, merging
  // same-pattern parents, until one node remains or the depth cap hits.
  const std::size_t w = std::max<std::size_t>(2, opts_.window);
  std::size_t depth = 0;
  while (current.size() > 1 && depth < opts_.max_depth) {
    std::vector<uint32_t> next;
    std::unordered_map<MaskedCode, uint32_t, MaskedCodeHash> consolidate;
    for (std::size_t i = 0; i < current.size(); i += w) {
      std::size_t end = std::min(i + w, current.size());
      if (end - i == 1) {
        // A singleton window cannot share; the node rises unchanged.
        next.push_back(current[i]);
        continue;
      }
      MaskedCode agreement = nodes_[current[i]].cumulative;
      for (std::size_t j = i + 1; j < end; ++j) {
        agreement =
            MaskedCode::Agreement(agreement, nodes_[current[j]].cumulative);
      }
      if (agreement.AllWildcard()) {
        // No shared FLSSeq: link these nodes to the top level (Alg. 1,
        // line 16).
        for (std::size_t j = i; j < end; ++j) new_roots.push_back(current[j]);
        continue;
      }
      uint32_t parent;
      auto it = consolidate.find(agreement);
      if (it != consolidate.end()) {
        parent = it->second;  // same FLSSeq: update frequency, reuse node
      } else {
        parent = NewNode();
        nodes_[parent].cumulative = agreement;
        consolidate.emplace(agreement, parent);
        next.push_back(parent);
      }
      for (std::size_t j = i; j < end; ++j) {
        nodes_[current[j]].parent = static_cast<int32_t>(parent);
        nodes_[parent].children.push_back(current[j]);
        nodes_[parent].frequency += nodes_[current[j]].frequency;
      }
    }
    current = std::move(next);
    ++depth;
  }
  for (uint32_t n : current) new_roots.push_back(n);

  for (uint32_t r : new_roots) {
    ComputeResiduals(r);
    roots_.push_back(r);
  }
}

void DynamicHAIndex::ComputeResiduals(uint32_t root) {
  nodes_[root].residual = nodes_[root].cumulative;
  std::vector<uint32_t> stack{root};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    const MaskedCode& parent_cum = nodes_[id].cumulative;
    for (uint32_t c : nodes_[id].children) {
      nodes_[c].residual = nodes_[c].cumulative.Residual(parent_cum);
      stack.push_back(c);
    }
  }
}

Status DynamicHAIndex::Insert(TupleId id, const BinaryCode& code) {
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  buffer_.emplace_back(id, code);
  HAMMING_RETURN_NOT_OK(buffer_store_.Append(code));
  HAMMING_RETURN_NOT_OK(buffer_vstore_.Append(code));
  ++num_tuples_;
  if (buffer_.size() >= opts_.insert_flush_threshold) FlushBuffer();
  return Status::OK();
}

void DynamicHAIndex::FlushBuffer() {
  if (buffer_.empty()) return;
  std::unordered_map<BinaryCode, std::vector<TupleId>, BinaryCodeHash> groups;
  for (auto& [id, code] : buffer_) groups[code].push_back(id);
  std::vector<std::pair<BinaryCode, std::vector<TupleId>>> group_vec;
  group_vec.reserve(groups.size());
  for (auto& [code, ids] : groups) group_vec.emplace_back(code, std::move(ids));
  buffer_.clear();
  buffer_store_.Clear();
  buffer_vstore_.Clear();
  BuildForest(std::move(group_vec));
}

void DynamicHAIndex::DetachAndPropagate(uint32_t node, uint32_t count) {
  // Decrement frequencies up the ancestor chain; unlink nodes that reach
  // zero (Algorithm 2, lines 5-6 and 16-17).
  int32_t cur = static_cast<int32_t>(node);
  while (cur != kNoParent) {
    Node& n = nodes_[cur];
    n.frequency -= count;
    int32_t parent = n.parent;
    if (n.frequency == 0) {
      n.alive = false;
      if (parent == kNoParent) {
        roots_.erase(std::remove(roots_.begin(), roots_.end(),
                                 static_cast<uint32_t>(cur)),
                     roots_.end());
      } else {
        auto& siblings = nodes_[parent].children;
        siblings.erase(std::remove(siblings.begin(), siblings.end(),
                                   static_cast<uint32_t>(cur)),
                       siblings.end());
      }
    }
    cur = parent;
  }
}

Status DynamicHAIndex::Delete(TupleId id, const BinaryCode& code) {
  if (!opts_.store_tuple_ids) {
    return Status::NotImplemented(
        "Delete requires tuple ids; this index is leafless (Option B)");
  }
  // The insert buffer is checked first.
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    if (buffer_[i].first == id && buffer_[i].second == code) {
      buffer_[i] = buffer_.back();
      buffer_.pop_back();
      buffer_store_.SwapRemove(i);
      buffer_vstore_.SwapRemove(i);
      --num_tuples_;
      return Status::OK();
    }
  }
  // Depth-first walk through bitmatch-ing nodes (Algorithm 2).
  std::vector<uint32_t> stack;
  for (uint32_t r : roots_) {
    if (nodes_[r].residual.Matches(code)) stack.push_back(r);
  }
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    Node& n = nodes_[cur];
    if (n.is_leaf) {
      auto it = std::find(n.tuple_ids.begin(), n.tuple_ids.end(), id);
      if (it == n.tuple_ids.end()) continue;
      n.tuple_ids.erase(it);
      --num_tuples_;
      DetachAndPropagate(cur, 1);
      return Status::OK();
    }
    for (uint32_t c : n.children) {
      if (nodes_[c].residual.Matches(code)) stack.push_back(c);
    }
  }
  return Status::KeyError("tuple not found in DHA index");
}

Result<std::vector<TupleId>> DynamicHAIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  if (!opts_.store_tuple_ids) {
    return Status::NotImplemented(
        "Search requires tuple ids; use SearchCodes on a leafless index");
  }
  if (code_bits_ != 0 && query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  std::vector<TupleId> out;
  // Algorithm 3: breadth-first expansion with accumulated distance. The
  // queue is a flat vector with a moving head (cheaper than std::deque
  // on this hot path).
  std::vector<std::pair<uint32_t, uint32_t>> queue;
  queue.reserve(64);
  for (uint32_t r : roots_) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    std::size_t d = nodes_[r].residual.PartialDistance(query);
    if (d <= h) queue.emplace_back(r, static_cast<uint32_t>(d));
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    auto [cur, acc] = queue[head];
    const Node& n = nodes_[cur];
    if (n.is_leaf) {
      // Residual masks along the path partition all L bits, so acc is the
      // exact Hamming distance — qualified tuples are collected directly.
      out.insert(out.end(), n.tuple_ids.begin(), n.tuple_ids.end());
      if (stats != nullptr) {
        stats->candidates_generated += n.tuple_ids.size();
      }
      continue;
    }
    for (uint32_t c : n.children) {
      if (stats != nullptr) ++stats->signatures_enumerated;
      std::size_t d = acc + nodes_[c].residual.PartialDistance(query);
      if (d <= h) queue.emplace_back(c, static_cast<uint32_t>(d));
    }
  }
  // The insert buffer (bounded by the flush threshold) is scanned with
  // one batched kernel pass; the layout dispatch picks the bit-plane
  // mirror when the buffer is large and the radius selective.
  std::vector<uint32_t> slots;
  kernels::VerticalScanStats vstats;
  kernels::BatchWithinDistanceDual(query, buffer_store_, &buffer_vstore_, h,
                                   &slots, &vstats);
  for (uint32_t slot : slots) out.push_back(buffer_[slot].first);
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += buffer_.size();
    stats->exact_distance_computations += buffer_.size();
    stats->results += out.size();
    stats->planes_scanned += vstats.planes_scanned;
    stats->blocks_pruned += vstats.blocks_pruned;
  }
  return out;
}

Result<std::vector<std::pair<TupleId, uint32_t>>>
DynamicHAIndex::SearchWithDistances(const BinaryCode& query, std::size_t h,
                                    obs::QueryStats* stats) const {
  if (!opts_.store_tuple_ids) {
    return Status::NotImplemented(
        "SearchWithDistances requires tuple ids (leafful index)");
  }
  if (code_bits_ != 0 && query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  std::vector<std::pair<TupleId, uint32_t>> out;
  std::vector<std::pair<uint32_t, uint32_t>> queue;
  queue.reserve(64);
  for (uint32_t r : roots_) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    std::size_t d = nodes_[r].residual.PartialDistance(query);
    if (d <= h) queue.emplace_back(r, static_cast<uint32_t>(d));
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    auto [cur, acc] = queue[head];
    const Node& n = nodes_[cur];
    if (n.is_leaf) {
      for (TupleId id : n.tuple_ids) out.emplace_back(id, acc);
      if (stats != nullptr) {
        stats->candidates_generated += n.tuple_ids.size();
      }
      continue;
    }
    for (uint32_t c : n.children) {
      if (stats != nullptr) ++stats->signatures_enumerated;
      std::size_t d = acc + nodes_[c].residual.PartialDistance(query);
      if (d <= h) queue.emplace_back(c, static_cast<uint32_t>(d));
    }
  }
  std::vector<uint32_t> dists;
  kernels::BatchDistance(query, buffer_store_, &dists);
  for (std::size_t i = 0; i < dists.size(); ++i) {
    if (dists[i] <= h) out.emplace_back(buffer_[i].first, dists[i]);
  }
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += buffer_.size();
    stats->exact_distance_computations += buffer_.size();
    stats->results += out.size();
  }
  return out;
}

Status DynamicHAIndex::SearchBatch(std::span<const QueryRequest> requests,
                                   std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    auto got =
        SearchWithDistances(requests[i].code, requests[i].h, &resp.stats);
    if (!got.ok()) {
      resp.status = got.status();
      continue;
    }
    auto pairs = std::move(got).ValueOrDie();
    resp.ids.reserve(pairs.size());
    resp.distances.reserve(pairs.size());
    for (const auto& [id, dist] : pairs) {
      resp.ids.push_back(id);
      resp.distances.push_back(dist);
    }
    resp.has_distances = true;
  }
  return Status::OK();
}

Result<std::vector<BinaryCode>> DynamicHAIndex::SearchCodes(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  if (code_bits_ != 0 && query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  std::vector<BinaryCode> out;
  std::vector<std::pair<uint32_t, uint32_t>> queue;
  queue.reserve(64);
  for (uint32_t r : roots_) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    std::size_t d = nodes_[r].residual.PartialDistance(query);
    if (d <= h) queue.emplace_back(r, static_cast<uint32_t>(d));
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    auto [cur, acc] = queue[head];
    const Node& n = nodes_[cur];
    if (n.is_leaf) {
      // A leaf's cumulative pattern is the full code.
      out.push_back(n.cumulative.value());
      if (stats != nullptr) ++stats->candidates_generated;
      continue;
    }
    for (uint32_t c : n.children) {
      if (stats != nullptr) ++stats->signatures_enumerated;
      std::size_t d = acc + nodes_[c].residual.PartialDistance(query);
      if (d <= h) queue.emplace_back(c, static_cast<uint32_t>(d));
    }
  }
  std::vector<uint32_t> slots;
  kernels::BatchWithinDistanceDual(query, buffer_store_, &buffer_vstore_, h,
                                   &slots);
  for (uint32_t slot : slots) out.push_back(buffer_[slot].second);
  if (stats != nullptr) {
    ++stats->kernel_batch_calls;
    stats->candidates_generated += buffer_.size();
    stats->exact_distance_computations += buffer_.size();
    stats->results += out.size();
  }
  return out;
}

namespace {

// Lower bound on ||r, s||_h for any r below `a` and s below `b`: differing
// bits on the positions both cumulative patterns determine. At leaf x leaf
// both masks cover all L bits, so the bound is the exact distance.
inline std::size_t PairLowerBound(const MaskedCode& a, const MaskedCode& b) {
  const auto& av = a.value().words();
  const auto& am = a.mask().words();
  const auto& bv = b.value().words();
  const auto& bm = b.mask().words();
  std::size_t c = 0;
  const std::size_t nw = a.value().SignificantWords();
  for (std::size_t i = 0; i < nw; ++i) {
    c += static_cast<std::size_t>(
        std::popcount((av[i] ^ bv[i]) & am[i] & bm[i]));
  }
  return c;
}

}  // namespace

Result<std::vector<JoinPair>> DynamicHAIndex::JoinWith(
    const DynamicHAIndex& other, std::size_t h) const {
  if (!opts_.store_tuple_ids || !other.opts_.store_tuple_ids) {
    return Status::NotImplemented("JoinWith requires tuple ids on both sides");
  }
  if (code_bits_ != 0 && other.code_bits_ != 0 &&
      code_bits_ != other.code_bits_) {
    return Status::InvalidArgument("joining indexes of different code length");
  }
  std::vector<JoinPair> out;

  // Dual traversal over subtree pairs. Expansion policy: expand the side
  // whose pattern determines fewer positions (the less constrained one);
  // a leaf is never expanded.
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  for (uint32_t ra : roots_) {
    for (uint32_t rb : other.roots_) {
      stack.emplace_back(ra, rb);
    }
  }
  while (!stack.empty()) {
    auto [na, nb] = stack.back();
    stack.pop_back();
    const Node& a = nodes_[na];
    const Node& b = other.nodes_[nb];
    if (PairLowerBound(a.cumulative, b.cumulative) > h) continue;
    if (a.is_leaf && b.is_leaf) {
      // Exact distance == the bound, already known <= h.
      for (TupleId r : a.tuple_ids) {
        for (TupleId s : b.tuple_ids) out.push_back({r, s});
      }
      continue;
    }
    bool expand_a;
    if (a.is_leaf) {
      expand_a = false;
    } else if (b.is_leaf) {
      expand_a = true;
    } else {
      expand_a =
          a.cumulative.EffectiveBits() <= b.cumulative.EffectiveBits();
    }
    if (expand_a) {
      for (uint32_t c : a.children) stack.emplace_back(c, nb);
    } else {
      for (uint32_t c : b.children) stack.emplace_back(na, c);
    }
  }

  // Buffered inserts on this side probe the other index through one
  // coalesced batch (bounded by the flush threshold).
  if (!buffer_.empty()) {
    std::vector<QueryRequest> reqs;
    reqs.reserve(buffer_.size());
    for (const auto& [rid, rcode] : buffer_) {
      reqs.push_back(QueryRequest::Range(rcode, h));
    }
    std::vector<QueryResponse> resps(reqs.size());
    HAMMING_RETURN_NOT_OK(other.SearchBatch(reqs, resps));
    for (std::size_t i = 0; i < resps.size(); ++i) {
      HAMMING_RETURN_NOT_OK(resps[i].status);
      for (TupleId s : resps[i].ids) {
        out.push_back({buffer_[i].first, s});
      }
    }
  }
  for (const auto& [sid, scode] : other.buffer_) {
    // Probe only the built part of this index (buffer x buffer pairs were
    // already covered above because other.Search scans other's buffer —
    // exclude them here by probing the forest directly).
    std::vector<std::pair<uint32_t, std::size_t>> queue;
    for (uint32_t r : roots_) {
      std::size_t d = nodes_[r].residual.PartialDistance(scode);
      if (d <= h) queue.emplace_back(r, d);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      auto [cur, acc] = queue[head];
      const Node& n = nodes_[cur];
      if (n.is_leaf) {
        for (TupleId r : n.tuple_ids) out.push_back({r, sid});
        continue;
      }
      for (uint32_t c : n.children) {
        std::size_t d = acc + nodes_[c].residual.PartialDistance(scode);
        if (d <= h) queue.emplace_back(c, d);
      }
    }
  }
  return out;
}

HAIndexStats DynamicHAIndex::Stats() const {
  HAIndexStats stats;
  // Depth = longest root-to-leaf chain over live nodes.
  std::vector<std::pair<uint32_t, std::size_t>> stack;
  for (uint32_t r : roots_) stack.emplace_back(r, 1);
  while (!stack.empty()) {
    auto [cur, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[cur];
    if (n.is_leaf) {
      ++stats.num_leaves;
      stats.depth = std::max(stats.depth, depth);
    } else {
      ++stats.num_internal_nodes;
      stats.num_edges += n.children.size();
      for (uint32_t c : n.children) stack.emplace_back(c, depth + 1);
    }
  }
  return stats;
}

std::vector<std::pair<TupleId, BinaryCode>> DynamicHAIndex::ExportTuples()
    const {
  std::vector<std::pair<TupleId, BinaryCode>> out;
  out.reserve(num_tuples_);
  std::vector<uint32_t> stack(roots_.begin(), roots_.end());
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    const Node& n = nodes_[cur];
    if (n.is_leaf) {
      // A leaf's cumulative pattern is the full code.
      for (TupleId id : n.tuple_ids) {
        out.emplace_back(id, n.cumulative.value());
      }
    } else {
      for (uint32_t c : n.children) stack.push_back(c);
    }
  }
  out.insert(out.end(), buffer_.begin(), buffer_.end());
  return out;
}

Status DynamicHAIndex::CheckConsistency() const {
  // Insert buffer and its kernel mirrors must agree slot-for-slot.
  if (buffer_store_.size() != buffer_.size() ||
      buffer_vstore_.size() != buffer_.size()) {
    return Status::IndexError("buffer/mirror size mismatch");
  }
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    if (!buffer_store_.Matches(i, buffer_[i].second)) {
      return Status::IndexError("buffer_store_ slot diverged from buffer_");
    }
  }
  if (!buffer_vstore_.IsTransposeOf(buffer_store_)) {
    return Status::IndexError(
        "buffer_vstore_ is not the transpose of buffer_store_");
  }
  // Forest frequencies: every live node's frequency is the number of
  // live tuples below it; leaves carry their id-table size.
  std::size_t leaf_tuples = 0;
  std::vector<uint32_t> stack(roots_.begin(), roots_.end());
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    const Node& n = nodes_[cur];
    if (!n.alive) {
      return Status::IndexError("dead node reachable from the roots");
    }
    if (n.is_leaf) {
      if (opts_.store_tuple_ids && n.frequency != n.tuple_ids.size()) {
        return Status::IndexError("leaf frequency != tuple-id count");
      }
      leaf_tuples += n.frequency;
    } else {
      uint32_t below = 0;
      for (uint32_t c : n.children) {
        below += nodes_[c].frequency;
        stack.push_back(c);
      }
      if (n.frequency != below) {
        return Status::IndexError("internal frequency != sum of children");
      }
    }
  }
  if (leaf_tuples + buffer_.size() != num_tuples_) {
    return Status::IndexError("size() != leaf tuples + buffered inserts");
  }
  return Status::OK();
}

Status DynamicHAIndex::MergeFrom(const DynamicHAIndex& other) {
  if (code_bits_ == 0) code_bits_ = other.code_bits_;
  if (other.code_bits_ != 0 && other.code_bits_ != code_bits_) {
    return Status::InvalidArgument("merging indexes of different code length");
  }
  if (opts_.store_tuple_ids != other.opts_.store_tuple_ids) {
    return Status::InvalidArgument("merging leafful and leafless indexes");
  }
  const uint32_t offset = static_cast<uint32_t>(nodes_.size());

  // Adopt the other forest's live nodes wholesale (dead nodes come along
  // but stay unreachable; Serialize compacts them away).
  nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
  for (std::size_t i = offset; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.parent != kNoParent) n.parent += static_cast<int32_t>(offset);
    for (uint32_t& c : n.children) c += offset;
  }

  // Root-level consolidation: a remote root with the same FLSSeq as a
  // local internal root folds into it (Section 5.2's merge of same-pattern
  // non-leaf nodes; children residuals stay valid because the shared
  // pattern — hence the covered positions — is identical).
  std::unordered_map<MaskedCode, uint32_t, MaskedCodeHash> local_roots;
  for (uint32_t r : roots_) {
    if (!nodes_[r].is_leaf) local_roots.emplace(nodes_[r].residual, r);
  }
  for (uint32_t r : other.roots_) {
    uint32_t nr = r + offset;
    Node& incoming = nodes_[nr];
    auto it = local_roots.find(incoming.residual);
    if (it != local_roots.end() && !incoming.is_leaf) {
      Node& target = nodes_[it->second];
      for (uint32_t c : incoming.children) {
        nodes_[c].parent = static_cast<int32_t>(it->second);
        target.children.push_back(c);
      }
      target.frequency += incoming.frequency;
      incoming.alive = false;
      incoming.children.clear();
    } else {
      roots_.push_back(nr);
      if (!incoming.is_leaf) local_roots.emplace(incoming.residual, nr);
    }
  }
  buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
  for (const auto& [id, code] : other.buffer_) {
    (void)id;
    HAMMING_RETURN_NOT_OK(buffer_store_.Append(code));
    HAMMING_RETURN_NOT_OK(buffer_vstore_.Append(code));
  }
  num_tuples_ += other.num_tuples_;
  return Status::OK();
}

MemoryBreakdown DynamicHAIndex::Memory() const {
  MemoryBreakdown mb;
  std::vector<uint32_t> stack(roots_.begin(), roots_.end());
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    const Node& n = nodes_[cur];
    if (n.is_leaf) {
      // Leaf payload: the full code plus its tuple-id hash table.
      mb.leaf_bytes += n.cumulative.value().PackedBytes() +
                       n.tuple_ids.size() * sizeof(TupleId);
    } else {
      mb.internal_bytes += n.residual.PackedBytes() + sizeof(uint32_t) +
                           n.children.size() * sizeof(uint32_t);
      for (uint32_t c : n.children) stack.push_back(c);
    }
  }
  // Leaves also hang off internal nodes; walk found them above. Buffered
  // inserts count as leaf payload.
  mb.leaf_bytes +=
      buffer_.size() * (sizeof(TupleId) + (code_bits_ + 7) / 8);
  return mb;
}

void DynamicHAIndex::Serialize(BufferWriter* w) const {
  // Compact live, reachable nodes.
  std::vector<uint32_t> order;
  std::vector<int32_t> remap(nodes_.size(), -1);
  std::vector<uint32_t> stack(roots_.begin(), roots_.end());
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    if (remap[cur] != -1) continue;
    remap[cur] = static_cast<int32_t>(order.size());
    order.push_back(cur);
    for (uint32_t c : nodes_[cur].children) stack.push_back(c);
  }

  w->PutVarint64(opts_.store_tuple_ids ? 1 : 0);
  w->PutVarint64(opts_.window);
  w->PutVarint64(opts_.max_depth);
  w->PutVarint64(code_bits_);
  w->PutVarint64(num_tuples_);
  w->PutVarint64(order.size());
  for (uint32_t old_id : order) {
    const Node& n = nodes_[old_id];
    n.residual.Serialize(w);
    n.cumulative.Serialize(w);
    w->PutVarint64Signed(n.parent == kNoParent ? -1 : remap[n.parent]);
    w->PutVarint64(n.children.size());
    for (uint32_t c : n.children) w->PutVarint64(remap[c]);
    w->PutVarint64(n.tuple_ids.size());
    for (TupleId t : n.tuple_ids) w->PutVarint64(t);
    w->PutVarint64(n.frequency);
    w->PutVarint64(n.is_leaf ? 1 : 0);
  }
  w->PutVarint64(roots_.size());
  for (uint32_t r : roots_) w->PutVarint64(remap[r]);
  w->PutVarint64(buffer_.size());
  for (const auto& [id, code] : buffer_) {
    w->PutVarint64(id);
    code.Serialize(w);
  }
}

Result<DynamicHAIndex> DynamicHAIndex::Deserialize(BufferReader* r) {
  DynamicHAIndex idx;
  uint64_t store_ids, window, max_depth, code_bits, num_tuples, num_nodes;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&store_ids));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&window));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&max_depth));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&code_bits));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&num_tuples));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&num_nodes));
  idx.opts_.store_tuple_ids = store_ids != 0;
  idx.opts_.window = window;
  idx.opts_.max_depth = max_depth;
  idx.code_bits_ = code_bits;
  idx.num_tuples_ = num_tuples;
  // Sanity bound before allocating: every serialized node takes at least
  // several bytes, so a count beyond the remaining payload is corruption.
  if (code_bits > BinaryCode::kMaxBits || num_nodes > r->remaining()) {
    return Status::IOError("corrupt HA-Index payload");
  }
  idx.nodes_.resize(num_nodes);
  for (auto& n : idx.nodes_) {
    HAMMING_RETURN_NOT_OK(MaskedCode::Deserialize(r, &n.residual));
    HAMMING_RETURN_NOT_OK(MaskedCode::Deserialize(r, &n.cumulative));
    int64_t parent;
    HAMMING_RETURN_NOT_OK(r->GetVarint64Signed(&parent));
    n.parent = static_cast<int32_t>(parent);
    uint64_t nc;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&nc));
    if (nc > r->remaining()) return Status::IOError("corrupt children count");
    n.children.resize(nc);
    for (uint32_t& c : n.children) {
      uint64_t v;
      HAMMING_RETURN_NOT_OK(r->GetVarint64(&v));
      c = static_cast<uint32_t>(v);
    }
    uint64_t nt;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&nt));
    if (nt > r->remaining()) return Status::IOError("corrupt tuple count");
    n.tuple_ids.resize(nt);
    for (TupleId& t : n.tuple_ids) {
      uint64_t v;
      HAMMING_RETURN_NOT_OK(r->GetVarint64(&v));
      t = static_cast<TupleId>(v);
    }
    uint64_t freq, leaf;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&freq));
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&leaf));
    n.frequency = static_cast<uint32_t>(freq);
    n.is_leaf = leaf != 0;
  }
  uint64_t nr;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&nr));
  if (nr > r->remaining()) return Status::IOError("corrupt root count");
  idx.roots_.resize(nr);
  for (uint32_t& root : idx.roots_) {
    uint64_t v;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&v));
    root = static_cast<uint32_t>(v);
  }
  uint64_t nb;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&nb));
  if (nb > r->remaining()) return Status::IOError("corrupt buffer count");
  idx.buffer_.resize(nb);
  for (auto& [id, code] : idx.buffer_) {
    uint64_t v;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&v));
    id = static_cast<TupleId>(v);
    HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(r, &code));
    if (!idx.buffer_store_.Append(code).ok() ||
        !idx.buffer_vstore_.Append(code).ok()) {
      return Status::IOError("corrupt buffer code length");
    }
  }
  // Structural validation: every reference must stay inside the node
  // array so a corrupt payload cannot crash later traversals.
  const auto n_nodes = static_cast<int64_t>(idx.nodes_.size());
  for (const auto& n : idx.nodes_) {
    if (n.parent != kNoParent &&
        (n.parent < 0 || n.parent >= n_nodes)) {
      return Status::IOError("corrupt parent reference");
    }
    for (uint32_t c : n.children) {
      if (c >= idx.nodes_.size()) {
        return Status::IOError("corrupt child reference");
      }
    }
  }
  for (uint32_t root : idx.roots_) {
    if (root >= idx.nodes_.size()) {
      return Status::IOError("corrupt root reference");
    }
  }
  return idx;
}

}  // namespace hamming

// Nested-Loops baseline (Section 3): a flat array of codes scanned with
// XOR + popcount per query. O(n) reads and O(n) distance computations per
// select; the quadratic-join strawman every other method is measured
// against.
#pragma once

#include <unordered_map>

#include "index/hamming_index.h"

namespace hamming {

/// \brief The naive scan index.
class LinearScanIndex final : public HammingIndex {
 public:
  std::string name() const override { return "Nested-Loops"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(const BinaryCode& query,
                                      std::size_t h) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return ids_.size(); }
  MemoryBreakdown Memory() const override;

 private:
  std::vector<BinaryCode> codes_;
  std::vector<TupleId> ids_;
};

}  // namespace hamming

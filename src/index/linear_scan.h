// Nested-Loops baseline (Section 3): a flat array of codes scanned with
// XOR + popcount per query. O(n) reads and O(n) distance computations per
// select; the quadratic-join strawman every other method is measured
// against. Codes live in a word-stride CodeStore so the scan runs through
// the batched kernels (kernels/hamming_kernels.h) instead of one
// BinaryCode call per code; a bit-plane-major mirror of the same codes
// lets selective (small-h) searches take the vertical plane-pruning
// kernel instead (BatchWithinDistanceDual picks per query).
#pragma once

#include "index/hamming_index.h"
#include "kernels/code_store.h"
#include "kernels/vertical_code_store.h"

namespace hamming {

/// \brief The naive scan index.
class LinearScanIndex final : public HammingIndex {
 public:
  std::string name() const override { return "Nested-Loops"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return ids_.size(); }
  MemoryBreakdown Memory() const override;

  /// \brief Exact k nearest stored tuples by Hamming distance, as
  /// (id, distance) ascending — a full batched scan with a bounded
  /// top-k heap (kernels::BatchKnn) instead of the base class's
  /// radius-expanding Search loop.
  Result<std::vector<std::pair<TupleId, uint32_t>>> Knn(
      const BinaryCode& query, std::size_t k,
      obs::QueryStats* stats = nullptr) const override;

  /// \brief Native batch range plan: requests whose radius picks the
  /// vertical layout run the plane-pruning scan (identical to the
  /// scalar path), and the rest coalesce into ONE tile-major
  /// multi-query kernel call (kernels::MultiWithinDistance) that
  /// streams the word lanes once for the whole group and reports exact
  /// distances per match (has_distances).
  Status SearchBatch(std::span<const QueryRequest> requests,
                     std::span<QueryResponse> responses) const override;

  /// \brief Native batch kNN: one multi-query bounded-heap scan
  /// (kernels::MultiKnn), bit-identical per query to the scalar Knn.
  Status KnnBatch(std::span<const QueryRequest> requests,
                  std::span<QueryResponse> responses) const override;

 private:
  kernels::CodeStore codes_;
  // Transposed mirror of codes_, maintained through every mutation so
  // threshold scans can run the vertical kernel.
  kernels::VerticalCodeStore vcodes_;
  std::vector<TupleId> ids_;
};

}  // namespace hamming

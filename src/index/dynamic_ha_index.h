// Dynamic HA-Index (Sections 4.4 - 4.6): the paper's primary contribution.
//
// Structure. A forest whose leaves are the distinct binary codes of the
// dataset (with a per-leaf hash table of tuple ids) and whose internal
// nodes carry FLSSeq patterns (MaskedCode) shared by all leaves below.
// Each node stores its *residual* pattern — the effective positions not
// already covered by an ancestor — so the masks along any root-to-leaf
// path partition the L bit positions and partial distances accumulated
// down a path sum to the exact Hamming distance at the leaf. Pruning on
// the accumulated distance is therefore safe (Proposition 1) and the leaf
// test needs no re-verification.
//
// H-Build (Algorithm 1). Codes are sorted in Gray order (Proposition 2:
// neighbours share long FLSSeqs), then scanned with a sliding window of w
// slots; each window's maximal common FLSSeq becomes a parent node, nodes
// with identical patterns are consolidated, and windows with no shared
// pattern are linked directly to the top level. Levels are built bottom-up
// until the configured depth.
//
// H-Delete (Algorithm 2) walks down through bitmatch-ing nodes,
// decrements frequencies, and removes nodes whose frequency reaches zero.
// Insert (Section 4.5) goes to a temporary buffer; when the buffer fills,
// an H-Build over the buffered tuples appends new subtrees.
//
// H-Search (Algorithm 3) is a breadth-first traversal with a queue,
// expanding a node's children only while the accumulated distance stays
// within h, and collecting tuple ids at qualifying leaves.
#pragma once

#include <unordered_map>

#include "code/masked_code.h"
#include "index/hamming_index.h"
#include "kernels/code_store.h"
#include "kernels/vertical_code_store.h"

namespace hamming {

/// \brief How H-Build orders codes before windowing (ablation knob; the
/// paper prescribes Gray order, Proposition 2).
enum class BuildSortMode {
  kGray,          // the paper's choice
  kLexicographic, // plain binary sort (prefix clustering only)
  kNone,          // input order (no clustering)
};

/// \brief Tuning parameters of H-Build (the Figure 8 sweep).
struct DynamicHAIndexOptions {
  /// Sliding-window slots w of Algorithm 1.
  std::size_t window = 8;
  /// Pre-windowing sort order (ablation; Gray is the paper's design).
  BuildSortMode sort_mode = BuildSortMode::kGray;
  /// Maximum index depth md (number of internal levels above the leaves).
  std::size_t max_depth = 16;
  /// Buffered inserts accumulated before an incremental H-Build.
  std::size_t insert_flush_threshold = 1024;
  /// When false the index keeps no tuple-id hash tables at the leaves:
  /// Search is unavailable but SearchCodes still works. This is the
  /// leafless mode Section 5.3's MapReduce Option B broadcasts.
  bool store_tuple_ids = true;
};

/// \brief Statistics exposed for the Section 4.7 analysis tests.
struct HAIndexStats {
  std::size_t num_internal_nodes = 0;
  std::size_t num_leaves = 0;
  std::size_t num_edges = 0;
  std::size_t depth = 0;
};

/// \brief The Dynamic HA-Index.
class DynamicHAIndex final : public HammingIndex {
 public:
  explicit DynamicHAIndex(DynamicHAIndexOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return "DHA-Index"; }

  Status Build(const std::vector<BinaryCode>& codes) override;

  /// \brief Bulk H-Build where tuple ids are supplied by the caller
  /// (MapReduce reducers index partition tuples whose ids are global row
  /// numbers, not local positions).
  Status BuildWithIds(const std::vector<TupleId>& ids,
                      const std::vector<BinaryCode>& codes);

  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return num_tuples_; }
  MemoryBreakdown Memory() const override;

  /// \brief Like Search but also reports each tuple's exact Hamming
  /// distance (H-Search knows it at the leaf for free — the accumulated
  /// residual distances sum to the full distance). Used by the kNN plans
  /// to rank candidates without a second pass.
  Result<std::vector<std::pair<TupleId, uint32_t>>> SearchWithDistances(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const;

  /// \brief Native batch range plan: routes every request through
  /// SearchWithDistances, so each response carries per-match exact
  /// distances (`has_distances`) at no extra traversal cost — H-Search
  /// already knows the full distance at each qualifying leaf. That lets
  /// the default Knn expand the radius geometrically (O(log L) rounds)
  /// instead of h += 1.
  Status SearchBatch(std::span<const QueryRequest> requests,
                     std::span<QueryResponse> responses) const override;

  /// \brief Qualifying distinct *codes* within distance h (works in
  /// leafless mode; used by MapReduce Option B, Section 5.3).
  Result<std::vector<BinaryCode>> SearchCodes(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const;

  /// \brief Dual-tree Hamming join (extension beyond the paper): joins
  /// this index (R side) with another (S side) by simultaneous traversal.
  ///
  /// For a pair of nodes the count of differing bits on the positions
  /// *both* cumulative patterns determine is a lower bound on the
  /// distance of every (r, s) pair below them, so whole subtree pairs are
  /// pruned at once — the paper's per-tuple H-Search probing repeats the
  /// R-side descent for every S tuple instead. Both indexes must store
  /// tuple ids. Pairs are (id in this, id in other).
  Result<std::vector<JoinPair>> JoinWith(const DynamicHAIndex& other,
                                         std::size_t h) const;

  /// \brief Structural statistics (node/edge counts, depth).
  HAIndexStats Stats() const;

  /// \brief The indexed corpus as (id, code) pairs — leaf walk plus the
  /// insert buffer, order unspecified. Requires store_tuple_ids. The
  /// epoch layer's snapshot tests use it as the frozen ground truth;
  /// rebuilds of a wrapped index source from it.
  std::vector<std::pair<TupleId, BinaryCode>> ExportTuples() const;

  /// \brief Audits the SwapRemove-era cross-structure invariants after a
  /// mutation stream: the insert buffer and both kernel mirrors agree
  /// slot-for-slot (buffer_vstore_ is the exact transpose of
  /// buffer_store_, which matches buffer_), every forest frequency
  /// equals the live tuples below it, and size() equals leaves + buffer.
  /// Returns the first violated invariant; OK when consistent. Test and
  /// debug hook — walks the whole structure, not for hot paths.
  Status CheckConsistency() const;

  /// \brief Merges another HA-Index into this one (the global-index merge
  /// of Section 5.2): the other forest's roots are adopted, and roots
  /// whose FLSSeq equals an existing root's are consolidated.
  Status MergeFrom(const DynamicHAIndex& other);

  /// \brief Serialization for the MapReduce distributed cache.
  void Serialize(BufferWriter* w) const;
  static Result<DynamicHAIndex> Deserialize(BufferReader* r);

  const DynamicHAIndexOptions& options() const { return opts_; }

 private:
  static constexpr int32_t kNoParent = -1;

  struct Node {
    MaskedCode residual;   // pattern positions not covered by ancestors
    MaskedCode cumulative; // full subtree agreement (positions incl. anc.)
    int32_t parent = kNoParent;
    std::vector<uint32_t> children;
    std::vector<TupleId> tuple_ids;  // leaves only, when store_tuple_ids
    uint32_t frequency = 0;          // live tuples below
    bool is_leaf = false;
    bool alive = true;
  };

  /// Runs Algorithm 1 over (code, ids) groups, appending nodes to nodes_
  /// and new roots to roots_.
  void BuildForest(
      std::vector<std::pair<BinaryCode, std::vector<TupleId>>> groups);

  uint32_t NewNode();
  void ComputeResiduals(uint32_t root);
  void FlushBuffer();
  /// Removes `node` from its parent (or the root list) and propagates
  /// frequency decrements / dead-node removal upward.
  void DetachAndPropagate(uint32_t node, uint32_t count);

  DynamicHAIndexOptions opts_;
  std::size_t code_bits_ = 0;
  std::size_t num_tuples_ = 0;
  std::vector<Node> nodes_;
  std::vector<uint32_t> roots_;
  // Insert buffer (Section 4.5). buffer_store_ mirrors the buffered codes
  // in word-stride form so the per-query buffer scan runs through the
  // batched kernels instead of one WithinDistance call per code;
  // buffer_vstore_ keeps the bit-plane transpose of the same slots so a
  // selective search can take the vertical kernel when the buffer (its
  // flush threshold permitting) grows large enough to amortize it.
  std::vector<std::pair<TupleId, BinaryCode>> buffer_;
  kernels::CodeStore buffer_store_;
  kernels::VerticalCodeStore buffer_vstore_;
};

}  // namespace hamming

#include "index/multi_hash_table.h"

#include <algorithm>

#include "kernels/hamming_kernels.h"

namespace hamming {

namespace {

std::size_t Choose(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t out = 1;
  for (std::size_t i = 0; i < k; ++i) {
    out = out * (n - i) / (i + 1);
  }
  return out;
}

// All k-subsets of [0, n), lexicographic.
std::vector<std::vector<uint8_t>> Combinations(std::size_t n, std::size_t k) {
  std::vector<std::vector<uint8_t>> out;
  std::vector<uint8_t> cur;
  // Iterative subset enumeration via the classic odometer.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    out.push_back({});
    return out;
  }
  if (k > n) return out;
  for (;;) {
    cur.assign(idx.begin(), idx.end());
    out.push_back(cur);
    // Advance.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] + (k - i) < n) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
  }
}

}  // namespace

Status MultiHashTableIndex::AppendToBucket(Bucket* bucket, TupleId id,
                                           const BinaryCode& code) {
  bucket->ids.push_back(id);
  HAMMING_RETURN_NOT_OK(bucket->codes.Append(code));
  // Activate the bit-plane mirror only once the bucket could plausibly
  // take the vertical scan; transpose the backlog on first crossing and
  // append incrementally from then on.
  if (bucket->codes.size() >= kernels::kVerticalMinCodes) {
    if (bucket->vcodes.size() + 1 == bucket->codes.size()) {
      HAMMING_RETURN_NOT_OK(bucket->vcodes.Append(code));
    } else {
      bucket->codes.TransposeInto(&bucket->vcodes);
    }
  }
  return Status::OK();
}

std::pair<std::size_t, std::size_t> MultiHashTableIndex::BlockRange(
    std::size_t blk) const {
  std::size_t base = code_bits_ / num_blocks_;
  std::size_t extra = code_bits_ % num_blocks_;
  std::size_t begin = blk * base + std::min(blk, extra);
  std::size_t len = base + (blk < extra ? 1 : 0);
  return {begin, begin + len};
}

uint64_t MultiHashTableIndex::KeyOf(const std::vector<uint8_t>& combo,
                                    const BinaryCode& code) const {
  uint64_t key = 0;
  for (uint8_t blk : combo) {
    auto [b, e] = BlockRange(blk);
    key = (key << (e - b)) | code.SubstringAsUint64(b, e - b);
  }
  // Combination identity is implicit in the table index; no mixing needed.
  return key;
}

Status MultiHashTableIndex::EnsureLayout(const BinaryCode& code) {
  if (tables_.empty()) {
    code_bits_ = code.size();
    // Largest block count b with C(b, h_max) <= requested tables; all
    // C(b, h_max) drop-combinations are materialized so the guarantee
    // holds. At least b = h_max + 1 blocks (single all-kept-block... the
    // minimum layout keeps k = 1 block per table).
    std::size_t b = h_max_ + 1;
    while (Choose(b + 1, h_max_) <= requested_tables_ &&
           b + 1 <= code_bits_) {
      ++b;
    }
    if (b > code_bits_) {
      return Status::InvalidArgument("code shorter than block count");
    }
    num_blocks_ = b;
    std::size_t keep = b - h_max_;
    // Key width check: keep blocks of ceil(L/b) bits must fit in 64.
    std::size_t max_block = (code_bits_ + b - 1) / b;
    if (keep * max_block > 64) {
      return Status::InvalidArgument(
          "MH table keys are limited to 64 bits; increase tables or h_max");
    }
    // Dropping h_max blocks == keeping (b - h_max); enumerate kept sets.
    combos_ = Combinations(b, keep);
    tables_.assign(combos_.size(), {});
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  return Status::OK();
}

Status MultiHashTableIndex::Build(const std::vector<BinaryCode>& codes) {
  tables_.clear();
  combos_.clear();
  stored_.clear();
  num_blocks_ = 0;
  code_bits_ = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HAMMING_RETURN_NOT_OK(Insert(static_cast<TupleId>(i), codes[i]));
  }
  return Status::OK();
}

Status MultiHashTableIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(EnsureLayout(code));
  for (std::size_t t = 0; t < combos_.size(); ++t) {
    Bucket& bucket = tables_[t][KeyOf(combos_[t], code)];
    HAMMING_RETURN_NOT_OK(AppendToBucket(&bucket, id, code));
  }
  stored_[id] = code;
  return Status::OK();
}

Status MultiHashTableIndex::Delete(TupleId id, const BinaryCode& code) {
  auto it = stored_.find(id);
  if (it == stored_.end() || it->second != code) {
    return Status::KeyError("tuple not found in MH index");
  }
  for (std::size_t t = 0; t < combos_.size(); ++t) {
    auto bucket_it = tables_[t].find(KeyOf(combos_[t], code));
    if (bucket_it == tables_[t].end()) continue;
    Bucket& bucket = bucket_it->second;
    for (std::size_t i = bucket.ids.size(); i-- > 0;) {
      if (bucket.ids[i] != id) continue;
      bucket.codes.SwapRemove(i);
      if (!bucket.vcodes.empty()) bucket.vcodes.SwapRemove(i);
      bucket.ids[i] = bucket.ids.back();
      bucket.ids.pop_back();
    }
    if (bucket.ids.empty()) tables_[t].erase(bucket_it);
  }
  stored_.erase(it);
  return Status::OK();
}

Result<std::vector<TupleId>> MultiHashTableIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  if (stored_.empty()) return std::vector<TupleId>{};
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  std::vector<TupleId> out;
  // A tuple can match in several tables; verifying twice is cheaper than
  // a per-candidate visited set, so duplicates are dropped at the end.
  std::vector<uint32_t> slots;
  for (std::size_t t = 0; t < combos_.size(); ++t) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    auto bucket_it = tables_[t].find(KeyOf(combos_[t], query));
    if (bucket_it == tables_[t].end()) continue;
    const Bucket& bucket = bucket_it->second;
    slots.clear();  // the batch kernels append
    // Hand the mirror to the dual dispatcher only when it tracks the
    // bucket exactly (it lags by design until the bucket crosses the
    // vertical profitability floor).
    const kernels::VerticalCodeStore* mirror =
        bucket.vcodes.size() == bucket.codes.size() ? &bucket.vcodes
                                                    : nullptr;
    kernels::VerticalScanStats vstats;
    kernels::BatchWithinDistanceDual(query, bucket.codes, mirror, h, &slots,
                                     &vstats);
    if (stats != nullptr) {
      ++stats->kernel_batch_calls;
      stats->candidates_generated += bucket.ids.size();
      stats->exact_distance_computations += bucket.ids.size();
      stats->planes_scanned += vstats.planes_scanned;
      stats->blocks_pruned += vstats.blocks_pruned;
    }
    for (uint32_t slot : slots) out.push_back(bucket.ids[slot]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->results += out.size();
  return out;
}

void MultiHashTableIndex::Serialize(BufferWriter* w) const {
  w->PutVarint64(requested_tables_);
  w->PutVarint64(h_max_);
  w->PutVarint64(code_bits_);
  w->PutVarint64(tables_.size());
  for (const auto& table : tables_) {
    w->PutVarint64(table.size());
    for (const auto& [key, bucket] : table) {
      w->PutVarint64(key);
      w->PutVarint64(bucket.ids.size());
      for (std::size_t i = 0; i < bucket.ids.size(); ++i) {
        w->PutVarint64(bucket.ids[i]);
        bucket.codes.Get(i).Serialize(w);
      }
    }
  }
  w->PutVarint64(stored_.size());
  for (const auto& [id, code] : stored_) {
    w->PutVarint64(id);
    code.Serialize(w);
  }
}

Result<MultiHashTableIndex> MultiHashTableIndex::Deserialize(
    BufferReader* r) {
  uint64_t requested, h_max, code_bits, table_count;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&requested));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&h_max));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&code_bits));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&table_count));
  MultiHashTableIndex index(static_cast<std::size_t>(requested),
                            static_cast<std::size_t>(h_max));
  bool layout_ready = false;
  for (uint64_t t = 0; t < table_count; ++t) {
    uint64_t entries;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&entries));
    for (uint64_t e = 0; e < entries; ++e) {
      uint64_t key, bucket_size;
      HAMMING_RETURN_NOT_OK(r->GetVarint64(&key));
      HAMMING_RETURN_NOT_OK(r->GetVarint64(&bucket_size));
      for (uint64_t i = 0; i < bucket_size; ++i) {
        uint64_t id;
        BinaryCode code;
        HAMMING_RETURN_NOT_OK(r->GetVarint64(&id));
        HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(r, &code));
        if (!layout_ready) {
          HAMMING_RETURN_NOT_OK(index.EnsureLayout(code));
          layout_ready = true;
        }
        Bucket& bucket = index.tables_[t][key];
        HAMMING_RETURN_NOT_OK(
            AppendToBucket(&bucket, static_cast<TupleId>(id), code));
      }
    }
  }
  uint64_t stored_count;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&stored_count));
  for (uint64_t i = 0; i < stored_count; ++i) {
    uint64_t id;
    BinaryCode code;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&id));
    HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(r, &code));
    index.stored_[static_cast<TupleId>(id)] = code;
  }
  return index;
}

MemoryBreakdown MultiHashTableIndex::Memory() const {
  MemoryBreakdown mb;
  // Manku's scheme physically duplicates the fingerprints per table.
  std::size_t per_code = code_bits_ ? (code_bits_ + 7) / 8 : 0;
  for (const auto& table : tables_) {
    mb.internal_bytes += table.size() * (sizeof(uint64_t) + sizeof(void*));
    for (const auto& [key, bucket] : table) {
      (void)key;
      mb.internal_bytes += bucket.ids.size() * (sizeof(TupleId) + per_code);
      mb.internal_bytes += bucket.vcodes.PackedBytes();
    }
  }
  for (const auto& [id, code] : stored_) {
    (void)id;
    mb.leaf_bytes += sizeof(TupleId) + code.PackedBytes();
  }
  return mb;
}

}  // namespace hamming

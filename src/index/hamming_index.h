// The common interface for every Hamming-select index in the library
// (Section 3: h-select(tq, S) returns all tuples within Hamming distance h
// of the query's binary code).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "code/binary_code.h"
#include "common/result.h"
#include "common/status.h"
#include "observability/memtrack.h"
#include "observability/query_stats.h"

namespace hamming {

// MemoryBreakdown is part of the index API (every index reports its
// footprint through Memory()); re-exported here so implementations and
// callers keep using the unqualified name.
using obs::MemoryBreakdown;

/// \brief Identifier of a tuple within a dataset (its row number).
using TupleId = uint32_t;

/// \brief One Hamming-join result pair: (id in R, id in S).
struct JoinPair {
  TupleId r;
  TupleId s;
  bool operator==(const JoinPair& other) const {
    return r == other.r && s == other.s;
  }
  bool operator<(const JoinPair& other) const {
    if (r != other.r) return r < other.r;
    return s < other.s;
  }
};

/// \brief Abstract index over a collection of equal-length binary codes
/// answering Hamming range queries.
///
/// Implementations: LinearScanIndex, MultiHashTableIndex, HEngineIndex,
/// HmSearchIndex, RadixTreeIndex, StaticHAIndex, DynamicHAIndex.
class HammingIndex {
 public:
  virtual ~HammingIndex() = default;

  /// \brief Human-readable name used by the bench harnesses
  /// ("DHA-Index", "MH-4", ...).
  virtual std::string name() const = 0;

  /// \brief Bulk-loads the index over codes[0..n); tuple i gets id i.
  /// Replaces any previous contents.
  virtual Status Build(const std::vector<BinaryCode>& codes) = 0;

  /// \brief All tuple ids whose code is within Hamming distance h of
  /// `query`. Order of ids in the result is unspecified.
  ///
  /// When `stats` is non-null the implementation accumulates its work
  /// counters (signatures probed, candidates generated, exact distance
  /// computations, ...) into it; see observability/query_stats.h for the
  /// per-family field semantics. Passing nullptr (the default) records
  /// nothing. Overrides restate the default so two-argument calls on
  /// concrete index types keep compiling.
  virtual Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const = 0;

  /// \brief The k stored tuples nearest to `query` by Hamming distance,
  /// as (id, distance) sorted by ascending distance (order among equal
  /// distances is unspecified). Fewer than k pairs when size() < k.
  ///
  /// The default expands the search radius — Search(h) for h = 0, 1, ...
  /// until k ids have been seen; because Search(h) contains Search(h-1),
  /// the radius at which an id first appears is its exact distance. It
  /// is exact wherever Search is complete at arbitrary h (indexes with a
  /// bounded supported radius, e.g. MultiHashTableIndex, inherit that
  /// bound: candidates beyond it are missed or Search's error surfaces).
  /// Implementations with a cheaper native path override it
  /// (LinearScanIndex runs one batched scan with a bounded top-k heap).
  virtual Result<std::vector<std::pair<TupleId, uint32_t>>> Knn(
      const BinaryCode& query, std::size_t k,
      obs::QueryStats* stats = nullptr) const;

  /// \brief Inserts one (id, code) pair.
  virtual Status Insert(TupleId id, const BinaryCode& code) = 0;

  /// \brief Removes one (id, code) pair; KeyError if absent.
  virtual Status Delete(TupleId id, const BinaryCode& code) = 0;

  /// \brief Number of indexed tuples.
  virtual std::size_t size() const = 0;

  /// \brief Structural memory accounting for the Table 4 comparison.
  virtual MemoryBreakdown Memory() const = 0;

  /// \brief True if the index supports dynamic Insert/Delete (the static
  /// HA-Index and signature indexes rebuild instead).
  virtual bool SupportsDynamicUpdates() const { return true; }
};

/// \brief Sorts a search result for deterministic comparison in tests.
inline std::vector<TupleId> Sorted(std::vector<TupleId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hamming

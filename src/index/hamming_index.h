// The common interface for every Hamming-select index in the library
// (Section 3: h-select(tq, S) returns all tuples within Hamming distance h
// of the query's binary code).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "code/binary_code.h"
#include "common/result.h"
#include "common/status.h"
#include "index/query.h"
#include "observability/memtrack.h"
#include "observability/query_stats.h"

namespace hamming {

// MemoryBreakdown is part of the index API (every index reports its
// footprint through Memory()); re-exported here so implementations and
// callers keep using the unqualified name.
using obs::MemoryBreakdown;

/// \brief Identifier of a tuple within a dataset (its row number).
using TupleId = uint32_t;

/// \brief One Hamming-join result pair: (id in R, id in S).
struct JoinPair {
  TupleId r;
  TupleId s;
  bool operator==(const JoinPair& other) const {
    return r == other.r && s == other.s;
  }
  bool operator<(const JoinPair& other) const {
    if (r != other.r) return r < other.r;
    return s < other.s;
  }
};

/// \brief Abstract index over a collection of equal-length binary codes
/// answering Hamming range queries.
///
/// Implementations: LinearScanIndex, MultiHashTableIndex, HEngineIndex,
/// HmSearchIndex, RadixTreeIndex, StaticHAIndex, DynamicHAIndex,
/// ConcurrentHAIndex.
///
/// Thread contract: the const entry points are safe to call from many
/// threads concurrently as long as no thread mutates the index — plain
/// indexes are externally synchronized. ConcurrentHAIndex is the
/// internally synchronized exception: its readers may overlap an
/// Insert/Delete stream and each batch call is answered against one
/// published epoch snapshot (see index/concurrent_ha_index.h).
class HammingIndex {
 public:
  virtual ~HammingIndex() = default;

  /// \brief Human-readable name used by the bench harnesses
  /// ("DHA-Index", "MH-4", ...).
  virtual std::string name() const = 0;

  /// \brief Bulk-loads the index over codes[0..n); tuple i gets id i.
  /// Replaces any previous contents.
  virtual Status Build(const std::vector<BinaryCode>& codes) = 0;

  /// \brief All tuple ids whose code is within Hamming distance h of
  /// `query`. Order of ids in the result is unspecified.
  ///
  /// When `stats` is non-null the implementation accumulates its work
  /// counters (signatures probed, candidates generated, exact distance
  /// computations, ...) into it; see observability/query_stats.h for the
  /// per-family field semantics. Passing nullptr (the default) records
  /// nothing. Overrides restate the default so two-argument calls on
  /// concrete index types keep compiling.
  ///
  /// Library code is batch-first: every driver, operator and bench goes
  /// through SearchBatch (the [batch-first] lint rule enforces it under
  /// src/ outside src/index/). This scalar entry point remains public as
  /// the per-family *implementation* hook the default batch plan loops
  /// over, and as the convenience surface tests and one-off probes use.
  virtual Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const = 0;

  /// \brief Batch-first range query: answers requests[i] (interpreted as
  /// a range query over its `code`/`h` fields regardless of `kind`) into
  /// responses[i]. Per-request failures land in responses[i].status; the
  /// returned Status is non-OK only for batch-level misuse (span size
  /// mismatch). Requests in one batch are independent — responses are
  /// byte-identical to issuing the same queries one at a time.
  ///
  /// The default loops the scalar Search path. Indexes with a cheaper
  /// coalesced plan override it: LinearScanIndex and the HA indexes
  /// route the whole batch through one multi-query kernel traversal
  /// (kernels::MultiWithinDistance) that streams the stored codes once
  /// for every query in the batch, and fill per-match exact distances
  /// (`has_distances`) when the plan produces them as a by-product.
  virtual Status SearchBatch(std::span<const QueryRequest> requests,
                             std::span<QueryResponse> responses) const;

  /// \brief Batch-first kNN: answers requests[i] (its `code`/`k` fields)
  /// into responses[i].neighbors, same contract as SearchBatch. The
  /// default loops the scalar Knn path; LinearScanIndex overrides it
  /// with one multi-query bounded-heap scan (kernels::MultiKnn).
  virtual Status KnnBatch(std::span<const QueryRequest> requests,
                          std::span<QueryResponse> responses) const;

  /// \brief The k stored tuples nearest to `query` by Hamming distance,
  /// as (id, distance) sorted by ascending distance (order among equal
  /// distances is unspecified). Fewer than k pairs when size() < k.
  ///
  /// The default expands the search radius through SearchBatch. When the
  /// index reports per-match exact distances (has_distances — the HA
  /// indexes do), the radius grows geometrically (h = 0, 1, 3, 7, ...):
  /// the first radius with >= k matches already carries every distance
  /// needed to rank them, so the expansion costs O(log L) rounds instead
  /// of the h+1 rounds of the classic walk. Without distances it falls
  /// back to the classic h += 1 expansion, where the radius at which an
  /// id first appears is its exact distance; that path is exact wherever
  /// Search is complete at arbitrary h (indexes with a bounded supported
  /// radius, e.g. MultiHashTableIndex, inherit that bound). Either way
  /// the tuples a round re-surfaces after an earlier round already
  /// returned them are counted in QueryStats::rescanned_results — the
  /// re-scan waste the geometric expansion exists to avoid.
  /// Implementations with a cheaper native path override it
  /// (LinearScanIndex runs one batched scan with a bounded top-k heap).
  ///
  /// Like Search, this is the per-query engine under the batch surface
  /// (KnnBatch's default loops it); library callers use KnnBatch.
  virtual Result<std::vector<std::pair<TupleId, uint32_t>>> Knn(
      const BinaryCode& query, std::size_t k,
      obs::QueryStats* stats = nullptr) const;

  /// \brief Inserts one (id, code) pair.
  virtual Status Insert(TupleId id, const BinaryCode& code) = 0;

  /// \brief Removes one (id, code) pair; KeyError if absent.
  virtual Status Delete(TupleId id, const BinaryCode& code) = 0;

  /// \brief Number of indexed tuples.
  virtual std::size_t size() const = 0;

  /// \brief Structural memory accounting for the Table 4 comparison.
  virtual MemoryBreakdown Memory() const = 0;

  /// \brief True if the index supports dynamic Insert/Delete (the static
  /// HA-Index and signature indexes rebuild instead).
  virtual bool SupportsDynamicUpdates() const { return true; }

 protected:
  /// \brief Shared guard of the batch entry points: the spans must pair
  /// up 1:1. Overrides call this first.
  static Status CheckBatchSpans(std::span<const QueryRequest> requests,
                                std::span<QueryResponse> responses);

  /// \brief The classic h += 1 radius expansion over scalar Search
  /// (first-seen radius = exact distance) — the exactness fallback of
  /// the default Knn for indexes whose batch path never reports
  /// distances after a geometric jump.
  Result<std::vector<std::pair<TupleId, uint32_t>>> LegacyKnnExpansion(
      const BinaryCode& query, std::size_t k, obs::QueryStats* stats) const;
};

/// \brief Sorts a search result for deterministic comparison in tests.
inline std::vector<TupleId> Sorted(std::vector<TupleId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hamming

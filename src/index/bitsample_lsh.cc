#include "index/bitsample_lsh.h"

#include <algorithm>
#include <cmath>

namespace hamming {

Status BitSampleLshIndex::EnsureLayout(const BinaryCode& code) {
  if (tables_.empty()) {
    if (opts_.num_tables == 0 || opts_.bits_per_table == 0 ||
        opts_.bits_per_table > 64) {
      return Status::InvalidArgument("invalid bit-sampling parameters");
    }
    code_bits_ = code.size();
    if (code_bits_ == 0) {
      return Status::InvalidArgument("empty code");
    }
    Rng rng(opts_.seed);
    sampled_bits_.resize(opts_.num_tables);
    for (auto& bits : sampled_bits_) {
      bits.resize(opts_.bits_per_table);
      for (auto& b : bits) {
        b = static_cast<uint16_t>(
            rng.UniformInt(0, static_cast<int64_t>(code_bits_) - 1));
      }
    }
    tables_.assign(opts_.num_tables, {});
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  return Status::OK();
}

uint64_t BitSampleLshIndex::KeyOf(std::size_t table,
                                  const BinaryCode& code) const {
  uint64_t key = 0;
  for (uint16_t pos : sampled_bits_[table]) {
    key = (key << 1) | static_cast<uint64_t>(code.GetBit(pos));
  }
  return key;
}

Status BitSampleLshIndex::Build(const std::vector<BinaryCode>& codes) {
  tables_.clear();
  sampled_bits_.clear();
  stored_.clear();
  code_bits_ = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HAMMING_RETURN_NOT_OK(Insert(static_cast<TupleId>(i), codes[i]));
  }
  return Status::OK();
}

Status BitSampleLshIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(EnsureLayout(code));
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t][KeyOf(t, code)].push_back({id, code});
  }
  stored_[id] = code;
  return Status::OK();
}

Status BitSampleLshIndex::Delete(TupleId id, const BinaryCode& code) {
  auto it = stored_.find(id);
  if (it == stored_.end() || it->second != code) {
    return Status::KeyError("tuple not found in bit-sampling index");
  }
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    auto bucket_it = tables_[t].find(KeyOf(t, code));
    if (bucket_it == tables_[t].end()) continue;
    auto& bucket = bucket_it->second;
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 bucket.end());
    if (bucket.empty()) tables_[t].erase(bucket_it);
  }
  stored_.erase(it);
  return Status::OK();
}

Result<std::vector<TupleId>> BitSampleLshIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  if (stored_.empty()) return std::vector<TupleId>{};
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  std::vector<TupleId> out;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    auto bucket_it = tables_[t].find(KeyOf(t, query));
    if (bucket_it == tables_[t].end()) continue;
    if (stats != nullptr) {
      stats->candidates_generated += bucket_it->second.size();
      stats->exact_distance_computations += bucket_it->second.size();
    }
    for (const Entry& entry : bucket_it->second) {
      if (entry.code.WithinDistance(query, h)) out.push_back(entry.id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->results += out.size();
  return out;
}

double BitSampleLshIndex::CollisionProbability(std::size_t h) const {
  if (code_bits_ == 0) return 0.0;
  double p = 1.0 - static_cast<double>(h) / static_cast<double>(code_bits_);
  return std::pow(p, static_cast<double>(opts_.bits_per_table));
}

MemoryBreakdown BitSampleLshIndex::Memory() const {
  MemoryBreakdown mb;
  std::size_t per_code = code_bits_ ? (code_bits_ + 7) / 8 : 0;
  for (const auto& table : tables_) {
    mb.internal_bytes += table.size() * (sizeof(uint64_t) + sizeof(void*));
    for (const auto& [key, bucket] : table) {
      (void)key;
      mb.internal_bytes += bucket.size() * (sizeof(TupleId) + per_code);
    }
  }
  mb.internal_bytes +=
      sampled_bits_.size() * opts_.bits_per_table * sizeof(uint16_t);
  for (const auto& [id, code] : stored_) {
    (void)id;
    mb.leaf_bytes += sizeof(TupleId) + code.PackedBytes();
  }
  return mb;
}

}  // namespace hamming

// Epoch-based snapshot publication for reads-during-writes indexes.
//
// The concurrency scheme is publish-and-pin: a single logical mutator
// builds the next index state privately, wraps it in an immutable
// snapshot object, and *publishes* it by swapping one shared pointer
// under a short critical section. Readers *pin* whatever snapshot is
// current — a shared_ptr copy — and then run entirely lock-free against
// immutable data; a batch that pins once answers every query in the
// batch against exactly one published epoch.
//
// Reclamation is deferred, not immediate: a superseded snapshot is moved
// to a retired list, and retired entries are freed at later publish
// boundaries once their reference count says no reader still pins them.
// This is safe without any reader-side epoch counters because Pin() is
// the only way to obtain a strong reference and Pin() only ever copies
// `current_`: the moment a snapshot leaves `current_` its refcount can
// only fall. A reader racing the sweep merely delays reclamation to the
// next publish; it can never resurrect a retired snapshot.
//
// Lock-order note: the publisher's internal mutex ("epoch" in
// tools/analyze/lock_order.toml) is near-leaf — no callback runs under
// it, and its only outgoing edge is to the metrics registry's terminal
// lock (Publish/Retire update epoch gauges while holding it). Owners
// that serialize mutators with their own lock (ConcurrentHAIndex's
// write_mu_) acquire that lock strictly before this one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "observability/metrics.h"

namespace hamming {

/// \brief Metric handles of one EpochPublisher (see RegisterEpochMetrics).
struct EpochMetricIds {
  obs::MetricId published = obs::kOverflowMetric;  // counter: snapshots swapped in
  obs::MetricId reclaimed = obs::kOverflowMetric;  // counter: retired snapshots freed
  obs::MetricId retired = obs::kOverflowMetric;    // gauge: high-watermark of the retired list
  obs::MetricId current = obs::kOverflowMetric;    // gauge: latest published epoch number
  obs::MetricId pins = obs::kOverflowMetric;       // counter: Pin() calls (one per batch, not per query)
};

/// \brief Single-writer/multi-reader snapshot publication point.
///
/// SnapT is the immutable snapshot type. Publish() is serialized by the
/// owner (it is called with the owner's mutator lock held); Pin() and the
/// observers may be called from any thread at any time.
template <typename SnapT>
class EpochPublisher {
 public:
  using Ptr = std::shared_ptr<const SnapT>;

  /// Registers index.epoch_* metrics under `prefix` when `metrics` is
  /// non-null; a null registry compiles recording out entirely.
  explicit EpochPublisher(obs::MetricsRegistry* metrics = nullptr,
                          std::string_view prefix = "index")
      : metrics_(metrics) {
    if (metrics_ != nullptr) {
      const std::string p(prefix);
      ids_.published = metrics_->Counter(p + ".epoch_published");
      ids_.reclaimed = metrics_->Counter(p + ".epoch_reclaimed");
      ids_.retired = metrics_->Gauge(p + ".epoch_retired");
      ids_.current = metrics_->Gauge(p + ".epoch_current");
      ids_.pins = metrics_->Counter(p + ".epoch_pins");
    }
  }

  /// \brief Returns a strong reference to the current snapshot (null only
  /// before the first Publish). Constant-time; the only reader-side cost
  /// of the whole scheme.
  Ptr Pin() const {
    MutexLock lock(&mu_);
    HAMMING_METRIC_ADD(metrics_, ids_.pins, 1);
    return current_;
  }

  /// \brief Installs `next` as the current snapshot under epoch number
  /// `epoch`, retires the previous one, and sweeps the retired list —
  /// every retired snapshot no longer pinned by any reader is freed here.
  void Publish(Ptr next, uint64_t epoch) {
    std::vector<Ptr> reclaim;  // freed outside the lock
    {
      MutexLock lock(&mu_);
      if (current_ != nullptr) retired_.push_back(std::move(current_));
      current_ = std::move(next);
      epoch_ = epoch;
      std::size_t kept = 0;
      for (std::size_t i = 0; i < retired_.size(); ++i) {
        // use_count() == 1 means the retired list holds the only strong
        // reference: no reader can mint a new one (Pin copies current_
        // alone), so the snapshot is quiescent and safe to free.
        if (retired_[i].use_count() == 1) {
          reclaim.push_back(std::move(retired_[i]));
        } else {
          retired_[kept++] = std::move(retired_[i]);
        }
      }
      retired_.resize(kept);
      HAMMING_METRIC_ADD(metrics_, ids_.published, 1);
      HAMMING_METRIC_ADD(metrics_, ids_.reclaimed,
                         static_cast<int64_t>(reclaim.size()));
      HAMMING_METRIC_SET(metrics_, ids_.retired,
                         static_cast<int64_t>(retired_.size()));
      HAMMING_METRIC_SET(metrics_, ids_.current, static_cast<int64_t>(epoch_));
    }
  }

  /// \brief Latest published epoch number (0 before the first Publish).
  uint64_t epoch() const {
    MutexLock lock(&mu_);
    return epoch_;
  }

  /// \brief Retired snapshots still awaiting reader quiescence.
  std::size_t retired_count() const {
    MutexLock lock(&mu_);
    return retired_.size();
  }

  /// \brief Metric ids (for tests asserting registration).
  const EpochMetricIds& metric_ids() const { return ids_; }

 private:
  obs::MetricsRegistry* metrics_;
  EpochMetricIds ids_;
  mutable Mutex mu_;
  Ptr current_ HAMMING_GUARDED_BY(mu_);
  std::vector<Ptr> retired_ HAMMING_GUARDED_BY(mu_);
  uint64_t epoch_ HAMMING_GUARDED_BY(mu_) = 0;
};

}  // namespace hamming

#include "index/radix_tree.h"

#include <algorithm>

namespace hamming {

namespace {

// Copies bits [src_start, src_start+len) of `src` into positions [0, len)
// of a fresh label code.
BinaryCode MakeLabel(const BinaryCode& src, std::size_t src_start,
                     std::size_t len) {
  return src.Substring(src_start, len);
}

}  // namespace

Status RadixTreeIndex::Build(const std::vector<BinaryCode>& codes) {
  root_.reset();
  size_ = 0;
  code_bits_ = codes.empty() ? 0 : codes[0].size();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HAMMING_RETURN_NOT_OK(Insert(static_cast<TupleId>(i), codes[i]));
  }
  return Status::OK();
}

Status RadixTreeIndex::Insert(TupleId id, const BinaryCode& code) {
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->label = code;
    root_->label_len = code_bits_;
    root_->ids.push_back(id);
    ++size_;
    return Status::OK();
  }

  Node* node = root_.get();
  std::size_t depth = 0;  // bits of `code` consumed before node's label
  for (;;) {
    // First position where the code disagrees with the edge label.
    std::size_t match = 0;
    while (match < node->label_len &&
           node->label.GetBit(match) == code.GetBit(depth + match)) {
      ++match;
    }
    if (match < node->label_len) {
      // Split the edge at `match`: the existing node keeps the shared
      // prefix, its old suffix and the new code's suffix become children.
      auto suffix_node = std::make_unique<Node>();
      suffix_node->label =
          MakeLabel(node->label, match + 1, node->label_len - match - 1);
      suffix_node->label_len = node->label_len - match - 1;
      suffix_node->child[0] = std::move(node->child[0]);
      suffix_node->child[1] = std::move(node->child[1]);
      suffix_node->ids = std::move(node->ids);

      auto new_leaf = std::make_unique<Node>();
      std::size_t leaf_start = depth + match + 1;
      new_leaf->label = MakeLabel(code, leaf_start, code_bits_ - leaf_start);
      new_leaf->label_len = code_bits_ - leaf_start;
      new_leaf->ids.push_back(id);

      bool old_bit = node->label.GetBit(match);
      node->label = MakeLabel(node->label, 0, match);
      node->label_len = match;
      node->ids.clear();
      node->child[old_bit ? 1 : 0] = std::move(suffix_node);
      node->child[old_bit ? 0 : 1] = std::move(new_leaf);
      ++size_;
      return Status::OK();
    }
    depth += node->label_len;
    if (depth == code_bits_) {
      // Exact duplicate code: append the id to the leaf.
      node->ids.push_back(id);
      ++size_;
      return Status::OK();
    }
    // Descend along the next bit. The branch-point bit itself is encoded
    // by which child slot we take, so the child's label starts one bit
    // further in.
    bool bit = code.GetBit(depth);
    auto& next = node->child[bit ? 1 : 0];
    ++depth;  // consume the branch bit
    if (!next) {
      auto leaf = std::make_unique<Node>();
      leaf->label = MakeLabel(code, depth, code_bits_ - depth);
      leaf->label_len = code_bits_ - depth;
      leaf->ids.push_back(id);
      next = std::move(leaf);
      ++size_;
      return Status::OK();
    }
    node = next.get();
  }
}

Status RadixTreeIndex::Delete(TupleId id, const BinaryCode& code) {
  if (!root_ || code.size() != code_bits_) {
    return Status::KeyError("tuple not found in radix tree");
  }
  // Walk down remembering the parent link for the final merge.
  Node* node = root_.get();
  Node* parent = nullptr;
  int parent_slot = -1;
  std::size_t depth = 0;
  for (;;) {
    for (std::size_t i = 0; i < node->label_len; ++i) {
      if (node->label.GetBit(i) != code.GetBit(depth + i)) {
        return Status::KeyError("tuple not found in radix tree");
      }
    }
    depth += node->label_len;
    if (depth == code_bits_) break;
    bool bit = code.GetBit(depth);
    auto& next = node->child[bit ? 1 : 0];
    if (!next) return Status::KeyError("tuple not found in radix tree");
    parent = node;
    parent_slot = bit ? 1 : 0;
    node = next.get();
    ++depth;
  }
  auto it = std::find(node->ids.begin(), node->ids.end(), id);
  if (it == node->ids.end()) {
    return Status::KeyError("tuple not found in radix tree");
  }
  node->ids.erase(it);
  --size_;
  if (!node->ids.empty()) return Status::OK();

  // Empty leaf: unlink it and, if the parent now has a single child,
  // merge parent + branch bit + child into one edge.
  if (parent == nullptr) {
    root_.reset();
    return Status::OK();
  }
  parent->child[parent_slot].reset();
  Node* sibling = parent->child[1 - parent_slot].get();
  if (sibling != nullptr && parent->ids.empty()) {
    // parent label + sibling branch bit + sibling label collapse.
    BinaryCode merged(parent->label_len + 1 + sibling->label_len);
    for (std::size_t i = 0; i < parent->label_len; ++i) {
      merged.SetBit(i, parent->label.GetBit(i));
    }
    merged.SetBit(parent->label_len, parent_slot == 0);
    for (std::size_t i = 0; i < sibling->label_len; ++i) {
      merged.SetBit(parent->label_len + 1 + i, sibling->label.GetBit(i));
    }
    parent->label = merged;
    parent->label_len = merged.size();
    parent->ids = std::move(sibling->ids);
    auto c0 = std::move(sibling->child[0]);
    auto c1 = std::move(sibling->child[1]);
    parent->child[0] = std::move(c0);
    parent->child[1] = std::move(c1);
  }
  return Status::OK();
}

Result<std::vector<TupleId>> RadixTreeIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  std::vector<TupleId> out;
  if (!root_) return out;
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  // DFS with accumulated prefix distance; prune per Proposition 1.
  struct Frame {
    const Node* node;
    std::size_t depth;  // position of the node's label start in the code
    std::size_t dist;   // accumulated distance over bits [0, depth)
  };
  std::vector<Frame> stack;
  stack.push_back({root_.get(), 0, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    // Each visited edge is one shared-prefix (FLSS) distance evaluation.
    if (stats != nullptr) ++stats->signatures_enumerated;
    std::size_t dist = f.dist;
    for (std::size_t i = 0; i < f.node->label_len && dist <= h; ++i) {
      if (f.node->label.GetBit(i) != query.GetBit(f.depth + i)) ++dist;
    }
    if (dist > h) continue;
    std::size_t depth = f.depth + f.node->label_len;
    if (depth == code_bits_) {
      out.insert(out.end(), f.node->ids.begin(), f.node->ids.end());
      if (stats != nullptr) {
        stats->candidates_generated += f.node->ids.size();
      }
      continue;
    }
    bool qbit = query.GetBit(depth);
    // The branch bit contributes 0 to the matching child, 1 to the other.
    if (f.node->child[qbit ? 1 : 0]) {
      stack.push_back({f.node->child[qbit ? 1 : 0].get(), depth + 1, dist});
    }
    if (dist + 1 <= h && f.node->child[qbit ? 0 : 1]) {
      stack.push_back(
          {f.node->child[qbit ? 0 : 1].get(), depth + 1, dist + 1});
    }
  }
  if (stats != nullptr) stats->results += out.size();
  return out;
}

void RadixTreeIndex::CountNodes(const Node* n, std::size_t* count) {
  if (n == nullptr) return;
  ++*count;
  CountNodes(n->child[0].get(), count);
  CountNodes(n->child[1].get(), count);
}

std::size_t RadixTreeIndex::NodeCount() const {
  std::size_t count = 0;
  CountNodes(root_.get(), &count);
  return count;
}

void RadixTreeIndex::AccountNode(const Node* n, MemoryBreakdown* mb) {
  if (n == nullptr) return;
  // Label bits + two child pointers.
  std::size_t node_bytes = (n->label_len + 7) / 8 + 2 * sizeof(void*) +
                           sizeof(std::size_t);
  if (n->IsLeaf()) {
    mb->leaf_bytes += node_bytes + n->ids.size() * sizeof(TupleId);
  } else {
    mb->internal_bytes += node_bytes;
  }
  AccountNode(n->child[0].get(), mb);
  AccountNode(n->child[1].get(), mb);
}

MemoryBreakdown RadixTreeIndex::Memory() const {
  MemoryBreakdown mb;
  AccountNode(root_.get(), &mb);
  return mb;
}

}  // namespace hamming

// Bit-sampling LSH for Hamming space (Indyk & Motwani's original LSH
// family; extension baseline, not benchmarked by the paper).
//
// Each of T tables keys tuples by the values of M randomly sampled bit
// positions. Two codes within distance h collide in one table with
// probability (1 - h/L)^M, so a handful of tables gives high recall for
// small h. Approximate: never returns false positives (candidates are
// verified), may miss true matches — the tests check the subset property
// and measured recall.
#pragma once

#include <unordered_map>

#include "common/rng.h"
#include "index/hamming_index.h"

namespace hamming {

/// \brief Options for the bit-sampling index.
struct BitSampleLshOptions {
  std::size_t num_tables = 8;
  std::size_t bits_per_table = 12;
  uint64_t seed = 42;
};

/// \brief Approximate Hamming index by sampled-bit hashing.
class BitSampleLshIndex final : public HammingIndex {
 public:
  explicit BitSampleLshIndex(BitSampleLshOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return "BitSample-LSH"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return stored_.size(); }
  MemoryBreakdown Memory() const override;

  /// \brief Expected single-table collision probability for distance h.
  double CollisionProbability(std::size_t h) const;

 private:
  struct Entry {
    TupleId id;
    BinaryCode code;
  };

  Status EnsureLayout(const BinaryCode& code);
  uint64_t KeyOf(std::size_t table, const BinaryCode& code) const;

  BitSampleLshOptions opts_;
  std::size_t code_bits_ = 0;
  std::vector<std::vector<uint16_t>> sampled_bits_;  // per table
  std::vector<std::unordered_map<uint64_t, std::vector<Entry>>> tables_;
  std::unordered_map<TupleId, BinaryCode> stored_;
};

}  // namespace hamming

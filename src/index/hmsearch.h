// HmSearch (Zhang et al. — SSDBM'13), the signature-enumeration index the
// paper discusses in related work.
//
// Like HEngine it cuts codes into s = ceil((h+1)/2) segments so some
// segment of a qualifying pair differs by at most one bit — but it moves
// the variant enumeration to *index* time: every tuple's segment value and
// all of its 1-substitution variants are inserted as signatures, so a
// query probes each table with its exact segment value only. Queries are
// fast; the index "increases dramatically" in size (the paper's words),
// which Memory() makes visible.
#pragma once

#include <unordered_map>

#include "index/hamming_index.h"

namespace hamming {

/// \brief HmSearch signature index for thresholds up to h_max.
class HmSearchIndex final : public HammingIndex {
 public:
  explicit HmSearchIndex(std::size_t h_max) : h_max_(h_max) {}

  std::string name() const override { return "HmSearch"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return stored_.size(); }
  MemoryBreakdown Memory() const override;

  std::size_t num_segments() const { return num_segments_; }

 private:
  std::pair<std::size_t, std::size_t> SegmentRange(std::size_t s) const;
  Status EnsureLayout(const BinaryCode& code);

  std::size_t h_max_;
  std::size_t num_segments_ = 0;
  std::size_t code_bits_ = 0;
  // Per segment: signature value -> tuple ids that generated it.
  std::vector<std::unordered_map<uint64_t, std::vector<TupleId>>> tables_;
  std::unordered_map<TupleId, BinaryCode> stored_;
};

}  // namespace hamming

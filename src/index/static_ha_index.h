// Static HA-Index (Section 4.3).
//
// Codes are cut into fixed-length contiguous segments; each *distinct*
// segment value at each segment position becomes one shared node (N1..N12
// in Figure 2), and a tuple is the path connecting its segment nodes.
// At query time the Hamming distance between the query and every shared
// node is computed exactly once per level ("the Hamming-distance
// computation for Nodes N6 and N11 will be performed only once"); tuples
// are then evaluated by summing their path's memoized node distances with
// early termination, and a level-local lower-bound prune (a node whose own
// distance already exceeds h disqualifies every path through it).
//
// Fixed segmentation is the variant's stated weakness: common substrings
// that do not align to segment boundaries are missed, which the Dynamic
// HA-Index (Section 4.4) fixes.
#pragma once

#include <unordered_map>

#include "index/hamming_index.h"
#include "kernels/vertical_code_store.h"

namespace hamming {

/// \brief Options for the static segmentation.
struct StaticHAIndexOptions {
  /// Segment width in bits (the paper's example uses 3; 8 suits L=32..64).
  /// Must be <= 64 so a segment packs into one table key.
  std::size_t segment_bits = 8;
};

/// \brief Segment-sharing static HA-Index.
class StaticHAIndex final : public HammingIndex {
 public:
  explicit StaticHAIndex(StaticHAIndexOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return "SHA-Index"; }

  Status Build(const std::vector<BinaryCode>& codes) override;
  /// \note Search lazily rebuilds an internal row-grouping cache after
  /// updates; the *first* Search following Build/Insert/Delete is not
  /// safe to race with other Searches. Issue one warming query before
  /// sharing the index across threads.
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;

  /// \brief Native batch range plan. Each request still walks the shared
  /// node structure independently (the node distances depend on the
  /// query), but the batch refreshes the row-group cache once, reuses
  /// one set of per-level scratch buffers across the whole batch, and —
  /// the payoff for the radius-expanding Knn — reports the exact path
  /// distance of every match (`has_distances`) whenever a request takes
  /// the memoized path walk, since the walk sums that distance anyway.
  /// Requests routed to the vertical plane scan (small h over a large
  /// store) match the scalar path byte-for-byte and carry no distances.
  Status SearchBatch(std::span<const QueryRequest> requests,
                     std::span<QueryResponse> responses) const override;

  Status Insert(TupleId id, const BinaryCode& code) override;
  Status Delete(TupleId id, const BinaryCode& code) override;
  std::size_t size() const override { return paths_.size(); }
  MemoryBreakdown Memory() const override;

  /// \brief Total shared segment nodes across levels (|V| in §4.7).
  std::size_t NodeCount() const;

 private:
  struct Level {
    std::size_t begin = 0;  // first bit position of the segment
    std::size_t len = 0;    // segment width in bits
    std::vector<uint64_t> node_values;                  // node idx -> value
    std::vector<uint32_t> node_refcount;                // live paths through
    std::unordered_map<uint64_t, uint32_t> value_to_node;
  };

  /// Per-query scratch reused across a batch so SearchBatch does not
  /// reallocate the per-level distance tables for every request.
  struct SearchScratch {
    std::vector<std::vector<uint16_t>> node_dist;
    std::vector<uint16_t> level_min;
    std::vector<std::size_t> min_rest;
  };

  Status EnsureLayout(const BinaryCode& code);
  uint32_t InternNode(Level* level, uint64_t value);

  /// The single-query engine behind Search and SearchBatch. Fills
  /// out_ids; when out_dists is non-null AND the query takes the path
  /// walk (not the vertical scan), also fills the matches' exact
  /// distances and sets *took_path_walk.
  Status SearchOne(const BinaryCode& query, std::size_t h,
                   obs::QueryStats* stats, std::vector<TupleId>* out_ids,
                   std::vector<uint32_t>* out_dists, bool* took_path_walk,
                   SearchScratch* scratch) const;

  /// Rebuilds groups_ (rows bucketed by their level-0 node) when stale.
  void RefreshGroups() const;

  StaticHAIndexOptions opts_;
  std::size_t code_bits_ = 0;
  std::vector<Level> levels_;
  // Tuple paths: per tuple, one node index per level (flattened).
  std::vector<uint32_t> path_nodes_;        // paths_.size() * levels_.size()
  std::vector<TupleId> paths_;              // row -> tuple id
  std::unordered_map<TupleId, std::size_t> id_to_row_;
  // Search acceleration: rows grouped by level-0 node so one disqualified
  // shared node skips its whole group (the Figure 2 sharing win). Lazily
  // rebuilt after updates.
  mutable std::vector<std::vector<uint32_t>> groups_;  // node0 -> rows
  mutable bool groups_stale_ = true;
  // Bit-plane sidecar of the full codes, row-aligned with paths_ (Delete
  // swap-removes both). The node walk has no CodeStore to reuse, so this
  // is the only full-code copy; selective queries on large stores scan it
  // with the vertical kernel instead of walking paths.
  kernels::VerticalCodeStore vcodes_;
};

}  // namespace hamming

// ConcurrentHAIndex: reads-during-writes over the Dynamic HA-Index.
//
// DynamicHAIndex (the paper's Sections 4.4-4.6 structure) is
// single-threaded mutate-then-query; racing an Insert/Delete stream
// against readers is undefined behavior. This wrapper makes the dynamic
// family safe for concurrent readers under an ongoing mutation stream
// with an epoch/snapshot scheme (src/index/epoch.h):
//
//   * Mutators serialize on write_mu_ and build into a private delta —
//     the same shape as DynamicHA's own insert buffer: a vector of
//     buffered inserts mirrored in word-stride and bit-plane stores,
//     plus a tombstone id set for deletes against the frozen base.
//   * Publish() freezes (base, delta, tombstones) into an immutable
//     Snapshot and swaps it in through the EpochPublisher. By default
//     every mutation publishes (publish_threshold = 1), so readers are
//     never more than one operation stale; batching mutations between
//     publishes trades staleness for churn throughput.
//   * Readers Pin() the current snapshot — one shared_ptr copy — and
//     run lock-free against immutable data. SearchBatch/KnnBatch pin
//     ONCE for the whole batch, so every response in a batch (and every
//     radius round of a kNN expansion) is consistent with exactly one
//     published epoch. The serving layer's QueryEngine issues one batch
//     call per coalesced batch, which makes "pin once per batch, not
//     per request" hold end to end with no serving-side changes.
//   * When the delta outgrows rebuild_threshold, the mutator rebuilds a
//     fresh base DynamicHAIndex from the live corpus (an H-Build over
//     Gray-ordered codes) while readers keep serving the old snapshot,
//     then publishes the compacted state.
//
// Acquisition order (write_mu_ -> publisher mutex -> metrics) is
// declared in tools/analyze/lock_order.toml ("index_write" -> "epoch"
// -> "metrics") and machine-verified by the analyze stage. Readers take
// only the publisher mutex, and only for one shared_ptr copy.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "index/dynamic_ha_index.h"
#include "index/epoch.h"
#include "index/hamming_index.h"
#include "kernels/code_store.h"
#include "kernels/vertical_code_store.h"

namespace hamming {

/// \brief Tuning knobs of the epoch/snapshot wrapper.
struct ConcurrentHAIndexOptions {
  /// Options of the underlying DynamicHAIndex base. store_tuple_ids is
  /// forced on (snapshot search needs leafful mode).
  DynamicHAIndexOptions base;
  /// Mutations buffered before an automatic publish; 1 (default) makes
  /// every Insert/Delete immediately visible to new pins.
  std::size_t publish_threshold = 1;
  /// Delta size (pending inserts + tombstones) that triggers a base
  /// rebuild + compacting publish.
  std::size_t rebuild_threshold = 4096;
  /// Registry for the index.epoch_* metrics (null = no recording).
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief Concurrent-reader dynamic HA index (epoch snapshots).
///
/// Thread contract: any number of concurrent readers (const entry
/// points) against any number of mutators (Insert/Delete/Build), with
/// mutators serialized internally. Readers never block mutators beyond
/// the publisher's pointer swap and vice versa.
class ConcurrentHAIndex final : public HammingIndex {
 public:
  /// \brief One published epoch: an immutable (base, delta, tombstones)
  /// triple that is itself a complete HammingIndex for reads.
  ///
  /// Search = base H-Search minus tombstoned ids, plus a batched-kernel
  /// scan of the delta inserts — exactly the base DynamicHA plan with
  /// the delta standing in for its (frozen, empty-at-build) insert
  /// buffer. Mutating entry points fail with NotImplemented.
  class Snapshot final : public HammingIndex {
   public:
    std::string name() const override { return "CHA-Snapshot"; }

    Status Build(const std::vector<BinaryCode>&) override {
      return Status::NotImplemented(
          "snapshot is immutable; mutate the owning ConcurrentHAIndex");
    }
    Status Insert(TupleId, const BinaryCode&) override {
      return Status::NotImplemented(
          "snapshot is immutable; mutate the owning ConcurrentHAIndex");
    }
    Status Delete(TupleId, const BinaryCode&) override {
      return Status::NotImplemented(
          "snapshot is immutable; mutate the owning ConcurrentHAIndex");
    }
    bool SupportsDynamicUpdates() const override { return false; }

    Result<std::vector<TupleId>> Search(
        const BinaryCode& query, std::size_t h,
        obs::QueryStats* stats = nullptr) const override;

    /// \brief Range search with exact per-match distances (the base
    /// H-Search knows them at the leaves; the delta scan computes them).
    Result<std::vector<std::pair<TupleId, uint32_t>>> SearchWithDistances(
        const BinaryCode& query, std::size_t h,
        obs::QueryStats* stats = nullptr) const;

    /// \brief Native batch plan: per-request SearchWithDistances, so
    /// responses carry has_distances and the inherited Knn/KnnBatch
    /// expand geometrically — entirely within this one epoch.
    Status SearchBatch(std::span<const QueryRequest> requests,
                       std::span<QueryResponse> responses) const override;

    std::size_t size() const override { return size_; }
    MemoryBreakdown Memory() const override;

    /// \brief The epoch number this snapshot was published under.
    uint64_t epoch() const { return epoch_; }
    std::size_t delta_inserts() const { return inserts_.size(); }
    std::size_t delta_tombstones() const { return tombstones_.size(); }

    /// \brief The frozen corpus as (id, code) pairs (order unspecified).
    /// Test hook: brute force over ExportTuples() is the ground truth a
    /// pinned snapshot's results are compared against during churn.
    std::vector<std::pair<TupleId, BinaryCode>> ExportTuples() const;

   private:
    friend class ConcurrentHAIndex;
    Snapshot() = default;

    std::shared_ptr<const DynamicHAIndex> base_;
    std::vector<std::pair<TupleId, BinaryCode>> inserts_;
    kernels::CodeStore insert_store_;
    kernels::VerticalCodeStore insert_vstore_;
    std::unordered_set<TupleId> tombstones_;
    std::size_t size_ = 0;
    uint64_t epoch_ = 0;
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  explicit ConcurrentHAIndex(ConcurrentHAIndexOptions opts = {});

  std::string name() const override { return "CHA-Index"; }

  /// \brief Bulk load; replaces contents and publishes immediately.
  Status Build(const std::vector<BinaryCode>& codes) override;
  /// \brief Bulk load with caller-supplied ids (must be unique).
  Status BuildWithIds(const std::vector<TupleId>& ids,
                      const std::vector<BinaryCode>& codes);

  /// \brief Inserts one (id, code); ids must be unique among live
  /// tuples (InvalidArgument otherwise — the epoch scheme needs id
  /// identity for tombstones to be unambiguous).
  Status Insert(TupleId id, const BinaryCode& code) override;
  /// \brief Deletes one (id, code); KeyError if absent or mismatched.
  Status Delete(TupleId id, const BinaryCode& code) override;

  // Readers: each entry point pins the current snapshot exactly once
  // and delegates, so a batch (or a whole kNN radius expansion) sees
  // one epoch.
  Result<std::vector<TupleId>> Search(
      const BinaryCode& query, std::size_t h,
      obs::QueryStats* stats = nullptr) const override;
  Status SearchBatch(std::span<const QueryRequest> requests,
                     std::span<QueryResponse> responses) const override;
  Status KnnBatch(std::span<const QueryRequest> requests,
                  std::span<QueryResponse> responses) const override;
  Result<std::vector<std::pair<TupleId, uint32_t>>> Knn(
      const BinaryCode& query, std::size_t k,
      obs::QueryStats* stats = nullptr) const override;

  /// \brief Size / memory of the *published* snapshot (what readers
  /// see), not of unpublished pending mutations.
  std::size_t size() const override;
  MemoryBreakdown Memory() const override;

  /// \brief Pins the current snapshot for caller-controlled lifetime
  /// (the test suite compares live results against a pinned epoch).
  SnapshotPtr Pin() const { return publisher_.Pin(); }

  /// \brief Publishes pending mutations now (no-op when none are
  /// pending and a snapshot exists). Only needed when
  /// publish_threshold > 1.
  Status Publish();

  /// \brief Latest published epoch number.
  uint64_t epoch() const { return publisher_.epoch(); }
  /// \brief Retired snapshots awaiting reader quiescence.
  std::size_t retired_snapshots() const { return publisher_.retired_count(); }
  /// \brief Base rebuilds performed (compactions).
  uint64_t rebuilds() const;

  const ConcurrentHAIndexOptions& options() const { return opts_; }

 private:
  Status InsertLocked(TupleId id, const BinaryCode& code)
      HAMMING_REQUIRES(write_mu_);
  Status DeleteLocked(TupleId id, const BinaryCode& code)
      HAMMING_REQUIRES(write_mu_);
  /// Commits one applied mutation: counts it, rebuilds when the delta
  /// is oversized, publishes when the threshold is reached.
  Status CommitMutationLocked() HAMMING_REQUIRES(write_mu_);
  Status RebuildBaseLocked() HAMMING_REQUIRES(write_mu_);
  Status PublishLocked() HAMMING_REQUIRES(write_mu_);

  ConcurrentHAIndexOptions opts_;
  // write_mu_ nests outside the publisher's mutex (taken inside
  // publisher_.Publish/Pin); see tools/analyze/lock_order.toml.
  mutable Mutex write_mu_;
  // Mutator-private working state. live_ is the authoritative corpus
  // (id -> code): O(1) duplicate/missing checks and the rebuild source.
  std::shared_ptr<const DynamicHAIndex> base_ HAMMING_GUARDED_BY(write_mu_);
  std::unordered_map<TupleId, BinaryCode> live_ HAMMING_GUARDED_BY(write_mu_);
  std::vector<std::pair<TupleId, BinaryCode>> delta_inserts_
      HAMMING_GUARDED_BY(write_mu_);
  std::unordered_set<TupleId> tombstones_ HAMMING_GUARDED_BY(write_mu_);
  std::size_t code_bits_ HAMMING_GUARDED_BY(write_mu_) = 0;
  std::size_t pending_ HAMMING_GUARDED_BY(write_mu_) = 0;
  uint64_t next_epoch_ HAMMING_GUARDED_BY(write_mu_) = 0;
  uint64_t rebuilds_ HAMMING_GUARDED_BY(write_mu_) = 0;
  EpochPublisher<Snapshot> publisher_;
};

}  // namespace hamming

#include "index/hmsearch.h"

#include <algorithm>

namespace hamming {

std::pair<std::size_t, std::size_t> HmSearchIndex::SegmentRange(
    std::size_t s) const {
  std::size_t base = code_bits_ / num_segments_;
  std::size_t extra = code_bits_ % num_segments_;
  std::size_t begin = s * base + std::min(s, extra);
  std::size_t len = base + (s < extra ? 1 : 0);
  return {begin, begin + len};
}

Status HmSearchIndex::EnsureLayout(const BinaryCode& code) {
  if (tables_.empty()) {
    num_segments_ = std::max<std::size_t>(1, (h_max_ + 2) / 2);
    code_bits_ = code.size();
    if (code_bits_ < num_segments_) {
      return Status::InvalidArgument("code shorter than segment count");
    }
    if (code_bits_ > 64 * num_segments_) {
      return Status::InvalidArgument(
          "HmSearch segment keys are limited to 64 bits each");
    }
    tables_.assign(num_segments_, {});
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  return Status::OK();
}

Status HmSearchIndex::Build(const std::vector<BinaryCode>& codes) {
  tables_.clear();
  stored_.clear();
  num_segments_ = 0;
  code_bits_ = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HAMMING_RETURN_NOT_OK(Insert(static_cast<TupleId>(i), codes[i]));
  }
  return Status::OK();
}

Status HmSearchIndex::Insert(TupleId id, const BinaryCode& code) {
  HAMMING_RETURN_NOT_OK(EnsureLayout(code));
  for (std::size_t s = 0; s < num_segments_; ++s) {
    auto [b, e] = SegmentRange(s);
    std::size_t len = e - b;
    uint64_t key = code.SubstringAsUint64(b, len);
    tables_[s][key].push_back(id);
    for (std::size_t bit = 0; bit < len; ++bit) {
      tables_[s][key ^ (1ull << (len - 1 - bit))].push_back(id);
    }
  }
  stored_[id] = code;
  return Status::OK();
}

Status HmSearchIndex::Delete(TupleId id, const BinaryCode& code) {
  auto it = stored_.find(id);
  if (it == stored_.end() || it->second != code) {
    return Status::KeyError("tuple not found in HmSearch index");
  }
  auto drop = [this, id](std::size_t s, uint64_t key) {
    auto bucket_it = tables_[s].find(key);
    if (bucket_it == tables_[s].end()) return;
    auto& bucket = bucket_it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (bucket.empty()) tables_[s].erase(bucket_it);
  };
  for (std::size_t s = 0; s < num_segments_; ++s) {
    auto [b, e] = SegmentRange(s);
    std::size_t len = e - b;
    uint64_t key = code.SubstringAsUint64(b, len);
    drop(s, key);
    for (std::size_t bit = 0; bit < len; ++bit) {
      drop(s, key ^ (1ull << (len - 1 - bit)));
    }
  }
  stored_.erase(it);
  return Status::OK();
}

Result<std::vector<TupleId>> HmSearchIndex::Search(
    const BinaryCode& query, std::size_t h, obs::QueryStats* stats) const {
  if (stored_.empty()) return std::vector<TupleId>{};
  if (query.size() != code_bits_) {
    return Status::InvalidArgument("query length mismatch");
  }
  if (h > h_max_) {
    return Status::InvalidArgument(
        "HmSearch was built for thresholds up to h_max");
  }
  std::vector<TupleId> out;
  for (std::size_t s = 0; s < num_segments_; ++s) {
    if (stats != nullptr) ++stats->signatures_enumerated;
    auto [b, e] = SegmentRange(s);
    uint64_t key = query.SubstringAsUint64(b, e - b);
    auto bucket_it = tables_[s].find(key);
    if (bucket_it == tables_[s].end()) continue;
    if (stats != nullptr) {
      stats->candidates_generated += bucket_it->second.size();
      stats->exact_distance_computations += bucket_it->second.size();
    }
    for (TupleId id : bucket_it->second) {
      if (stored_.at(id).WithinDistance(query, h)) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->results += out.size();
  return out;
}

MemoryBreakdown HmSearchIndex::Memory() const {
  MemoryBreakdown mb;
  for (const auto& table : tables_) {
    mb.internal_bytes += table.size() * (sizeof(uint64_t) + sizeof(void*));
    for (const auto& [key, bucket] : table) {
      (void)key;
      mb.internal_bytes += bucket.size() * sizeof(TupleId);
    }
  }
  for (const auto& [id, code] : stored_) {
    (void)id;
    mb.leaf_bytes += sizeof(TupleId) + code.PackedBytes();
  }
  return mb;
}

}  // namespace hamming

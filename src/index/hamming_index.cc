#include "index/hamming_index.h"

#include <unordered_set>

namespace hamming {

Result<std::vector<std::pair<TupleId, uint32_t>>> HammingIndex::Knn(
    const BinaryCode& query, std::size_t k, obs::QueryStats* stats) const {
  std::vector<std::pair<TupleId, uint32_t>> out;
  if (k == 0 || size() == 0) return out;
  // k >= size() degenerates to "every tuple with its distance": target
  // caps at size() so the expansion stops the moment all tuples have
  // been seen instead of probing the remaining radii.
  const std::size_t target = std::min(k, size());
  // Radius expansion: Search(h) is a superset of Search(h-1), so an id's
  // first-seen radius is its exact Hamming distance from the query. The
  // loop is bounded by the code width — no two L-bit codes are farther
  // than L apart — so an index whose Search is incomplete at large radii
  // can under-fill the result but can never drive the loop past h = L.
  const std::size_t max_radius = query.size();
  std::unordered_set<TupleId> seen;
  for (std::size_t h = 0; h <= max_radius && out.size() < target; ++h) {
    if (stats != nullptr) ++stats->radius_expansions;
    HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> ids,
                             Search(query, h, stats));
    for (TupleId id : ids) {
      if (seen.insert(id).second) {
        out.emplace_back(id, static_cast<uint32_t>(h));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace hamming

#include "index/hamming_index.h"

#include <unordered_set>

namespace hamming {

Result<std::vector<std::pair<TupleId, uint32_t>>> HammingIndex::Knn(
    const BinaryCode& query, std::size_t k) const {
  std::vector<std::pair<TupleId, uint32_t>> out;
  if (k == 0 || size() == 0) return out;
  const std::size_t target = std::min(k, size());
  // Radius expansion: Search(h) is a superset of Search(h-1), so an id's
  // first-seen radius is its exact Hamming distance from the query.
  std::unordered_set<TupleId> seen;
  for (std::size_t h = 0; h <= query.size(); ++h) {
    HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> ids, Search(query, h));
    for (TupleId id : ids) {
      if (seen.insert(id).second) {
        out.emplace_back(id, static_cast<uint32_t>(h));
      }
    }
    if (out.size() >= target) break;
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace hamming

#include "index/hamming_index.h"

// Interface-only translation unit; kept so the target owns the header for
// build systems that require a .cc per module.

namespace hamming {}

#include "index/hamming_index.h"

#include <unordered_set>

namespace hamming {

Status HammingIndex::CheckBatchSpans(std::span<const QueryRequest> requests,
                                     std::span<QueryResponse> responses) {
  if (requests.size() != responses.size()) {
    return Status::InvalidArgument(
        "batch spans mismatch: " + std::to_string(requests.size()) +
        " requests vs " + std::to_string(responses.size()) + " responses");
  }
  return Status::OK();
}

Status HammingIndex::SearchBatch(std::span<const QueryRequest> requests,
                                 std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    auto got = Search(requests[i].code, requests[i].h, &resp.stats);
    if (got.ok()) {
      resp.ids = std::move(got).ValueOrDie();
    } else {
      resp.status = got.status();
    }
  }
  return Status::OK();
}

Status HammingIndex::KnnBatch(std::span<const QueryRequest> requests,
                              std::span<QueryResponse> responses) const {
  HAMMING_RETURN_NOT_OK(CheckBatchSpans(requests, responses));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.Clear();
    auto got = Knn(requests[i].code, requests[i].k, &resp.stats);
    if (got.ok()) {
      resp.neighbors = std::move(got).ValueOrDie();
    } else {
      resp.status = got.status();
    }
  }
  return Status::OK();
}

Result<std::vector<std::pair<TupleId, uint32_t>>> HammingIndex::Knn(
    const BinaryCode& query, std::size_t k, obs::QueryStats* stats) const {
  std::vector<std::pair<TupleId, uint32_t>> out;
  if (k == 0 || size() == 0) return out;
  // k >= size() degenerates to "every tuple with its distance": target
  // caps at size() so the expansion stops the moment all tuples have
  // been seen instead of probing the remaining radii.
  const std::size_t target = std::min(k, size());
  // No two L-bit codes are farther than L apart, so an index whose
  // Search is incomplete at large radii can under-fill the result but
  // can never drive the expansion past h = L.
  const std::size_t max_radius = query.size();

  QueryRequest req = QueryRequest::Range(query, 0);
  QueryResponse resp;

  // Legacy h += 1 expansion state: Search(h) is a superset of
  // Search(h-1), so an id's first-seen radius is its exact Hamming
  // distance — valid only while every step so far was +1.
  bool first_seen_valid = true;
  std::unordered_set<TupleId> seen;
  std::vector<std::pair<TupleId, uint32_t>> by_first_seen;

  auto record_round = [&](std::size_t rounds_prior_results) {
    if (stats == nullptr) return;
    ++stats->radius_expansions;
    // Everything an earlier round returned is re-scanned (and
    // re-returned) by this one: the pure waste of radius expansion.
    stats->rescanned_results += rounds_prior_results;
    *stats += resp.stats;
  };

  std::size_t h = 0;
  std::size_t prior_results = 0;
  while (true) {
    req.h = h;
    resp.Clear();
    HAMMING_RETURN_NOT_OK(SearchBatch({&req, 1}, {&resp, 1}));
    HAMMING_RETURN_NOT_OK(resp.status);
    record_round(prior_results);

    if (resp.has_distances) {
      // Every tuple within h is present with its exact distance; with
      // >= target of them the k nearest overall are all here.
      if (resp.ids.size() >= target || h >= max_radius) {
        out.reserve(resp.ids.size());
        for (std::size_t i = 0; i < resp.ids.size(); ++i) {
          out.emplace_back(resp.ids[i], resp.distances[i]);
        }
        break;
      }
    } else if (first_seen_valid) {
      for (TupleId id : resp.ids) {
        if (seen.insert(id).second) {
          by_first_seen.emplace_back(id, static_cast<uint32_t>(h));
        }
      }
      if (by_first_seen.size() >= target || h >= max_radius) {
        out = std::move(by_first_seen);
        break;
      }
    } else if (h >= max_radius) {
      // Unreachable with the shipped indexes (has_distances is monotone
      // in h for all of them), kept for exactness: a distance-less round
      // after a geometric jump cannot be ranked, so redo the expansion
      // the classic way.
      return LegacyKnnExpansion(query, k, stats);
    }

    prior_results = resp.ids.size();
    if (resp.has_distances) {
      // Distances make large jumps free of ranking error: grow
      // geometrically (0, 1, 3, 7, ...) for O(log L) rounds total.
      const std::size_t next = std::min(max_radius, 2 * h + 1);
      if (next > h + 1) first_seen_valid = false;
      h = next;
    } else {
      ++h;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<std::pair<TupleId, uint32_t>>>
HammingIndex::LegacyKnnExpansion(const BinaryCode& query, std::size_t k,
                                 obs::QueryStats* stats) const {
  std::vector<std::pair<TupleId, uint32_t>> out;
  const std::size_t target = std::min(k, size());
  const std::size_t max_radius = query.size();
  std::unordered_set<TupleId> seen;
  for (std::size_t h = 0; h <= max_radius && out.size() < target; ++h) {
    if (stats != nullptr) {
      ++stats->radius_expansions;
      stats->rescanned_results += seen.size();
    }
    HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> ids,
                             Search(query, h, stats));
    for (TupleId id : ids) {
      if (seen.insert(id).second) {
        out.emplace_back(id, static_cast<uint32_t>(h));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace hamming

// Batch-first query surface of the index layer.
//
// A QueryRequest describes one range (h-select) or kNN query; the batch
// entry points HammingIndex::SearchBatch / KnnBatch take a span of them
// and fill one QueryResponse per request. The serving layer
// (src/serving/) coalesces concurrent in-flight queries into these
// batches so the kernel-level amortization (one store stream shared by
// every query in the batch — kernels::MultiWithinDistance/MultiKnn) is
// harvested across *queries*, not just across stored codes.
//
// Ids, distances and statuses are per-request: a malformed query fails
// its own response without poisoning the rest of the batch.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "code/binary_code.h"
#include "common/status.h"
#include "observability/query_stats.h"

namespace hamming {

/// \brief Identifier of a tuple within a dataset (its row number).
/// (hamming_index.h declares the same alias; both name uint32_t.)
using TupleId = uint32_t;

/// \brief Which query family a QueryRequest carries.
enum class QueryKind : uint8_t {
  kRange,  // h-select: all tuples within Hamming distance h
  kKnn,    // k nearest tuples by Hamming distance
};

/// \brief One range or kNN query against a HammingIndex.
struct QueryRequest {
  QueryKind kind = QueryKind::kRange;
  BinaryCode code;
  std::size_t h = 0;  // range radius (kind == kRange)
  std::size_t k = 0;  // neighbour count (kind == kKnn)

  static QueryRequest Range(BinaryCode query_code, std::size_t radius) {
    QueryRequest r;
    r.kind = QueryKind::kRange;
    r.code = std::move(query_code);
    r.h = radius;
    return r;
  }
  static QueryRequest Knn(BinaryCode query_code, std::size_t neighbours) {
    QueryRequest r;
    r.kind = QueryKind::kKnn;
    r.code = std::move(query_code);
    r.k = neighbours;
    return r;
  }
};

/// \brief The result of one QueryRequest.
///
/// Range queries fill `ids` (order unspecified, matching Search); when
/// the index produced exact distances as a by-product (`has_distances`),
/// `distances[i]` is the Hamming distance of `ids[i]`. kNN queries fill
/// `neighbors` as (id, distance) ascending. `stats` accumulates the
/// index's work counters for this request alone.
struct QueryResponse {
  Status status = Status::OK();
  std::vector<TupleId> ids;                     // kRange matches
  std::vector<uint32_t> distances;              // parallel to ids
  bool has_distances = false;
  std::vector<std::pair<TupleId, uint32_t>> neighbors;  // kKnn
  obs::QueryStats stats;

  /// \brief Resets to the default-constructed state (the batch defaults
  /// reuse responses across retries/rounds).
  void Clear() {
    status = Status::OK();
    ids.clear();
    distances.clear();
    has_distances = false;
    neighbors.clear();
    stats = obs::QueryStats();
  }
};

}  // namespace hamming

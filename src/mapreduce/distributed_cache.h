// Distributed cache: the side-channel MapReduce jobs use to ship small
// read-only artifacts (the learned hash function, the pivot set, the
// global HA-Index) to every worker before the map phase (Section 5.2:
// "the selected pivots and the learned hash function are loaded into
// memory in each mapper via distributed cache").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace hamming::mr {

class Counters;

/// \brief Named read-only byte blobs broadcast to all nodes.
///
/// Broadcasting charges the blob size once per node to kBroadcastBytes —
/// the cost Hadoop pays materializing cache files on every worker, which
/// Section 5.4's analysis counts as |HA| * N.
class DistributedCache {
 public:
  explicit DistributedCache(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  /// \brief Stores a blob and charges the broadcast cost.
  void Broadcast(const std::string& name, std::vector<uint8_t> blob,
                 Counters* counters) HAMMING_EXCLUDES(mu_);

  /// \brief Fetches a blob by name.
  Result<std::vector<uint8_t>> Fetch(const std::string& name) const
      HAMMING_EXCLUDES(mu_);

  void Clear() HAMMING_EXCLUDES(mu_);

 private:
  std::size_t num_nodes_;
  mutable Mutex mu_;
  std::map<std::string, std::vector<uint8_t>> blobs_ HAMMING_GUARDED_BY(mu_);
};

}  // namespace hamming::mr

// The external (memory-bounded) shuffle.
//
// The in-memory runtime buffers every map output and reducer input fully
// in RAM, which silently stops modelling the regime the paper targets —
// datasets larger than per-node memory (Afrati et al. frame reducer
// memory as *the* MapReduce design axis). This subsystem bounds the
// shuffle's memory footprint per task:
//
//  * map side (ShuffleWriter): emitted records accumulate in a buffer
//    whose serialized size is capped by ExecutionOptions::
//    shuffle_memory_bytes. When the cap is hit the buffer is stable-
//    sorted by key per partition, the job's combiner (if any) folds each
//    equal-key group, and the runs are written as one CRC-framed paged
//    spill file (storage/file_io.h) with one segment per reduce
//    partition.
//  * reduce side (ShuffleMerger): a reducer's input is the set of spill
//    segments addressed to its partition, streamed through a k-way merge
//    that holds one page per open segment — reducer input never
//    materializes in memory. When the segment count exceeds
//    ExecutionOptions::shuffle_max_merge_fanin, intermediate merge passes
//    (combiner re-applied) first reduce the run count, exactly like
//    Hadoop's io.sort.factor multi-pass merges.
//
// Ordering is preserved bit for bit: runs are stable-sorted, sources are
// merged in (map task, spill sequence) order with ties on the key broken
// by source rank, so the record sequence a reducer sees — and therefore
// the job's outputs and logical counters — is byte-identical to the
// all-in-memory path at any budget (asserted in tests/test_shuffle.cc
// for every MR join plan).
//
// Spill files are attempt-private and reference-counted (SpillFile
// deletes its file when the last reference drops), which is what lets
// the PR 2 attempt layer retry or speculate a task that has already
// spilled: a losing attempt's files vanish with its AttemptOutput and
// the winner's are re-created deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mapreduce/job.h"
#include "storage/file_io.h"

namespace hamming::mr {

/// \brief Page payload target for spill I/O: the unit of read buffering
/// and of CRC verification.
inline constexpr std::size_t kSpillPageBytes = 32 * 1024;

/// \brief RAII handle on one spill file; the file is deleted when the
/// last reference drops.
class SpillFile {
 public:
  SpillFile(std::string path, std::vector<storage::SpillSegmentMeta> segments,
            uint64_t file_bytes,
            std::vector<uint64_t> logical_bytes = {})
      : path_(std::move(path)),
        segments_(std::move(segments)),
        file_bytes_(file_bytes),
        logical_bytes_(std::move(logical_bytes)) {}
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  const std::string& path() const { return path_; }
  const std::vector<storage::SpillSegmentMeta>& segments() const {
    return segments_;
  }
  uint64_t file_bytes() const { return file_bytes_; }

  /// \brief Per-segment Record::SerializedBytes sums — the framing-free
  /// measure the in-memory shuffle reports, kept here so
  /// JobResult::reducer_load.bytes is identical whichever path ran.
  /// Empty for files that never feed a load report (merge-pass output).
  const std::vector<uint64_t>& logical_bytes() const {
    return logical_bytes_;
  }

 private:
  std::string path_;
  std::vector<storage::SpillSegmentMeta> segments_;
  uint64_t file_bytes_;
  std::vector<uint64_t> logical_bytes_;
};

using SpillFileRef = std::shared_ptr<const SpillFile>;

/// \brief Stable-sorts `records` by key and, if `combine_fn` is set,
/// replaces each equal-key group with the combiner's output (which must
/// keep the group key). Adds the group's value count to *combine_in and
/// the emitted record count to *combine_out.
Status SortAndCombine(std::vector<Record>* records,
                      const CombineFn& combine_fn, int64_t* combine_in,
                      int64_t* combine_out);

/// \brief Creates (and returns the path of) a fresh private spill
/// directory for one job under `base_dir` ("" = the system temp dir).
Result<std::string> CreateJobSpillDir(const std::string& base_dir);

/// \brief Removes a job's spill directory (best-effort; spill files
/// themselves are removed by their SpillFile handles).
void RemoveJobSpillDir(const std::string& dir);

/// \brief Observer for one spill: on-disk bytes and record count.
using SpillEventFn = std::function<void(uint64_t bytes, uint64_t records)>;

struct ShuffleWriterOptions {
  std::size_t num_partitions = 1;
  /// Serialized-byte cap on the in-memory buffer before a spill is cut.
  std::size_t memory_budget_bytes = kUnlimitedShuffleMemory;
  /// Existing directory spill files are created in.
  std::string dir;
  /// Unique per attempt (e.g. "m3-a0"); spill files are
  /// `<dir>/<file_stem>-<seq>.spill`.
  std::string file_stem;
  CombineFn combine_fn;  ///< optional, applied to every spilled run
};

/// \brief Map-side budgeted buffer: partitions, sorts, combines, and
/// spills emitted records. Single-threaded (owned by one task attempt).
class ShuffleWriter {
 public:
  ShuffleWriter(ShuffleWriterOptions opts, SpillEventFn on_spill = nullptr);

  /// \brief Buffers one record for `partition`; spills if the buffer's
  /// serialized size reaches the budget.
  Status Add(std::size_t partition, Record rec);

  /// \brief Spills whatever is buffered (the final run). Idempotent.
  Status Flush();

  /// \brief The spill files written, in spill order. Call after Flush.
  std::vector<SpillFileRef> TakeSpills() { return std::move(spills_); }

  int64_t spill_count() const { return spill_count_; }
  int64_t spilled_bytes() const { return spilled_bytes_; }
  int64_t combine_input_records() const { return combine_in_; }
  int64_t combine_output_records() const { return combine_out_; }

 private:
  Status Spill();

  ShuffleWriterOptions opts_;
  SpillEventFn on_spill_;
  std::vector<std::vector<Record>> buffer_;  // per partition
  std::size_t buffered_bytes_ = 0;
  std::size_t next_spill_seq_ = 0;
  std::vector<SpillFileRef> spills_;
  int64_t spill_count_ = 0;
  int64_t spilled_bytes_ = 0;
  int64_t combine_in_ = 0;
  int64_t combine_out_ = 0;
};

/// \brief One sorted run feeding a merge: a segment of a spill file.
/// Sources must be listed in their stable order — (map task, spill
/// sequence) ascending — for merged ties to reproduce emission order.
struct SegmentSource {
  SpillFileRef file;
  std::size_t segment = 0;
};

struct ShuffleMergerOptions {
  /// Maximum sources one merge pass consumes; more triggers intermediate
  /// passes. Clamped to >= 2.
  std::size_t max_fanin = 16;
  /// Directory + unique stem (e.g. "r2-a1") for intermediate merge
  /// spill files.
  std::string dir;
  std::string file_stem;
  /// Applied to equal-key groups during intermediate passes only (the
  /// final pass feeds the reducer, which does its own folding).
  CombineFn combine_fn;
  SpillEventFn on_spill;  ///< fires for each intermediate merge spill
};

/// \brief Streaming k-way merge over sorted runs, with multi-pass
/// merging when the fan-in cap is exceeded. Single-threaded (owned by
/// one reduce attempt).
class ShuffleMerger {
 public:
  ShuffleMerger(std::vector<SegmentSource> sources,
                ShuffleMergerOptions opts);
  ShuffleMerger(ShuffleMerger&&) noexcept;
  ShuffleMerger& operator=(ShuffleMerger&&) noexcept;
  ~ShuffleMerger();  // out of line: Stream is incomplete here

  /// \brief Runs any intermediate passes and opens the final merge.
  Status Open();

  /// \brief Records the final merge will yield (valid after Open).
  uint64_t records() const { return total_records_; }
  /// \brief Total segments consumed across all passes (the job's
  /// merge fan-in counter).
  int64_t fanin() const { return fanin_; }
  int64_t merge_passes() const { return merge_passes_; }
  int64_t spill_count() const { return spill_count_; }
  int64_t spilled_bytes() const { return spilled_bytes_; }
  int64_t combine_input_records() const { return combine_in_; }
  int64_t combine_output_records() const { return combine_out_; }

  /// \brief Next record in merged key order; *done = true at the end.
  Status Next(Record* rec, bool* done);

 private:
  struct Stream;

  Status OpenStreams(const std::vector<SegmentSource>& sources);
  Status RunIntermediatePass();
  Status PopMin(Record* rec, bool* done);

  std::vector<SegmentSource> sources_;
  ShuffleMergerOptions opts_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::size_t> heap_;  // indexes into streams_
  uint64_t total_records_ = 0;
  std::size_t next_pass_seq_ = 0;
  int64_t fanin_ = 0;
  int64_t merge_passes_ = 0;
  int64_t spill_count_ = 0;
  int64_t spilled_bytes_ = 0;
  int64_t combine_in_ = 0;
  int64_t combine_out_ = 0;
  bool opened_ = false;
};

}  // namespace hamming::mr

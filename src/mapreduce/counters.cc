#include "mapreduce/counters.h"

namespace hamming::mr {

namespace {

constexpr std::array<const char*, kNumCounterIds> kCounterNames = {
    kMapInputRecords,     kMapOutputRecords,  kShuffleBytes,
    kReduceInputGroups,   kReduceOutputRecords, kBroadcastBytes,
    kShuffleSpills,       kShuffleSpilledBytes, kShuffleMergeFanIn,
    kCombineInputRecords, kCombineOutputRecords,
};

}  // namespace

const char* CounterName(CounterId id) {
  return kCounterNames[static_cast<std::size_t>(id)];
}

int InternCounterId(std::string_view name) {
  for (std::size_t i = 0; i < kNumCounterIds; ++i) {
    if (name == kCounterNames[i]) return static_cast<int>(i);
  }
  return -1;
}

// Locks both objects in address order (the canonical deadlock-free order
// for same-class pairs). The analysis cannot see through the first/second
// aliasing, so this one function opts out of it.
Counters& Counters::operator=(const Counters& other)
    HAMMING_NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) return *this;
  Mutex* first = this < &other ? &mu_ : &other.mu_;
  Mutex* second = this < &other ? &other.mu_ : &mu_;
  MutexLock l1(first);
  MutexLock l2(second);
  values_ = other.values_;
  touched_ = other.touched_;
  other_ = other.other_;
  return *this;
}

void Counters::Add(const std::string& name, int64_t delta) {
  int id = InternCounterId(name);
  if (id >= 0) {
    Add(static_cast<CounterId>(id), delta);
    return;
  }
  MutexLock lock(&mu_);
  other_[name] += delta;
}

int64_t Counters::Get(const std::string& name) const {
  int id = InternCounterId(name);
  MutexLock lock(&mu_);
  if (id >= 0) return values_[static_cast<std::size_t>(id)];
  auto it = other_.find(name);
  return it == other_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> Counters::Snapshot() const {
  MutexLock lock(&mu_);
  std::map<std::string, int64_t> out = other_;
  for (std::size_t i = 0; i < kNumCounterIds; ++i) {
    if (touched_[i]) out[kCounterNames[i]] = values_[i];
  }
  return out;
}

void Counters::Merge(const Counters& other) {
  std::array<int64_t, kNumCounterIds> values;
  std::array<bool, kNumCounterIds> touched;
  std::map<std::string, int64_t> others;
  {
    MutexLock lock(&other.mu_);
    values = other.values_;
    touched = other.touched_;
    others = other.other_;
  }
  MutexLock lock(&mu_);
  for (std::size_t i = 0; i < kNumCounterIds; ++i) {
    if (touched[i]) {
      values_[i] += values[i];
      touched_[i] = true;
    }
  }
  for (const auto& [name, v] : others) other_[name] += v;
}

void Counters::MergeLocal(const LocalCounters& local) {
  MutexLock lock(&mu_);
  for (std::size_t i = 0; i < kNumCounterIds; ++i) {
    if (local.touched_[i]) {
      values_[i] += local.values_[i];
      touched_[i] = true;
    }
  }
  for (const auto& [name, v] : local.other_) other_[name] += v;
}

}  // namespace hamming::mr

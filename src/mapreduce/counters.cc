#include "mapreduce/counters.h"

// Header-only implementation; translation unit anchors the module.

namespace hamming::mr {}

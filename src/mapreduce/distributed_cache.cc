#include "mapreduce/distributed_cache.h"

#include "mapreduce/counters.h"

namespace hamming::mr {

void DistributedCache::Broadcast(const std::string& name,
                                 std::vector<uint8_t> blob,
                                 Counters* counters) {
  if (counters != nullptr) {
    counters->Add(CounterId::kBroadcastBytes,
                  static_cast<int64_t>(blob.size() * num_nodes_));
  }
  MutexLock lock(&mu_);
  blobs_[name] = std::move(blob);
}

Result<std::vector<uint8_t>> DistributedCache::Fetch(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = blobs_.find(name);
  if (it == blobs_.end()) {
    return Status::KeyError("no cached blob named " + name);
  }
  return it->second;
}

void DistributedCache::Clear() {
  MutexLock lock(&mu_);
  blobs_.clear();
}

}  // namespace hamming::mr

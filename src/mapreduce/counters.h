// Thread-safe job counters, Hadoop-style.
//
// The counters are the measurement instrument for Figure 7: every record
// emitted by a mapper is serialized and its bytes charged to
// kShuffleBytes, and every distributed-cache broadcast charges its
// payload once per node, so "shuffle cost (GB)" is measured from the same
// quantities a real Hadoop job would ship over the network.
//
// Two layers keep the instrument off the hot path. The well-known names
// are interned to dense CounterId slots backed by a plain array, and each
// map/reduce task accumulates into an unsynchronized LocalCounters that
// the job runner merges into the shared Counters once per task — one lock
// acquisition per task instead of one per record, so counting a record
// costs an array increment and no cache-line ping-pong between workers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/sync.h"

namespace hamming::mr {

/// \brief Well-known counter names.
inline constexpr const char* kMapInputRecords = "MAP_INPUT_RECORDS";
inline constexpr const char* kMapOutputRecords = "MAP_OUTPUT_RECORDS";
inline constexpr const char* kShuffleBytes = "SHUFFLE_BYTES";
inline constexpr const char* kReduceInputGroups = "REDUCE_INPUT_GROUPS";
inline constexpr const char* kReduceOutputRecords = "REDUCE_OUTPUT_RECORDS";
inline constexpr const char* kBroadcastBytes = "BROADCAST_BYTES";
// Physical external-shuffle counters (mapreduce/shuffle.h). Unlike the
// logical counters above, these vary with ExecutionOptions::
// shuffle_memory_bytes: an unlimited budget never spills, a tiny one
// spills often — but they stay byte-identical between a clean run and a
// faulty run at the same budget, because only winning attempts charge.
inline constexpr const char* kShuffleSpills = "SHUFFLE_SPILLS";
inline constexpr const char* kShuffleSpilledBytes = "SHUFFLE_SPILLED_BYTES";
inline constexpr const char* kShuffleMergeFanIn = "SHUFFLE_MERGE_FAN_IN";
inline constexpr const char* kCombineInputRecords = "COMBINE_INPUT_RECORDS";
inline constexpr const char* kCombineOutputRecords = "COMBINE_OUTPUT_RECORDS";

/// \brief Dense slots for the well-known counters; hot-path Add calls
/// index an array instead of probing a string map.
enum class CounterId : uint8_t {
  kMapInputRecords = 0,
  kMapOutputRecords,
  kShuffleBytes,
  kReduceInputGroups,
  kReduceOutputRecords,
  kBroadcastBytes,
  kShuffleSpills,
  kShuffleSpilledBytes,
  kShuffleMergeFanIn,
  kCombineInputRecords,
  kCombineOutputRecords,
};

inline constexpr std::size_t kNumCounterIds = 11;

/// \brief The well-known name of an interned counter id.
const char* CounterName(CounterId id);

/// \brief Slot of a well-known name, or -1 for arbitrary names.
int InternCounterId(std::string_view name);

/// \brief Unsynchronized counter bag owned by a single task.
///
/// A map or reduce task counts into its LocalCounters with no locking
/// (the task is the only writer), then the runner folds the whole bag
/// into the job's shared Counters with one MergeLocal call.
class LocalCounters {
 public:
  void Add(CounterId id, int64_t delta) {
    const auto i = static_cast<std::size_t>(id);
    values_[i] += delta;
    touched_[i] = true;
  }

  /// \brief Named add; well-known names intern to their array slot.
  void Add(const std::string& name, int64_t delta) {
    int id = InternCounterId(name);
    if (id >= 0) {
      Add(static_cast<CounterId>(id), delta);
    } else {
      other_[name] += delta;
    }
  }

  int64_t Get(CounterId id) const {
    return values_[static_cast<std::size_t>(id)];
  }

  void Clear() {
    values_.fill(0);
    touched_.fill(false);
    other_.clear();
  }

 private:
  friend class Counters;
  std::array<int64_t, kNumCounterIds> values_{};
  // A counter "exists" once Added (even with delta 0), matching the
  // insert-on-first-touch semantics of a string map.
  std::array<bool, kNumCounterIds> touched_{};
  std::map<std::string, int64_t> other_;
};

/// \brief A named bag of monotonically increasing counters (shared,
/// mutex-protected; see LocalCounters for the per-task fast path).
class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) { *this = other; }
  Counters& operator=(const Counters& other);

  /// \brief Adds `delta` to a well-known counter.
  void Add(CounterId id, int64_t delta) HAMMING_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto i = static_cast<std::size_t>(id);
    values_[i] += delta;
    touched_[i] = true;
  }

  /// \brief Adds `delta` to the named counter.
  void Add(const std::string& name, int64_t delta) HAMMING_EXCLUDES(mu_);

  /// \brief Current value (0 if never touched).
  int64_t Get(const std::string& name) const HAMMING_EXCLUDES(mu_);
  int64_t Get(CounterId id) const HAMMING_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return values_[static_cast<std::size_t>(id)];
  }

  /// \brief Copy of all counters.
  std::map<std::string, int64_t> Snapshot() const HAMMING_EXCLUDES(mu_);

  /// \brief Adds every counter of `other` into this.
  void Merge(const Counters& other) HAMMING_EXCLUDES(mu_);

  /// \brief Folds a task's LocalCounters in under a single lock.
  void MergeLocal(const LocalCounters& local) HAMMING_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::array<int64_t, kNumCounterIds> values_ HAMMING_GUARDED_BY(mu_){};
  std::array<bool, kNumCounterIds> touched_ HAMMING_GUARDED_BY(mu_){};
  std::map<std::string, int64_t> other_ HAMMING_GUARDED_BY(mu_);
};

}  // namespace hamming::mr

// Thread-safe job counters, Hadoop-style.
//
// The counters are the measurement instrument for Figure 7: every record
// emitted by a mapper is serialized and its bytes charged to
// kShuffleBytes, and every distributed-cache broadcast charges its
// payload once per node, so "shuffle cost (GB)" is measured from the same
// quantities a real Hadoop job would ship over the network.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace hamming::mr {

/// \brief Well-known counter names.
inline constexpr const char* kMapInputRecords = "MAP_INPUT_RECORDS";
inline constexpr const char* kMapOutputRecords = "MAP_OUTPUT_RECORDS";
inline constexpr const char* kShuffleBytes = "SHUFFLE_BYTES";
inline constexpr const char* kReduceInputGroups = "REDUCE_INPUT_GROUPS";
inline constexpr const char* kReduceOutputRecords = "REDUCE_OUTPUT_RECORDS";
inline constexpr const char* kBroadcastBytes = "BROADCAST_BYTES";

/// \brief A named bag of monotonically increasing counters.
class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) { *this = other; }
  Counters& operator=(const Counters& other) {
    if (this != &other) values_ = other.Snapshot();
    return *this;
  }

  /// \brief Adds `delta` to the named counter.
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }

  /// \brief Current value (0 if never touched).
  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  /// \brief Copy of all counters.
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

  /// \brief Adds every counter of `other` into this.
  void Merge(const Counters& other) {
    auto snap = other.Snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, v] : snap) values_[name] += v;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> values_;
};

}  // namespace hamming::mr

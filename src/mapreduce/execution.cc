#include "mapreduce/execution.h"

#include <cstdio>

#include "observability/json.h"

namespace hamming::mr {

namespace {

// SplitMix64: decision = pure hash of (seed, kind, task, attempt), so the
// fault schedule is independent of thread scheduling and reproducible.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UnitReal(uint64_t word) {
  // 53 uniform mantissa bits -> [0, 1).
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

uint64_t DecisionWord(uint64_t seed, TaskKind kind, std::size_t task,
                      int attempt, uint64_t stream) {
  uint64_t x = seed;
  x = Mix64(x ^ (static_cast<uint64_t>(kind) + 1));
  x = Mix64(x ^ static_cast<uint64_t>(task));
  x = Mix64(x ^ static_cast<uint64_t>(static_cast<int64_t>(attempt)));
  return Mix64(x ^ stream);
}

// The shared escaper handles the full control-character range (the old
// local copy emitted "\u00XX" with a possibly sign-extended %04x for \r,
// \b and \f and was not round-trippable).
void AppendJsonString(std::string* out, const std::string& s) {
  obs::AppendJsonEscaped(out, s);
}

}  // namespace

const char* TaskKindName(TaskKind kind) {
  return kind == TaskKind::kMap ? "map" : "reduce";
}

const char* JobEventTypeName(JobEventType type) {
  switch (type) {
    case JobEventType::kAttemptStart: return "attempt_start";
    case JobEventType::kAttemptFinish: return "attempt_finish";
    case JobEventType::kAttemptFail: return "attempt_fail";
    case JobEventType::kAttemptKill: return "attempt_kill";
    case JobEventType::kAttemptSpeculate: return "attempt_speculate";
    case JobEventType::kPhaseStart: return "phase_start";
    case JobEventType::kPhaseFinish: return "phase_finish";
    case JobEventType::kSpill: return "spill";
    case JobEventType::kMergePass: return "merge_pass";
  }
  return "unknown";
}

FaultDecision RandomFaultInjector::OnAttempt(TaskKind kind, std::size_t task,
                                             int attempt) const {
  FaultDecision d;
  if (opts_.failure_probability > 0.0 &&
      UnitReal(DecisionWord(opts_.seed, kind, task, attempt, 1)) <
          opts_.failure_probability) {
    d.fail = true;
  }
  if (opts_.straggler_probability > 0.0 &&
      UnitReal(DecisionWord(opts_.seed, kind, task, attempt, 2)) <
          opts_.straggler_probability) {
    d.delay_seconds = opts_.straggler_delay_seconds;
  }
  return d;
}

FaultDecision TargetedFaultInjector::OnAttempt(TaskKind kind,
                                               std::size_t task,
                                               int attempt) const {
  FaultDecision d;
  for (const TargetedFault& f : faults_) {
    if (f.kind != kind || f.task != task) continue;
    if (attempt < f.fail_first_attempts) d.fail = true;
    if (attempt == 0 && f.delay_seconds > 0.0) {
      d.delay_seconds = f.delay_seconds;
    }
  }
  return d;
}

int64_t JobEventTrace::Count(JobEventType type) const {
  int64_t n = 0;
  for (const JobEvent& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

AttemptStats JobEventTrace::Stats() const {
  AttemptStats s;
  s.started = Count(JobEventType::kAttemptStart);
  s.finished = Count(JobEventType::kAttemptFinish);
  s.failed = Count(JobEventType::kAttemptFail);
  s.killed = Count(JobEventType::kAttemptKill);
  s.speculated = Count(JobEventType::kAttemptSpeculate);
  return s;
}

std::string JobEventTrace::ToJson() const {
  std::string out = "[";
  char buf[64];
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const JobEvent& e = events_[i];
    if (i > 0) out += ",";
    out += "\n  {\"type\": ";
    AppendJsonString(&out, JobEventTypeName(e.type));
    if (e.task != kNoTask) {
      out += ", \"kind\": ";
      AppendJsonString(&out, TaskKindName(e.kind));
      std::snprintf(buf, sizeof(buf), ", \"task\": %zu, \"attempt\": %d",
                    e.task, e.attempt);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ", \"t\": %.6f", e.time_seconds);
    out += buf;
    if (e.duration_seconds > 0.0) {
      std::snprintf(buf, sizeof(buf), ", \"duration\": %.6f",
                    e.duration_seconds);
      out += buf;
    }
    if (!e.detail.empty()) {
      out += ", \"detail\": ";
      AppendJsonString(&out, e.detail);
    }
    out += "}";
  }
  out += "\n]";
  return out;
}

}  // namespace hamming::mr

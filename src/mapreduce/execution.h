// The redesigned job-execution API: everything that controls *how* a
// MapReduce job runs, as opposed to *what* it computes.
//
// A JobSpec names the computation (input splits, map/reduce functions);
// an ExecutionOptions bundles the runtime knobs that used to accrete as
// flat JobSpec fields — reducer count, partitioner, counter mode — plus
// the fault-tolerance layer introduced with it:
//
//  * task *attempts*: each map/reduce task is a sequence of attempts
//    with a budget of `max_attempts`. An attempt buffers its outputs and
//    counters privately and only the winning attempt commits, so a job
//    that survives failures produces outputs and counters byte-identical
//    to a failure-free run (Hadoop's task-attempt model, which the
//    paper's 0.22 cluster relied on for its evaluation).
//  * a pluggable FaultInjector that decides, deterministically per
//    (task kind, task, attempt), whether an attempt fails midway or is
//    delayed as a straggler — the instrument behind the failure-rate
//    sweeps in EXPERIMENTS.md.
//  * speculative execution: a monitor launches one backup attempt for
//    any attempt that exceeds a slowness threshold; the first attempt to
//    finish commits and the loser is cancelled (cooperatively, through
//    common/threadpool.h's CancelToken).
//  * a structured JobEventTrace (attempt start/finish/fail/kill/
//    speculate plus phase boundaries, each timestamped against the job
//    clock) collected into JobResult and streamed to an optional
//    JobObserver, exportable as JSON by the bench harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace hamming::obs {
class MetricsRegistry;
}  // namespace hamming::obs

namespace hamming::mr {

/// \brief Key -> reducer routing; default hashes the key bytes.
using PartitionFn =
    std::function<std::size_t(const std::vector<uint8_t>& key,
                              std::size_t num_reducers)>;

/// \brief Which kind of task an attempt belongs to.
enum class TaskKind : uint8_t { kMap = 0, kReduce = 1 };

/// \brief Human-readable name ("map" / "reduce").
const char* TaskKindName(TaskKind kind);

/// \brief What the fault injector does to one task attempt.
struct FaultDecision {
  /// Abort the attempt with an injected ExecutionError after roughly
  /// half of its input has been processed (so the attempt has already
  /// buffered output and counters that must be discarded).
  bool fail = false;
  /// Straggler delay: the attempt sleeps this long (cancellably) before
  /// processing its input. 0 = no delay.
  double delay_seconds = 0.0;
};

/// \brief Decides the fate of every task attempt.
///
/// Implementations MUST be pure functions of (kind, task, attempt): the
/// runner may consult them from any worker thread and deterministic
/// re-execution depends on the decision not varying with scheduling.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision OnAttempt(TaskKind kind, std::size_t task,
                                  int attempt) const = 0;
};

/// \brief I.i.d. per-attempt fault model, seeded and scheduling-independent
/// (each decision hashes (seed, kind, task, attempt)).
struct RandomFaultOptions {
  double failure_probability = 0.0;    // per attempt, map and reduce alike
  double straggler_probability = 0.0;  // per attempt
  double straggler_delay_seconds = 0.0;
  uint64_t seed = 0x5eedf417u;
};

class RandomFaultInjector final : public FaultInjector {
 public:
  explicit RandomFaultInjector(RandomFaultOptions opts) : opts_(opts) {}
  FaultDecision OnAttempt(TaskKind kind, std::size_t task,
                          int attempt) const override;

 private:
  RandomFaultOptions opts_;
};

/// \brief A scripted fault against one specific task.
struct TargetedFault {
  TaskKind kind = TaskKind::kMap;
  std::size_t task = 0;
  /// Attempts [0, fail_first_attempts) of the task fail.
  int fail_first_attempts = 0;
  /// Straggler delay injected into attempt 0 only (backups run clean).
  double delay_seconds = 0.0;
};

class TargetedFaultInjector final : public FaultInjector {
 public:
  explicit TargetedFaultInjector(std::vector<TargetedFault> faults)
      : faults_(std::move(faults)) {}
  FaultDecision OnAttempt(TaskKind kind, std::size_t task,
                          int attempt) const override;

 private:
  std::vector<TargetedFault> faults_;
};

/// \brief Backup-attempt policy for straggling tasks.
struct SpeculationOptions {
  bool enabled = false;
  /// An attempt running longer than this gets one backup attempt.
  double slow_attempt_seconds = 0.05;
};

/// \brief One entry of the job's event trace.
enum class JobEventType : uint8_t {
  kAttemptStart = 0,
  kAttemptFinish,     // the attempt committed (it is the winner)
  kAttemptFail,       // the attempt errored (injected or user error)
  kAttemptKill,       // the attempt lost a race and was cancelled
  kAttemptSpeculate,  // a backup attempt was launched for this task
  kPhaseStart,
  kPhaseFinish,
  kSpill,      // a map/merge attempt wrote a sorted run to disk
  kMergePass,  // a reduce attempt's shuffle merge opened (detail: fan-in)
};

/// \brief Human-readable event-type name ("attempt_start", ...).
const char* JobEventTypeName(JobEventType type);

/// \brief Marker for events not tied to a task (phase boundaries).
inline constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

struct JobEvent {
  JobEventType type = JobEventType::kAttemptStart;
  TaskKind kind = TaskKind::kMap;
  std::size_t task = kNoTask;
  int attempt = -1;
  /// Seconds since the job started, on the job's steady clock.
  double time_seconds = 0.0;
  /// For finish/fail/kill/phase-finish: how long the attempt/phase ran.
  double duration_seconds = 0.0;
  /// Error text, phase name ("map"/"shuffle"/"reduce"), or "".
  std::string detail;
};

/// \brief Attempt-level accounting derived from a trace.
struct AttemptStats {
  int64_t started = 0;
  int64_t finished = 0;
  int64_t failed = 0;
  int64_t killed = 0;
  int64_t speculated = 0;
};

/// \brief The ordered event log of one job run.
///
/// The runner appends under its own lock; a finished trace is plain data
/// (copyable, no synchronization) inside JobResult.
class JobEventTrace {
 public:
  void Append(JobEvent event) { events_.push_back(std::move(event)); }
  const std::vector<JobEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// \brief Number of events of one type.
  int64_t Count(JobEventType type) const;

  /// \brief Attempt-level totals.
  AttemptStats Stats() const;

  /// \brief The whole trace as a JSON array (one object per event).
  std::string ToJson() const;

 private:
  std::vector<JobEvent> events_;
};

/// \brief Subscriber for job events, the push-style alternative to
/// scraping JobResult::trace after the fact.
///
/// OnEvent calls are serialized by the runner (one event at a time) but
/// may arrive from any worker thread; the observer must outlive RunJob.
class JobObserver {
 public:
  virtual ~JobObserver() = default;
  virtual void OnEvent(const JobEvent& event) = 0;
};

/// \brief Marker for "no shuffle memory budget": the runtime keeps the
/// all-in-memory shuffle fast path.
inline constexpr std::size_t kUnlimitedShuffleMemory =
    static_cast<std::size_t>(-1);

/// \brief Everything that controls how a job executes.
struct ExecutionOptions {
  std::size_t num_reducers = 1;
  PartitionFn partition_fn;  // null = HashPartition
  /// Benchmark knob: charge each record straight to the job's shared
  /// (mutex-protected) Counters — the contended pattern the per-task
  /// LocalCounters batching replaced. Ignored (buffered counting is
  /// forced) whenever retries, speculation or fault injection are
  /// active, because per-record shared counting cannot be un-charged
  /// when an attempt is discarded.
  bool legacy_contended_counters = false;
  /// Attempt budget per task; the job aborts with the task's first
  /// error once a task has failed this many times. Must be >= 1.
  std::size_t max_attempts = 1;
  SpeculationOptions speculation;
  /// Null = no injected faults.
  std::shared_ptr<const FaultInjector> fault;
  /// Optional event subscriber (non-owning; must outlive RunJob).
  JobObserver* observer = nullptr;
  /// Optional metrics sink (non-owning; must outlive RunJob). The runner
  /// records per-reducer input load histograms ("mr.reduce_input_records"
  /// / "mr.reduce_input_bytes", one sample per reducer — their
  /// SkewMaxOverMean is the job's skew coefficient) plus wall-clock phase
  /// durations under "time."-prefixed names ("time.map_micros", ...).
  /// Everything except the "time." metrics is derived from committed
  /// state only, so the recorded values are identical across retries,
  /// speculation, and fault injection.
  obs::MetricsRegistry* metrics = nullptr;

  // ---- External shuffle (mapreduce/shuffle.h) --------------------------
  /// Per-task shuffle memory budget in bytes. With a finite budget a map
  /// task buffers at most this many serialized record bytes before
  /// sorting the buffer and spilling it to disk as one run per reducer
  /// partition, and each reducer's input is streamed through a k-way
  /// merge of those runs instead of being materialized. The default,
  /// kUnlimitedShuffleMemory, keeps the all-in-memory fast path. Job
  /// outputs and the logical counters are byte-identical whatever the
  /// budget. The HAMMING_SHUFFLE_BUDGET environment variable overrides
  /// the default for jobs that did not set a budget explicitly (the
  /// sanitizer sweep in scripts/check.sh uses it to push every test
  /// through the spill/merge paths).
  std::size_t shuffle_memory_bytes = kUnlimitedShuffleMemory;
  /// Maximum number of sorted runs one merge pass consumes. A reducer
  /// facing more spill segments than this first runs intermediate merge
  /// passes (re-applying the job's combiner, if any) until the final
  /// streaming merge is within the fan-in cap. Must be >= 2.
  std::size_t shuffle_max_merge_fanin = 16;
  /// Directory for spill files; "" uses the system temp directory. Each
  /// job creates (and on completion removes) a private subdirectory.
  std::string shuffle_dir;
};

}  // namespace hamming::mr

#include "mapreduce/job.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/stopwatch.h"

namespace hamming::mr {

std::size_t HashPartition(const std::vector<uint8_t>& key,
                          std::size_t num_reducers) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % num_reducers);
}

std::vector<std::vector<Record>> SplitEvenly(std::vector<Record> records,
                                             std::size_t num_splits) {
  num_splits = std::max<std::size_t>(1, num_splits);
  std::vector<std::vector<Record>> splits(num_splits);
  const std::size_t n = records.size();
  for (std::size_t s = 0; s < num_splits; ++s) {
    std::size_t begin = s * n / num_splits;
    std::size_t end = (s + 1) * n / num_splits;
    splits[s].assign(std::make_move_iterator(records.begin() + begin),
                     std::make_move_iterator(records.begin() + end));
  }
  return splits;
}

namespace {

// Effective execution options: the deprecated flat JobSpec fields forward
// into (and override) spec.options for one release, then disappear.
ExecutionOptions ResolveOptions(const JobSpec& spec) {
  ExecutionOptions opts = spec.options;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  if (spec.num_reducers != JobSpec::kUnsetNumReducers) {
    opts.num_reducers = spec.num_reducers;
  }
  if (spec.partition_fn) opts.partition_fn = spec.partition_fn;
  if (spec.legacy_contended_counters) opts.legacy_contended_counters = true;
#pragma GCC diagnostic pop
  if (!opts.partition_fn) opts.partition_fn = PartitionFn(HashPartition);
  // Per-record shared counting cannot be un-charged when an attempt is
  // discarded, so any attempt-layer feature forces buffered counting.
  if (opts.max_attempts > 1 || opts.speculation.enabled ||
      opts.fault != nullptr) {
    opts.legacy_contended_counters = false;
  }
  return opts;
}

// Serializes trace appends and observer callbacks, timestamping every
// event against the job clock.
class EventLog {
 public:
  EventLog(JobEventTrace* trace, JobObserver* observer,
           const Stopwatch* clock)
      : trace_(trace), observer_(observer), clock_(clock) {}

  void Attempt(JobEventType type, TaskKind kind, std::size_t task,
               int attempt, double duration = 0.0, std::string detail = {}) {
    JobEvent e;
    e.type = type;
    e.kind = kind;
    e.task = task;
    e.attempt = attempt;
    e.time_seconds = clock_->ElapsedSeconds();
    e.duration_seconds = duration;
    e.detail = std::move(detail);
    Push(std::move(e));
  }

  void Phase(JobEventType type, const char* phase, double duration = 0.0) {
    JobEvent e;
    e.type = type;
    e.task = kNoTask;
    e.attempt = -1;
    e.time_seconds = clock_->ElapsedSeconds();
    e.duration_seconds = duration;
    e.detail = phase;
    Push(std::move(e));
  }

 private:
  void Push(JobEvent e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (observer_ != nullptr) observer_->OnEvent(e);
    trace_->Append(std::move(e));
  }

  std::mutex mu_;
  JobEventTrace* trace_;
  JobObserver* observer_;
  const Stopwatch* clock_;
};

// Everything one attempt produced. Buffered privately and committed only
// if the attempt wins, so failed/cancelled attempts leave no trace in the
// job's outputs or counters.
struct AttemptOutput {
  std::vector<std::vector<Record>> map_partitions;  // map attempts
  std::vector<Record> reduce_records;               // reduce attempts
  LocalCounters counts;
};

// The body of one attempt: fills `out`, polls `token` between records.
using AttemptFn = std::function<Status(std::size_t task, int attempt,
                                       CancelToken* token,
                                       AttemptOutput* out)>;
// Moves the winning attempt's output into the phase result. Called at
// most once per task, guarded by the task's committed flag.
using CommitFn = std::function<void(std::size_t task, AttemptOutput* out)>;

// Runs one phase's tasks through the attempt layer: a retry budget of
// max_attempts per task, an optional speculation monitor that launches
// one backup attempt per straggling task, and cooperative cancellation
// of racing attempts. The first task to exhaust its budget decides the
// phase's error.
class PhaseRunner {
 public:
  PhaseRunner(ThreadPool* pool, TaskKind kind, std::size_t num_tasks,
              const ExecutionOptions& opts, EventLog* events)
      : pool_(pool),
        kind_(kind),
        opts_(opts),
        events_(events),
        tasks_(num_tasks) {}

  Status Run(const AttemptFn& attempt_fn, const CommitFn& commit_fn) {
    std::thread monitor;
    if (opts_.speculation.enabled) {
      monitor = std::thread(
          [this, &attempt_fn, &commit_fn] { MonitorLoop(attempt_fn, commit_fn); });
    }
    ParallelFor(pool_, tasks_.size(), [&](std::size_t task) {
      Coordinator(task, attempt_fn, commit_fn);
    });
    if (monitor.joinable()) {
      {
        std::lock_guard<std::mutex> lock(watch_mu_);
        monitor_stop_ = true;
      }
      watch_cv_.notify_all();
      monitor.join();
    }
    // Backup attempts that lost their race may still be running; the
    // phase's state is only safe to tear down once they have drained.
    // The monitor is stopped, so no new ones appear.
    std::vector<std::thread> pending;
    {
      std::lock_guard<std::mutex> lock(backups_mu_);
      pending.swap(backups_);
    }
    for (auto& t : pending) t.join();

    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      std::lock_guard<std::mutex> lock(tasks_[t].mu);
      if (tasks_[t].failed) return tasks_[t].first_error;
    }
    return Status::OK();
  }

 private:
  struct TaskState {
    std::mutex mu;
    bool committed = false;
    bool failed = false;  // attempt budget exhausted
    int next_attempt = 0;
    std::size_t failures = 0;
    bool has_first_error = false;
    Status first_error;
    bool speculated = false;  // at most one backup per task
    std::unordered_map<int, std::shared_ptr<CancelToken>> live;
  };

  enum class Outcome { kCommitted, kLost, kRetry, kPermanentFailure };

  Outcome RunOneAttempt(std::size_t task, bool speculative,
                        const AttemptFn& attempt_fn,
                        const CommitFn& commit_fn) {
    TaskState& st = tasks_[task];
    auto token = std::make_shared<CancelToken>();
    int attempt;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      if (st.committed) return Outcome::kLost;
      if (st.failed) return Outcome::kPermanentFailure;
      attempt = st.next_attempt++;
      st.live.emplace(attempt, token);
    }
    events_->Attempt(JobEventType::kAttemptStart, kind_, task, attempt, 0.0,
                     speculative ? "speculative" : "");
    if (opts_.speculation.enabled && !speculative) StartWatch(task);

    Stopwatch watch;
    AttemptOutput out;
    Status status = attempt_fn(task, attempt, token.get(), &out);
    const double duration = watch.ElapsedSeconds();

    if (opts_.speculation.enabled && !speculative) StopWatch(task);

    std::unique_lock<std::mutex> lock(st.mu);
    st.live.erase(attempt);
    if (st.committed) {
      lock.unlock();
      events_->Attempt(JobEventType::kAttemptKill, kind_, task, attempt,
                       duration, "task already committed");
      return Outcome::kLost;
    }
    if (status.ok() && !token->cancelled()) {
      st.committed = true;
      for (auto& [id, other] : st.live) other->Cancel();
      lock.unlock();
      commit_fn(task, &out);
      events_->Attempt(JobEventType::kAttemptFinish, kind_, task, attempt,
                       duration);
      return Outcome::kCommitted;
    }
    if (token->cancelled()) {
      lock.unlock();
      events_->Attempt(JobEventType::kAttemptKill, kind_, task, attempt,
                       duration, "cancelled");
      return Outcome::kLost;
    }
    // A real failure (injected or user error): charge the budget.
    ++st.failures;
    if (!st.has_first_error) {
      st.has_first_error = true;
      st.first_error = status;
    }
    const bool permanent = st.failures >= opts_.max_attempts;
    if (permanent) {
      st.failed = true;
      for (auto& [id, other] : st.live) other->Cancel();
    }
    lock.unlock();
    events_->Attempt(JobEventType::kAttemptFail, kind_, task, attempt,
                     duration, status.ToString());
    return permanent ? Outcome::kPermanentFailure : Outcome::kRetry;
  }

  // One coordinator per task runs on the pool (as one pool task) and
  // retries failures inline; backups run as separate pool tasks.
  void Coordinator(std::size_t task, const AttemptFn& attempt_fn,
                   const CommitFn& commit_fn) {
    for (;;) {
      switch (RunOneAttempt(task, /*speculative=*/false, attempt_fn,
                            commit_fn)) {
        case Outcome::kRetry:
          continue;
        case Outcome::kCommitted:
        case Outcome::kLost:
        case Outcome::kPermanentFailure:
          return;
      }
    }
  }

  void StartWatch(std::size_t task) {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watches_[task] = std::chrono::steady_clock::now();
  }

  void StopWatch(std::size_t task) {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watches_.erase(task);
  }

  // The speculation monitor: wakes a few times per threshold interval,
  // finds primary attempts that have been running longer than the
  // slowness threshold, and launches one backup attempt for each such
  // task. Lock order is watch_mu_ -> task.mu (attempt code never takes
  // them nested the other way).
  void MonitorLoop(const AttemptFn& attempt_fn, const CommitFn& commit_fn) {
    const double threshold = opts_.speculation.slow_attempt_seconds;
    const auto interval =
        std::chrono::duration<double>(std::max(threshold / 4.0, 0.0005));
    std::unique_lock<std::mutex> lock(watch_mu_);
    while (!monitor_stop_) {
      watch_cv_.wait_for(lock, interval);
      if (monitor_stop_) break;
      const auto now = std::chrono::steady_clock::now();
      for (auto it = watches_.begin(); it != watches_.end();) {
        const double elapsed =
            std::chrono::duration<double>(now - it->second).count();
        if (elapsed < threshold) {
          ++it;
          continue;
        }
        const std::size_t task = it->first;
        it = watches_.erase(it);
        TaskState& st = tasks_[task];
        bool launch = false;
        {
          std::lock_guard<std::mutex> tl(st.mu);
          if (!st.committed && !st.failed && !st.speculated) {
            st.speculated = true;
            launch = true;
          }
        }
        if (!launch) continue;
        events_->Attempt(JobEventType::kAttemptSpeculate, kind_, task, -1,
                         elapsed, "slow attempt");
        // The backup runs on its own thread, not the phase's pool: the
        // pool is saturated with the phase's primary attempts, so a
        // queued backup would only run after the straggler it is meant
        // to overtake. This models Hadoop launching the backup on a
        // *different* node's free slot. Bounded: one backup per task.
        std::thread backup([this, task, &attempt_fn, &commit_fn] {
          RunOneAttempt(task, /*speculative=*/true, attempt_fn, commit_fn);
        });
        std::lock_guard<std::mutex> bl(backups_mu_);
        backups_.push_back(std::move(backup));
      }
    }
  }

  ThreadPool* pool_;
  TaskKind kind_;
  const ExecutionOptions& opts_;
  EventLog* events_;
  std::vector<TaskState> tasks_;

  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool monitor_stop_ = false;
  std::unordered_map<std::size_t, std::chrono::steady_clock::time_point>
      watches_;

  std::mutex backups_mu_;
  std::vector<std::thread> backups_;
};

Status CancelledStatus(TaskKind kind) {
  return Status::ExecutionError(std::string(TaskKindName(kind)) +
                                " attempt cancelled");
}

std::string InjectedFaultMessage(TaskKind kind, std::size_t task,
                                 int attempt) {
  return std::string("injected fault: ") + TaskKindName(kind) + " task " +
         std::to_string(task) + " attempt " + std::to_string(attempt);
}

}  // namespace

Result<JobResult> RunJob(const JobSpec& spec, Cluster* cluster) {
  if (!spec.map_fn) return Status::InvalidArgument("job has no map function");
  const ExecutionOptions opts = ResolveOptions(spec);
  if (opts.num_reducers == 0) {
    return Status::InvalidArgument("num_reducers must be positive");
  }
  if (opts.max_attempts == 0) {
    return Status::InvalidArgument("max_attempts must be positive");
  }
  JobResult result;
  Stopwatch total_watch;
  EventLog events(&result.trace, opts.observer, &total_watch);
  const PartitionFn& partition = opts.partition_fn;
  const bool legacy_counters = opts.legacy_contended_counters;
  const FaultInjector* fault = opts.fault.get();

  // ---- Map phase -------------------------------------------------------
  Stopwatch map_watch;
  events.Phase(JobEventType::kPhaseStart, "map");
  const std::size_t num_maps = spec.input_splits.size();
  // Per map task, per reducer: emitted records (winning attempt only).
  std::vector<std::vector<std::vector<Record>>> map_outputs(num_maps);

  AttemptFn map_attempt = [&](std::size_t m, int attempt, CancelToken* token,
                              AttemptOutput* out) -> Status {
    const FaultDecision fd =
        fault ? fault->OnAttempt(TaskKind::kMap, m, attempt)
              : FaultDecision{};
    if (fd.delay_seconds > 0.0 && !token->SleepFor(fd.delay_seconds)) {
      return CancelledStatus(TaskKind::kMap);
    }
    const auto& split = spec.input_splits[m];
    // Injected failures fire midway, after the attempt has buffered
    // emissions and counters that the runner must then discard.
    const std::size_t fail_after =
        fd.fail ? split.size() / 2 : static_cast<std::size_t>(-1);
    out->map_partitions.assign(opts.num_reducers, {});
    auto count = [&](CounterId id, int64_t delta) {
      if (legacy_counters) {
        result.counters.Add(CounterName(id), delta);
      } else {
        out->counts.Add(id, delta);
      }
    };
    Emitter emitter;  // reused across records; keeps its capacity
    std::size_t processed = 0;
    for (const Record& rec : split) {
      if (token->cancelled()) return CancelledStatus(TaskKind::kMap);
      if (processed == fail_after) {
        return Status::ExecutionError(
            InjectedFaultMessage(TaskKind::kMap, m, attempt));
      }
      count(CounterId::kMapInputRecords, 1);
      emitter.records().clear();
      HAMMING_RETURN_NOT_OK(spec.map_fn(rec, &emitter));
      for (Record& o : emitter.records()) {
        count(CounterId::kMapOutputRecords, 1);
        count(CounterId::kShuffleBytes,
              static_cast<int64_t>(o.SerializedBytes()));
        std::size_t p = partition(o.key, opts.num_reducers);
        out->map_partitions[p].push_back(std::move(o));
      }
      ++processed;
    }
    if (fd.fail && split.empty()) {
      return Status::ExecutionError(
          InjectedFaultMessage(TaskKind::kMap, m, attempt));
    }
    return Status::OK();
  };
  CommitFn map_commit = [&](std::size_t m, AttemptOutput* out) {
    map_outputs[m] = std::move(out->map_partitions);
    if (!legacy_counters) result.counters.MergeLocal(out->counts);
  };
  {
    PhaseRunner runner(cluster->pool(), TaskKind::kMap, num_maps, opts,
                       &events);
    Status st = runner.Run(map_attempt, map_commit);
    result.map_seconds = map_watch.ElapsedSeconds();
    events.Phase(JobEventType::kPhaseFinish, "map", result.map_seconds);
    if (!st.ok()) return st;
  }

  // ---- Shuffle phase: gather per reducer, sort by key ------------------
  // Reducer r's gather touches only slot r of every map output, so the
  // per-reducer concatenate+sort chains run in parallel.
  Stopwatch shuffle_watch;
  events.Phase(JobEventType::kPhaseStart, "shuffle");
  std::vector<std::vector<Record>> reducer_inputs(opts.num_reducers);
  ParallelFor(cluster->pool(), opts.num_reducers, [&](std::size_t r) {
    auto& dst = reducer_inputs[r];
    std::size_t total = 0;
    for (const auto& per_map : map_outputs) total += per_map[r].size();
    dst.reserve(total);
    for (auto& per_map : map_outputs) {
      dst.insert(dst.end(), std::make_move_iterator(per_map[r].begin()),
                 std::make_move_iterator(per_map[r].end()));
    }
    std::stable_sort(dst.begin(), dst.end(),
                     [](const Record& a, const Record& b) {
                       return a.key < b.key;
                     });
  });
  map_outputs.clear();
  result.shuffle_seconds = shuffle_watch.ElapsedSeconds();
  events.Phase(JobEventType::kPhaseFinish, "shuffle", result.shuffle_seconds);

  // ---- Reduce phase ----------------------------------------------------
  Stopwatch reduce_watch;
  events.Phase(JobEventType::kPhaseStart, "reduce");
  result.outputs.resize(opts.num_reducers);
  if (!spec.reduce_fn) {
    // Map-only job: partitioned map outputs are the result.
    result.outputs = std::move(reducer_inputs);
  } else {
    // An attempt may be re-run, so reduce input values are copied per
    // attempt when the attempt layer is active; the single-attempt fast
    // path moves them out as before.
    const bool destructive = opts.max_attempts == 1 &&
                             !opts.speculation.enabled && fault == nullptr;
    AttemptFn reduce_attempt = [&](std::size_t r, int attempt,
                                   CancelToken* token,
                                   AttemptOutput* out) -> Status {
      const FaultDecision fd =
          fault ? fault->OnAttempt(TaskKind::kReduce, r, attempt)
                : FaultDecision{};
      if (fd.delay_seconds > 0.0 && !token->SleepFor(fd.delay_seconds)) {
        return CancelledStatus(TaskKind::kReduce);
      }
      auto& input = reducer_inputs[r];
      const std::size_t fail_after =
          fd.fail ? input.size() / 2 : static_cast<std::size_t>(-1);
      auto count = [&](CounterId id, int64_t delta) {
        if (legacy_counters) {
          result.counters.Add(CounterName(id), delta);
        } else {
          out->counts.Add(id, delta);
        }
      };
      Emitter emitter;
      std::size_t i = 0;
      while (i < input.size()) {
        if (token->cancelled()) return CancelledStatus(TaskKind::kReduce);
        if (i >= fail_after) {
          return Status::ExecutionError(
              InjectedFaultMessage(TaskKind::kReduce, r, attempt));
        }
        std::size_t j = i;
        std::vector<std::vector<uint8_t>> values;
        while (j < input.size() && input[j].key == input[i].key) {
          if (destructive) {
            values.push_back(std::move(input[j].value));
          } else {
            values.push_back(input[j].value);
          }
          ++j;
        }
        count(CounterId::kReduceInputGroups, 1);
        HAMMING_RETURN_NOT_OK(spec.reduce_fn(input[i].key, values, &emitter));
        i = j;
      }
      if (fd.fail && input.empty()) {
        return Status::ExecutionError(
            InjectedFaultMessage(TaskKind::kReduce, r, attempt));
      }
      count(CounterId::kReduceOutputRecords,
            static_cast<int64_t>(emitter.records().size()));
      out->reduce_records = std::move(emitter.records());
      return Status::OK();
    };
    CommitFn reduce_commit = [&](std::size_t r, AttemptOutput* out) {
      result.outputs[r] = std::move(out->reduce_records);
      if (!legacy_counters) result.counters.MergeLocal(out->counts);
    };
    PhaseRunner runner(cluster->pool(), TaskKind::kReduce, opts.num_reducers,
                       opts, &events);
    Status st = runner.Run(reduce_attempt, reduce_commit);
    if (!st.ok()) return st;
  }
  result.reduce_seconds = reduce_watch.ElapsedSeconds();
  events.Phase(JobEventType::kPhaseFinish, "reduce", result.reduce_seconds);
  result.total_seconds = total_watch.ElapsedSeconds();

  cluster->cumulative_counters()->Merge(result.counters);
  return result;
}

}  // namespace hamming::mr

#include "mapreduce/job.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/sync.h"
#include "mapreduce/shuffle.h"
#include "observability/metric_names.h"
#include "observability/metrics.h"
#include "observability/stopwatch.h"

namespace hamming::mr {

using obs::Stopwatch;

std::size_t HashPartition(const std::vector<uint8_t>& key,
                          std::size_t num_reducers) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % num_reducers);
}

std::vector<std::vector<Record>> SplitEvenly(std::vector<Record> records,
                                             std::size_t num_splits) {
  num_splits = std::max<std::size_t>(1, num_splits);
  std::vector<std::vector<Record>> splits(num_splits);
  const std::size_t n = records.size();
  for (std::size_t s = 0; s < num_splits; ++s) {
    std::size_t begin = s * n / num_splits;
    std::size_t end = (s + 1) * n / num_splits;
    splits[s].assign(std::make_move_iterator(records.begin() + begin),
                     std::make_move_iterator(records.begin() + end));
  }
  return splits;
}

namespace {

// HAMMING_SHUFFLE_BUDGET (bytes) overrides the shuffle memory budget for
// jobs that did not set one explicitly; scripts/check.sh uses it to push
// every test through the spill/merge paths. Parsed once per process.
std::size_t EnvShuffleBudget() {
  static const std::size_t parsed = [] {
    const char* env = std::getenv("HAMMING_SHUFFLE_BUDGET");
    if (env == nullptr || *env == '\0') return kUnlimitedShuffleMemory;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v == 0) return kUnlimitedShuffleMemory;
    return static_cast<std::size_t>(v);
  }();
  return parsed;
}

// Effective execution options for one run.
ExecutionOptions ResolveOptions(const JobSpec& spec) {
  ExecutionOptions opts = spec.options;
  if (!opts.partition_fn) opts.partition_fn = PartitionFn(HashPartition);
  // Per-record shared counting cannot be un-charged when an attempt is
  // discarded, so any attempt-layer feature forces buffered counting.
  if (opts.max_attempts > 1 || opts.speculation.enabled ||
      opts.fault != nullptr) {
    opts.legacy_contended_counters = false;
  }
  if (opts.shuffle_memory_bytes == kUnlimitedShuffleMemory) {
    opts.shuffle_memory_bytes = EnvShuffleBudget();
  }
  return opts;
}

// Serializes trace appends and observer callbacks, timestamping every
// event against the job clock.
class EventLog {
 public:
  EventLog(JobEventTrace* trace, JobObserver* observer,
           const Stopwatch* clock)
      : trace_(trace), observer_(observer), clock_(clock) {}

  void Attempt(JobEventType type, TaskKind kind, std::size_t task,
               int attempt, double duration = 0.0, std::string detail = {}) {
    JobEvent e;
    e.type = type;
    e.kind = kind;
    e.task = task;
    e.attempt = attempt;
    e.time_seconds = clock_->ElapsedSeconds();
    e.duration_seconds = duration;
    e.detail = std::move(detail);
    Push(std::move(e));
  }

  void Phase(JobEventType type, const char* phase, double duration = 0.0) {
    JobEvent e;
    e.type = type;
    e.task = kNoTask;
    e.attempt = -1;
    e.time_seconds = clock_->ElapsedSeconds();
    e.duration_seconds = duration;
    e.detail = phase;
    Push(std::move(e));
  }

 private:
  void Push(JobEvent e) HAMMING_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (observer_ != nullptr) observer_->OnEvent(e);
    trace_->Append(std::move(e));
  }

  Mutex mu_;
  // Pointees are only touched under mu_ (the serialization the trace and
  // observer contracts promise); the pointers themselves are immutable.
  JobEventTrace* const trace_ HAMMING_PT_GUARDED_BY(mu_);
  JobObserver* const observer_ HAMMING_PT_GUARDED_BY(mu_);
  const Stopwatch* clock_;
};

// Everything one attempt produced. Buffered privately and committed only
// if the attempt wins, so failed/cancelled attempts leave no trace in the
// job's outputs or counters.
struct AttemptOutput {
  std::vector<std::vector<Record>> map_partitions;  // map attempts (in-memory)
  std::vector<SpillFileRef> spills;                 // map attempts (external)
  std::vector<Record> reduce_records;               // reduce attempts
  LocalCounters counts;
};

// The body of one attempt: fills `out`, polls `token` between records.
using AttemptFn = std::function<Status(std::size_t task, int attempt,
                                       CancelToken* token,
                                       AttemptOutput* out)>;
// Moves the winning attempt's output into the phase result. Called at
// most once per task, guarded by the task's committed flag.
using CommitFn = std::function<void(std::size_t task, AttemptOutput* out)>;

// Runs one phase's tasks through the attempt layer: a retry budget of
// max_attempts per task, an optional speculation monitor that launches
// one backup attempt per straggling task, and cooperative cancellation
// of racing attempts. The first task to exhaust its budget decides the
// phase's error.
class PhaseRunner {
 public:
  PhaseRunner(ThreadPool* pool, TaskKind kind, std::size_t num_tasks,
              const ExecutionOptions& opts, EventLog* events)
      : pool_(pool),
        kind_(kind),
        opts_(opts),
        events_(events),
        tasks_(num_tasks) {}

  Status Run(const AttemptFn& attempt_fn, const CommitFn& commit_fn) {
    Thread monitor;
    if (opts_.speculation.enabled) {
      monitor = Thread(
          [this, &attempt_fn, &commit_fn] { MonitorLoop(attempt_fn, commit_fn); });
    }
    ParallelFor(pool_, tasks_.size(), [&](std::size_t task) {
      Coordinator(task, attempt_fn, commit_fn);
    });
    if (monitor.joinable()) {
      {
        MutexLock lock(&watch_mu_);
        monitor_stop_ = true;
      }
      watch_cv_.NotifyAll();
      monitor.join();
    }
    // Backup attempts that lost their race may still be running; the
    // phase's state is only safe to tear down once they have drained.
    // The monitor is stopped, so no new ones appear.
    std::vector<Thread> pending;
    {
      MutexLock lock(&backups_mu_);
      pending.swap(backups_);
    }
    for (auto& t : pending) t.join();

    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      MutexLock lock(&tasks_[t].mu);
      if (tasks_[t].failed) return tasks_[t].first_error;
    }
    return Status::OK();
  }

 private:
  struct TaskState {
    Mutex mu;
    bool committed HAMMING_GUARDED_BY(mu) = false;
    bool failed HAMMING_GUARDED_BY(mu) = false;  // attempt budget exhausted
    int next_attempt HAMMING_GUARDED_BY(mu) = 0;
    std::size_t failures HAMMING_GUARDED_BY(mu) = 0;
    bool has_first_error HAMMING_GUARDED_BY(mu) = false;
    Status first_error HAMMING_GUARDED_BY(mu);
    bool speculated HAMMING_GUARDED_BY(mu) = false;  // one backup per task
    std::unordered_map<int, std::shared_ptr<CancelToken>> live
        HAMMING_GUARDED_BY(mu);
  };

  enum class Outcome { kCommitted, kLost, kRetry, kPermanentFailure };

  Outcome RunOneAttempt(std::size_t task, bool speculative,
                        const AttemptFn& attempt_fn,
                        const CommitFn& commit_fn) {
    TaskState& st = tasks_[task];
    auto token = std::make_shared<CancelToken>();
    int attempt;
    {
      MutexLock lock(&st.mu);
      if (st.committed) return Outcome::kLost;
      if (st.failed) return Outcome::kPermanentFailure;
      attempt = st.next_attempt++;
      st.live.emplace(attempt, token);
    }
    events_->Attempt(JobEventType::kAttemptStart, kind_, task, attempt, 0.0,
                     speculative ? "speculative" : "");
    if (opts_.speculation.enabled && !speculative) StartWatch(task);

    Stopwatch watch;
    AttemptOutput out;
    Status status = attempt_fn(task, attempt, token.get(), &out);
    const double duration = watch.ElapsedSeconds();

    if (opts_.speculation.enabled && !speculative) StopWatch(task);

    ReleasableMutexLock lock(&st.mu);
    st.live.erase(attempt);
    if (st.committed) {
      lock.Release();
      events_->Attempt(JobEventType::kAttemptKill, kind_, task, attempt,
                       duration, "task already committed");
      return Outcome::kLost;
    }
    if (status.ok() && !token->cancelled()) {
      st.committed = true;
      for (auto& [id, other] : st.live) other->Cancel();
      lock.Release();
      commit_fn(task, &out);
      events_->Attempt(JobEventType::kAttemptFinish, kind_, task, attempt,
                       duration);
      return Outcome::kCommitted;
    }
    if (token->cancelled()) {
      lock.Release();
      events_->Attempt(JobEventType::kAttemptKill, kind_, task, attempt,
                       duration, "cancelled");
      return Outcome::kLost;
    }
    // A real failure (injected or user error): charge the budget.
    ++st.failures;
    if (!st.has_first_error) {
      st.has_first_error = true;
      st.first_error = status;
    }
    const bool permanent = st.failures >= opts_.max_attempts;
    if (permanent) {
      st.failed = true;
      for (auto& [id, other] : st.live) other->Cancel();
    }
    lock.Release();
    events_->Attempt(JobEventType::kAttemptFail, kind_, task, attempt,
                     duration, status.ToString());
    return permanent ? Outcome::kPermanentFailure : Outcome::kRetry;
  }

  // One coordinator per task runs on the pool (as one pool task) and
  // retries failures inline; backups run as separate pool tasks.
  void Coordinator(std::size_t task, const AttemptFn& attempt_fn,
                   const CommitFn& commit_fn) {
    for (;;) {
      switch (RunOneAttempt(task, /*speculative=*/false, attempt_fn,
                            commit_fn)) {
        case Outcome::kRetry:
          continue;
        case Outcome::kCommitted:
        case Outcome::kLost:
        case Outcome::kPermanentFailure:
          return;
      }
    }
  }

  void StartWatch(std::size_t task) HAMMING_EXCLUDES(watch_mu_) {
    MutexLock lock(&watch_mu_);
    watches_[task] = std::chrono::steady_clock::now();
  }

  void StopWatch(std::size_t task) HAMMING_EXCLUDES(watch_mu_) {
    MutexLock lock(&watch_mu_);
    watches_.erase(task);
  }

  // The speculation monitor: wakes a few times per threshold interval,
  // finds primary attempts that have been running longer than the
  // slowness threshold, and launches one backup attempt for each such
  // task. Acquisition order is declared in tools/analyze/lock_order.toml
  // ("watch" -> "task") and machine-verified by the analyze stage.
  void MonitorLoop(const AttemptFn& attempt_fn, const CommitFn& commit_fn)
      HAMMING_EXCLUDES(watch_mu_) {
    const double threshold = opts_.speculation.slow_attempt_seconds;
    const auto interval =
        std::chrono::duration<double>(std::max(threshold / 4.0, 0.0005));
    MutexLock lock(&watch_mu_);
    while (!monitor_stop_) {
      watch_cv_.WaitFor(&watch_mu_, interval);
      if (monitor_stop_) break;
      const auto now = std::chrono::steady_clock::now();
      for (auto it = watches_.begin(); it != watches_.end();) {
        const double elapsed =
            std::chrono::duration<double>(now - it->second).count();
        if (elapsed < threshold) {
          ++it;
          continue;
        }
        const std::size_t task = it->first;
        it = watches_.erase(it);
        TaskState& st = tasks_[task];
        bool launch = false;
        {
          MutexLock tl(&st.mu);
          if (!st.committed && !st.failed && !st.speculated) {
            st.speculated = true;
            launch = true;
          }
        }
        if (!launch) continue;
        events_->Attempt(JobEventType::kAttemptSpeculate, kind_, task, -1,
                         elapsed, "slow attempt");
        // The backup runs on its own thread, not the phase's pool: the
        // pool is saturated with the phase's primary attempts, so a
        // queued backup would only run after the straggler it is meant
        // to overtake. This models Hadoop launching the backup on a
        // *different* node's free slot. Bounded: one backup per task.
        Thread backup([this, task, &attempt_fn, &commit_fn] {
          RunOneAttempt(task, /*speculative=*/true, attempt_fn, commit_fn);
        });
        MutexLock bl(&backups_mu_);
        backups_.push_back(std::move(backup));
      }
    }
  }

  ThreadPool* pool_;
  TaskKind kind_;
  const ExecutionOptions& opts_;
  EventLog* events_;
  std::vector<TaskState> tasks_;

  // Acquisition order for watch_mu_ / st.mu / backups_mu_ lives in
  // tools/analyze/lock_order.toml ("watch", "task", "backups").
  Mutex watch_mu_;
  CondVar watch_cv_;
  bool monitor_stop_ HAMMING_GUARDED_BY(watch_mu_) = false;
  std::unordered_map<std::size_t, std::chrono::steady_clock::time_point>
      watches_ HAMMING_GUARDED_BY(watch_mu_);

  Mutex backups_mu_;
  std::vector<Thread> backups_ HAMMING_GUARDED_BY(backups_mu_);
};

// max/mean of a load vector; 0 for an all-zero (or empty) load.
double SkewCoefficient(const std::vector<uint64_t>& load) {
  if (load.empty()) return 0.0;
  uint64_t max = 0;
  uint64_t total = 0;
  for (uint64_t v : load) {
    max = std::max(max, v);
    total += v;
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(load.size());
  return static_cast<double>(max) / mean;
}

Status CancelledStatus(TaskKind kind) {
  return Status::ExecutionError(std::string(TaskKindName(kind)) +
                                " attempt cancelled");
}

std::string InjectedFaultMessage(TaskKind kind, std::size_t task,
                                 int attempt) {
  return std::string("injected fault: ") + TaskKindName(kind) + " task " +
         std::to_string(task) + " attempt " + std::to_string(attempt);
}

}  // namespace

// Removes the job's private spill directory when RunJob leaves scope,
// whatever path it leaves by. Declared before any SpillFileRef holder so
// the files themselves (deleted by their handles) go first.
struct SpillDirGuard {
  std::string dir;
  ~SpillDirGuard() {
    if (!dir.empty()) RemoveJobSpillDir(dir);
  }
};

Result<JobResult> RunJob(const JobSpec& spec, Cluster* cluster) {
  if (!spec.map_fn) return Status::InvalidArgument("job has no map function");
  const ExecutionOptions opts = ResolveOptions(spec);
  if (opts.num_reducers == 0) {
    return Status::InvalidArgument("num_reducers must be positive");
  }
  if (opts.max_attempts == 0) {
    return Status::InvalidArgument("max_attempts must be positive");
  }
  if (opts.shuffle_max_merge_fanin < 2) {
    return Status::InvalidArgument("shuffle_max_merge_fanin must be >= 2");
  }
  // A finite budget switches the shuffle to its external (spill-to-disk)
  // mode; outputs and logical counters are byte-identical either way.
  const bool external = opts.shuffle_memory_bytes != kUnlimitedShuffleMemory;
  SpillDirGuard spill_dir;
  if (external) {
    HAMMING_ASSIGN_OR_RETURN(spill_dir.dir,
                             CreateJobSpillDir(opts.shuffle_dir));
  }
  JobResult result;
  Stopwatch total_watch;
  EventLog events(&result.trace, opts.observer, &total_watch);
  const PartitionFn& partition = opts.partition_fn;
  const bool legacy_counters = opts.legacy_contended_counters;
  const FaultInjector* fault = opts.fault.get();

  // ---- Map phase -------------------------------------------------------
  Stopwatch map_watch;
  events.Phase(JobEventType::kPhaseStart, "map");
  const std::size_t num_maps = spec.input_splits.size();
  // Per map task (winning attempt only): either buffered partitions
  // (in-memory mode) or the task's spill files (external mode).
  std::vector<std::vector<std::vector<Record>>> map_outputs(num_maps);
  std::vector<std::vector<SpillFileRef>> map_spills(num_maps);

  AttemptFn map_attempt = [&](std::size_t m, int attempt, CancelToken* token,
                              AttemptOutput* out) -> Status {
    const FaultDecision fd =
        fault ? fault->OnAttempt(TaskKind::kMap, m, attempt)
              : FaultDecision{};
    if (fd.delay_seconds > 0.0 && !token->SleepFor(fd.delay_seconds)) {
      return CancelledStatus(TaskKind::kMap);
    }
    const auto& split = spec.input_splits[m];
    // Injected failures fire midway, after the attempt has buffered
    // emissions and counters (and, externally, written spill files) that
    // the runner must then discard.
    const std::size_t fail_after =
        fd.fail ? split.size() / 2 : static_cast<std::size_t>(-1);
    auto count = [&](CounterId id, int64_t delta) {
      if (legacy_counters) {
        result.counters.Add(CounterName(id), delta);
      } else {
        out->counts.Add(id, delta);
      }
    };
    std::unique_ptr<ShuffleWriter> writer;
    if (external) {
      ShuffleWriterOptions wopts;
      wopts.num_partitions = opts.num_reducers;
      wopts.memory_budget_bytes = opts.shuffle_memory_bytes;
      wopts.dir = spill_dir.dir;
      // Attempt-unique stem: racing attempts of one task never share
      // spill files.
      wopts.file_stem = "m" + std::to_string(m) + "-a" + std::to_string(attempt);
      wopts.combine_fn = spec.combine_fn;
      writer = std::make_unique<ShuffleWriter>(
          std::move(wopts), [&events, m, attempt](uint64_t bytes,
                                                  uint64_t records) {
            events.Attempt(JobEventType::kSpill, TaskKind::kMap, m, attempt,
                           0.0,
                           std::to_string(bytes) + " bytes, " +
                               std::to_string(records) + " records");
          });
    } else {
      out->map_partitions.assign(opts.num_reducers, {});
    }
    Emitter emitter;  // reused across records; keeps its capacity
    std::size_t processed = 0;
    for (const Record& rec : split) {
      if (token->cancelled()) return CancelledStatus(TaskKind::kMap);
      if (processed == fail_after) {
        return Status::ExecutionError(
            InjectedFaultMessage(TaskKind::kMap, m, attempt));
      }
      count(CounterId::kMapInputRecords, 1);
      emitter.records().clear();
      HAMMING_RETURN_NOT_OK(spec.map_fn(rec, &emitter));
      for (Record& o : emitter.records()) {
        // Logical shuffle counters are charged at emission, before any
        // combining or spilling, so they are identical at every budget.
        count(CounterId::kMapOutputRecords, 1);
        count(CounterId::kShuffleBytes,
              static_cast<int64_t>(o.SerializedBytes()));
        std::size_t p = partition(o.key, opts.num_reducers);
        if (writer) {
          HAMMING_RETURN_NOT_OK(writer->Add(p, std::move(o)));
        } else {
          out->map_partitions[p].push_back(std::move(o));
        }
      }
      ++processed;
    }
    if (fd.fail && split.empty()) {
      return Status::ExecutionError(
          InjectedFaultMessage(TaskKind::kMap, m, attempt));
    }
    if (writer) {
      HAMMING_RETURN_NOT_OK(writer->Flush());
      count(CounterId::kShuffleSpills, writer->spill_count());
      count(CounterId::kShuffleSpilledBytes, writer->spilled_bytes());
      count(CounterId::kCombineInputRecords, writer->combine_input_records());
      count(CounterId::kCombineOutputRecords,
            writer->combine_output_records());
      out->spills = writer->TakeSpills();
    } else if (spec.combine_fn) {
      // In-memory mode applies the combiner once, to the whole partition
      // buffer — the single-spill limit of the external path.
      int64_t combine_in = 0;
      int64_t combine_out = 0;
      for (auto& partition_buf : out->map_partitions) {
        HAMMING_RETURN_NOT_OK(SortAndCombine(&partition_buf, spec.combine_fn,
                                             &combine_in, &combine_out));
      }
      count(CounterId::kCombineInputRecords, combine_in);
      count(CounterId::kCombineOutputRecords, combine_out);
    }
    return Status::OK();
  };
  CommitFn map_commit = [&](std::size_t m, AttemptOutput* out) {
    map_outputs[m] = std::move(out->map_partitions);
    map_spills[m] = std::move(out->spills);
    if (!legacy_counters) result.counters.MergeLocal(out->counts);
  };
  {
    PhaseRunner runner(cluster->pool(), TaskKind::kMap, num_maps, opts,
                       &events);
    Status st = runner.Run(map_attempt, map_commit);
    result.map_seconds = map_watch.ElapsedSeconds();
    events.Phase(JobEventType::kPhaseFinish, "map", result.map_seconds);
    if (!st.ok()) return st;
  }

  // ---- Shuffle phase ---------------------------------------------------
  // In-memory: gather per reducer and sort by key (reducer r's gather
  // touches only slot r of every map output, so the chains run in
  // parallel). External: just enumerate reducer r's spill segments in
  // (map task, spill sequence) order — the stable order the merge's
  // tie-break relies on; actual merging streams inside reduce attempts.
  Stopwatch shuffle_watch;
  events.Phase(JobEventType::kPhaseStart, "shuffle");
  std::vector<std::vector<Record>> reducer_inputs;
  std::vector<std::vector<SegmentSource>> reducer_sources;
  // Per-reducer input load, from committed map output only (spill
  // segment metadata externally, the gathered partitions in memory), so
  // the report — and the metrics derived from it — is byte-identical
  // across retries, speculation and fault injection.
  result.reducer_load.records.assign(opts.num_reducers, 0);
  result.reducer_load.bytes.assign(opts.num_reducers, 0);
  if (external) {
    reducer_sources.resize(opts.num_reducers);
    for (const auto& spills : map_spills) {
      for (const SpillFileRef& file : spills) {
        for (std::size_t r = 0; r < opts.num_reducers; ++r) {
          result.reducer_load.records[r] += file->segments()[r].records;
          // Logical serialized bytes, not the on-disk segment size: the
          // load report must agree with the in-memory path, which never
          // pays spill-page framing.
          result.reducer_load.bytes[r] += file->logical_bytes()[r];
          if (file->segments()[r].records == 0) continue;  // empty run
          reducer_sources[r].push_back(SegmentSource{file, r});
        }
      }
    }
  } else {
    reducer_inputs.resize(opts.num_reducers);
    ParallelFor(cluster->pool(), opts.num_reducers, [&](std::size_t r) {
      auto& dst = reducer_inputs[r];
      std::size_t total = 0;
      for (const auto& per_map : map_outputs) total += per_map[r].size();
      dst.reserve(total);
      for (auto& per_map : map_outputs) {
        dst.insert(dst.end(), std::make_move_iterator(per_map[r].begin()),
                   std::make_move_iterator(per_map[r].end()));
      }
      std::stable_sort(dst.begin(), dst.end(),
                       [](const Record& a, const Record& b) {
                         return a.key < b.key;
                       });
      uint64_t bytes = 0;
      for (const Record& rec : dst) bytes += rec.SerializedBytes();
      // Slot r is this task's alone; no synchronization needed.
      result.reducer_load.records[r] = dst.size();
      result.reducer_load.bytes[r] = bytes;
    });
    map_outputs.clear();
  }
  result.reducer_load.records_skew = SkewCoefficient(result.reducer_load.records);
  result.reducer_load.bytes_skew = SkewCoefficient(result.reducer_load.bytes);
  if (opts.metrics != nullptr) {
    const obs::MetricId rec_hist =
        opts.metrics->Histogram(obs::metric_names::kMrReduceInputRecords);
    const obs::MetricId byte_hist =
        opts.metrics->Histogram(obs::metric_names::kMrReduceInputBytes);
    for (std::size_t r = 0; r < opts.num_reducers; ++r) {
      HAMMING_METRIC_OBSERVE(opts.metrics, rec_hist,
                             result.reducer_load.records[r]);
      HAMMING_METRIC_OBSERVE(opts.metrics, byte_hist,
                             result.reducer_load.bytes[r]);
    }
  }
  result.shuffle_seconds = shuffle_watch.ElapsedSeconds();
  events.Phase(JobEventType::kPhaseFinish, "shuffle", result.shuffle_seconds);

  // Builds a reduce-side merger for partition r (shared by the reduce
  // attempts and the map-only materialization below).
  auto make_merger = [&](std::size_t r, int attempt,
                         std::vector<SegmentSource> sources) {
    ShuffleMergerOptions mopts;
    mopts.max_fanin = opts.shuffle_max_merge_fanin;
    mopts.dir = spill_dir.dir;
    mopts.file_stem = "r" + std::to_string(r) + "-a" + std::to_string(attempt);
    mopts.combine_fn = spec.combine_fn;
    mopts.on_spill = [&events, r, attempt](uint64_t bytes, uint64_t records) {
      events.Attempt(JobEventType::kSpill, TaskKind::kReduce, r, attempt, 0.0,
                     std::to_string(bytes) + " bytes, " +
                         std::to_string(records) + " records");
    };
    return ShuffleMerger(std::move(sources), std::move(mopts));
  };

  // ---- Reduce phase ----------------------------------------------------
  Stopwatch reduce_watch;
  events.Phase(JobEventType::kPhaseStart, "reduce");
  result.outputs.resize(opts.num_reducers);
  if (!spec.reduce_fn) {
    // Map-only job: partitioned map outputs are the result.
    if (external) {
      Mutex mo_mu;
      Status mo_error;
      ParallelFor(cluster->pool(), opts.num_reducers, [&](std::size_t r) {
        LocalCounters counts;
        Status st = [&]() -> Status {
          ShuffleMerger merger =
              make_merger(r, 0, std::move(reducer_sources[r]));
          HAMMING_RETURN_NOT_OK(merger.Open());
          events.Attempt(JobEventType::kMergePass, TaskKind::kReduce, r, 0,
                         0.0, "fan-in " + std::to_string(merger.fanin()));
          auto& dst = result.outputs[r];
          dst.reserve(merger.records());
          Record rec;
          bool done = false;
          HAMMING_RETURN_NOT_OK(merger.Next(&rec, &done));
          while (!done) {
            dst.push_back(std::move(rec));
            HAMMING_RETURN_NOT_OK(merger.Next(&rec, &done));
          }
          counts.Add(CounterId::kShuffleMergeFanIn, merger.fanin());
          counts.Add(CounterId::kShuffleSpills, merger.spill_count());
          counts.Add(CounterId::kShuffleSpilledBytes, merger.spilled_bytes());
          counts.Add(CounterId::kCombineInputRecords,
                     merger.combine_input_records());
          counts.Add(CounterId::kCombineOutputRecords,
                     merger.combine_output_records());
          return Status::OK();
        }();
        MutexLock lock(&mo_mu);
        if (!st.ok()) {
          if (mo_error.ok()) mo_error = st;
          return;
        }
        result.counters.MergeLocal(counts);
      });
      if (!mo_error.ok()) return mo_error;
    } else {
      result.outputs = std::move(reducer_inputs);
    }
  } else {
    // An attempt may be re-run, so reduce input values are copied per
    // attempt when the attempt layer is active; the single-attempt fast
    // path moves them out as before. (External attempts re-stream from
    // the spill files, which re-running cannot corrupt.)
    const bool destructive = opts.max_attempts == 1 &&
                             !opts.speculation.enabled && fault == nullptr;
    AttemptFn reduce_attempt = [&](std::size_t r, int attempt,
                                   CancelToken* token,
                                   AttemptOutput* out) -> Status {
      const FaultDecision fd =
          fault ? fault->OnAttempt(TaskKind::kReduce, r, attempt)
                : FaultDecision{};
      if (fd.delay_seconds > 0.0 && !token->SleepFor(fd.delay_seconds)) {
        return CancelledStatus(TaskKind::kReduce);
      }
      auto count = [&](CounterId id, int64_t delta) {
        if (legacy_counters) {
          result.counters.Add(CounterName(id), delta);
        } else {
          out->counts.Add(id, delta);
        }
      };
      Emitter emitter;
      if (external) {
        ShuffleMerger merger = make_merger(r, attempt, reducer_sources[r]);
        HAMMING_RETURN_NOT_OK(merger.Open());
        events.Attempt(JobEventType::kMergePass, TaskKind::kReduce, r,
                       attempt, 0.0,
                       "fan-in " + std::to_string(merger.fanin()) +
                           ", intermediate passes " +
                           std::to_string(merger.merge_passes()));
        const uint64_t total = merger.records();
        const uint64_t fail_after =
            fd.fail ? total / 2 : static_cast<uint64_t>(-1);
        if (fd.fail && total == 0) {
          return Status::ExecutionError(
              InjectedFaultMessage(TaskKind::kReduce, r, attempt));
        }
        Record cur;
        bool done = false;
        HAMMING_RETURN_NOT_OK(merger.Next(&cur, &done));
        uint64_t pulled = done ? 0 : 1;
        bool have = !done;
        while (have) {
          if (token->cancelled()) return CancelledStatus(TaskKind::kReduce);
          // Same midpoint semantics as the in-memory path: the injected
          // failure fires at the first group starting at or past half the
          // reducer's input.
          if (pulled - 1 >= fail_after) {
            return Status::ExecutionError(
                InjectedFaultMessage(TaskKind::kReduce, r, attempt));
          }
          std::vector<uint8_t> key = std::move(cur.key);
          std::vector<std::vector<uint8_t>> values;
          values.push_back(std::move(cur.value));
          for (;;) {
            HAMMING_RETURN_NOT_OK(merger.Next(&cur, &done));
            if (done) {
              have = false;
              break;
            }
            ++pulled;
            if (cur.key != key) break;
            values.push_back(std::move(cur.value));
          }
          count(CounterId::kReduceInputGroups, 1);
          HAMMING_RETURN_NOT_OK(spec.reduce_fn(key, values, &emitter));
        }
        count(CounterId::kShuffleMergeFanIn, merger.fanin());
        count(CounterId::kShuffleSpills, merger.spill_count());
        count(CounterId::kShuffleSpilledBytes, merger.spilled_bytes());
        count(CounterId::kCombineInputRecords,
              merger.combine_input_records());
        count(CounterId::kCombineOutputRecords,
              merger.combine_output_records());
      } else {
        auto& input = reducer_inputs[r];
        const std::size_t fail_after =
            fd.fail ? input.size() / 2 : static_cast<std::size_t>(-1);
        std::size_t i = 0;
        while (i < input.size()) {
          if (token->cancelled()) return CancelledStatus(TaskKind::kReduce);
          if (i >= fail_after) {
            return Status::ExecutionError(
                InjectedFaultMessage(TaskKind::kReduce, r, attempt));
          }
          std::size_t j = i;
          std::vector<std::vector<uint8_t>> values;
          while (j < input.size() && input[j].key == input[i].key) {
            if (destructive) {
              values.push_back(std::move(input[j].value));
            } else {
              values.push_back(input[j].value);
            }
            ++j;
          }
          count(CounterId::kReduceInputGroups, 1);
          HAMMING_RETURN_NOT_OK(
              spec.reduce_fn(input[i].key, values, &emitter));
          i = j;
        }
        if (fd.fail && input.empty()) {
          return Status::ExecutionError(
              InjectedFaultMessage(TaskKind::kReduce, r, attempt));
        }
      }
      count(CounterId::kReduceOutputRecords,
            static_cast<int64_t>(emitter.records().size()));
      out->reduce_records = std::move(emitter.records());
      return Status::OK();
    };
    CommitFn reduce_commit = [&](std::size_t r, AttemptOutput* out) {
      result.outputs[r] = std::move(out->reduce_records);
      if (!legacy_counters) result.counters.MergeLocal(out->counts);
    };
    PhaseRunner runner(cluster->pool(), TaskKind::kReduce, opts.num_reducers,
                       opts, &events);
    Status st = runner.Run(reduce_attempt, reduce_commit);
    if (!st.ok()) return st;
  }
  result.reduce_seconds = reduce_watch.ElapsedSeconds();
  events.Phase(JobEventType::kPhaseFinish, "reduce", result.reduce_seconds);
  result.total_seconds = total_watch.ElapsedSeconds();

  if (opts.metrics != nullptr) {
    // Wall-clock phase breakdowns. The "time." prefix marks them as
    // non-deterministic: tests asserting retry-identical metrics filter
    // these names out, everything else in the registry must match.
    auto observe_micros = [&](const char* name, double seconds) {
      const obs::MetricId id = opts.metrics->Histogram(name);
      HAMMING_METRIC_OBSERVE(opts.metrics, id,
                             static_cast<uint64_t>(seconds * 1e6));
    };
    observe_micros("time.map_micros", result.map_seconds);
    observe_micros("time.shuffle_micros", result.shuffle_seconds);
    observe_micros("time.reduce_micros", result.reduce_seconds);
    observe_micros("time.job_total_micros", result.total_seconds);
  }

  cluster->cumulative_counters()->Merge(result.counters);
  return result;
}

}  // namespace hamming::mr

#include "mapreduce/job.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/stopwatch.h"

namespace hamming::mr {

std::size_t HashPartition(const std::vector<uint8_t>& key,
                          std::size_t num_reducers) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % num_reducers);
}

std::vector<std::vector<Record>> SplitEvenly(std::vector<Record> records,
                                             std::size_t num_splits) {
  num_splits = std::max<std::size_t>(1, num_splits);
  std::vector<std::vector<Record>> splits(num_splits);
  const std::size_t n = records.size();
  for (std::size_t s = 0; s < num_splits; ++s) {
    std::size_t begin = s * n / num_splits;
    std::size_t end = (s + 1) * n / num_splits;
    splits[s].assign(std::make_move_iterator(records.begin() + begin),
                     std::make_move_iterator(records.begin() + end));
  }
  return splits;
}

Result<JobResult> RunJob(const JobSpec& spec, Cluster* cluster) {
  if (!spec.map_fn) return Status::InvalidArgument("job has no map function");
  if (spec.num_reducers == 0) {
    return Status::InvalidArgument("num_reducers must be positive");
  }
  JobResult result;
  Stopwatch total_watch;
  PartitionFn partition =
      spec.partition_fn ? spec.partition_fn : PartitionFn(HashPartition);

  // ---- Map phase -------------------------------------------------------
  Stopwatch map_watch;
  const std::size_t num_maps = spec.input_splits.size();
  // Per map task, per reducer: emitted records.
  std::vector<std::vector<std::vector<Record>>> map_outputs(num_maps);
  std::mutex error_mu;
  Status first_error = Status::OK();

  // Each task counts into an unsynchronized LocalCounters merged into the
  // job's shared set once per task; the legacy knob keeps the old
  // lock-per-record pattern alive for the bench comparison.
  const bool legacy_counters = spec.legacy_contended_counters;

  ParallelFor(cluster->pool(), num_maps, [&](std::size_t m) {
    std::vector<std::vector<Record>> local(spec.num_reducers);
    LocalCounters counts;
    auto count = [&](CounterId id, int64_t delta) {
      if (legacy_counters) {
        result.counters.Add(CounterName(id), delta);
      } else {
        counts.Add(id, delta);
      }
    };
    Emitter emitter;  // reused across records; keeps its capacity
    for (const Record& rec : spec.input_splits[m]) {
      count(CounterId::kMapInputRecords, 1);
      emitter.records().clear();
      Status st = spec.map_fn(rec, &emitter);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      for (Record& out : emitter.records()) {
        count(CounterId::kMapOutputRecords, 1);
        count(CounterId::kShuffleBytes,
              static_cast<int64_t>(out.SerializedBytes()));
        std::size_t p = partition(out.key, spec.num_reducers);
        local[p].push_back(std::move(out));
      }
    }
    if (!legacy_counters) result.counters.MergeLocal(counts);
    map_outputs[m] = std::move(local);
  });
  if (!first_error.ok()) return first_error;
  result.map_seconds = map_watch.ElapsedSeconds();

  // ---- Shuffle phase: gather per reducer, sort by key ------------------
  // Reducer r's gather touches only slot r of every map output, so the
  // per-reducer concatenate+sort chains run in parallel.
  Stopwatch shuffle_watch;
  std::vector<std::vector<Record>> reducer_inputs(spec.num_reducers);
  ParallelFor(cluster->pool(), spec.num_reducers, [&](std::size_t r) {
    auto& dst = reducer_inputs[r];
    std::size_t total = 0;
    for (const auto& per_map : map_outputs) total += per_map[r].size();
    dst.reserve(total);
    for (auto& per_map : map_outputs) {
      dst.insert(dst.end(), std::make_move_iterator(per_map[r].begin()),
                 std::make_move_iterator(per_map[r].end()));
    }
    std::stable_sort(dst.begin(), dst.end(),
                     [](const Record& a, const Record& b) {
                       return a.key < b.key;
                     });
  });
  map_outputs.clear();
  result.shuffle_seconds = shuffle_watch.ElapsedSeconds();

  // ---- Reduce phase ----------------------------------------------------
  Stopwatch reduce_watch;
  result.outputs.resize(spec.num_reducers);
  if (!spec.reduce_fn) {
    // Map-only job: partitioned map outputs are the result.
    result.outputs = std::move(reducer_inputs);
  } else {
    ParallelFor(cluster->pool(), spec.num_reducers, [&](std::size_t r) {
      auto& input = reducer_inputs[r];
      Emitter emitter;
      LocalCounters counts;
      std::size_t i = 0;
      while (i < input.size()) {
        std::size_t j = i;
        std::vector<std::vector<uint8_t>> values;
        while (j < input.size() && input[j].key == input[i].key) {
          values.push_back(std::move(input[j].value));
          ++j;
        }
        if (legacy_counters) {
          result.counters.Add(kReduceInputGroups, 1);
        } else {
          counts.Add(CounterId::kReduceInputGroups, 1);
        }
        Status st = spec.reduce_fn(input[i].key, values, &emitter);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
          return;
        }
        i = j;
      }
      if (legacy_counters) {
        result.counters.Add(kReduceOutputRecords,
                            static_cast<int64_t>(emitter.records().size()));
      } else {
        counts.Add(CounterId::kReduceOutputRecords,
                   static_cast<int64_t>(emitter.records().size()));
        result.counters.MergeLocal(counts);
      }
      result.outputs[r] = std::move(emitter.records());
    });
    if (!first_error.ok()) return first_error;
  }
  result.reduce_seconds = reduce_watch.ElapsedSeconds();
  result.total_seconds = total_watch.ElapsedSeconds();

  cluster->cumulative_counters()->Merge(result.counters);
  return result;
}

}  // namespace hamming::mr

// The MapReduce job runner: map -> shuffle (partition + sort by key) ->
// reduce, with per-task threading and per-record shuffle accounting.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mapreduce/cluster.h"

namespace hamming::mr {

/// \brief A serialized key/value record, the unit crossing every phase.
struct Record {
  std::vector<uint8_t> key;
  std::vector<uint8_t> value;

  std::size_t SerializedBytes() const {
    // Key + value payloads plus the two length prefixes Hadoop's
    // sequence-file framing would add.
    return key.size() + value.size() + 8;
  }
};

/// \brief Collects the records a map or reduce call emits.
class Emitter {
 public:
  void Emit(std::vector<uint8_t> key, std::vector<uint8_t> value) {
    records_.push_back({std::move(key), std::move(value)});
  }
  std::vector<Record>& records() { return records_; }

 private:
  std::vector<Record> records_;
};

/// \brief User map function: one input record in, any records out.
using MapFn = std::function<Status(const Record&, Emitter*)>;

/// \brief User reduce function: a key and all its shuffled values.
using ReduceFn = std::function<Status(
    const std::vector<uint8_t>& key,
    const std::vector<std::vector<uint8_t>>& values, Emitter*)>;

/// \brief Key -> reducer routing; default hashes the key bytes.
using PartitionFn =
    std::function<std::size_t(const std::vector<uint8_t>& key,
                              std::size_t num_reducers)>;

/// \brief Hash partitioner (FNV over the key bytes).
std::size_t HashPartition(const std::vector<uint8_t>& key,
                          std::size_t num_reducers);

/// \brief A job description.
struct JobSpec {
  std::string name;
  /// One map task per split.
  std::vector<std::vector<Record>> input_splits;
  MapFn map_fn;
  /// Null for a map-only job (map outputs become the job outputs,
  /// partitioned but not grouped).
  ReduceFn reduce_fn;
  PartitionFn partition_fn;  // null = HashPartition
  std::size_t num_reducers = 1;
  /// Benchmark knob: when true, tasks charge each record straight to the
  /// job's shared (mutex-protected) Counters — the contended pattern the
  /// per-task LocalCounters batching replaced. Totals are identical
  /// either way; bench_micro measures the difference.
  bool legacy_contended_counters = false;
};

/// \brief Everything a finished job reports.
struct JobResult {
  /// Reducer r's output records (map-only jobs: partition r's map output).
  std::vector<std::vector<Record>> outputs;
  Counters counters;
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;
};

/// \brief Runs a job on the cluster. Map tasks and reduce tasks execute
/// in parallel on the cluster's pool; the first task error aborts the
/// job. The job's counters are merged into the cluster's cumulative set.
Result<JobResult> RunJob(const JobSpec& spec, Cluster* cluster);

/// \brief Convenience: splits `records` into `num_splits` near-equal
/// contiguous splits.
std::vector<std::vector<Record>> SplitEvenly(std::vector<Record> records,
                                             std::size_t num_splits);

}  // namespace hamming::mr

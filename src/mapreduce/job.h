// The MapReduce job runner: map -> shuffle (partition + sort by key) ->
// reduce, with per-task threading, per-record shuffle accounting, and a
// fault-tolerant task-attempt layer (retries, fault injection,
// speculative execution — see mapreduce/execution.h).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mapreduce/cluster.h"
#include "mapreduce/execution.h"

namespace hamming::mr {

/// \brief A serialized key/value record, the unit crossing every phase.
struct Record {
  std::vector<uint8_t> key;
  std::vector<uint8_t> value;

  std::size_t SerializedBytes() const {
    // Key + value payloads plus the two length prefixes Hadoop's
    // sequence-file framing would add.
    return key.size() + value.size() + 8;
  }
};

/// \brief Collects the records a map or reduce call emits.
///
/// Emitters are attempt-local: a task attempt buffers everything it
/// emits and only the winning attempt's buffer is committed, which is
/// what makes re-execution and speculation side-effect-free.
class Emitter {
 public:
  void Emit(std::vector<uint8_t> key, std::vector<uint8_t> value) {
    records_.push_back({std::move(key), std::move(value)});
  }
  std::vector<Record>& records() { return records_; }

 private:
  std::vector<Record> records_;
};

/// \brief User map function: one input record in, any records out.
///
/// Must be deterministic (a pure function of the record): a failed or
/// speculated task re-runs it against the same input and the attempt
/// layer guarantees byte-identical job output only if re-execution
/// reproduces the same emissions. Components that need randomness must
/// derive it from the record contents, not from shared mutable state.
using MapFn = std::function<Status(const Record&, Emitter*)>;

/// \brief User reduce function: a key and all its shuffled values.
/// Determinism requirements are the same as MapFn's.
using ReduceFn = std::function<Status(
    const std::vector<uint8_t>& key,
    const std::vector<std::vector<uint8_t>>& values, Emitter*)>;

/// \brief Optional map-side combiner, same signature as ReduceFn.
///
/// Applied to every sorted run before it leaves the map task (each spill
/// under a finite shuffle budget, the whole partition buffer under an
/// unlimited one) and again during intermediate merge passes on the
/// reduce side. Contract (see DESIGN.md §4.10): it must emit records
/// whose key equals the group key (enforced — a key change is an error),
/// and it must be associative, commutative, and composable with the
/// reducer, because how many times it runs per key depends on the memory
/// budget and spill boundaries.
using CombineFn = ReduceFn;

/// \brief Hash partitioner (FNV over the key bytes).
std::size_t HashPartition(const std::vector<uint8_t>& key,
                          std::size_t num_reducers);

/// \brief A job description: what to compute (name, inputs, user
/// functions) plus how to execute it (`options`).
struct JobSpec {
  std::string name;
  /// One map task per split.
  std::vector<std::vector<Record>> input_splits;
  MapFn map_fn;
  /// Null for a map-only job (map outputs become the job outputs,
  /// partitioned but not grouped).
  ReduceFn reduce_fn;
  /// Null for no combining. See CombineFn for the contract.
  CombineFn combine_fn;
  /// Execution knobs: reducers, partitioner, attempts, speculation,
  /// fault injection, observer, shuffle memory budget.
  ExecutionOptions options;
};

/// \brief Per-reducer shuffle input load, the quantity behind the
/// paper's partition-balance discussion: PGBJ-style range partitioning
/// keys whole groups to one reducer while MRHA's hash partitioning
/// spreads them, and the skew coefficient (max/mean) makes the
/// difference visible per job. Derived from committed map output only,
/// so it is identical across retries, speculation and fault injection.
struct ReducerLoadReport {
  std::vector<uint64_t> records;  // reducer r's input record count
  std::vector<uint64_t> bytes;    // reducer r's input serialized bytes
  /// max(records) / mean(records); 0 when the job shuffled nothing,
  /// 1.0 = perfectly balanced, num_reducers = everything on one reducer.
  double records_skew = 0.0;
  double bytes_skew = 0.0;
};

/// \brief Everything a finished job reports.
struct JobResult {
  /// Reducer r's output records (map-only jobs: partition r's map output).
  std::vector<std::vector<Record>> outputs;
  Counters counters;
  /// The job's event trace: one timestamped entry per attempt
  /// start/finish/fail/kill/speculate and per phase boundary.
  JobEventTrace trace;
  /// Per-reducer shuffle input load and skew, computed in the shuffle
  /// phase for every job (map-only jobs report their partition sizes).
  ReducerLoadReport reducer_load;
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;
};

/// \brief Runs a job on the cluster. Map tasks and reduce tasks execute
/// in parallel on the cluster's pool; each task gets up to
/// options.max_attempts attempts and the job aborts with the first
/// error of the first task that exhausts its budget. The job's counters
/// are merged into the cluster's cumulative set; only winning attempts
/// charge counters, so totals are byte-identical to a failure-free run.
Result<JobResult> RunJob(const JobSpec& spec, Cluster* cluster);

/// \brief Convenience: splits `records` into `num_splits` near-equal
/// contiguous splits.
std::vector<std::vector<Record>> SplitEvenly(std::vector<Record> records,
                                             std::size_t num_splits);

}  // namespace hamming::mr

#include "mapreduce/cluster.h"

#include <algorithm>

#include "common/sync.h"

namespace hamming::mr {

Cluster::Cluster(ClusterOptions opts)
    : opts_(opts),
      cache_(opts.num_nodes) {
  std::size_t threads = opts.num_threads;
  if (threads == 0) {
    threads = std::min(opts_.num_nodes * opts_.slots_per_node,
                       HardwareConcurrency());
    threads = std::max<std::size_t>(1, threads);
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

}  // namespace hamming::mr

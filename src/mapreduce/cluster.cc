#include "mapreduce/cluster.h"

#include <algorithm>
#include <thread>

namespace hamming::mr {

Cluster::Cluster(ClusterOptions opts)
    : opts_(opts),
      cache_(opts.num_nodes) {
  std::size_t threads = opts.num_threads;
  if (threads == 0) {
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    threads = std::min(opts_.num_nodes * opts_.slots_per_node, hw);
    threads = std::max<std::size_t>(1, threads);
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

}  // namespace hamming::mr

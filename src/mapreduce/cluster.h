// The simulated cluster: N nodes with a fixed number of task slots each,
// backed by a thread pool, plus the distributed cache and cumulative
// counters shared by a pipeline of jobs.
//
// This stands in for the paper's 16-node Hadoop 0.22 cluster; see
// DESIGN.md for the substitution argument. Wall-clock parallelism is
// real (map/reduce tasks run on threads); per-record serialization
// through the shuffle is real; only the network is simulated, by
// accounting rather than by copying over sockets.
#pragma once

#include <memory>

#include "common/threadpool.h"
#include "mapreduce/counters.h"
#include "mapreduce/distributed_cache.h"

namespace hamming::mr {

/// \brief Cluster configuration.
struct ClusterOptions {
  std::size_t num_nodes = 16;      // the paper's cluster size
  std::size_t slots_per_node = 4;  // 4-core workers
  /// Worker threads actually used; 0 derives min(num_nodes*slots,
  /// hardware_concurrency) so simulations stay honest on small machines.
  std::size_t num_threads = 0;
};

/// \brief Shared execution context for MapReduce jobs.
class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});

  std::size_t num_nodes() const { return opts_.num_nodes; }
  std::size_t total_slots() const {
    return opts_.num_nodes * opts_.slots_per_node;
  }

  ThreadPool* pool() { return pool_.get(); }
  DistributedCache* cache() { return &cache_; }

  /// \brief Counters accumulated across every job run on this cluster —
  /// the totals Figure 7 plots per plan.
  Counters* cumulative_counters() { return &cumulative_; }

 private:
  ClusterOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  DistributedCache cache_;
  Counters cumulative_;
};

}  // namespace hamming::mr

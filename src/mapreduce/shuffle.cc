#include "mapreduce/shuffle.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

namespace hamming::mr {

namespace {

// Folds one equal-key group through the combiner, appending its output
// (which must keep the group key) to *out.
Status CombineGroup(const CombineFn& fn, const std::vector<uint8_t>& key,
                    std::vector<std::vector<uint8_t>>&& values,
                    std::vector<Record>* out, int64_t* combine_in,
                    int64_t* combine_out) {
  *combine_in += static_cast<int64_t>(values.size());
  Emitter emitter;
  HAMMING_RETURN_NOT_OK(fn(key, values, &emitter));
  for (Record& r : emitter.records()) {
    if (r.key != key) {
      return Status::InvalidArgument(
          "combiner changed the key: combiners must emit records whose key "
          "equals the group key");
    }
    *combine_out += 1;
    out->push_back(std::move(r));
  }
  return Status::OK();
}

std::string SpillPath(const std::string& dir, const std::string& stem,
                      std::size_t seq) {
  return dir + "/" + stem + "-" + std::to_string(seq) + ".spill";
}

}  // namespace

SpillFile::~SpillFile() { std::remove(path_.c_str()); }

Status SortAndCombine(std::vector<Record>* records,
                      const CombineFn& combine_fn, int64_t* combine_in,
                      int64_t* combine_out) {
  std::stable_sort(records->begin(), records->end(),
                   [](const Record& a, const Record& b) {
                     return a.key < b.key;
                   });
  if (!combine_fn) return Status::OK();
  std::vector<Record> combined;
  std::size_t i = 0;
  while (i < records->size()) {
    std::size_t j = i;
    std::vector<std::vector<uint8_t>> values;
    while (j < records->size() && (*records)[j].key == (*records)[i].key) {
      values.push_back(std::move((*records)[j].value));
      ++j;
    }
    HAMMING_RETURN_NOT_OK(CombineGroup(combine_fn, (*records)[i].key,
                                       std::move(values), &combined,
                                       combine_in, combine_out));
    i = j;
  }
  records->swap(combined);
  return Status::OK();
}

Result<std::string> CreateJobSpillDir(const std::string& base_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path base;
  if (base_dir.empty()) {
    base = fs::temp_directory_path(ec);
    if (ec) return Status::IOError("no temp directory: " + ec.message());
  } else {
    base = fs::path(base_dir);
  }
  // Process id + process-wide sequence number make the directory private
  // to one job even when jobs run concurrently.
  static std::atomic<uint64_t> seq{0};
  fs::path dir = base / ("hammingdb-shuffle-" +
                         std::to_string(static_cast<long long>(::getpid())) +
                         "-" + std::to_string(seq.fetch_add(1)));
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create spill directory " + dir.string() +
                           ": " + ec.message());
  }
  return dir.string();
}

void RemoveJobSpillDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // best-effort
}

// ---------------------------------------------------------------------------
// ShuffleWriter
// ---------------------------------------------------------------------------

ShuffleWriter::ShuffleWriter(ShuffleWriterOptions opts, SpillEventFn on_spill)
    : opts_(std::move(opts)), on_spill_(std::move(on_spill)) {
  if (opts_.num_partitions == 0) opts_.num_partitions = 1;
  buffer_.resize(opts_.num_partitions);
}

Status ShuffleWriter::Add(std::size_t partition, Record rec) {
  if (partition >= buffer_.size()) {
    return Status::InvalidArgument("shuffle partition out of range");
  }
  buffered_bytes_ += rec.SerializedBytes();
  buffer_[partition].push_back(std::move(rec));
  if (buffered_bytes_ >= opts_.memory_budget_bytes) return Spill();
  return Status::OK();
}

Status ShuffleWriter::Flush() {
  if (buffered_bytes_ == 0) return Status::OK();
  return Spill();
}

Status ShuffleWriter::Spill() {
  const std::string path =
      SpillPath(opts_.dir, opts_.file_stem, next_spill_seq_++);
  HAMMING_ASSIGN_OR_RETURN(
      auto writer, storage::SpillFileWriter::Create(path, buffer_.size(),
                                                    kSpillPageBytes));
  uint64_t records = 0;
  std::vector<uint64_t> logical_bytes(buffer_.size(), 0);
  for (std::size_t p = 0; p < buffer_.size(); ++p) {
    HAMMING_RETURN_NOT_OK(SortAndCombine(&buffer_[p], opts_.combine_fn,
                                         &combine_in_, &combine_out_));
    for (const Record& rec : buffer_[p]) {
      HAMMING_RETURN_NOT_OK(writer->Append(p, rec.key.data(), rec.key.size(),
                                           rec.value.data(),
                                           rec.value.size()));
      logical_bytes[p] += rec.SerializedBytes();
      ++records;
    }
    buffer_[p].clear();
  }
  buffered_bytes_ = 0;
  HAMMING_RETURN_NOT_OK(writer->Finish());
  spills_.push_back(std::make_shared<const SpillFile>(
      writer->path(), writer->segments(), writer->file_bytes(),
      std::move(logical_bytes)));
  ++spill_count_;
  spilled_bytes_ += static_cast<int64_t>(writer->file_bytes());
  if (on_spill_) on_spill_(writer->file_bytes(), records);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShuffleMerger
// ---------------------------------------------------------------------------

// One open run: the stream's current (not yet yielded) record plus its
// rank among the merge's sources, which breaks key ties so equal keys
// come out in source order — the property the byte-identity guarantee
// rests on.
struct ShuffleMerger::Stream {
  SpillFileRef file;  // keeps the spill file alive while the cursor reads
  std::unique_ptr<storage::SpillSegmentCursor> cursor;
  Record rec;
  std::size_t rank = 0;
};

ShuffleMerger::ShuffleMerger(std::vector<SegmentSource> sources,
                             ShuffleMergerOptions opts)
    : sources_(std::move(sources)), opts_(std::move(opts)) {
  if (opts_.max_fanin < 2) opts_.max_fanin = 2;
}

ShuffleMerger::ShuffleMerger(ShuffleMerger&&) noexcept = default;
ShuffleMerger& ShuffleMerger::operator=(ShuffleMerger&&) noexcept = default;
ShuffleMerger::~ShuffleMerger() = default;

Status ShuffleMerger::OpenStreams(const std::vector<SegmentSource>& sources) {
  streams_.clear();
  heap_.clear();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    HAMMING_ASSIGN_OR_RETURN(
        auto cursor, storage::SpillSegmentCursor::Open(sources[i].file->path(),
                                                       sources[i].segment));
    auto stream = std::make_unique<Stream>();
    stream->file = sources[i].file;
    stream->cursor = std::move(cursor);
    stream->rank = i;
    bool done = false;
    HAMMING_RETURN_NOT_OK(
        stream->cursor->Next(&stream->rec.key, &stream->rec.value, &done));
    if (done) continue;  // empty run
    streams_.push_back(std::move(stream));
  }
  heap_.resize(streams_.size());
  for (std::size_t i = 0; i < heap_.size(); ++i) heap_[i] = i;
  auto after = [this](std::size_t a, std::size_t b) {
    const Stream& sa = *streams_[a];
    const Stream& sb = *streams_[b];
    if (sa.rec.key != sb.rec.key) return sa.rec.key > sb.rec.key;
    return sa.rank > sb.rank;
  };
  std::make_heap(heap_.begin(), heap_.end(), after);
  return Status::OK();
}

Status ShuffleMerger::PopMin(Record* rec, bool* done) {
  if (heap_.empty()) {
    *done = true;
    return Status::OK();
  }
  auto after = [this](std::size_t a, std::size_t b) {
    const Stream& sa = *streams_[a];
    const Stream& sb = *streams_[b];
    if (sa.rec.key != sb.rec.key) return sa.rec.key > sb.rec.key;
    return sa.rank > sb.rank;
  };
  std::pop_heap(heap_.begin(), heap_.end(), after);
  Stream& s = *streams_[heap_.back()];
  *rec = std::move(s.rec);
  bool stream_done = false;
  s.rec = Record{};
  HAMMING_RETURN_NOT_OK(s.cursor->Next(&s.rec.key, &s.rec.value, &stream_done));
  if (stream_done) {
    heap_.pop_back();
  } else {
    std::push_heap(heap_.begin(), heap_.end(), after);
  }
  *done = false;
  return Status::OK();
}

Status ShuffleMerger::RunIntermediatePass() {
  // Merge consecutive chunks of max_fanin sources into one run each.
  // Chunks are *prefix-contiguous*, so the (map task, spill sequence)
  // order of records with equal keys survives the pass: a chunk's merge
  // is stable (rank tie-break) and chunk outputs keep their chunk's
  // position among the sources.
  std::vector<SegmentSource> next;
  for (std::size_t begin = 0; begin < sources_.size();
       begin += opts_.max_fanin) {
    const std::size_t end =
        std::min(begin + opts_.max_fanin, sources_.size());
    if (end - begin == 1) {
      next.push_back(std::move(sources_[begin]));
      continue;
    }
    std::vector<SegmentSource> chunk(
        std::make_move_iterator(sources_.begin() + begin),
        std::make_move_iterator(sources_.begin() + end));
    HAMMING_RETURN_NOT_OK(OpenStreams(chunk));
    fanin_ += static_cast<int64_t>(chunk.size());

    const std::string path =
        SpillPath(opts_.dir, opts_.file_stem + "-merge", next_pass_seq_++);
    HAMMING_ASSIGN_OR_RETURN(
        auto writer,
        storage::SpillFileWriter::Create(path, 1, kSpillPageBytes));
    uint64_t written = 0;
    auto write_one = [&](const Record& r) -> Status {
      ++written;
      return writer->Append(0, r.key.data(), r.key.size(), r.value.data(),
                            r.value.size());
    };

    Record rec;
    bool done = false;
    HAMMING_RETURN_NOT_OK(PopMin(&rec, &done));
    if (!opts_.combine_fn) {
      while (!done) {
        HAMMING_RETURN_NOT_OK(write_one(rec));
        HAMMING_RETURN_NOT_OK(PopMin(&rec, &done));
      }
    } else {
      // Group equal keys as they stream out and fold each group.
      while (!done) {
        std::vector<uint8_t> key = std::move(rec.key);
        std::vector<std::vector<uint8_t>> values;
        values.push_back(std::move(rec.value));
        for (;;) {
          HAMMING_RETURN_NOT_OK(PopMin(&rec, &done));
          if (done || rec.key != key) break;
          values.push_back(std::move(rec.value));
        }
        std::vector<Record> combined;
        HAMMING_RETURN_NOT_OK(CombineGroup(opts_.combine_fn, key,
                                           std::move(values), &combined,
                                           &combine_in_, &combine_out_));
        for (const Record& r : combined) HAMMING_RETURN_NOT_OK(write_one(r));
      }
    }
    HAMMING_RETURN_NOT_OK(writer->Finish());
    auto file = std::make_shared<const SpillFile>(
        writer->path(), writer->segments(), writer->file_bytes());
    ++spill_count_;
    spilled_bytes_ += static_cast<int64_t>(writer->file_bytes());
    if (opts_.on_spill) opts_.on_spill(writer->file_bytes(), written);
    next.push_back(SegmentSource{std::move(file), 0});
  }
  sources_ = std::move(next);
  streams_.clear();
  heap_.clear();
  return Status::OK();
}

Status ShuffleMerger::Open() {
  if (opened_) return Status::OK();
  while (sources_.size() > opts_.max_fanin) {
    HAMMING_RETURN_NOT_OK(RunIntermediatePass());
    ++merge_passes_;
  }
  HAMMING_RETURN_NOT_OK(OpenStreams(sources_));
  fanin_ += static_cast<int64_t>(sources_.size());
  total_records_ = 0;
  for (const SegmentSource& src : sources_) {
    total_records_ += src.file->segments()[src.segment].records;
  }
  opened_ = true;
  return Status::OK();
}

Status ShuffleMerger::Next(Record* rec, bool* done) {
  if (!opened_) {
    return Status::ExecutionError("ShuffleMerger::Next before Open");
  }
  return PopMin(rec, done);
}

}  // namespace hamming::mr

#include "chem/tanimoto.h"

#include <algorithm>
#include <cmath>

namespace hamming::chem {

double TanimotoSimilarity(const BinaryCode& a, const BinaryCode& b) {
  std::size_t inter = (a & b).PopCount();
  std::size_t uni = (a | b).PopCount();
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::size_t TanimotoHammingBound(double t, std::size_t wa, std::size_t wb) {
  // d = wa + wb - 2c and T = c / (wa + wb - c) >= t
  //   => c >= t (wa + wb) / (1 + t)
  //   => d <= (1 - t) / (1 + t) * (wa + wb).
  double bound = (1.0 - t) / (1.0 + t) * static_cast<double>(wa + wb);
  return static_cast<std::size_t>(std::floor(bound + 1e-9));
}

Result<TanimotoSearcher> TanimotoSearcher::Build(
    const std::vector<BinaryCode>& fingerprints,
    DynamicHAIndexOptions index_opts) {
  TanimotoSearcher s;
  s.fingerprints_ = fingerprints;
  // Group ids by popcount, then bulk-build one HA-Index per group with
  // global ids.
  std::map<std::size_t, std::pair<std::vector<TupleId>,
                                  std::vector<BinaryCode>>> groups;
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    auto& g = groups[fingerprints[i].PopCount()];
    g.first.push_back(static_cast<TupleId>(i));
    g.second.push_back(fingerprints[i]);
  }
  for (auto& [weight, g] : groups) {
    DynamicHAIndex index(index_opts);
    HAMMING_RETURN_NOT_OK(index.BuildWithIds(g.first, g.second));
    s.buckets_.emplace(weight, std::move(index));
  }
  return s;
}

Result<std::vector<TupleId>> TanimotoSearcher::Search(
    const BinaryCode& query, double threshold,
    obs::QueryStats* stats) const {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("Tanimoto threshold must be in (0, 1]");
  }
  const std::size_t q = query.PopCount();
  std::vector<TupleId> out;
  // Popcount pruning: |fp| in [ceil(t*q), floor(q/t)]; when q = 0 only
  // the empty fingerprint qualifies (T = 1 by convention).
  std::size_t lo = static_cast<std::size_t>(
      std::ceil(threshold * static_cast<double>(q) - 1e-9));
  std::size_t hi = q == 0
                       ? 0
                       : static_cast<std::size_t>(std::floor(
                             static_cast<double>(q) / threshold + 1e-9));
  for (auto it = buckets_.lower_bound(lo);
       it != buckets_.end() && it->first <= hi; ++it) {
    std::size_t h = TanimotoHammingBound(threshold, q, it->first);
    // Each popcount bucket is its own index, so the batch surface sees
    // one single-request batch per qualifying bucket.
    QueryRequest req = QueryRequest::Range(query, h);
    QueryResponse resp;
    HAMMING_RETURN_NOT_OK(it->second.SearchBatch({&req, 1}, {&resp, 1}));
    HAMMING_RETURN_NOT_OK(resp.status);
    if (stats != nullptr) *stats += resp.stats;
    const std::vector<TupleId>& candidates = resp.ids;
    if (stats != nullptr) {
      stats->exact_distance_computations += candidates.size();
    }
    for (TupleId id : candidates) {
      if (TanimotoSimilarity(query, fingerprints_[id]) >= threshold - 1e-12) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  if (stats != nullptr) stats->results += out.size();
  return out;
}

std::vector<BinaryCode> GenerateFingerprints(std::size_t n, std::size_t bits,
                                             std::size_t scaffolds,
                                             uint64_t seed) {
  Rng rng(seed);
  // Scaffolds: ~15% of bits set; molecules add ~8% decoration bits and
  // occasionally drop a scaffold bit.
  std::vector<BinaryCode> protos;
  protos.reserve(scaffolds);
  for (std::size_t sc = 0; sc < scaffolds; ++sc) {
    BinaryCode p(bits);
    for (std::size_t b = 0; b < bits; ++b) {
      if (rng.Bernoulli(0.15)) p.SetBit(b, true);
    }
    protos.push_back(p);
  }
  std::vector<BinaryCode> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BinaryCode fp = protos[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(scaffolds) - 1))];
    for (std::size_t b = 0; b < bits; ++b) {
      if (fp.GetBit(b)) {
        if (rng.Bernoulli(0.03)) fp.SetBit(b, false);
      } else if (rng.Bernoulli(0.08)) {
        fp.SetBit(b, true);
      }
    }
    out.push_back(fp);
  }
  return out;
}

}  // namespace hamming::chem

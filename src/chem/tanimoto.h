// Tanimoto-similarity search over chemical fingerprints, reduced to
// Hamming-distance queries ([14] in the paper: "similarity search in
// chemical information via the Tanimoto Similarity metric can be
// transformed into a Hamming-distance query").
//
// For fingerprints a, b with popcounts |a|, |b| and c = |a AND b|,
// T(a,b) = c / (|a| + |b| - c). T >= t implies two prunable facts:
//   * popcount bound: |b| must lie in [t*|a|, |a|/t];
//   able Hamming bound: ||a,b||_H = |a| + |b| - 2c
//     <= (1-t)/(1+t) * (|a| + |b|).
// The searcher therefore buckets fingerprints by popcount, keeps one
// HA-Index per bucket, and answers a Tanimoto threshold query as a small
// set of Hamming range queries followed by exact verification.
#pragma once

#include <map>
#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "index/dynamic_ha_index.h"

namespace hamming::chem {

/// \brief Exact Tanimoto similarity of two equal-length fingerprints
/// (1.0 when both are empty, matching the chemistry convention).
double TanimotoSimilarity(const BinaryCode& a, const BinaryCode& b);

/// \brief The Hamming-distance bound implied by T(a,b) >= t for
/// popcounts wa and wb.
std::size_t TanimotoHammingBound(double t, std::size_t wa, std::size_t wb);

/// \brief A Tanimoto-threshold search structure over fingerprints.
class TanimotoSearcher {
 public:
  /// \brief Buckets `fingerprints` by popcount and indexes each bucket.
  static Result<TanimotoSearcher> Build(
      const std::vector<BinaryCode>& fingerprints,
      DynamicHAIndexOptions index_opts = {});

  /// \brief Ids of fingerprints with T(query, fp) >= threshold. A
  /// non-null `stats` additionally accumulates the per-bucket HA-Index
  /// search work plus one exact Tanimoto evaluation per candidate.
  Result<std::vector<TupleId>> Search(const BinaryCode& query,
                                      double threshold,
                                      obs::QueryStats* stats = nullptr) const;

  std::size_t size() const { return fingerprints_.size(); }
  /// \brief Number of popcount buckets (and HA-Indexes) kept.
  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  TanimotoSearcher() = default;

  std::vector<BinaryCode> fingerprints_;
  // popcount -> HA-Index over the bucket's fingerprints (ids global).
  std::map<std::size_t, DynamicHAIndex> buckets_;
};

/// \brief Synthetic MACCS-like fingerprints: molecules share scaffold
/// bit patterns and differ in decoration bits, giving the clustered
/// structure real compound libraries show.
std::vector<BinaryCode> GenerateFingerprints(std::size_t n,
                                             std::size_t bits = 166,
                                             std::size_t scaffolds = 32,
                                             uint64_t seed = 42);

}  // namespace hamming::chem

// In-memory B+-tree over binary-code keys.
//
// Substrate for the LSB-Tree baseline [26]: Z-values are indexed in a
// B-tree and neighbourhood queries walk outward from the query's position
// in key order. Keys are BinaryCodes compared lexicographically;
// duplicate keys are allowed. Leaves are doubly linked for bidirectional
// scans.
#pragma once

#include <memory>

#include "code/binary_code.h"
#include "common/status.h"

namespace hamming {

/// \brief B+-tree mapping BinaryCode keys to uint32 values.
class BPlusTree {
 public:
  /// Maximum entries per node before a split.
  static constexpr std::size_t kFanout = 64;

  BPlusTree();
  ~BPlusTree();
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// \brief Inserts a key/value pair (duplicates allowed).
  void Insert(const BinaryCode& key, uint32_t value);

  /// \brief Removes one pair matching (key, value); KeyError if absent.
  Status Delete(const BinaryCode& key, uint32_t value);

  std::size_t size() const { return size_; }
  std::size_t height() const;
  std::size_t MemoryBytes() const;

 private:
  struct NodeBase;
  struct InternalNode;
  struct LeafNode;

 public:
  /// \brief Position within the leaf chain.
  class Iterator {
   public:
    /// \brief False once the iterator has walked off either end.
    bool Valid() const { return leaf_ != nullptr; }
    const BinaryCode& key() const;
    uint32_t value() const;
    /// Advances toward larger keys.
    void Next();
    /// Retreats toward smaller keys.
    void Prev();

   private:
    friend class BPlusTree;
    LeafNode* leaf_ = nullptr;
    std::size_t slot_ = 0;
  };

  /// \brief Iterator at the first entry with key >= `key` (invalid when
  /// every key is smaller).
  Iterator SeekCeiling(const BinaryCode& key) const;
  /// \brief Iterator at the first entry.
  Iterator Begin() const;
  /// \brief Iterator at the last entry (invalid when empty).
  Iterator Last() const;

  /// \brief Validates B+-tree invariants (sorted keys, balanced depth,
  /// fanout bounds); used by the property tests.
  Status CheckInvariants() const;

 private:
  void InsertIntoLeaf(LeafNode* leaf, const BinaryCode& key, uint32_t value);
  LeafNode* FindLeaf(const BinaryCode& key) const;
  void SplitLeaf(LeafNode* leaf);
  void SplitInternal(InternalNode* node);
  void InsertIntoParent(NodeBase* left, const BinaryCode& sep,
                        NodeBase* right);
  static void FreeTree(NodeBase* n);
  static std::size_t NodeBytes(const NodeBase* n);
  Status CheckNode(const NodeBase* n, std::size_t depth,
                   std::size_t expected_depth) const;

  NodeBase* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hamming

// LSB-Tree (Tao, Yi, Sheng, Kalnis [26]): the Z-order + B-tree kNN
// baseline of Table 5 ("LSB-Tree(25)" = a forest of 25 trees).
//
// Each tree applies its own randomly-shifted Z-order encoding and indexes
// the resulting Z-values in a B+-tree. A query seeks its own Z-value in
// every tree and expands bidirectionally along the leaf chain, collecting
// the nearest Z-neighbours as candidates, which are then ranked by true
// feature-space distance.
#pragma once

#include "common/result.h"
#include "hashing/zorder.h"
#include "knn/bptree.h"
#include "knn/exact_knn.h"

namespace hamming {

/// \brief LSB-forest parameters.
struct LsbTreeOptions {
  std::size_t num_trees = 25;
  std::size_t dims_used = 8;       // projected dims interleaved per tree
  std::size_t bits_per_dim = 8;    // Z-value resolution
  std::size_t candidates_per_tree = 64;  // leaf entries visited per probe
  uint64_t seed = 42;
};

/// \brief A forest of Z-order B+-trees over a dataset (by reference).
class LsbForest {
 public:
  static Result<LsbForest> Build(const FloatMatrix& data,
                                 const LsbTreeOptions& opts);

  /// \brief Approximate kNN via bidirectional leaf-chain expansion.
  std::vector<Neighbor> Search(std::span<const double> query,
                               std::size_t k) const;

  std::size_t MemoryBytes() const;
  std::size_t num_trees() const { return trees_.size(); }

 private:
  LsbForest() = default;

  const FloatMatrix* data_ = nullptr;
  LsbTreeOptions opts_;
  std::vector<ZOrderEncoder> encoders_;
  std::vector<BPlusTree> trees_;
};

}  // namespace hamming

#include "knn/hamming_knn.h"

#include <algorithm>

#include "kernels/hamming_kernels.h"

namespace hamming {

std::vector<std::pair<TupleId, uint32_t>> ExactHammingKnn(
    const kernels::CodeStore& codes, const BinaryCode& query, std::size_t k) {
  auto nearest = kernels::BatchKnn(query, codes, k);
  std::vector<std::pair<TupleId, uint32_t>> out;
  out.reserve(nearest.size());
  for (const auto& [slot, dist] : nearest) {
    out.emplace_back(static_cast<TupleId>(slot), dist);
  }
  return out;
}

Result<std::vector<Neighbor>> HammingKnnSearcher::Search(
    std::span<const double> query, std::size_t k) const {
  BinaryCode qcode = hash_->Hash(query);
  const std::size_t max_h = hash_->code_bits();
  std::size_t h = opts_.initial_h;
  std::vector<TupleId> candidates;
  QueryResponse resp;
  for (;;) {
    QueryRequest req = QueryRequest::Range(qcode, h);
    HAMMING_RETURN_NOT_OK(index_->SearchBatch({&req, 1}, {&resp, 1}));
    HAMMING_RETURN_NOT_OK(resp.status);
    candidates = std::move(resp.ids);
    if (candidates.size() >= k || h >= max_h) break;
    h = std::min(max_h, h + opts_.h_step);
  }
  // Rank candidates by true distance.
  std::vector<Neighbor> ranked;
  ranked.reserve(candidates.size());
  for (TupleId id : candidates) {
    ranked.push_back(
        {id, FloatMatrix::L2(data_->Row(id), query)});
  }
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace hamming

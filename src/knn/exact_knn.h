// Exact k-nearest-neighbour search by linear scan in the original
// d-dimensional space: the ground truth every approximate method in the
// evaluation (Table 5, Figure 10b) is measured against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dataset/matrix.h"

namespace hamming {

/// \brief One neighbour: row id and (Euclidean) distance.
struct Neighbor {
  std::size_t id;
  double distance;
  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;
  }
};

/// \brief The k nearest rows of `data` to `query` under L2, ascending.
std::vector<Neighbor> ExactKnn(const FloatMatrix& data,
                               std::span<const double> query, std::size_t k);

/// \brief Exact kNN-join: for every row of `outer`, its k nearest rows of
/// `inner`. Result[i] are outer row i's neighbours.
std::vector<std::vector<Neighbor>> ExactKnnJoin(const FloatMatrix& outer,
                                                const FloatMatrix& inner,
                                                std::size_t k);

/// \brief Recall of an approximate id set against the exact neighbours.
double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<std::size_t>& approx_ids);

}  // namespace hamming

#include "knn/e2lsh.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace hamming {

Result<E2Lsh> E2Lsh::Build(const FloatMatrix& data, const E2LshOptions& opts) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (opts.num_tables == 0 || opts.hashes_per_table == 0) {
    return Status::InvalidArgument("num_tables and hashes_per_table > 0");
  }
  E2Lsh lsh;
  lsh.data_ = &data;
  lsh.opts_ = opts;
  const std::size_t d = data.cols();
  const std::size_t tm = opts.num_tables * opts.hashes_per_table;
  lsh.projections_.resize(tm * d);
  lsh.offsets_.resize(tm);
  Rng rng(opts.seed);
  if (lsh.opts_.bucket_width <= 0.0) {
    // Auto-tune: a per-hash width near half the median pairwise distance
    // keeps near neighbours colliding while distant pairs split on at
    // least one of the M hashes.
    std::vector<double> dists;
    const std::size_t pairs = std::min<std::size_t>(500, data.rows());
    for (std::size_t p = 0; p < pairs; ++p) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(data.rows()) - 1));
      std::size_t j = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(data.rows()) - 1));
      dists.push_back(FloatMatrix::L2(data.Row(i), data.Row(j)));
    }
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    double median = dists[dists.size() / 2];
    lsh.opts_.bucket_width = std::max(median * 1.5, 1e-9);
  }
  for (double& v : lsh.projections_) v = rng.Gaussian();
  for (double& v : lsh.offsets_) {
    v = rng.UniformReal(0.0, lsh.opts_.bucket_width);
  }

  lsh.tables_.resize(opts.num_tables);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    auto row = data.Row(i);
    for (std::size_t t = 0; t < opts.num_tables; ++t) {
      lsh.tables_[t][lsh.BucketKey(t, row)].push_back(
          static_cast<uint32_t>(i));
    }
  }
  return lsh;
}

uint64_t E2Lsh::BucketKey(std::size_t table,
                          std::span<const double> vec) const {
  const std::size_t d = data_->cols();
  const std::size_t m = opts_.hashes_per_table;
  uint64_t key = 14695981039346656037ull;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t idx = table * m + j;
    const double* a = projections_.data() + idx * d;
    double dot = 0.0;
    for (std::size_t c = 0; c < d; ++c) dot += a[c] * vec[c];
    int64_t slot = static_cast<int64_t>(
        std::floor((dot + offsets_[idx]) / opts_.bucket_width));
    key ^= static_cast<uint64_t>(slot) + 0x9e3779b97f4a7c15ull + (key << 6) +
           (key >> 2);
  }
  return key;
}

std::vector<Neighbor> E2Lsh::Search(std::span<const double> query,
                                    std::size_t k) const {
  std::unordered_set<uint32_t> candidates;
  for (std::size_t t = 0; t < opts_.num_tables; ++t) {
    auto it = tables_[t].find(BucketKey(t, query));
    if (it == tables_[t].end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  std::vector<Neighbor> ranked;
  ranked.reserve(candidates.size());
  for (uint32_t id : candidates) {
    ranked.push_back({id, FloatMatrix::L2(data_->Row(id), query)});
  }
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::size_t E2Lsh::MemoryBytes() const {
  std::size_t bytes =
      projections_.size() * sizeof(double) + offsets_.size() * sizeof(double);
  for (const auto& t : tables_) {
    bytes += t.size() * (sizeof(uint64_t) + sizeof(void*));
    for (const auto& [key, bucket] : t) {
      (void)key;
      bytes += bucket.size() * sizeof(uint32_t);
    }
  }
  return bytes;
}

}  // namespace hamming

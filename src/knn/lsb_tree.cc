#include "knn/lsb_tree.h"

#include <algorithm>
#include <unordered_set>

namespace hamming {

Result<LsbForest> LsbForest::Build(const FloatMatrix& data,
                                   const LsbTreeOptions& opts) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  LsbForest forest;
  forest.data_ = &data;
  forest.opts_ = opts;
  forest.encoders_.reserve(opts.num_trees);
  forest.trees_.resize(opts.num_trees);
  for (std::size_t t = 0; t < opts.num_trees; ++t) {
    HAMMING_ASSIGN_OR_RETURN(
        ZOrderEncoder enc,
        ZOrderEncoder::Create(data.cols(), opts.dims_used, opts.bits_per_dim,
                              opts.seed + t * 1000003ull));
    enc.Fit(data);
    for (std::size_t i = 0; i < data.rows(); ++i) {
      forest.trees_[t].Insert(enc.Encode(data.Row(i)),
                              static_cast<uint32_t>(i));
    }
    forest.encoders_.push_back(std::move(enc));
  }
  return forest;
}

std::vector<Neighbor> LsbForest::Search(std::span<const double> query,
                                        std::size_t k) const {
  std::unordered_set<uint32_t> candidates;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    BinaryCode z = encoders_[t].Encode(query);
    // Bidirectional expansion from the query's Z-position.
    BPlusTree::Iterator fwd = trees_[t].SeekCeiling(z);
    BPlusTree::Iterator bwd = fwd;
    if (bwd.Valid()) {
      bwd.Prev();
    } else {
      // Query larger than every key: backward scan starts at the end.
      bwd = trees_[t].Last();
    }
    for (std::size_t taken = 0;
         taken < opts_.candidates_per_tree && (fwd.Valid() || bwd.Valid());) {
      if (fwd.Valid()) {
        candidates.insert(fwd.value());
        fwd.Next();
        ++taken;
      }
      if (taken >= opts_.candidates_per_tree) break;
      if (bwd.Valid()) {
        candidates.insert(bwd.value());
        bwd.Prev();
        ++taken;
      }
    }
  }
  std::vector<Neighbor> ranked;
  ranked.reserve(candidates.size());
  for (uint32_t id : candidates) {
    ranked.push_back({id, FloatMatrix::L2(data_->Row(id), query)});
  }
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::size_t LsbForest::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& t : trees_) bytes += t.MemoryBytes();
  return bytes;
}

}  // namespace hamming

#include "knn/bptree.h"

#include <algorithm>
#include <vector>

namespace hamming {

struct BPlusTree::NodeBase {
  bool is_leaf;
  InternalNode* parent = nullptr;
  explicit NodeBase(bool leaf) : is_leaf(leaf) {}
};

struct BPlusTree::InternalNode : BPlusTree::NodeBase {
  InternalNode() : NodeBase(false) {}
  // children.size() == keys.size() + 1; subtree i holds keys < keys[i],
  // subtree i+1 holds keys >= keys[i].
  std::vector<BinaryCode> keys;
  std::vector<NodeBase*> children;
};

struct BPlusTree::LeafNode : BPlusTree::NodeBase {
  LeafNode() : NodeBase(true) {}
  std::vector<BinaryCode> keys;
  std::vector<uint32_t> values;
  LeafNode* prev = nullptr;
  LeafNode* next = nullptr;
};

BPlusTree::BPlusTree() { root_ = new LeafNode(); }

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  other.root_ = new LeafNode();
  other.size_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = new LeafNode();
    other.size_ = 0;
  }
  return *this;
}

void BPlusTree::FreeTree(NodeBase* n) {
  if (n == nullptr) return;
  if (!n->is_leaf) {
    auto* in = static_cast<InternalNode*>(n);
    for (NodeBase* c : in->children) FreeTree(c);
    delete in;
  } else {
    delete static_cast<LeafNode*>(n);
  }
}

BPlusTree::LeafNode* BPlusTree::FindLeaf(const BinaryCode& key) const {
  NodeBase* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<InternalNode*>(n);
    std::size_t i =
        std::upper_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin();
    n = in->children[i];
  }
  return static_cast<LeafNode*>(n);
}

void BPlusTree::Insert(const BinaryCode& key, uint32_t value) {
  LeafNode* leaf = FindLeaf(key);
  InsertIntoLeaf(leaf, key, value);
  ++size_;
  if (leaf->keys.size() > kFanout) SplitLeaf(leaf);
}

void BPlusTree::InsertIntoLeaf(LeafNode* leaf, const BinaryCode& key,
                               uint32_t value) {
  std::size_t pos =
      std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin();
  leaf->keys.insert(leaf->keys.begin() + pos, key);
  leaf->values.insert(leaf->values.begin() + pos, value);
}

void BPlusTree::SplitLeaf(LeafNode* leaf) {
  auto* right = new LeafNode();
  std::size_t mid = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
  right->values.assign(leaf->values.begin() + mid, leaf->values.end());
  leaf->keys.resize(mid);
  leaf->values.resize(mid);
  right->next = leaf->next;
  if (right->next) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
}

void BPlusTree::SplitInternal(InternalNode* node) {
  std::size_t mid = node->keys.size() / 2;
  BinaryCode sep = node->keys[mid];
  auto* right = new InternalNode();
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  for (NodeBase* c : right->children) c->parent = right;
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  InsertIntoParent(node, sep, right);
}

void BPlusTree::InsertIntoParent(NodeBase* left, const BinaryCode& sep,
                                 NodeBase* right) {
  InternalNode* parent = left->parent;
  if (parent == nullptr) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(sep);
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  std::size_t pos =
      std::find(parent->children.begin(), parent->children.end(), left) -
      parent->children.begin();
  parent->keys.insert(parent->keys.begin() + pos, sep);
  parent->children.insert(parent->children.begin() + pos + 1, right);
  right->parent = parent;
  if (parent->keys.size() > kFanout) SplitInternal(parent);
}

Status BPlusTree::Delete(const BinaryCode& key, uint32_t value) {
  // Deletion without rebalancing: the LSB-Tree workload shrinks only via
  // full rebuilds, so underflow merging is not load-bearing; emptied
  // leaves stay linked until destruction.
  for (Iterator it = SeekCeiling(key); it.Valid() && it.key() == key;
       it.Next()) {
    if (it.value() == value) {
      it.leaf_->keys.erase(it.leaf_->keys.begin() + it.slot_);
      it.leaf_->values.erase(it.leaf_->values.begin() + it.slot_);
      --size_;
      return Status::OK();
    }
  }
  return Status::KeyError("key/value not found in B+-tree");
}

const BinaryCode& BPlusTree::Iterator::key() const { return leaf_->keys[slot_]; }
uint32_t BPlusTree::Iterator::value() const { return leaf_->values[slot_]; }

void BPlusTree::Iterator::Next() {
  if (!Valid()) return;
  ++slot_;
  while (leaf_ != nullptr && slot_ >= leaf_->keys.size()) {
    leaf_ = leaf_->next;
    slot_ = 0;
  }
}

void BPlusTree::Iterator::Prev() {
  if (!Valid()) return;
  if (slot_ > 0) {
    --slot_;
    return;
  }
  leaf_ = leaf_->prev;
  while (leaf_ != nullptr && leaf_->keys.empty()) leaf_ = leaf_->prev;
  if (leaf_ != nullptr) slot_ = leaf_->keys.size() - 1;
}

BPlusTree::Iterator BPlusTree::SeekCeiling(const BinaryCode& key) const {
  // Descend toward the *leftmost* possible occurrence: duplicates equal
  // to a separator key can sit at the tail of the left sibling after a
  // split, so equality must branch left (lower_bound), unlike the insert
  // path which appends duplicates on the right.
  NodeBase* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<InternalNode*>(n);
    std::size_t i =
        std::lower_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin();
    n = in->children[i];
  }
  LeafNode* leaf = static_cast<LeafNode*>(n);
  Iterator it;
  it.leaf_ = leaf;
  it.slot_ = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
             leaf->keys.begin();
  while (it.leaf_ != nullptr && it.slot_ >= it.leaf_->keys.size()) {
    it.leaf_ = it.leaf_->next;
    it.slot_ = 0;
  }
  return it;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  NodeBase* n = root_;
  while (!n->is_leaf) n = static_cast<InternalNode*>(n)->children.front();
  Iterator it;
  it.leaf_ = static_cast<LeafNode*>(n);
  it.slot_ = 0;
  while (it.leaf_ != nullptr && it.slot_ >= it.leaf_->keys.size()) {
    it.leaf_ = it.leaf_->next;
    it.slot_ = 0;
  }
  return it;
}

BPlusTree::Iterator BPlusTree::Last() const {
  NodeBase* n = root_;
  while (!n->is_leaf) n = static_cast<InternalNode*>(n)->children.back();
  Iterator it;
  it.leaf_ = static_cast<LeafNode*>(n);
  while (it.leaf_ != nullptr && it.leaf_->keys.empty()) {
    it.leaf_ = it.leaf_->prev;
  }
  if (it.leaf_ != nullptr) it.slot_ = it.leaf_->keys.size() - 1;
  return it;
}

std::size_t BPlusTree::height() const {
  std::size_t h = 1;
  NodeBase* n = root_;
  while (!n->is_leaf) {
    n = static_cast<InternalNode*>(n)->children.front();
    ++h;
  }
  return h;
}

std::size_t BPlusTree::NodeBytes(const NodeBase* n) {
  if (n->is_leaf) {
    const auto* l = static_cast<const LeafNode*>(n);
    std::size_t bytes = 2 * sizeof(void*);
    for (const auto& k : l->keys) bytes += k.PackedBytes();
    bytes += l->values.size() * sizeof(uint32_t);
    return bytes;
  }
  const auto* in = static_cast<const InternalNode*>(n);
  std::size_t bytes = in->children.size() * sizeof(void*);
  for (const auto& k : in->keys) bytes += k.PackedBytes();
  for (const NodeBase* c : in->children) bytes += NodeBytes(c);
  return bytes;
}

std::size_t BPlusTree::MemoryBytes() const { return NodeBytes(root_); }

Status BPlusTree::CheckNode(const NodeBase* n, std::size_t depth,
                            std::size_t expected_depth) const {
  if (n->is_leaf) {
    if (depth != expected_depth) {
      return Status::IndexError("leaves at unequal depth");
    }
    const auto* l = static_cast<const LeafNode*>(n);
    if (!std::is_sorted(l->keys.begin(), l->keys.end())) {
      return Status::IndexError("unsorted leaf keys");
    }
    if (l->keys.size() != l->values.size()) {
      return Status::IndexError("leaf key/value size mismatch");
    }
    return Status::OK();
  }
  const auto* in = static_cast<const InternalNode*>(n);
  if (in->children.size() != in->keys.size() + 1) {
    return Status::IndexError("internal arity mismatch");
  }
  if (!std::is_sorted(in->keys.begin(), in->keys.end())) {
    return Status::IndexError("unsorted internal keys");
  }
  for (const NodeBase* c : in->children) {
    if (c->parent != n) return Status::IndexError("broken parent link");
    HAMMING_RETURN_NOT_OK(CheckNode(c, depth + 1, expected_depth));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  return CheckNode(root_, 1, height());
}

}  // namespace hamming

// E2LSH: p-stable locality-sensitive hashing for Euclidean space
// (Andoni & Indyk [18]), the data-independent kNN baseline of Table 5.
//
// Each of T hash tables concatenates M hashes of the form
// floor((a.v + b) / w) with Gaussian a and uniform b; a query probes its
// bucket in every table and ranks the union of candidates by true
// distance.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dataset/matrix.h"
#include "knn/exact_knn.h"

namespace hamming {

/// \brief E2LSH parameters.
struct E2LshOptions {
  std::size_t num_tables = 20;       // paper: "We use 20 hash tables"
  std::size_t hashes_per_table = 8;  // M
  /// Quantization width w; <= 0 auto-tunes from the data (a fraction of
  /// the median pairwise distance, so bucket occupancy stays sane across
  /// datasets with very different scales).
  double bucket_width = 0.0;
  uint64_t seed = 42;
};

/// \brief An E2LSH index over a dataset (kept by reference).
class E2Lsh {
 public:
  /// \brief Builds the tables over every row of `data`.
  static Result<E2Lsh> Build(const FloatMatrix& data,
                             const E2LshOptions& opts);

  /// \brief Approximate kNN: candidates from all probed buckets, ranked
  /// by true distance.
  std::vector<Neighbor> Search(std::span<const double> query,
                               std::size_t k) const;

  /// \brief Index memory in bytes (tables only; data is external).
  std::size_t MemoryBytes() const;

 private:
  E2Lsh() = default;

  uint64_t BucketKey(std::size_t table, std::span<const double> vec) const;

  const FloatMatrix* data_ = nullptr;
  E2LshOptions opts_;
  // Per (table, hash): projection vector and offset.
  std::vector<double> projections_;  // T * M * d
  std::vector<double> offsets_;      // T * M
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables_;
};

}  // namespace hamming

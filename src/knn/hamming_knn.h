// Approximate kNN via Hamming range search with threshold escalation
// (Section 2's description of hash-based kNN, the core use case the
// HA-Index accelerates).
//
// The query vector is hashed to its binary code; a Hamming-select with a
// small threshold h retrieves candidates; if fewer than k answers are
// found "a larger distance threshold is estimated and the near neighbor
// query is repeated" until k or more are reported. Candidates are ranked
// by true distance in feature space to produce the final k.
#pragma once

#include <memory>

#include "common/result.h"
#include "hashing/similarity_hash.h"
#include "index/hamming_index.h"
#include "kernels/code_store.h"
#include "knn/exact_knn.h"

namespace hamming {

/// \brief Exact k nearest codes to `query` in Hamming space: a batched
/// linear scan feeding a bounded top-k heap (kernels::BatchKnn), so
/// memory stays O(k). Pairs are (slot, distance), ascending by
/// (distance, slot) — the deterministic ground truth the hash-based kNN
/// plans are measured against.
std::vector<std::pair<TupleId, uint32_t>> ExactHammingKnn(
    const kernels::CodeStore& codes, const BinaryCode& query, std::size_t k);

/// \brief Options for the escalating Hamming kNN search.
struct HammingKnnOptions {
  std::size_t initial_h = 2;
  std::size_t h_step = 2;  // additive escalation per retry
};

/// \brief Approximate kNN-select over a Hamming index.
///
/// Owns neither the index nor the data; both must outlive the searcher.
class HammingKnnSearcher {
 public:
  HammingKnnSearcher(const HammingIndex* index, const SimilarityHash* hash,
                     const FloatMatrix* data, HammingKnnOptions opts = {})
      : index_(index), hash_(hash), data_(data), opts_(opts) {}

  /// \brief The approximate k nearest rows to `query`, ranked by true
  /// feature-space distance among the Hamming candidates.
  Result<std::vector<Neighbor>> Search(std::span<const double> query,
                                       std::size_t k) const;

 private:
  const HammingIndex* index_;
  const SimilarityHash* hash_;
  const FloatMatrix* data_;
  HammingKnnOptions opts_;
};

}  // namespace hamming

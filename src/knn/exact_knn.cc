#include "knn/exact_knn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace hamming {

std::vector<Neighbor> ExactKnn(const FloatMatrix& data,
                               std::span<const double> query, std::size_t k) {
  // Bounded max-heap of the best k seen so far.
  std::priority_queue<Neighbor> heap;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    double d2 = FloatMatrix::SquaredL2(data.Row(i), query);
    if (heap.size() < k) {
      heap.push({i, d2});
    } else if (!heap.empty() && d2 < heap.top().distance) {
      heap.pop();
      heap.push({i, d2});
    }
  }
  std::vector<Neighbor> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    Neighbor n = heap.top();
    heap.pop();
    n.distance = std::sqrt(n.distance);
    out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<Neighbor>> ExactKnnJoin(const FloatMatrix& outer,
                                                const FloatMatrix& inner,
                                                std::size_t k) {
  std::vector<std::vector<Neighbor>> out(outer.rows());
  for (std::size_t i = 0; i < outer.rows(); ++i) {
    out[i] = ExactKnn(inner, outer.Row(i), k);
  }
  return out;
}

double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<std::size_t>& approx_ids) {
  if (exact.empty()) return 1.0;
  std::unordered_set<std::size_t> truth;
  for (const auto& n : exact) truth.insert(n.id);
  std::size_t hit = 0;
  for (std::size_t id : approx_ids) {
    if (truth.count(id)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

}  // namespace hamming

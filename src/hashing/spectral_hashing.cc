#include "hashing/spectral_hashing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hashing/eigen.h"

namespace hamming {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Result<std::unique_ptr<SpectralHashing>> SpectralHashing::Train(
    const FloatMatrix& sample, const SpectralHashingOptions& opts) {
  if (sample.rows() < 2) {
    return Status::InvalidArgument(
        "SpectralHashing::Train needs at least 2 sample rows");
  }
  if (opts.code_bits == 0 || opts.code_bits > BinaryCode::kMaxBits) {
    return Status::InvalidArgument("invalid code_bits");
  }
  const std::size_t d = sample.cols();
  const std::size_t L = opts.code_bits;

  auto model = std::unique_ptr<SpectralHashing>(new SpectralHashing());
  model->code_bits_ = L;
  model->dim_ = d;
  model->mean_ = sample.ColumnMeans();

  // PCA: keep min(L, d) top principal directions.
  FloatMatrix cov = CovarianceMatrix(sample);
  EigenDecomposition eig;
  HAMMING_RETURN_NOT_OK(JacobiEigenSymmetric(cov, &eig));
  const std::size_t npc = std::min(L, d);
  model->num_pcs_ = npc;
  model->projections_.resize(npc * d);
  for (std::size_t j = 0; j < npc; ++j) {
    auto pc = eig.eigenvectors.Row(j);
    std::copy(pc.begin(), pc.end(), model->projections_.begin() + j * d);
  }

  // Fit a uniform box on the projected sample.
  std::vector<double> mn(npc, 1e300), mx(npc, -1e300);
  for (std::size_t i = 0; i < sample.rows(); ++i) {
    auto row = sample.Row(i);
    for (std::size_t j = 0; j < npc; ++j) {
      double p = 0.0;
      const double* w = model->projections_.data() + j * d;
      for (std::size_t k = 0; k < d; ++k) p += w[k] * (row[k] - model->mean_[k]);
      mn[j] = std::min(mn[j], p);
      mx[j] = std::max(mx[j], p);
    }
  }
  model->mn_ = mn;
  model->range_.resize(npc);
  for (std::size_t j = 0; j < npc; ++j) {
    model->range_[j] = std::max(mx[j] - mn[j], 1e-12);
  }

  // Enumerate analytical eigenfunctions: mode k on direction j has
  // frequency omega = k*pi/range_j; the Laplacian eigenvalue grows with
  // omega, so pick the L smallest-frequency modes overall.
  std::size_t max_modes = opts.max_modes_per_direction
                              ? opts.max_modes_per_direction
                              : L + 1;
  struct Mode {
    double omega;
    uint32_t dir;
    uint32_t mode;
  };
  std::vector<Mode> modes;
  modes.reserve(npc * max_modes);
  for (std::size_t j = 0; j < npc; ++j) {
    for (std::size_t k = 1; k <= max_modes; ++k) {
      modes.push_back({static_cast<double>(k) * kPi / model->range_[j],
                       static_cast<uint32_t>(j), static_cast<uint32_t>(k)});
    }
  }
  std::sort(modes.begin(), modes.end(), [](const Mode& a, const Mode& b) {
    if (a.omega != b.omega) return a.omega < b.omega;
    if (a.dir != b.dir) return a.dir < b.dir;
    return a.mode < b.mode;
  });
  if (modes.size() < L) {
    return Status::InvalidArgument("not enough eigenfunction modes");
  }
  model->dir_.resize(L);
  model->mode_.resize(L);
  for (std::size_t b = 0; b < L; ++b) {
    model->dir_[b] = modes[b].dir;
    model->mode_[b] = modes[b].mode;
  }
  return model;
}

BinaryCode SpectralHashing::Hash(std::span<const double> vec) const {
  // Project onto the kept principal directions once.
  std::vector<double> proj(num_pcs_);
  for (std::size_t j = 0; j < num_pcs_; ++j) {
    double p = 0.0;
    const double* w = projections_.data() + j * dim_;
    for (std::size_t k = 0; k < dim_; ++k) p += w[k] * (vec[k] - mean_[k]);
    proj[j] = p;
  }
  BinaryCode code(code_bits_);
  for (std::size_t b = 0; b < code_bits_; ++b) {
    std::size_t j = dir_[b];
    double x = (proj[j] - mn_[j]) / range_[j];  // normalized to [0,1]
    double y = std::sin(kPi / 2.0 + mode_[b] * kPi * x);
    if (y >= 0.0) code.SetBit(b, true);
  }
  return code;
}

void SpectralHashing::Serialize(BufferWriter* w) const {
  w->PutVarint64(code_bits_);
  w->PutVarint64(dim_);
  w->PutVarint64(num_pcs_);
  for (double v : mean_) w->PutDouble(v);
  for (double v : projections_) w->PutDouble(v);
  for (double v : mn_) w->PutDouble(v);
  for (double v : range_) w->PutDouble(v);
  for (uint32_t v : dir_) w->PutVarint64(v);
  for (uint32_t v : mode_) w->PutVarint64(v);
}

Result<std::unique_ptr<SpectralHashing>> SpectralHashing::Deserialize(
    BufferReader* r) {
  auto model = std::unique_ptr<SpectralHashing>(new SpectralHashing());
  uint64_t bits, dim, npc;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&bits));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&dim));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&npc));
  model->code_bits_ = bits;
  model->dim_ = dim;
  model->num_pcs_ = npc;
  model->mean_.resize(dim);
  model->projections_.resize(npc * dim);
  model->mn_.resize(npc);
  model->range_.resize(npc);
  model->dir_.resize(bits);
  model->mode_.resize(bits);
  for (double& v : model->mean_) HAMMING_RETURN_NOT_OK(r->GetDouble(&v));
  for (double& v : model->projections_) HAMMING_RETURN_NOT_OK(r->GetDouble(&v));
  for (double& v : model->mn_) HAMMING_RETURN_NOT_OK(r->GetDouble(&v));
  for (double& v : model->range_) HAMMING_RETURN_NOT_OK(r->GetDouble(&v));
  for (uint32_t& v : model->dir_) {
    uint64_t tmp;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&tmp));
    v = static_cast<uint32_t>(tmp);
  }
  for (uint32_t& v : model->mode_) {
    uint64_t tmp;
    HAMMING_RETURN_NOT_OK(r->GetVarint64(&tmp));
    v = static_cast<uint32_t>(tmp);
  }
  return model;
}

}  // namespace hamming

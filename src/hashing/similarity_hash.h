// Similarity hash functions H : R^d -> {0,1}^L.
//
// The paper's pipeline (Section 1) maps each high-dimensional tuple to a
// fixed-length binary code with a learned similarity hash; all Hamming
// machinery then operates on the codes. We provide the paper's choice
// (Spectral Hashing [2]) plus the data-independent SimHash [5] used by the
// near-duplicate-detection literature it cites.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "code/binary_code.h"
#include "common/result.h"
#include "dataset/matrix.h"

namespace hamming {

/// \brief Abstract trained similarity hash function.
class SimilarityHash {
 public:
  virtual ~SimilarityHash() = default;

  /// \brief Code length L in bits.
  virtual std::size_t code_bits() const = 0;
  /// \brief Input dimensionality d.
  virtual std::size_t input_dim() const = 0;

  /// \brief Hashes one feature vector into its binary code.
  virtual BinaryCode Hash(std::span<const double> vec) const = 0;

  /// \brief Hashes every row of a matrix.
  std::vector<BinaryCode> HashAll(const FloatMatrix& data) const;

  /// \brief Serializes the trained model (for the MapReduce distributed
  /// cache, which ships the model to every node).
  virtual void Serialize(BufferWriter* w) const = 0;
};

}  // namespace hamming

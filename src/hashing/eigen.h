// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Spectral Hashing needs the top principal components of the training
// sample's covariance matrix. Rather than depending on LAPACK we implement
// the classic Jacobi rotation sweep, which is exact, numerically robust
// for the moderate dimensions involved (d <= 512), and trivially
// verifiable in tests against hand-computed spectra.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dataset/matrix.h"

namespace hamming {

/// \brief Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct EigenDecomposition {
  std::vector<double> eigenvalues;  // descending order
  FloatMatrix eigenvectors;         // column j (stored as row j) pairs with eigenvalues[j]
};

/// \brief Decomposes a symmetric matrix (row-major, n x n) with cyclic
/// Jacobi sweeps until the off-diagonal mass falls below
/// tol * ||A||_F (relative tolerance).
///
/// Eigenvectors are returned row-wise: eigenvectors.Row(j) is the unit
/// eigenvector for eigenvalues[j]. Fails if `a` is not square.
Status JacobiEigenSymmetric(const FloatMatrix& a, EigenDecomposition* out,
                            double tol = 1e-10, int max_sweeps = 30);

/// \brief Sample covariance of the rows of `data` (after centering).
FloatMatrix CovarianceMatrix(const FloatMatrix& data);

}  // namespace hamming

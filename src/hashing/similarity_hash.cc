#include "hashing/similarity_hash.h"

namespace hamming {

std::vector<BinaryCode> SimilarityHash::HashAll(const FloatMatrix& data) const {
  std::vector<BinaryCode> out;
  out.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    out.push_back(Hash(data.Row(i)));
  }
  return out;
}

}  // namespace hamming

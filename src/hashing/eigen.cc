#include "hashing/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hamming {

FloatMatrix CovarianceMatrix(const FloatMatrix& data) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  std::vector<double> mean = data.ColumnMeans();
  FloatMatrix cov(d, d);
  if (n < 2) return cov;
  for (std::size_t i = 0; i < n; ++i) {
    auto row = data.Row(i);
    for (std::size_t a = 0; a < d; ++a) {
      double da = row[a] - mean[a];
      for (std::size_t b = a; b < d; ++b) {
        cov.At(a, b) += da * (row[b] - mean[b]);
      }
    }
  }
  double denom = static_cast<double>(n - 1);
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a; b < d; ++b) {
      double v = cov.At(a, b) / denom;
      cov.At(a, b) = v;
      cov.At(b, a) = v;
    }
  }
  return cov;
}

Status JacobiEigenSymmetric(const FloatMatrix& a_in, EigenDecomposition* out,
                            double tol, int max_sweeps) {
  if (a_in.rows() != a_in.cols()) {
    return Status::InvalidArgument("Jacobi requires a square matrix");
  }
  const std::size_t n = a_in.rows();
  FloatMatrix a = a_in;          // working copy, driven to diagonal
  FloatMatrix v(n, n);           // accumulated rotations, row r = e_r
  for (std::size_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  auto off_diag_norm = [&a, n]() {
    double s = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) s += a.At(p, q) * a.At(p, q);
    }
    return std::sqrt(s);
  };

  // Relative convergence threshold: tiny rotations on a large-norm matrix
  // buy nothing, so the cutoff scales with ||A||_F.
  double fro = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) fro += a.At(p, q) * a.At(p, q);
  }
  const double threshold = std::max(tol * std::sqrt(fro), 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= threshold) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double apq = a.At(p, q);
        if (std::abs(apq) <= threshold / (static_cast<double>(n) + 1)) {
          continue;
        }
        double app = a.At(p, p);
        double aqq = a.At(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply the rotation J(p,q,theta): A <- J^T A J.
        for (std::size_t k = 0; k < n; ++k) {
          double akp = a.At(k, p);
          double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          double apk = a.At(p, k);
          double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J, with V stored row-wise so
        // row k picks up the column rotation.
        for (std::size_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p);
          double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a.At(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  out->eigenvalues.resize(n);
  out->eigenvectors = FloatMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t src = order[j];
    out->eigenvalues[j] = diag[src];
    for (std::size_t k = 0; k < n; ++k) {
      out->eigenvectors.At(j, k) = v.At(k, src);  // column src -> row j
    }
  }
  return Status::OK();
}

}  // namespace hamming

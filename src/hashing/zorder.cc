#include "hashing/zorder.h"

#include <algorithm>
#include <cmath>

namespace hamming {

Result<ZOrderEncoder> ZOrderEncoder::Create(std::size_t input_dim,
                                            std::size_t dims_used,
                                            std::size_t bits_per_dim,
                                            uint64_t seed) {
  if (input_dim == 0 || dims_used == 0 || bits_per_dim == 0) {
    return Status::InvalidArgument("zorder dims must be positive");
  }
  if (dims_used * bits_per_dim > BinaryCode::kMaxBits) {
    return Status::InvalidArgument("z-value longer than kMaxBits");
  }
  ZOrderEncoder enc;
  enc.input_dim_ = input_dim;
  enc.dims_used_ = dims_used;
  enc.bits_per_dim_ = bits_per_dim;
  enc.projection_.resize(dims_used * input_dim);
  enc.shift_.resize(dims_used);
  Rng rng(seed);
  for (double& v : enc.projection_) v = rng.Gaussian();
  for (double& v : enc.shift_) v = rng.UniformReal(0.0, 1.0);
  enc.mn_.assign(dims_used, 0.0);
  enc.range_.assign(dims_used, 1.0);
  return enc;
}

void ZOrderEncoder::Fit(const FloatMatrix& sample) {
  std::vector<double> mn(dims_used_, 1e300), mx(dims_used_, -1e300);
  for (std::size_t i = 0; i < sample.rows(); ++i) {
    auto row = sample.Row(i);
    for (std::size_t j = 0; j < dims_used_; ++j) {
      const double* w = projection_.data() + j * input_dim_;
      double p = 0.0;
      for (std::size_t k = 0; k < input_dim_; ++k) p += w[k] * row[k];
      mn[j] = std::min(mn[j], p);
      mx[j] = std::max(mx[j], p);
    }
  }
  mn_ = mn;
  range_.resize(dims_used_);
  for (std::size_t j = 0; j < dims_used_; ++j) {
    range_[j] = std::max(mx[j] - mn[j], 1e-12);
  }
}

BinaryCode ZOrderEncoder::Encode(std::span<const double> vec) const {
  const uint64_t levels = 1ull << bits_per_dim_;
  std::vector<uint64_t> cell(dims_used_);
  for (std::size_t j = 0; j < dims_used_; ++j) {
    const double* w = projection_.data() + j * input_dim_;
    double p = 0.0;
    for (std::size_t k = 0; k < input_dim_; ++k) p += w[k] * vec[k];
    // Normalize into [0,1), apply the LSB random shift modulo 1.
    double x = (p - mn_[j]) / range_[j] + shift_[j];
    x -= std::floor(x);
    uint64_t q = static_cast<uint64_t>(x * static_cast<double>(levels));
    if (q >= levels) q = levels - 1;
    cell[j] = q;
  }
  // Interleave: output bit index b = level * dims_used_ + dim, taking the
  // most significant quantized bit of every dimension first.
  BinaryCode out(code_bits());
  std::size_t pos = 0;
  for (std::size_t level = 0; level < bits_per_dim_; ++level) {
    for (std::size_t j = 0; j < dims_used_; ++j) {
      bool bit = (cell[j] >> (bits_per_dim_ - 1 - level)) & 1;
      if (bit) out.SetBit(pos, true);
      ++pos;
    }
  }
  return out;
}

}  // namespace hamming

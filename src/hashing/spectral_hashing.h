// Spectral Hashing (Weiss, Torralba, Fergus — NIPS'08), the hash function
// the paper's experiments train (Section 6: "We choose the state-of-the-art
// Spectral Hashing as the hash function").
//
// Training: PCA of a sample, a uniform-distribution fit on each principal
// direction, and selection of the L analytical Laplacian eigenfunctions
// with the smallest frequencies. Hashing: project, evaluate the selected
// sinusoidal eigenfunctions, threshold at zero.
#pragma once

#include <memory>

#include "common/result.h"
#include "hashing/similarity_hash.h"

namespace hamming {

/// \brief Training options for Spectral Hashing.
struct SpectralHashingOptions {
  std::size_t code_bits = 32;
  /// Modes considered per principal direction during eigenfunction
  /// selection; the original code uses code_bits + 1.
  std::size_t max_modes_per_direction = 0;  // 0 = code_bits + 1
};

/// \brief A trained Spectral Hashing model.
class SpectralHashing final : public SimilarityHash {
 public:
  /// \brief Trains on a sample of the data distribution.
  ///
  /// Fails when the sample has fewer than two rows or when code_bits
  /// exceeds BinaryCode::kMaxBits.
  static Result<std::unique_ptr<SpectralHashing>> Train(
      const FloatMatrix& sample, const SpectralHashingOptions& opts);

  std::size_t code_bits() const override { return code_bits_; }
  std::size_t input_dim() const override { return dim_; }

  BinaryCode Hash(std::span<const double> vec) const override;

  void Serialize(BufferWriter* w) const override;
  static Result<std::unique_ptr<SpectralHashing>> Deserialize(BufferReader* r);

 private:
  SpectralHashing() = default;

  std::size_t code_bits_ = 0;
  std::size_t dim_ = 0;
  std::size_t num_pcs_ = 0;          // principal directions kept
  std::vector<double> mean_;          // centering vector, size dim_
  std::vector<double> projections_;   // num_pcs_ x dim_, row-major
  std::vector<double> mn_;            // per-direction range minimum
  std::vector<double> range_;         // per-direction range width
  // Selected eigenfunctions: bit b uses direction dir_[b], mode mode_[b].
  std::vector<uint32_t> dir_;
  std::vector<uint32_t> mode_;
};

}  // namespace hamming

// SimHash: random-hyperplane similarity hashing (Charikar [5]).
//
// The data-independent alternative to Spectral Hashing: bit b is the sign
// of the projection onto a random Gaussian hyperplane. Used by the
// near-duplicate-detection workloads the paper cites [4] and as an
// ablation against the learned hash.
#pragma once

#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "hashing/similarity_hash.h"

namespace hamming {

/// \brief Random-hyperplane hash; requires no training data, only the
/// input dimensionality and a seed.
class SimHash final : public SimilarityHash {
 public:
  static Result<std::unique_ptr<SimHash>> Create(std::size_t input_dim,
                                                 std::size_t code_bits,
                                                 uint64_t seed = 42);

  std::size_t code_bits() const override { return code_bits_; }
  std::size_t input_dim() const override { return dim_; }

  BinaryCode Hash(std::span<const double> vec) const override;

  void Serialize(BufferWriter* w) const override;
  static Result<std::unique_ptr<SimHash>> Deserialize(BufferReader* r);

 private:
  SimHash() = default;

  std::size_t code_bits_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> hyperplanes_;  // code_bits_ x dim_, row-major
};

}  // namespace hamming

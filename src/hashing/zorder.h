// Z-order (Morton) encoding of high-dimensional vectors.
//
// The LSB-Tree baseline (Tao et al. [26], Table 5) maps each point to a
// one-dimensional Z-value by interleaving the bits of its quantized,
// randomly-shifted coordinates, then indexes the Z-values in a B-tree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "code/binary_code.h"
#include "common/result.h"
#include "common/rng.h"
#include "dataset/matrix.h"

namespace hamming {

/// \brief Quantizes and bit-interleaves vectors into Z-values.
class ZOrderEncoder {
 public:
  /// \param dims_used number of (leading) dimensions interleaved; high-d
  ///   inputs are first reduced by random projection to this many dims.
  /// \param bits_per_dim quantization resolution per dimension.
  static Result<ZOrderEncoder> Create(std::size_t input_dim,
                                      std::size_t dims_used,
                                      std::size_t bits_per_dim,
                                      uint64_t seed = 42);

  /// \brief Fits quantization ranges on a sample (min/max per projected
  /// dimension, with the random shift LSB-trees apply).
  void Fit(const FloatMatrix& sample);

  /// \brief Z-value of a vector: dims_used * bits_per_dim interleaved bits.
  BinaryCode Encode(std::span<const double> vec) const;

  std::size_t code_bits() const { return dims_used_ * bits_per_dim_; }

 private:
  ZOrderEncoder() = default;

  std::size_t input_dim_ = 0;
  std::size_t dims_used_ = 0;
  std::size_t bits_per_dim_ = 0;
  std::vector<double> projection_;  // dims_used x input_dim
  std::vector<double> shift_;       // random shift per projected dim
  std::vector<double> mn_, range_;  // fitted quantization box
};

}  // namespace hamming

#include "hashing/simhash.h"

namespace hamming {

Result<std::unique_ptr<SimHash>> SimHash::Create(std::size_t input_dim,
                                                 std::size_t code_bits,
                                                 uint64_t seed) {
  if (code_bits == 0 || code_bits > BinaryCode::kMaxBits) {
    return Status::InvalidArgument("invalid code_bits");
  }
  if (input_dim == 0) {
    return Status::InvalidArgument("input_dim must be positive");
  }
  auto h = std::unique_ptr<SimHash>(new SimHash());
  h->code_bits_ = code_bits;
  h->dim_ = input_dim;
  h->hyperplanes_.resize(code_bits * input_dim);
  Rng rng(seed);
  for (double& v : h->hyperplanes_) v = rng.Gaussian();
  return h;
}

BinaryCode SimHash::Hash(std::span<const double> vec) const {
  BinaryCode code(code_bits_);
  for (std::size_t b = 0; b < code_bits_; ++b) {
    const double* w = hyperplanes_.data() + b * dim_;
    double dot = 0.0;
    for (std::size_t k = 0; k < dim_; ++k) dot += w[k] * vec[k];
    if (dot >= 0.0) code.SetBit(b, true);
  }
  return code;
}

void SimHash::Serialize(BufferWriter* w) const {
  w->PutVarint64(code_bits_);
  w->PutVarint64(dim_);
  for (double v : hyperplanes_) w->PutDouble(v);
}

Result<std::unique_ptr<SimHash>> SimHash::Deserialize(BufferReader* r) {
  auto h = std::unique_ptr<SimHash>(new SimHash());
  uint64_t bits, dim;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&bits));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&dim));
  h->code_bits_ = bits;
  h->dim_ = dim;
  h->hyperplanes_.resize(bits * dim);
  for (double& v : h->hyperplanes_) HAMMING_RETURN_NOT_OK(r->GetDouble(&v));
  return h;
}

}  // namespace hamming

#include "dataset/sampling.h"

namespace hamming {

std::vector<std::size_t> ReservoirSampleIndices(std::size_t n, std::size_t k,
                                                Rng* rng) {
  std::vector<std::size_t> out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < k) {
      out.push_back(i);
    } else {
      std::size_t j = static_cast<std::size_t>(
          rng->UniformInt(0, static_cast<int64_t>(i)));
      if (j < k) out[j] = i;
    }
  }
  return out;
}

}  // namespace hamming

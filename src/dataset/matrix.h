// Dense row-major float matrix: the container for high-dimensional
// feature vectors (image descriptors, topic vectors) before hashing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hamming {

/// \brief A dense n x d row-major matrix of doubles; row i is tuple t_i's
/// feature vector in R^d.
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// \brief Read-only view of row r.
  std::span<const double> Row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  /// \brief Mutable view of row r.
  std::span<double> MutableRow(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// \brief Appends a row; its length must equal cols() (or set cols on
  /// the first append).
  Status AppendRow(std::span<const double> row);

  /// \brief Selects the given rows into a new matrix.
  FloatMatrix GatherRows(const std::vector<std::size_t>& ids) const;

  /// \brief Per-column mean of all rows.
  std::vector<double> ColumnMeans() const;

  /// \brief Squared Euclidean distance between rows of (possibly
  /// different) matrices.
  static double SquaredL2(std::span<const double> a, std::span<const double> b);
  static double L2(std::span<const double> a, std::span<const double> b);

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hamming

// The paper's "×s" synthetic scale-up (Section 6).
//
// To grow a dataset while preserving its distribution, the paper sorts k
// copies of the data, one per dimension, in ascending frequency order of
// that dimension's values; for each original tuple t it emits a new tuple
// whose j-th component is the next-larger value of t_j in the j-th sorted
// copy (or t_j itself when t_j is the maximum). Repeating the derivation
// s-1 times yields a dataset of s times the original size.
#pragma once

#include <cstddef>

#include "dataset/matrix.h"

namespace hamming {

/// \brief Returns a dataset of size base.rows() * factor whose first
/// base.rows() rows are `base` and whose remaining rows are derived by the
/// paper's per-dimension successor scheme.
FloatMatrix ScaleDataset(const FloatMatrix& base, std::size_t factor);

}  // namespace hamming

#include "dataset/scale.h"

#include <algorithm>
#include <map>
#include <vector>

namespace hamming {

FloatMatrix ScaleDataset(const FloatMatrix& base, std::size_t factor) {
  const std::size_t n = base.rows();
  const std::size_t d = base.cols();
  FloatMatrix out(n * factor, d);
  for (std::size_t i = 0; i < n; ++i) {
    auto src = base.Row(i);
    auto dst = out.MutableRow(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  if (factor <= 1) return out;

  // Per-dimension successor maps: sorted distinct values of the column,
  // ordered (per the paper) by ascending frequency, then value. The
  // "first value larger than t_j" lookup walks this ordering.
  //
  // We materialize, for each column, the sorted-by-(frequency,value) list
  // and a value -> next-value map.
  std::vector<std::map<double, double>> successor(d);
  for (std::size_t j = 0; j < d; ++j) {
    std::map<double, std::size_t> freq;
    for (std::size_t i = 0; i < n; ++i) ++freq[base.At(i, j)];
    std::vector<std::pair<double, std::size_t>> vals(freq.begin(), freq.end());
    std::sort(vals.begin(), vals.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    auto& succ = successor[j];
    for (std::size_t k = 0; k < vals.size(); ++k) {
      double next = (k + 1 < vals.size()) ? vals[k + 1].first : vals[k].first;
      succ[vals[k].first] = next;
    }
  }

  // Generation g derives from generation g-1.
  for (std::size_t g = 1; g < factor; ++g) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t src_row = (g - 1) * n + i;
      const std::size_t dst_row = g * n + i;
      for (std::size_t j = 0; j < d; ++j) {
        double v = out.At(src_row, j);
        auto it = successor[j].find(v);
        if (it != successor[j].end()) {
          out.At(dst_row, j) = it->second;
        } else {
          // Derived value not present in the original column: take the
          // first original value strictly larger, or keep v at the top.
          auto up = successor[j].upper_bound(v);
          out.At(dst_row, j) = up != successor[j].end() ? up->first : v;
        }
      }
    }
  }
  return out;
}

}  // namespace hamming

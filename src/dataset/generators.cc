#include "dataset/generators.h"

#include <cmath>
#include <vector>

namespace hamming {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kNusWide:
      return "NUS-WIDE";
    case DatasetKind::kFlickr:
      return "Flickr";
    case DatasetKind::kDbpedia:
      return "DBPedia";
  }
  return "Unknown";
}

std::size_t DatasetDimension(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kNusWide:
      return 225;
    case DatasetKind::kFlickr:
      return 512;
    case DatasetKind::kDbpedia:
      return 250;
  }
  return 0;
}

namespace {

// Zipf-skewed mixing weights: a few dominant clusters, a long tail.
std::vector<double> ZipfWeights(std::size_t k, double exponent) {
  std::vector<double> w(k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    sum += w[i];
  }
  for (double& x : w) x /= sum;
  return w;
}

std::size_t SampleCategorical(Rng* rng, const std::vector<double>& w) {
  double u = rng->UniformReal(0.0, 1.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    acc += w[i];
    if (u <= acc) return i;
  }
  return w.size() - 1;
}

FloatMatrix GenerateMixture(std::size_t n, std::size_t d,
                            const GeneratorOptions& opts, double zipf_exp,
                            bool uniform_weights, Rng* rng) {
  // Cluster centers: per-dimension scales vary (color-moment channels and
  // GIST bands have very different dynamic ranges in the real data).
  Rng center_rng(opts.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<double> dim_scale(d);
  for (std::size_t j = 0; j < d; ++j) {
    dim_scale[j] = std::exp(center_rng.Gaussian(0.0, 0.6));
  }
  FloatMatrix centers(opts.num_clusters, d);
  for (std::size_t c = 0; c < opts.num_clusters; ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      centers.At(c, j) =
          center_rng.Gaussian(0.0, opts.center_scale) * dim_scale[j];
    }
  }
  // Dataset rows are Zipf-skewed over themes; query workloads sample
  // themes uniformly (an arbitrary query image is not biased toward the
  // collection's dominant themes).
  std::vector<double> weights =
      uniform_weights
          ? std::vector<double>(opts.num_clusters, 1.0 / opts.num_clusters)
          : ZipfWeights(opts.num_clusters, zipf_exp);
  // Per-cluster spread is log-normal: real photo collections mix tight
  // near-duplicate clumps (re-uploads, bursts) with loosely themed
  // clusters, and both the bucket selectivity of the hash-table indexes
  // and the FLSSeq sharing of the HA-Index depend on that mix.
  std::vector<double> cluster_spread(opts.num_clusters);
  for (double& s : cluster_spread) {
    s = opts.cluster_spread * std::exp(center_rng.Gaussian(0.0, 0.8));
  }

  FloatMatrix out(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = SampleCategorical(rng, weights);
    for (std::size_t j = 0; j < d; ++j) {
      out.At(i, j) = centers.At(c, j) +
                     rng->Gaussian(0.0, cluster_spread[c] * dim_scale[j]);
    }
  }
  return out;
}

FloatMatrix GenerateTopicVectors(std::size_t n, std::size_t d,
                                 const GeneratorOptions& opts, Rng* rng) {
  // Prototype topic profiles; each document mixes a prototype's Dirichlet
  // concentration so documents about the same subject share dominant
  // topics — the clustering LDA exhibits on real DBPedia text.
  Rng proto_rng(opts.seed ^ 0xc2b2ae3d27d4eb4full);
  std::size_t num_protos = opts.num_clusters;
  std::vector<std::vector<double>> protos(num_protos);
  std::vector<double> weights = ZipfWeights(num_protos, 1.0);
  for (auto& p : protos) p = proto_rng.Dirichlet(d, 0.05);

  FloatMatrix out(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = SampleCategorical(rng, weights);
    std::vector<double> doc = rng->Dirichlet(d, 0.02);
    // Blend prototype (shared structure) with the per-document draw.
    double sum = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      double v = 0.7 * protos[c][j] + 0.3 * doc[j];
      out.At(i, j) = v;
      sum += v;
    }
    for (std::size_t j = 0; j < d; ++j) out.At(i, j) /= sum;
  }
  return out;
}

FloatMatrix GenerateImpl(DatasetKind kind, std::size_t n,
                         const GeneratorOptions& opts, uint64_t seed,
                         bool uniform_weights) {
  Rng rng(seed);
  std::size_t d = DatasetDimension(kind);
  switch (kind) {
    case DatasetKind::kNusWide:
      return GenerateMixture(n, d, opts, /*zipf_exp=*/0.8, uniform_weights,
                             &rng);
    case DatasetKind::kFlickr: {
      GeneratorOptions o = opts;
      o.num_clusters = opts.num_clusters * 2;  // richer visual vocabulary
      return GenerateMixture(n, d, o, /*zipf_exp=*/1.1, uniform_weights,
                             &rng);
    }
    case DatasetKind::kDbpedia:
      return GenerateTopicVectors(n, d, opts, &rng);
  }
  return FloatMatrix();
}

}  // namespace

FloatMatrix GenerateDataset(DatasetKind kind, std::size_t n,
                            const GeneratorOptions& opts) {
  return GenerateImpl(kind, n, opts, opts.seed, /*uniform_weights=*/false);
}

FloatMatrix GenerateQueries(DatasetKind kind, std::size_t n,
                            const GeneratorOptions& opts) {
  return GenerateImpl(kind, n, opts, opts.seed ^ 0xdeadbeefcafef00dull,
                      /*uniform_weights=*/true);
}

}  // namespace hamming

#include "dataset/matrix.h"

#include <cmath>

namespace hamming {

Status FloatMatrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    return Status::InvalidArgument("row length does not match matrix width");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
  return Status::OK();
}

FloatMatrix FloatMatrix::GatherRows(const std::vector<std::size_t>& ids) const {
  FloatMatrix out(ids.size(), cols_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto src = Row(ids[i]);
    auto dst = out.MutableRow(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

std::vector<double> FloatMatrix::ColumnMeans() const {
  std::vector<double> mean(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto row = Row(r);
    for (std::size_t c = 0; c < cols_; ++c) mean[c] += row[c];
  }
  if (rows_ > 0) {
    for (double& m : mean) m /= static_cast<double>(rows_);
  }
  return mean;
}

double FloatMatrix::SquaredL2(std::span<const double> a,
                              std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double FloatMatrix::L2(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredL2(a, b));
}

}  // namespace hamming

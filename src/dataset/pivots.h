// Gray-order pivot selection for load-balanced range partitioning
// (Section 5.1).
//
// The MapReduce plans partition binary codes by Gray-order ranges so that
// (a) each reducer receives ~the same number of tuples even under skew and
// (b) codes that share FLSSeqs land in the same partition. Pivots are the
// equi-depth quantiles of a sample's Gray ranks.
#pragma once

#include <cstddef>
#include <vector>

#include "code/binary_code.h"

namespace hamming {

/// \brief Equi-depth partitioner over Gray-ordered binary codes.
class GrayPivots {
 public:
  GrayPivots() = default;

  /// \brief Selects num_partitions-1 pivot ranks as the equi-depth
  /// quantiles of the sample's Gray ranks.
  static GrayPivots FromSample(const std::vector<BinaryCode>& sample,
                               std::size_t num_partitions);

  /// \brief Partition id of a code: the range [pivot_{m}, pivot_{m+1})
  /// its Gray rank falls into (binary search).
  std::size_t PartitionOf(const BinaryCode& code) const;

  std::size_t num_partitions() const { return num_partitions_; }
  const std::vector<BinaryCode>& pivot_ranks() const { return pivot_ranks_; }

  void Serialize(BufferWriter* w) const;
  static Status Deserialize(BufferReader* r, GrayPivots* out);

 private:
  std::size_t num_partitions_ = 1;
  std::vector<BinaryCode> pivot_ranks_;  // sorted Gray ranks, size P-1
};

}  // namespace hamming

// Synthetic stand-ins for the paper's three real datasets.
//
// The paper evaluates on NUS-WIDE (269,648 images, 225-d block-wise color
// moments), a 1M-image Flickr crawl (512-d GIST), and 1M DBPedia documents
// (250 LDA topics). We cannot ship those corpora, so each generator
// produces feature vectors with the statistical traits that matter to
// Hamming search after hashing: clustered mass (images of similar scenes
// map to nearby codes), per-dimension scale differences, and — for the
// topic model — sparse simplex vectors. See DESIGN.md §1 for the
// substitution argument.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "dataset/matrix.h"

namespace hamming {

/// \brief Which real dataset a generator mimics.
enum class DatasetKind {
  kNusWide,  // 225-d color moments, moderate clustering
  kFlickr,   // 512-d GIST, heavier-tailed, more clusters
  kDbpedia,  // 250-d LDA topic proportions, sparse simplex
};

const char* DatasetKindName(DatasetKind kind);

/// \brief Dimensionality the paper reports for each dataset.
std::size_t DatasetDimension(DatasetKind kind);

/// \brief Parameters for the Gaussian-mixture feature generator.
struct GeneratorOptions {
  std::size_t num_clusters = 64;
  double cluster_spread = 0.15;   // within-cluster stddev (relative)
  double center_scale = 1.0;      // spread of cluster centers
  uint64_t seed = 42;
};

/// \brief Generates `n` feature vectors mimicking `kind`.
///
/// NUS-WIDE/Flickr draw from a Gaussian mixture whose mixing weights are
/// Zipf-skewed (real image collections are dominated by a few visual
/// themes); DBPedia draws sparse Dirichlet topic vectors around a set of
/// topic-profile prototypes.
FloatMatrix GenerateDataset(DatasetKind kind, std::size_t n,
                            const GeneratorOptions& opts = {});

/// \brief Draws `n` query vectors from the same distribution (fresh seed
/// offset so queries are not dataset rows).
FloatMatrix GenerateQueries(DatasetKind kind, std::size_t n,
                            const GeneratorOptions& opts = {});

}  // namespace hamming

// Reservoir sampling (Vitter [22]), used by the MapReduce preprocessing
// phase to draw the sample that trains the hash function and selects
// partition pivots.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hamming {

/// \brief Draws a uniform sample of `k` indices from [0, n) in one pass
/// (Algorithm R). Returns all indices when k >= n.
std::vector<std::size_t> ReservoirSampleIndices(std::size_t n, std::size_t k,
                                                Rng* rng);

/// \brief Streaming reservoir over items of type T.
template <typename T>
class Reservoir {
 public:
  Reservoir(std::size_t capacity, Rng* rng)
      : capacity_(capacity), rng_(rng) {}

  /// \brief Offers one item to the reservoir.
  void Offer(const T& item) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(item);
    } else {
      std::size_t j = static_cast<std::size_t>(
          rng_->UniformInt(0, static_cast<int64_t>(seen_) - 1));
      if (j < capacity_) sample_[j] = item;
    }
  }

  const std::vector<T>& sample() const { return sample_; }
  std::size_t seen() const { return seen_; }

 private:
  std::size_t capacity_;
  Rng* rng_;
  std::size_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace hamming

#include "dataset/pivots.h"

#include <algorithm>

#include "code/gray.h"

namespace hamming {

GrayPivots GrayPivots::FromSample(const std::vector<BinaryCode>& sample,
                                  std::size_t num_partitions) {
  GrayPivots out;
  out.num_partitions_ = std::max<std::size_t>(1, num_partitions);
  if (out.num_partitions_ == 1 || sample.empty()) return out;

  std::vector<BinaryCode> ranks;
  ranks.reserve(sample.size());
  for (const auto& c : sample) ranks.push_back(GrayRank(c));
  std::sort(ranks.begin(), ranks.end());

  out.pivot_ranks_.reserve(out.num_partitions_ - 1);
  for (std::size_t m = 1; m < out.num_partitions_; ++m) {
    std::size_t idx = m * ranks.size() / out.num_partitions_;
    if (idx >= ranks.size()) idx = ranks.size() - 1;
    out.pivot_ranks_.push_back(ranks[idx]);
  }
  return out;
}

std::size_t GrayPivots::PartitionOf(const BinaryCode& code) const {
  if (pivot_ranks_.empty()) return 0;
  BinaryCode rank = GrayRank(code);
  // First pivot > rank; the code belongs to that pivot's partition.
  auto it = std::upper_bound(pivot_ranks_.begin(), pivot_ranks_.end(), rank);
  return static_cast<std::size_t>(it - pivot_ranks_.begin());
}

void GrayPivots::Serialize(BufferWriter* w) const {
  w->PutVarint64(num_partitions_);
  w->PutVarint64(pivot_ranks_.size());
  for (const auto& p : pivot_ranks_) p.Serialize(w);
}

Status GrayPivots::Deserialize(BufferReader* r, GrayPivots* out) {
  uint64_t np, k;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&np));
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&k));
  out->num_partitions_ = static_cast<std::size_t>(np);
  out->pivot_ranks_.resize(k);
  for (auto& p : out->pivot_ranks_) {
    HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(r, &p));
  }
  return Status::OK();
}

}  // namespace hamming

// Binary serialization used by the MapReduce runtime.
//
// Every record that crosses the map->reduce shuffle boundary is encoded
// through this layer, so the byte counts the runtime reports as "shuffle
// cost" reflect real serialized sizes (varint-compressed integers, length-
// prefixed strings), matching the role Hadoop's Writable layer plays in the
// paper's cluster.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace hamming {

/// \brief Appends primitive values to a growable byte buffer.
class BufferWriter {
 public:
  BufferWriter() = default;

  /// \brief Appends a little-endian fixed-width integer.
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// \brief Appends a LEB128 varint.
  void PutVarint64(uint64_t v);
  /// \brief Varint-encodes a signed value with zigzag.
  void PutVarint64Signed(int64_t v);
  /// \brief Appends an IEEE-754 double (8 bytes).
  void PutDouble(double v);
  /// \brief Appends length-prefixed bytes.
  void PutBytes(const void* data, std::size_t len);
  /// \brief Appends a length-prefixed string.
  void PutString(const std::string& s);
  /// \brief Appends raw bytes with no length prefix.
  void PutRaw(const void* data, std::size_t len);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Reads primitive values back out of a byte buffer.
///
/// All getters return a Status so malformed buffers surface as IOError
/// instead of undefined behaviour.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  Status GetFixed32(uint32_t* out);
  Status GetFixed64(uint64_t* out);
  Status GetVarint64(uint64_t* out);
  Status GetVarint64Signed(int64_t* out);
  Status GetDouble(double* out);
  Status GetString(std::string* out);
  Status GetBytes(std::vector<uint8_t>* out);
  Status GetRaw(void* out, std::size_t len);

  std::size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace hamming

#include "common/threadpool.h"

namespace hamming {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareConcurrency();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(wrapped));
  }
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!(tasks_.empty() && in_flight_ == 0)) idle_cv_.Wait(&mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(&mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(pool->Submit([i, &fn] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace hamming

#include "common/memtrack.h"

#include <cstdio>

namespace hamming {

std::string FormatBytes(std::size_t bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string MemoryBreakdown::ToString() const {
  std::string out = FormatBytes(total());
  out += " (internal ";
  out += FormatBytes(internal_bytes);
  out += " / leaf ";
  out += FormatBytes(leaf_bytes);
  out += ")";
  return out;
}

}  // namespace hamming

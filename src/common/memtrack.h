// Index memory accounting.
//
// Table 4 of the paper compares index memory footprints (MB). Each index
// reports its heap usage through MemoryBreakdown so the bench harness can
// print the same columns.
#pragma once

#include <cstddef>
#include <string>

namespace hamming {

/// \brief Byte counts for the structural parts of an index.
struct MemoryBreakdown {
  /// Bytes spent on internal (non-leaf) structure: nodes, edges, tables.
  std::size_t internal_bytes = 0;
  /// Bytes spent on leaf-level payload: stored codes, tuple-id hash tables.
  std::size_t leaf_bytes = 0;

  std::size_t total() const { return internal_bytes + leaf_bytes; }

  MemoryBreakdown& operator+=(const MemoryBreakdown& other) {
    internal_bytes += other.internal_bytes;
    leaf_bytes += other.leaf_bytes;
    return *this;
  }

  /// \brief "12.3MB (internal 4.1MB / leaf 8.2MB)" style rendering.
  std::string ToString() const;
};

/// \brief Pretty-prints a byte count ("473B", "1.2KB", "34.5MB").
std::string FormatBytes(std::size_t bytes);

}  // namespace hamming

// Forwarding shim: MemoryBreakdown/FormatBytes moved to
// observability/memtrack.h when the metrics/tracing layer was introduced.
// Include that header directly in new code; this shim keeps existing
// includes working for one release.
#pragma once

#include "observability/memtrack.h"

namespace hamming {

using obs::FormatBytes;
using obs::MemoryBreakdown;

}  // namespace hamming

// Forwarding shim: Stopwatch moved to observability/stopwatch.h when the
// metrics/tracing layer was introduced. Include that header directly in
// new code; this shim keeps existing includes working for one release.
#pragma once

#include "observability/stopwatch.h"

namespace hamming {

using obs::Stopwatch;

}  // namespace hamming

// Fixed-size thread pool used by the MapReduce cluster simulator.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hamming {

/// \brief A fixed-size pool of worker threads executing queued tasks.
///
/// Tasks are std::function<void()>; Submit returns a future that becomes
/// ready when the task finishes. The destructor drains outstanding tasks.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task for execution.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Blocks until every task submitted so far has completed.
  void WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Runs fn(i) for i in [0, n) across the pool and waits for all.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace hamming

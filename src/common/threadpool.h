// Fixed-size thread pool used by the MapReduce cluster simulator, plus
// the cooperative cancellation primitive its tasks use. Built on the
// thread-safety-annotated primitives in common/sync.h so lock/guard
// relationships are checked under -Wthread-safety.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <vector>

#include "common/sync.h"

namespace hamming {

/// \brief Cooperative cancellation flag shared between a running task and
/// whoever may want to stop it (e.g. the MapReduce runner cancelling the
/// losing attempt of a speculated task).
///
/// The task polls cancelled() between units of work and sleeps through
/// SleepFor so a Cancel wakes it immediately; Cancel may be called from
/// any thread, any number of times.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// \brief Requests cancellation and wakes any SleepFor in progress.
  void Cancel() HAMMING_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      cancelled_.store(true, std::memory_order_release);
    }
    cv_.NotifyAll();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// \brief Cancellable sleep: blocks for `seconds` or until Cancel.
  /// Returns false if the token was cancelled before the time elapsed.
  bool SleepFor(double seconds) HAMMING_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds));
    MutexLock lock(&mu_);
    while (!cancelled_.load(std::memory_order_acquire)) {
      if (cv_.WaitUntil(&mu_, deadline)) break;  // deadline reached
    }
    return !cancelled_.load(std::memory_order_acquire);
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  // Atomic so cancelled() stays a lock-free poll; Cancel still flips it
  // under mu_ so a SleepFor cannot miss the wakeup.
  std::atomic<bool> cancelled_{false};
};

/// \brief A fixed-size pool of worker threads executing queued tasks.
///
/// Tasks are std::function<void()>; Submit returns a future that becomes
/// ready when the task finishes. The destructor drains outstanding tasks.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task for execution.
  std::future<void> Submit(std::function<void()> task) HAMMING_EXCLUDES(mu_);

  /// \brief Blocks until every task submitted so far has completed.
  void WaitIdle() HAMMING_EXCLUDES(mu_);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() HAMMING_EXCLUDES(mu_);

  std::vector<Thread> workers_;
  Mutex mu_;
  // The CondVars are deliberately unguarded: notify calls happen after
  // the lock is dropped (cheaper wakeups), which is always sound.
  CondVar cv_;
  CondVar idle_cv_;
  std::queue<std::packaged_task<void()>> tasks_ HAMMING_GUARDED_BY(mu_);
  std::size_t in_flight_ HAMMING_GUARDED_BY(mu_) = 0;
  bool stop_ HAMMING_GUARDED_BY(mu_) = false;
};

/// \brief Runs fn(i) for i in [0, n) across the pool and waits for all.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace hamming

// Fixed-size thread pool used by the MapReduce cluster simulator, plus
// the cooperative cancellation primitive its tasks use.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hamming {

/// \brief Cooperative cancellation flag shared between a running task and
/// whoever may want to stop it (e.g. the MapReduce runner cancelling the
/// losing attempt of a speculated task).
///
/// The task polls cancelled() between units of work and sleeps through
/// SleepFor so a Cancel wakes it immediately; Cancel may be called from
/// any thread, any number of times.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// \brief Requests cancellation and wakes any SleepFor in progress.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// \brief Cancellable sleep: blocks for `seconds` or until Cancel.
  /// Returns false if the token was cancelled before the time elapsed.
  bool SleepFor(double seconds) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock,
                 std::chrono::duration<double>(seconds),
                 [this] { return cancelled_.load(std::memory_order_acquire); });
    return !cancelled_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> cancelled_{false};
};

/// \brief A fixed-size pool of worker threads executing queued tasks.
///
/// Tasks are std::function<void()>; Submit returns a future that becomes
/// ready when the task finishes. The destructor drains outstanding tasks.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task for execution.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Blocks until every task submitted so far has completed.
  void WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Runs fn(i) for i in [0, n) across the pool and waits for all.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace hamming

#include "common/rng.h"

namespace hamming {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

uint64_t Rng::NextWord() { return engine_(); }

std::vector<double> Rng::Dirichlet(std::size_t dim, double alpha) {
  std::gamma_distribution<double> gamma(alpha, 1.0);
  std::vector<double> out(dim);
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    out[i] = gamma(engine_);
    sum += out[i];
  }
  if (sum <= 0.0) sum = 1.0;
  for (double& x : out) x /= sum;
  return out;
}

}  // namespace hamming

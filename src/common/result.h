// Result<T>: value-or-Status, modeled on arrow::Result.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hamming {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
///
/// [[nodiscard]] for the same reason Status is: a dropped Result is a
/// swallowed error (and a discarded value).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The failure status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// \brief Assigns the value of a Result expression to `lhs`, returning the
/// status to the caller on failure.
#define HAMMING_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto HAMMING_CONCAT_(result_, __LINE__) = (rexpr); \
  if (!HAMMING_CONCAT_(result_, __LINE__).ok())      \
    return HAMMING_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(HAMMING_CONCAT_(result_, __LINE__)).ValueOrDie()

#define HAMMING_CONCAT_IMPL_(a, b) a##b
#define HAMMING_CONCAT_(a, b) HAMMING_CONCAT_IMPL_(a, b)

}  // namespace hamming

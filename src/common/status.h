// Arrow/RocksDB-style status object for error handling without exceptions.
//
// All fallible public APIs in hamming-db return either a Status or a
// Result<T> (see result.h). Exceptions are not thrown across library
// boundaries.
#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace hamming {

/// \brief Coarse error taxonomy used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,        // lookup of a non-existent key / tuple id
  kIndexError = 3,      // structural index invariant violated
  kOutOfRange = 4,      // position or length outside valid bounds
  kNotImplemented = 5,
  kIOError = 6,
  kExecutionError = 7,  // runtime failure inside a MapReduce job
  kUnknownError = 8,
  kResourceExhausted = 9,   // admission control shed the request
  kDeadlineExceeded = 10,   // request expired before (or during) service
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or a code plus message.
///
/// Status is cheap to copy in the OK case (single pointer) and carries a
/// heap-allocated message otherwise, mirroring the Arrow design.
///
/// [[nodiscard]]: a dropped Status is a swallowed error, so discarding
/// one is a compile-time warning (and an error under -Werror builds).
/// The rare deliberate drop must say so: (void)expr plus a comment.
class [[nodiscard]] Status {
 public:
  /// Creates an OK status.
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(StatusCode code, std::string msg)
      : state_(new State{code, std::move(msg)}) {}

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    std::swap(state_, other.state_);
    return *this;
  }

  /// \brief Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status UnknownError(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsIndexError() const { return code() == StatusCode::kIndexError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsExecutionError() const {
    return code() == StatusCode::kExecutionError;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  State* state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

/// \brief Propagates a non-OK status to the caller.
#define HAMMING_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::hamming::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace hamming

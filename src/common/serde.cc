#include "common/serde.h"

namespace hamming {

void BufferWriter::PutFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void BufferWriter::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void BufferWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BufferWriter::PutVarint64Signed(int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint64(zz);
}

void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BufferWriter::PutBytes(const void* data, std::size_t len) {
  PutVarint64(len);
  PutRaw(data, len);
}

void BufferWriter::PutString(const std::string& s) {
  PutBytes(s.data(), s.size());
}

void BufferWriter::PutRaw(const void* data, std::size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

Status BufferReader::GetFixed32(uint32_t* out) {
  if (remaining() < 4) return Status::IOError("truncated fixed32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status BufferReader::GetFixed64(uint64_t* out) {
  if (remaining() < 8) return Status::IOError("truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status BufferReader::GetVarint64(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < len_) {
    uint8_t b = data_[pos_++];
    if (shift >= 64) return Status::IOError("varint overflow");
    // The 10th byte (shift 63) contributes only its low bit; any higher
    // payload bit would be shifted past bit 63 and silently dropped, so a
    // buffer carrying one decodes to the wrong value unless rejected here.
    if (shift == 63 && (b & 0x7e) != 0) {
      return Status::IOError("varint overflow");
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // A terminating zero byte after a continuation is an overlong
      // (non-canonical) encoding; the writer never produces one, so
      // treat it as corruption rather than decode it.
      if (b == 0 && shift > 0) return Status::IOError("overlong varint");
      *out = v;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::IOError("truncated varint");
}

Status BufferReader::GetVarint64Signed(int64_t* out) {
  uint64_t zz;
  HAMMING_RETURN_NOT_OK(GetVarint64(&zz));
  *out = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status BufferReader::GetDouble(double* out) {
  uint64_t bits;
  HAMMING_RETURN_NOT_OK(GetFixed64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status BufferReader::GetString(std::string* out) {
  uint64_t len;
  HAMMING_RETURN_NOT_OK(GetVarint64(&len));
  if (remaining() < len) return Status::IOError("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status BufferReader::GetBytes(std::vector<uint8_t>* out) {
  uint64_t len;
  HAMMING_RETURN_NOT_OK(GetVarint64(&len));
  if (remaining() < len) return Status::IOError("truncated bytes");
  out->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status BufferReader::GetRaw(void* out, std::size_t len) {
  if (remaining() < len) return Status::IOError("truncated raw read");
  // Zero-length reads skip the memcpy: callers legitimately pass the
  // data() of an empty container, which may be null, and memcpy's
  // arguments are declared nonnull even when the count is zero.
  if (len == 0) return Status::OK();
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

}  // namespace hamming

// Deterministic random number generation.
//
// Every randomized component in hamming-db (data generators, hash function
// training, sampling, LSH) takes an explicit seed so experiments are
// reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hamming {

/// \brief A seeded Mersenne-Twister wrapper with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// \brief Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// \brief Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);
  /// \brief Standard normal draw scaled to mean/stddev.
  double Gaussian(double mean = 0.0, double stddev = 1.0);
  /// \brief Bernoulli draw with probability p of true.
  bool Bernoulli(double p);
  /// \brief Uniform 64-bit word.
  uint64_t NextWord();

  /// \brief Samples from a symmetric Dirichlet(alpha) of given dimension.
  ///
  /// Used by the DBPedia-like topic-vector generator.
  std::vector<double> Dirichlet(std::size_t dim, double alpha);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hamming

#include "common/status.h"

namespace hamming {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kIndexError:
      return "IndexError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnknownError:
      return "UnknownError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "InvalidCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace hamming

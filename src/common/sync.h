// Clang-thread-safety-annotated synchronization primitives.
//
// Every mutex in the repository is a hamming::Mutex from this header, and
// every member it protects is tagged HAMMING_GUARDED_BY(mu_) — so under
// Clang the attempt/speculation/commit protocol of the MapReduce runtime
// is checked at *compile time* (-Wthread-safety, promoted to an error by
// the HAMMING_THREAD_SAFETY CMake option), not just by whatever
// interleavings TSan happens to observe at run time. Off-Clang the
// annotation macros expand to nothing and the wrappers compile down to
// the std primitives they hold, so GCC builds are unchanged.
//
// The repo-invariant linter (tools/lint) enforces the other half of the
// contract: no raw std::mutex / std::condition_variable / std::thread
// outside src/common/, so there is no unannotated synchronization for
// the analysis to miss.
//
// Idiom notes:
//  * Condition waits are written as explicit loops —
//      while (!ready_) cv_.Wait(&mu_);
//    — not predicate lambdas. A lambda body is analyzed as its own
//    function, which does not hold the capability, so predicate-style
//    waits over guarded members cannot pass -Werror=thread-safety.
//  * Code that must acquire two locks of the same class (e.g.
//    Counters::operator=) orders them by address and opts out locally
//    with HAMMING_NO_THREAD_SAFETY_ANALYSIS; the analysis cannot see
//    through the aliasing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

// ---------------------------------------------------------------------------
// Annotation macros (Clang's -Wthread-safety attributes; no-ops elsewhere)
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HAMMING_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#if !defined(HAMMING_THREAD_ANNOTATION_)
#define HAMMING_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Member is protected by the given capability (mutex).
#define HAMMING_GUARDED_BY(x) HAMMING_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer member whose *pointee* is protected by the capability.
#define HAMMING_PT_GUARDED_BY(x) HAMMING_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function requires the capability to be held by the caller.
#define HAMMING_REQUIRES(...) \
  HAMMING_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define HAMMING_ACQUIRE(...) \
  HAMMING_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry).
#define HAMMING_RELEASE(...) \
  HAMMING_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define HAMMING_EXCLUDES(...) \
  HAMMING_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Declares lock-acquisition ordering between two mutexes.
#define HAMMING_ACQUIRED_BEFORE(...) \
  HAMMING_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HAMMING_ACQUIRED_AFTER(...) \
  HAMMING_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
/// Type is a capability (applied to the Mutex class itself).
#define HAMMING_CAPABILITY(x) HAMMING_THREAD_ANNOTATION_(capability(x))
/// RAII type that acquires on construction / releases on destruction.
#define HAMMING_SCOPED_CAPABILITY \
  HAMMING_THREAD_ANNOTATION_(scoped_lockable)
/// Function returns a reference to the capability guarding its result.
#define HAMMING_RETURN_CAPABILITY(x) \
  HAMMING_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: body is not analyzed (address-ordered double locking,
/// init/teardown code the analysis cannot model). Use sparingly; every
/// use should carry a comment saying why.
#define HAMMING_NO_THREAD_SAFETY_ANALYSIS \
  HAMMING_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hamming {

/// \brief A std::mutex with capability annotations.
///
/// Satisfies Lockable (lock/unlock/try_lock) so it still composes with
/// std machinery inside src/common/; annotated Lock/Unlock spellings are
/// provided for code that takes the lock manually.
class HAMMING_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HAMMING_ACQUIRE() { mu_.lock(); }
  void Unlock() HAMMING_RELEASE() { mu_.unlock(); }
  bool TryLock() HAMMING_THREAD_ANNOTATION_(try_acquire_capability(true)) {
    return mu_.try_lock();
  }

  // Lockable spellings (same annotations), used by CondVar internally.
  void lock() HAMMING_ACQUIRE() { mu_.lock(); }
  void unlock() HAMMING_RELEASE() { mu_.unlock(); }
  bool try_lock() HAMMING_THREAD_ANNOTATION_(try_acquire_capability(true)) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock, scope-shaped like std::lock_guard.
class HAMMING_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HAMMING_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HAMMING_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief RAII lock that can be released before scope exit (the
/// lock-commit-unlock-then-log shape of PhaseRunner::RunOneAttempt).
class HAMMING_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) HAMMING_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() HAMMING_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// \brief Releases the lock early; must not be called twice.
  void Release() HAMMING_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// \brief Condition variable bound to hamming::Mutex.
///
/// Waits are expressed against the Mutex itself (REQUIRES(mu)), so the
/// analysis knows guarded members touched across a Wait stay protected.
/// Internally adopts the Mutex's std::mutex for the wait, keeping
/// std::condition_variable's native performance.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified; `mu` is released during the wait and
  /// re-held on return. Spurious wakeups possible — wait in a loop.
  void Wait(Mutex* mu) HAMMING_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's scope still owns the lock
  }

  /// \brief Timed wait; returns true if it timed out, false if notified
  /// (or woken spuriously) before the duration elapsed.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& d)
      HAMMING_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    const bool timed_out = cv_.wait_for(lk, d) == std::cv_status::timeout;
    lk.release();
    return timed_out;
  }

  /// \brief Deadline wait; returns true if the deadline passed.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      HAMMING_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    const bool timed_out =
        cv_.wait_until(lk, deadline) == std::cv_status::timeout;
    lk.release();
    return timed_out;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief The repo's thread type. An alias, not a wrapper — it exists so
/// thread creation outside src/common/ goes through one greppable name
/// (the linter forbids raw std::thread elsewhere) and can grow
/// annotations or naming hooks later without touching call sites.
using Thread = std::thread;

/// \brief Blocks the calling thread for the given duration. Lives here so
/// callers outside src/common/ need no <thread> include of their own.
template <typename Rep, typename Period>
inline void SleepFor(const std::chrono::duration<Rep, Period>& d) {
  std::this_thread::sleep_for(d);
}

/// \brief std::thread::hardware_concurrency with a sane floor for
/// environments that report 0.
inline std::size_t HardwareConcurrency(std::size_t fallback = 4) {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? fallback : static_cast<std::size_t>(hw);
}

}  // namespace hamming

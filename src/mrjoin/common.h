// Record codecs shared by the MapReduce join plans.
//
// Two record families cross the shuffle:
//  * code records — (table tag, tuple id, binary code). The hash-based
//    plans (PMH, MRHA) ship these; their size is independent of the data
//    dimensionality, which is why Figure 7 shows them an order of
//    magnitude below PGBJ.
//  * vector records — (table tag, tuple id, full d-dimensional vector).
//    PGBJ must ship these because it joins in the original metric space;
//    its shuffle grows with d and with replication.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "code/binary_code.h"
#include "common/result.h"
#include "dataset/matrix.h"
#include "join/centralized_join.h"
#include "mapreduce/job.h"

namespace hamming::mrjoin {

/// \brief Knobs every MapReduce join/select plan shares.
///
/// Each plan's options struct inherits this base, so the partition count,
/// the Hamming threshold and the per-job execution options (attempts,
/// speculation, fault injection, event tracing) are spelled identically
/// across MRHA, PGBJ, PMH, MR-Select and the kNN variant. Fields a plan
/// does not use (PGBJ joins in the original metric space, so `code_bits`
/// and `h` are ignored there) simply stay at their defaults.
struct MRJoinOptions {
  std::size_t num_partitions = 16;  ///< reducers per MapReduce job
  std::size_t code_bits = 32;       ///< binary code length L
  std::size_t h = 3;                ///< Hamming join/select threshold
  double sample_rate = 0.1;         ///< driver-side sampling fraction
  uint64_t seed = 42;
  /// Execution options forwarded into every JobSpec the plan runs. The
  /// plan overwrites `exec.num_reducers` (from num_partitions) and
  /// `exec.partition_fn` per job; the attempt/speculation/fault/observer
  /// fields pass through untouched.
  mr::ExecutionOptions exec;
};

/// \brief Execution options for one of a plan's jobs: the shared `exec`
/// block with the plan's reducer count and this job's partitioner
/// plugged in.
mr::ExecutionOptions PlanJobOptions(const MRJoinOptions& opts,
                                    mr::PartitionFn partition_fn);

/// \brief The partitioner every plan's partition-keyed jobs share: keys
/// are fixed32 PartitionKey ids, routed id % num_reducers.
mr::PartitionFn PartitionKeyRouter();

/// \brief Which input table a record came from.
enum class Table : uint8_t { kR = 0, kS = 1 };

/// \brief A (table, id, code) payload.
struct CodeTuple {
  Table table;
  TupleId id;
  BinaryCode code;
};

/// \brief A (table, id, vector) payload.
struct VectorTuple {
  Table table;
  TupleId id;
  std::vector<double> vec;
};

/// \brief Encodes/decodes a CodeTuple into a record value.
std::vector<uint8_t> EncodeCodeTuple(const CodeTuple& t);
Result<CodeTuple> DecodeCodeTuple(const std::vector<uint8_t>& bytes);

/// \brief Encodes/decodes a VectorTuple into a record value.
std::vector<uint8_t> EncodeVectorTuple(const VectorTuple& t);
Result<VectorTuple> DecodeVectorTuple(const std::vector<uint8_t>& bytes);

/// \brief Encodes/decodes a join pair (r_id, s_id).
std::vector<uint8_t> EncodeJoinPair(const JoinPair& p);
Result<JoinPair> DecodeJoinPair(const std::vector<uint8_t>& bytes);

/// \brief A fixed32 partition-id key (keeps keys tiny and orderable).
std::vector<uint8_t> PartitionKey(uint32_t partition);
Result<uint32_t> DecodePartitionKey(const std::vector<uint8_t>& key);

/// \brief Wraps every row of a matrix into vector records of one table
/// (key left empty; mappers key their own output).
std::vector<mr::Record> MatrixToRecords(const FloatMatrix& data, Table table);

/// \brief Flattens reducer outputs of join pairs into one list.
Result<std::vector<JoinPair>> CollectJoinPairs(
    const std::vector<std::vector<mr::Record>>& outputs);

}  // namespace hamming::mrjoin

// MRHA-Index: the paper's MapReduce Hamming-join (Section 5, Figure 5).
//
// Phase 1 (preprocessing, driver side): reservoir-sample R and S, train
// the similarity hash H on the sample, build the Gray-order histogram and
// select pivot values that equi-depth-partition the code space; broadcast
// H and the pivots.
//
// Phase 2 (first MapReduce job): mappers hash each R tuple to its binary
// code and route it to its pivot range; each reducer H-Builds a local
// HA-Index over its partition and emits it serialized; the driver merges
// the local indexes into the global HA-Index.
//
// Phase 3 (second MapReduce job): the global index is broadcast through
// the distributed cache. Option A (small R) broadcasts the index *with*
// leaf tuple-id tables and reducers emit (r, s) pairs directly from
// H-Search. Option B (large R) broadcasts a leafless index; reducers emit
// (s, qualifying R code) and a post-processing hash join (a third
// MapReduce job) resolves codes to R tuple ids.
#pragma once

#include <memory>

#include "dataset/pivots.h"
#include "hashing/spectral_hashing.h"
#include "index/dynamic_ha_index.h"
#include "mrjoin/common.h"

namespace hamming::mrjoin {

/// \brief Which phase-3 variant to run (Section 5.3).
enum class MrhaOption { kA, kB };

/// \brief Plan configuration (num_partitions/code_bits/h/sample_rate/
/// seed and the per-job execution options come from MRJoinOptions).
struct MrhaOptions : MRJoinOptions {
  MrhaOption option = MrhaOption::kA;
  DynamicHAIndexOptions index;  // H-Build tuning
  /// Optional pre-trained hash. The paper re-learns the hash only "when
  /// a certain amount of the new data is updated" (Section 6.2.3), so
  /// repeated joins amortize training; when set, the sampling and
  /// learn-hash phases are skipped (their times report as 0).
  std::shared_ptr<const SpectralHashing> pretrained;
};

/// \brief Wall-clock seconds per phase (Figure 10a's stacked series).
struct MrhaPhaseTimes {
  double sampling = 0.0;
  double learn_hash = 0.0;
  double pivot_selection = 0.0;
  double index_build = 0.0;
  double join = 0.0;
};

/// \brief Outcome of a full MRHA Hamming-join run.
struct MrhaResult {
  std::vector<JoinPair> pairs;
  MrhaPhaseTimes phase_seconds;
  int64_t shuffle_bytes = 0;    // map-output bytes across all jobs
  int64_t broadcast_bytes = 0;  // distributed-cache bytes across all jobs
};

/// \brief Runs the full three-phase Hamming-join of R with S.
Result<MrhaResult> RunMrhaJoin(const FloatMatrix& r_data,
                               const FloatMatrix& s_data,
                               const MrhaOptions& opts, mr::Cluster* cluster);

}  // namespace hamming::mrjoin

#include "mrjoin/pgbj.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "dataset/sampling.h"
#include "knn/exact_knn.h"

namespace hamming::mrjoin {

namespace {

std::size_t NearestPivot(const FloatMatrix& pivots,
                         std::span<const double> vec) {
  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t p = 0; p < pivots.rows(); ++p) {
    double d = FloatMatrix::SquaredL2(pivots.Row(p), vec);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  }
  return best;
}

}  // namespace

Result<PgbjResult> RunPgbjJoin(const FloatMatrix& r_data,
                               const FloatMatrix& s_data,
                               const PgbjOptions& opts,
                               mr::Cluster* cluster) {
  if (r_data.empty() || s_data.empty()) {
    return Status::InvalidArgument("empty join input");
  }
  if (opts.k == 0) return Status::InvalidArgument("k must be positive");
  PgbjResult result;
  mr::Counters plan_counters;

  // ---- Phase 1 (driver): pivots, cell radii, theta ---------------------
  Rng rng(opts.seed);
  const std::size_t num_pivots =
      std::min<std::size_t>(opts.num_partitions, r_data.rows());
  auto pivot_ids = ReservoirSampleIndices(r_data.rows(), num_pivots, &rng);
  FloatMatrix pivots = r_data.GatherRows(pivot_ids);

  std::size_t sample_n = std::max<std::size_t>(
      std::min<std::size_t>(r_data.rows(), opts.k + 1),
      static_cast<std::size_t>(opts.sample_rate *
                               static_cast<double>(r_data.rows())));
  auto sample_ids = ReservoirSampleIndices(r_data.rows(), sample_n, &rng);
  FloatMatrix sample = r_data.GatherRows(sample_ids);

  // Cell radius U_i: max distance of a sampled R tuple to its own pivot.
  std::vector<double> radius(num_pivots, 0.0);
  for (std::size_t i = 0; i < sample.rows(); ++i) {
    std::size_t p = NearestPivot(pivots, sample.Row(i));
    radius[p] = std::max(
        radius[p], FloatMatrix::L2(pivots.Row(p), sample.Row(i)));
  }
  // theta: conservative kNN-distance bound from the sample's self-join.
  double theta = 0.0;
  {
    std::size_t probe = std::min<std::size_t>(sample.rows(), 64);
    for (std::size_t i = 0; i < probe; ++i) {
      auto nn = ExactKnn(s_data, sample.Row(i), opts.k);
      if (!nn.empty()) theta = std::max(theta, nn.back().distance);
    }
    theta *= opts.theta_slack;
  }

  // Broadcast pivots + bounds (small).
  {
    BufferWriter w;
    w.PutVarint64(num_pivots);
    for (std::size_t p = 0; p < num_pivots; ++p) {
      for (double v : pivots.Row(p)) w.PutDouble(v);
    }
    for (double v : radius) w.PutDouble(v);
    w.PutDouble(theta);
    cluster->cache()->Broadcast("pgbj/pivots", w.Release(), &plan_counters);
  }

  // ---- Phase 2: the join job -------------------------------------------
  const FloatMatrix* pivots_ptr = &pivots;
  const std::vector<double>* radius_ptr = &radius;
  const double theta_v = theta;
  const std::size_t k = opts.k;

  mr::JobSpec job;
  job.name = "pgbj-join";
  job.options = PlanJobOptions(opts, PartitionKeyRouter());
  job.options.num_reducers = num_pivots;
  auto records = MatrixToRecords(r_data, Table::kR);
  auto s_records = MatrixToRecords(s_data, Table::kS);
  records.insert(records.end(), std::make_move_iterator(s_records.begin()),
                 std::make_move_iterator(s_records.end()));
  job.input_splits = mr::SplitEvenly(std::move(records),
                                     cluster->total_slots());
  job.map_fn = [pivots_ptr, radius_ptr, theta_v](
                   const mr::Record& rec, mr::Emitter* out) -> Status {
    HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
    if (t.table == Table::kR) {
      // R goes to its own Voronoi cell only.
      std::size_t p = NearestPivot(*pivots_ptr, t.vec);
      out->Emit(PartitionKey(static_cast<uint32_t>(p)), rec.value);
      return Status::OK();
    }
    // S is replicated to every cell that could contain a neighbour within
    // theta: d(s, p_i) <= U_i + theta.
    for (std::size_t p = 0; p < pivots_ptr->rows(); ++p) {
      double d = FloatMatrix::L2(pivots_ptr->Row(p), t.vec);
      if (d <= (*radius_ptr)[p] + theta_v) {
        out->Emit(PartitionKey(static_cast<uint32_t>(p)), rec.value);
      }
    }
    return Status::OK();
  };
  job.reduce_fn = [k](const std::vector<uint8_t>&,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    // Local exact kNN of the cell's R tuples against its S candidates.
    std::vector<VectorTuple> r_tuples;
    FloatMatrix s_local;
    std::vector<TupleId> s_ids;
    for (const auto& v : values) {
      HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(v));
      if (t.table == Table::kR) {
        r_tuples.push_back(std::move(t));
      } else {
        HAMMING_RETURN_NOT_OK(s_local.AppendRow(t.vec));
        s_ids.push_back(t.id);
      }
    }
    for (const auto& r : r_tuples) {
      auto nn = ExactKnn(s_local, r.vec, k);
      BufferWriter w;
      w.PutVarint64(r.id);
      w.PutVarint64(nn.size());
      for (const auto& n : nn) {
        w.PutVarint64(s_ids[n.id]);
        w.PutDouble(n.distance);
      }
      out->Emit({}, w.Release());
    }
    return Status::OK();
  };
  HAMMING_ASSIGN_OR_RETURN(mr::JobResult job_result, RunJob(job, cluster));
  plan_counters.Merge(job_result.counters);

  for (const auto& part : job_result.outputs) {
    for (const auto& rec : part) {
      BufferReader r(rec.value);
      uint64_t rid, n;
      HAMMING_RETURN_NOT_OK(r.GetVarint64(&rid));
      HAMMING_RETURN_NOT_OK(r.GetVarint64(&n));
      KnnJoinRow row;
      row.r = static_cast<TupleId>(rid);
      row.neighbors.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t sid;
        double dist;
        HAMMING_RETURN_NOT_OK(r.GetVarint64(&sid));
        HAMMING_RETURN_NOT_OK(r.GetDouble(&dist));
        row.neighbors.push_back(static_cast<TupleId>(sid));
      }
      result.rows.push_back(std::move(row));
    }
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const KnnJoinRow& a, const KnnJoinRow& b) { return a.r < b.r; });
  result.shuffle_bytes = plan_counters.Get(mr::kShuffleBytes);
  result.broadcast_bytes = plan_counters.Get(mr::kBroadcastBytes);
  return result;
}

}  // namespace hamming::mrjoin

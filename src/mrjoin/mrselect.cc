#include "mrjoin/mrselect.h"

#include <algorithm>

#include "common/rng.h"
#include "dataset/sampling.h"
#include "observability/query_stats.h"

namespace hamming::mrjoin {

Result<MrSelectResult> RunMrSelect(const FloatMatrix& data,
                                   const FloatMatrix& queries,
                                   const MrSelectOptions& opts,
                                   mr::Cluster* cluster) {
  if (data.empty() || queries.empty()) {
    return Status::InvalidArgument("empty select input");
  }
  if (data.cols() != queries.cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  MrSelectResult result;
  mr::Counters plan_counters;

  // Preprocessing: sample, learn the hash, select pivots (Section 5.1).
  Rng rng(opts.seed);
  std::size_t sample_n = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.sample_rate *
                                  static_cast<double>(data.rows())));
  auto sample_ids = ReservoirSampleIndices(data.rows(), sample_n, &rng);
  FloatMatrix sample = data.GatherRows(sample_ids);
  SpectralHashingOptions hash_opts;
  hash_opts.code_bits = opts.code_bits;
  HAMMING_ASSIGN_OR_RETURN(std::unique_ptr<SpectralHashing> hash,
                           SpectralHashing::Train(sample, hash_opts));
  GrayPivots pivots =
      GrayPivots::FromSample(hash->HashAll(sample), opts.num_partitions);

  // Broadcast hash + the query batch's codes.
  {
    BufferWriter w;
    hash->Serialize(&w);
    cluster->cache()->Broadcast("mrselect/hash", w.Release(),
                                &plan_counters);
  }
  std::vector<BinaryCode> query_codes = hash->HashAll(queries);
  {
    BufferWriter w;
    w.PutVarint64(query_codes.size());
    for (const auto& q : query_codes) q.Serialize(&w);
    cluster->cache()->Broadcast("mrselect/queries", w.Release(),
                                &plan_counters);
  }

  // One MapReduce job: route data tuples by pivot range; each reducer
  // H-Builds its local index and answers every broadcast query.
  const SpectralHashing* hash_ptr = hash.get();
  const GrayPivots* pivots_ptr = &pivots;
  const std::vector<BinaryCode>* queries_ptr = &query_codes;
  DynamicHAIndexOptions index_opts = opts.index;
  const std::size_t h = opts.h;

  mr::JobSpec job;
  job.name = "mrselect";
  job.options = PlanJobOptions(opts, PartitionKeyRouter());
  job.input_splits = mr::SplitEvenly(MatrixToRecords(data, Table::kR),
                                     cluster->total_slots());
  job.map_fn = [hash_ptr, pivots_ptr](const mr::Record& rec,
                                      mr::Emitter* out) -> Status {
    HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
    CodeTuple ct{t.table, t.id, hash_ptr->Hash(t.vec)};
    uint32_t part = static_cast<uint32_t>(pivots_ptr->PartitionOf(ct.code));
    out->Emit(PartitionKey(part), EncodeCodeTuple(ct));
    return Status::OK();
  };
  // Per-query search-work histograms ("query.candidates", ...) when the
  // caller attached a metrics registry. Recording happens inside reduce
  // attempts, so under fault injection a retried attempt records its
  // queries again — unlike the runtime's own metrics these are
  // best-effort effort accounting, not exactly-once totals.
  obs::MetricsRegistry* metrics = opts.exec.metrics;
  const obs::QueryStatsHistograms query_hists =
      obs::QueryStatsHistograms::Register(metrics);
  job.reduce_fn = [queries_ptr, index_opts, h, metrics, query_hists](
                      const std::vector<uint8_t>&,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    std::vector<TupleId> ids;
    std::vector<BinaryCode> codes;
    ids.reserve(values.size());
    codes.reserve(values.size());
    for (const auto& v : values) {
      HAMMING_ASSIGN_OR_RETURN(CodeTuple t, DecodeCodeTuple(v));
      ids.push_back(t.id);
      codes.push_back(t.code);
    }
    DynamicHAIndex local(index_opts);
    HAMMING_RETURN_NOT_OK(local.BuildWithIds(ids, codes));
    // The query set is the natural batch: one coalesced SearchBatch over
    // the partition's local index answers every query.
    std::vector<QueryRequest> reqs;
    reqs.reserve(queries_ptr->size());
    for (const BinaryCode& qcode : *queries_ptr) {
      reqs.push_back(QueryRequest::Range(qcode, h));
    }
    std::vector<QueryResponse> resps(reqs.size());
    HAMMING_RETURN_NOT_OK(local.SearchBatch(reqs, resps));
    for (std::size_t q = 0; q < resps.size(); ++q) {
      HAMMING_RETURN_NOT_OK(resps[q].status);
      if (metrics != nullptr) query_hists.Observe(metrics, resps[q].stats);
      for (TupleId id : resps[q].ids) {
        BufferWriter w;
        w.PutVarint64(q);
        w.PutVarint64(id);
        out->Emit({}, w.Release());
      }
    }
    return Status::OK();
  };
  HAMMING_ASSIGN_OR_RETURN(mr::JobResult job_result, RunJob(job, cluster));
  plan_counters.Merge(job_result.counters);

  result.matches.resize(queries.rows());
  for (const auto& part : job_result.outputs) {
    for (const auto& rec : part) {
      BufferReader r(rec.value);
      uint64_t q, id;
      HAMMING_RETURN_NOT_OK(r.GetVarint64(&q));
      HAMMING_RETURN_NOT_OK(r.GetVarint64(&id));
      result.matches[q].push_back(static_cast<TupleId>(id));
    }
  }
  for (auto& m : result.matches) std::sort(m.begin(), m.end());
  result.shuffle_bytes = plan_counters.Get(mr::kShuffleBytes);
  result.broadcast_bytes = plan_counters.Get(mr::kBroadcastBytes);
  return result;
}

}  // namespace hamming::mrjoin

#include "mrjoin/mrha_knn.h"

#include <algorithm>

#include "common/rng.h"
#include "dataset/sampling.h"
#include "observability/query_stats.h"

namespace hamming::mrjoin {

Result<MrhaKnnResult> RunMrhaKnnJoin(const FloatMatrix& r_data,
                                     const FloatMatrix& s_data,
                                     const MrhaKnnOptions& opts,
                                     mr::Cluster* cluster) {
  if (r_data.empty() || s_data.empty()) {
    return Status::InvalidArgument("empty join input");
  }
  if (r_data.cols() != s_data.cols()) {
    return Status::InvalidArgument("R and S dimensionality differs");
  }
  if (opts.k == 0) return Status::InvalidArgument("k must be positive");
  MrhaKnnResult result;
  mr::Counters plan_counters;

  // Preprocessing: hash trained on an S sample (or supplied).
  std::unique_ptr<SpectralHashing> trained;
  const SpectralHashing* hash_ptr = opts.pretrained.get();
  if (hash_ptr == nullptr) {
    Rng rng(opts.seed);
    std::size_t sample_n = std::max<std::size_t>(
        2, static_cast<std::size_t>(opts.sample_rate *
                                    static_cast<double>(s_data.rows())));
    auto ids = ReservoirSampleIndices(s_data.rows(), sample_n, &rng);
    FloatMatrix sample = s_data.GatherRows(ids);
    SpectralHashingOptions hopts;
    hopts.code_bits = opts.code_bits;
    HAMMING_ASSIGN_OR_RETURN(trained,
                             SpectralHashing::Train(sample, hopts));
    hash_ptr = trained.get();
  }
  {
    BufferWriter w;
    hash_ptr->Serialize(&w);
    cluster->cache()->Broadcast("mrhaknn/hash", w.Release(),
                                &plan_counters);
  }

  // Build the global HA-Index over S on the driver (the MapReduce build
  // path is exercised by RunMrhaJoin; here S is hashed once and indexed —
  // the broadcast still pays the full serialized index).
  DynamicHAIndex s_index(opts.index);
  {
    std::vector<BinaryCode> s_codes;
    s_codes.reserve(s_data.rows());
    for (std::size_t i = 0; i < s_data.rows(); ++i) {
      s_codes.push_back(hash_ptr->Hash(s_data.Row(i)));
    }
    HAMMING_RETURN_NOT_OK(s_index.Build(s_codes));
    BufferWriter w;
    s_index.Serialize(&w);
    cluster->cache()->Broadcast("mrhaknn/s-index", w.Release(),
                                &plan_counters);
  }

  const DynamicHAIndex* index_ptr = &s_index;
  const std::size_t k = opts.k;
  const std::size_t initial_h = opts.initial_h;
  const std::size_t h_step = std::max<std::size_t>(1, opts.h_step);
  const std::size_t code_bits = opts.code_bits;
  const std::size_t num_partitions = opts.num_partitions;

  mr::JobSpec job;
  job.name = "mrha-knn-join";
  job.options = PlanJobOptions(opts, PartitionKeyRouter());
  job.input_splits = mr::SplitEvenly(MatrixToRecords(r_data, Table::kR),
                                     cluster->total_slots());
  job.map_fn = [hash_ptr, num_partitions](const mr::Record& rec,
                                          mr::Emitter* out) -> Status {
    HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
    CodeTuple ct{t.table, t.id, hash_ptr->Hash(t.vec)};
    uint32_t part = static_cast<uint32_t>(ct.code.Hash() % num_partitions);
    out->Emit(PartitionKey(part), EncodeCodeTuple(ct));
    return Status::OK();
  };
  // Per-probe kNN-search work histograms; the escalation loop accumulates
  // into one QueryStats per R tuple, with one radius_expansion per retry.
  obs::MetricsRegistry* metrics = opts.exec.metrics;
  const obs::QueryStatsHistograms query_hists =
      obs::QueryStatsHistograms::Register(metrics);
  job.reduce_fn = [index_ptr, k, initial_h, h_step, code_bits, metrics,
                   query_hists](
                      const std::vector<uint8_t>&,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    for (const auto& v : values) {
      HAMMING_ASSIGN_OR_RETURN(CodeTuple t, DecodeCodeTuple(v));
      // Threshold escalation until k candidates qualify (Section 2).
      obs::QueryStats qstats;
      obs::QueryStats* qstats_ptr = metrics != nullptr ? &qstats : nullptr;
      std::vector<std::pair<TupleId, uint32_t>> candidates;
      std::size_t h = initial_h;
      for (;;) {
        HAMMING_ASSIGN_OR_RETURN(
            candidates,
            index_ptr->SearchWithDistances(t.code, h, qstats_ptr));
        if (candidates.size() >= k || h >= code_bits) break;
        h = std::min(code_bits, h + h_step);
        if (qstats_ptr != nullptr) ++qstats_ptr->radius_expansions;
      }
      if (metrics != nullptr) query_hists.Observe(metrics, qstats);
      // Rank by code distance (ties by id for determinism), keep k.
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second < b.second;
                  return a.first < b.first;
                });
      if (candidates.size() > k) candidates.resize(k);
      BufferWriter w;
      w.PutVarint64(t.id);
      w.PutVarint64(candidates.size());
      for (const auto& [sid, dist] : candidates) {
        w.PutVarint64(sid);
        w.PutDouble(static_cast<double>(dist));
      }
      out->Emit({}, w.Release());
    }
    return Status::OK();
  };
  HAMMING_ASSIGN_OR_RETURN(mr::JobResult job_result, RunJob(job, cluster));
  plan_counters.Merge(job_result.counters);

  for (const auto& part : job_result.outputs) {
    for (const auto& rec : part) {
      BufferReader r(rec.value);
      uint64_t rid, n;
      HAMMING_RETURN_NOT_OK(r.GetVarint64(&rid));
      HAMMING_RETURN_NOT_OK(r.GetVarint64(&n));
      KnnJoinRow row;
      row.r = static_cast<TupleId>(rid);
      row.neighbors.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t sid;
        double dist;
        HAMMING_RETURN_NOT_OK(r.GetVarint64(&sid));
        HAMMING_RETURN_NOT_OK(r.GetDouble(&dist));
        row.neighbors.push_back(static_cast<TupleId>(sid));
      }
      result.rows.push_back(std::move(row));
    }
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const KnnJoinRow& a, const KnnJoinRow& b) { return a.r < b.r; });
  result.shuffle_bytes = plan_counters.Get(mr::kShuffleBytes);
  result.broadcast_bytes = plan_counters.Get(mr::kBroadcastBytes);
  return result;
}

}  // namespace hamming::mrjoin

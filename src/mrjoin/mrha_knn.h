// Approximate kNN-join via the MRHA machinery (Section 6.2's
// "approximate kNN-join via similarity hashing").
//
// R kNN-join S: for every R tuple, its k nearest S tuples. The plan
// reuses the MRHA pipeline with the roles flipped — the global HA-Index
// is built over *S* (the probed side) and broadcast; reducers receive the
// R partition and, per R tuple, run H-Search with an escalating threshold
// until at least k candidates qualify (Section 2's kNN recipe), then rank
// candidates by code distance and keep the k best.
#pragma once

#include "mrjoin/mrha.h"
#include "mrjoin/pgbj.h"

namespace hamming::mrjoin {

/// \brief Plan configuration (shared knobs come from MRJoinOptions; the
/// kNN search escalates from initial_h by h_step, so the inherited fixed
/// threshold `h` is unused).
struct MrhaKnnOptions : MRJoinOptions {
  std::size_t k = 50;
  std::size_t initial_h = 2;
  std::size_t h_step = 2;
  DynamicHAIndexOptions index;
  std::shared_ptr<const SpectralHashing> pretrained;
};

/// \brief Outcome: per R tuple, its approximate k nearest S ids (by code
/// distance), plus the plan's data-movement accounting.
struct MrhaKnnResult {
  std::vector<KnnJoinRow> rows;  // sorted by r id
  int64_t shuffle_bytes = 0;
  int64_t broadcast_bytes = 0;
};

/// \brief Runs the approximate kNN-join of R against S.
Result<MrhaKnnResult> RunMrhaKnnJoin(const FloatMatrix& r_data,
                                     const FloatMatrix& s_data,
                                     const MrhaKnnOptions& opts,
                                     mr::Cluster* cluster);

}  // namespace hamming::mrjoin

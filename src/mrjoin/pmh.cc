#include "mrjoin/pmh.h"

#include <algorithm>

#include "common/rng.h"
#include "dataset/sampling.h"
#include "index/multi_hash_table.h"
#include "observability/query_stats.h"

namespace hamming::mrjoin {

Result<PmhResult> RunPmhJoin(const FloatMatrix& r_data,
                             const FloatMatrix& s_data,
                             const PmhOptions& opts, mr::Cluster* cluster) {
  if (r_data.empty() || s_data.empty()) {
    return Status::InvalidArgument("empty join input");
  }
  PmhResult result;
  mr::Counters plan_counters;

  // Train the hash on a sample (same preprocessing as MRHA so the plans
  // differ only in distribution strategy), unless one is supplied.
  std::unique_ptr<SpectralHashing> trained;
  const SpectralHashing* hash_raw = opts.pretrained.get();
  if (hash_raw == nullptr) {
    Rng rng(opts.seed);
    std::size_t sample_n = std::max<std::size_t>(
        2, static_cast<std::size_t>(opts.sample_rate *
                                    static_cast<double>(r_data.rows())));
    auto sample_ids = ReservoirSampleIndices(r_data.rows(), sample_n, &rng);
    FloatMatrix sample = r_data.GatherRows(sample_ids);
    SpectralHashingOptions hash_opts;
    hash_opts.code_bits = opts.code_bits;
    HAMMING_ASSIGN_OR_RETURN(trained,
                             SpectralHashing::Train(sample, hash_opts));
    hash_raw = trained.get();
  }

  // The mappers need the hash function; it ships via distributed cache
  // exactly as in the MRHA plan.
  {
    BufferWriter w;
    hash_raw->Serialize(&w);
    cluster->cache()->Broadcast("pmh/hash", w.Release(), &plan_counters);
  }

  // Build the k-table Manku index over all of R and broadcast it whole:
  // every table duplicates every fingerprint, which is the O(m * k * N)
  // shipping cost the paper's Section 2 criticizes ("duplicating the hash
  // entries multiple times for the entire datasets is expensive").
  MultiHashTableIndex r_index(opts.num_tables, opts.h);
  {
    std::vector<BinaryCode> r_codes;
    r_codes.reserve(r_data.rows());
    for (std::size_t i = 0; i < r_data.rows(); ++i) {
      r_codes.push_back(hash_raw->Hash(r_data.Row(i)));
    }
    HAMMING_RETURN_NOT_OK(r_index.Build(r_codes));
    BufferWriter w;
    r_index.Serialize(&w);
    cluster->cache()->Broadcast("pmh/r-index", w.Release(), &plan_counters);
  }

  // One MapReduce job: partition S by code hash; each reducer probes the
  // broadcast R index with its S partition.
  const SpectralHashing* hash_ptr = hash_raw;
  const MultiHashTableIndex* r_index_ptr = &r_index;
  const std::size_t h = opts.h;

  mr::JobSpec job;
  job.name = "pmh-join";
  job.options = PlanJobOptions(opts, PartitionKeyRouter());
  job.input_splits = mr::SplitEvenly(MatrixToRecords(s_data, Table::kS),
                                     cluster->total_slots());
  const std::size_t num_partitions = opts.num_partitions;
  job.map_fn = [hash_ptr, num_partitions](const mr::Record& rec,
                                          mr::Emitter* out) -> Status {
    HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
    CodeTuple ct{t.table, t.id, hash_ptr->Hash(t.vec)};
    // Key by code hash mod N: spreads S uniformly and gives each reducer
    // exactly one key group, so each builds the R index exactly once.
    uint32_t part = static_cast<uint32_t>(ct.code.Hash() % num_partitions);
    out->Emit(PartitionKey(part), EncodeCodeTuple(ct));
    return Status::OK();
  };
  // Per-probe search-work histograms when a metrics registry is attached.
  obs::MetricsRegistry* metrics = opts.exec.metrics;
  const obs::QueryStatsHistograms query_hists =
      obs::QueryStatsHistograms::Register(metrics);
  job.reduce_fn = [r_index_ptr, h, metrics, query_hists](
                      const std::vector<uint8_t>&,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    // One group per reducer: probe the broadcast R index with every S
    // tuple of this partition, in coalesced batches (one sample per
    // probe still lands in the work histograms).
    constexpr std::size_t kProbeBatch = 64;
    std::vector<TupleId> s_ids;
    std::vector<QueryRequest> reqs;
    s_ids.reserve(kProbeBatch);
    reqs.reserve(kProbeBatch);
    std::vector<QueryResponse> resps;
    for (std::size_t begin = 0; begin < values.size(); begin += kProbeBatch) {
      const std::size_t count = std::min(kProbeBatch, values.size() - begin);
      s_ids.clear();
      reqs.clear();
      for (std::size_t i = 0; i < count; ++i) {
        HAMMING_ASSIGN_OR_RETURN(CodeTuple t,
                                 DecodeCodeTuple(values[begin + i]));
        s_ids.push_back(t.id);
        reqs.push_back(QueryRequest::Range(std::move(t.code), h));
      }
      resps.resize(count);
      HAMMING_RETURN_NOT_OK(r_index_ptr->SearchBatch(reqs, resps));
      for (std::size_t i = 0; i < count; ++i) {
        HAMMING_RETURN_NOT_OK(resps[i].status);
        if (metrics != nullptr) query_hists.Observe(metrics, resps[i].stats);
        for (TupleId r : resps[i].ids) {
          out->Emit({}, EncodeJoinPair({r, s_ids[i]}));
        }
      }
    }
    return Status::OK();
  };
  HAMMING_ASSIGN_OR_RETURN(mr::JobResult job_result, RunJob(job, cluster));
  plan_counters.Merge(job_result.counters);
  HAMMING_ASSIGN_OR_RETURN(result.pairs,
                           CollectJoinPairs(job_result.outputs));
  result.shuffle_bytes = plan_counters.Get(mr::kShuffleBytes);
  result.broadcast_bytes = plan_counters.Get(mr::kBroadcastBytes);
  return result;
}

}  // namespace hamming::mrjoin

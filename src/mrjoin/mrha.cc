#include "mrjoin/mrha.h"

#include <algorithm>

#include "observability/stopwatch.h"
#include "dataset/sampling.h"
#include "observability/query_stats.h"

namespace hamming::mrjoin {

namespace {

// Cache blob names used by the plan's jobs.
constexpr const char* kHashBlob = "mrha/hash";
constexpr const char* kPivotsBlob = "mrha/pivots";
constexpr const char* kIndexBlob = "mrha/global-index";

// Serializes the hash model + pivots for the distributed cache.
std::vector<uint8_t> PackHash(const SpectralHashing& hash) {
  BufferWriter w;
  hash.Serialize(&w);
  return w.Release();
}

std::vector<uint8_t> PackPivots(const GrayPivots& pivots) {
  BufferWriter w;
  pivots.Serialize(&w);
  return w.Release();
}

}  // namespace

Result<MrhaResult> RunMrhaJoin(const FloatMatrix& r_data,
                               const FloatMatrix& s_data,
                               const MrhaOptions& opts,
                               mr::Cluster* cluster) {
  if (r_data.empty() || s_data.empty()) {
    return Status::InvalidArgument("empty join input");
  }
  if (r_data.cols() != s_data.cols()) {
    return Status::InvalidArgument("R and S dimensionality differs");
  }
  MrhaResult result;
  mr::Counters plan_counters;

  // ---- Phase 1: preprocessing (driver) --------------------------------
  obs::Stopwatch watch;
  Rng rng(opts.seed);
  std::size_t r_sample_n = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.sample_rate *
                                  static_cast<double>(r_data.rows())));
  std::size_t s_sample_n = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.sample_rate *
                                  static_cast<double>(s_data.rows())));
  auto r_ids = ReservoirSampleIndices(r_data.rows(), r_sample_n, &rng);
  auto s_ids = ReservoirSampleIndices(s_data.rows(), s_sample_n, &rng);
  FloatMatrix sample(r_ids.size() + s_ids.size(), r_data.cols());
  for (std::size_t i = 0; i < r_ids.size(); ++i) {
    auto src = r_data.Row(r_ids[i]);
    std::copy(src.begin(), src.end(), sample.MutableRow(i).begin());
  }
  for (std::size_t i = 0; i < s_ids.size(); ++i) {
    auto src = s_data.Row(s_ids[i]);
    std::copy(src.begin(), src.end(),
              sample.MutableRow(r_ids.size() + i).begin());
  }
  result.phase_seconds.sampling = watch.ElapsedSeconds();

  watch.Restart();
  std::unique_ptr<SpectralHashing> trained;
  const SpectralHashing* hash_ptr = opts.pretrained.get();
  if (hash_ptr == nullptr) {
    SpectralHashingOptions hash_opts;
    hash_opts.code_bits = opts.code_bits;
    HAMMING_ASSIGN_OR_RETURN(trained,
                             SpectralHashing::Train(sample, hash_opts));
    hash_ptr = trained.get();
    result.phase_seconds.learn_hash = watch.ElapsedSeconds();
  }

  watch.Restart();
  std::vector<BinaryCode> sample_codes = hash_ptr->HashAll(sample);
  GrayPivots pivots =
      GrayPivots::FromSample(sample_codes, opts.num_partitions);
  cluster->cache()->Broadcast(kHashBlob, PackHash(*hash_ptr),
                              &plan_counters);
  cluster->cache()->Broadcast(kPivotsBlob, PackPivots(pivots),
                              &plan_counters);
  result.phase_seconds.pivot_selection = watch.ElapsedSeconds();

  // ---- Phase 2: global HA-Index build ----------------------------------
  watch.Restart();
  const bool leafless = opts.option == MrhaOption::kB;

  mr::JobSpec build_job;
  build_job.name = "mrha-build";
  // Keys are partition ids; route each to its own reducer.
  build_job.options = PlanJobOptions(opts, PartitionKeyRouter());
  build_job.input_splits =
      mr::SplitEvenly(MatrixToRecords(r_data, Table::kR),
                      cluster->total_slots());
  // Mapper: vector -> (partition, code record). The hash and pivots come
  // from the distributed cache exactly as Section 5.2 describes.
  const GrayPivots* pivots_ptr = &pivots;
  build_job.map_fn = [hash_ptr, pivots_ptr](const mr::Record& rec,
                                            mr::Emitter* out) -> Status {
    HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
    CodeTuple ct{t.table, t.id, hash_ptr->Hash(t.vec)};
    uint32_t part =
        static_cast<uint32_t>(pivots_ptr->PartitionOf(ct.code));
    out->Emit(PartitionKey(part), EncodeCodeTuple(ct));
    return Status::OK();
  };
  DynamicHAIndexOptions index_opts = opts.index;
  index_opts.store_tuple_ids = !leafless;
  build_job.reduce_fn = [index_opts](
                            const std::vector<uint8_t>& key,
                            const std::vector<std::vector<uint8_t>>& values,
                            mr::Emitter* out) -> Status {
    DynamicHAIndex local(index_opts);
    std::vector<BinaryCode> codes;
    std::vector<TupleId> ids;
    codes.reserve(values.size());
    for (const auto& v : values) {
      HAMMING_ASSIGN_OR_RETURN(CodeTuple t, DecodeCodeTuple(v));
      codes.push_back(t.code);
      ids.push_back(t.id);
    }
    HAMMING_RETURN_NOT_OK(local.BuildWithIds(ids, codes));
    BufferWriter w;
    local.Serialize(&w);
    out->Emit(key, w.Release());
    return Status::OK();
  };
  HAMMING_ASSIGN_OR_RETURN(mr::JobResult build_result,
                           RunJob(build_job, cluster));
  plan_counters.Merge(build_result.counters);

  // Driver-side merge of the local indexes into the global HA-Index.
  DynamicHAIndex global_index(index_opts);
  for (const auto& part : build_result.outputs) {
    for (const auto& rec : part) {
      BufferReader r(rec.value);
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex local,
                               DynamicHAIndex::Deserialize(&r));
      HAMMING_RETURN_NOT_OK(global_index.MergeFrom(local));
    }
  }
  BufferWriter index_writer;
  global_index.Serialize(&index_writer);
  cluster->cache()->Broadcast(kIndexBlob, index_writer.Release(),
                              &plan_counters);
  result.phase_seconds.index_build = watch.ElapsedSeconds();

  // ---- Phase 3: Hamming-join -------------------------------------------
  watch.Restart();
  const DynamicHAIndex* index_ptr = &global_index;
  const std::size_t h = opts.h;

  mr::JobSpec join_job;
  join_job.name = "mrha-join";
  join_job.options = PlanJobOptions(opts, PartitionKeyRouter());
  join_job.input_splits = mr::SplitEvenly(
      MatrixToRecords(s_data, Table::kS), cluster->total_slots());
  join_job.map_fn = [hash_ptr, pivots_ptr](const mr::Record& rec,
                                           mr::Emitter* out) -> Status {
    HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
    CodeTuple ct{t.table, t.id, hash_ptr->Hash(t.vec)};
    uint32_t part =
        static_cast<uint32_t>(pivots_ptr->PartitionOf(ct.code));
    out->Emit(PartitionKey(part), EncodeCodeTuple(ct));
    return Status::OK();
  };

  // Per-probe H-Search work histograms ("query.candidates", ...) when the
  // caller attached a metrics registry; each S tuple's search is one sample.
  obs::MetricsRegistry* metrics = opts.exec.metrics;
  const obs::QueryStatsHistograms query_hists =
      obs::QueryStatsHistograms::Register(metrics);

  if (opts.option == MrhaOption::kA) {
    // Reducers H-Search the broadcast index and emit (r, s) directly.
    join_job.reduce_fn =
        [index_ptr, h, metrics, query_hists](
            const std::vector<uint8_t>&,
            const std::vector<std::vector<uint8_t>>& values,
            mr::Emitter* out) -> Status {
      // Probe the broadcast index in coalesced batches; each response
      // still carries its own per-query work counters for the
      // histograms (one sample per S tuple, as before).
      constexpr std::size_t kProbeBatch = 64;
      std::vector<TupleId> s_ids;
      std::vector<QueryRequest> reqs;
      s_ids.reserve(kProbeBatch);
      reqs.reserve(kProbeBatch);
      std::vector<QueryResponse> resps;
      for (std::size_t begin = 0; begin < values.size();
           begin += kProbeBatch) {
        const std::size_t count =
            std::min(kProbeBatch, values.size() - begin);
        s_ids.clear();
        reqs.clear();
        for (std::size_t i = 0; i < count; ++i) {
          HAMMING_ASSIGN_OR_RETURN(CodeTuple t,
                                   DecodeCodeTuple(values[begin + i]));
          s_ids.push_back(t.id);
          reqs.push_back(QueryRequest::Range(std::move(t.code), h));
        }
        resps.resize(count);
        HAMMING_RETURN_NOT_OK(index_ptr->SearchBatch(reqs, resps));
        for (std::size_t i = 0; i < count; ++i) {
          HAMMING_RETURN_NOT_OK(resps[i].status);
          if (metrics != nullptr) query_hists.Observe(metrics, resps[i].stats);
          for (TupleId r : resps[i].ids) {
            out->Emit({}, EncodeJoinPair({r, s_ids[i]}));
          }
        }
      }
      return Status::OK();
    };
    HAMMING_ASSIGN_OR_RETURN(mr::JobResult join_result,
                             RunJob(join_job, cluster));
    plan_counters.Merge(join_result.counters);
    HAMMING_ASSIGN_OR_RETURN(result.pairs,
                             CollectJoinPairs(join_result.outputs));
  } else {
    // Option B: reducers emit (qualifying R code, s id); a post-processing
    // hash join resolves codes to R tuple ids.
    join_job.reduce_fn =
        [index_ptr, h, metrics, query_hists](
            const std::vector<uint8_t>&,
            const std::vector<std::vector<uint8_t>>& values,
            mr::Emitter* out) -> Status {
      for (const auto& v : values) {
        HAMMING_ASSIGN_OR_RETURN(CodeTuple t, DecodeCodeTuple(v));
        obs::QueryStats qstats;
        HAMMING_ASSIGN_OR_RETURN(
            std::vector<BinaryCode> matches,
            index_ptr->SearchCodes(t.code, h,
                                   metrics != nullptr ? &qstats : nullptr));
        if (metrics != nullptr) query_hists.Observe(metrics, qstats);
        for (const BinaryCode& code : matches) {
          BufferWriter w;
          code.Serialize(&w);
          out->Emit(w.Release(), EncodeCodeTuple(t));
        }
      }
      return Status::OK();
    };
    HAMMING_ASSIGN_OR_RETURN(mr::JobResult join_result,
                             RunJob(join_job, cluster));
    plan_counters.Merge(join_result.counters);

    // Post-join (MapReduce hash-join of Section 5.3 / [23]): R tuples are
    // re-hashed to codes on the map side and matched to qualifying codes
    // on the key.
    mr::JobSpec post_job;
    post_job.name = "mrha-postjoin";
    // Keys are serialized codes; the default hash partitioner routes them.
    post_job.options = PlanJobOptions(opts, nullptr);
    post_job.input_splits = mr::SplitEvenly(
        MatrixToRecords(r_data, Table::kR), cluster->total_slots());
    // Qualifying (code, s) records from the join job feed extra splits.
    for (auto& part : join_result.outputs) {
      if (!part.empty()) post_job.input_splits.push_back(std::move(part));
    }
    post_job.map_fn = [hash_ptr](const mr::Record& rec,
                                 mr::Emitter* out) -> Status {
      if (rec.key.empty()) {
        // R-side vector record: key by its code.
        HAMMING_ASSIGN_OR_RETURN(VectorTuple t, DecodeVectorTuple(rec.value));
        CodeTuple ct{t.table, t.id, hash_ptr->Hash(t.vec)};
        BufferWriter w;
        ct.code.Serialize(&w);
        out->Emit(w.Release(), EncodeCodeTuple(ct));
      } else {
        // Already keyed (code, s-tuple) record from phase 3.
        out->Emit(rec.key, rec.value);
      }
      return Status::OK();
    };
    post_job.reduce_fn =
        [](const std::vector<uint8_t>&,
           const std::vector<std::vector<uint8_t>>& values,
           mr::Emitter* out) -> Status {
      std::vector<TupleId> r_ids;
      std::vector<TupleId> s_ids;
      for (const auto& v : values) {
        HAMMING_ASSIGN_OR_RETURN(CodeTuple t, DecodeCodeTuple(v));
        if (t.table == Table::kR) {
          r_ids.push_back(t.id);
        } else {
          s_ids.push_back(t.id);
        }
      }
      for (TupleId r : r_ids) {
        for (TupleId s : s_ids) out->Emit({}, EncodeJoinPair({r, s}));
      }
      return Status::OK();
    };
    HAMMING_ASSIGN_OR_RETURN(mr::JobResult post_result,
                             RunJob(post_job, cluster));
    plan_counters.Merge(post_result.counters);
    HAMMING_ASSIGN_OR_RETURN(result.pairs,
                             CollectJoinPairs(post_result.outputs));
  }
  result.phase_seconds.join = watch.ElapsedSeconds();

  result.shuffle_bytes = plan_counters.Get(mr::kShuffleBytes);
  result.broadcast_bytes = plan_counters.Get(mr::kBroadcastBytes);
  return result;
}

}  // namespace hamming::mrjoin

#include "mrjoin/common.h"

namespace hamming::mrjoin {

mr::ExecutionOptions PlanJobOptions(const MRJoinOptions& opts,
                                    mr::PartitionFn partition_fn) {
  mr::ExecutionOptions exec = opts.exec;
  exec.num_reducers = opts.num_partitions;
  exec.partition_fn = std::move(partition_fn);
  return exec;
}

mr::PartitionFn PartitionKeyRouter() {
  return [](const std::vector<uint8_t>& key, std::size_t num_reducers) {
    auto part = DecodePartitionKey(key);
    return part.ok() ? static_cast<std::size_t>(*part) % num_reducers : 0u;
  };
}

std::vector<uint8_t> EncodeCodeTuple(const CodeTuple& t) {
  BufferWriter w;
  w.PutVarint64(static_cast<uint64_t>(t.table));
  w.PutVarint64(t.id);
  t.code.Serialize(&w);
  return w.Release();
}

Result<CodeTuple> DecodeCodeTuple(const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  CodeTuple t;
  uint64_t table, id;
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&table));
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&id));
  HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(&r, &t.code));
  t.table = static_cast<Table>(table);
  t.id = static_cast<TupleId>(id);
  return t;
}

std::vector<uint8_t> EncodeVectorTuple(const VectorTuple& t) {
  BufferWriter w;
  w.PutVarint64(static_cast<uint64_t>(t.table));
  w.PutVarint64(t.id);
  w.PutVarint64(t.vec.size());
  for (double v : t.vec) w.PutDouble(v);
  return w.Release();
}

Result<VectorTuple> DecodeVectorTuple(const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  VectorTuple t;
  uint64_t table, id, n;
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&table));
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&id));
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&n));
  t.table = static_cast<Table>(table);
  t.id = static_cast<TupleId>(id);
  t.vec.resize(n);
  for (double& v : t.vec) HAMMING_RETURN_NOT_OK(r.GetDouble(&v));
  return t;
}

std::vector<uint8_t> EncodeJoinPair(const JoinPair& p) {
  BufferWriter w;
  w.PutVarint64(p.r);
  w.PutVarint64(p.s);
  return w.Release();
}

Result<JoinPair> DecodeJoinPair(const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  uint64_t rid, sid;
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&rid));
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&sid));
  return JoinPair{static_cast<TupleId>(rid), static_cast<TupleId>(sid)};
}

std::vector<uint8_t> PartitionKey(uint32_t partition) {
  BufferWriter w;
  w.PutFixed32(partition);
  return w.Release();
}

Result<uint32_t> DecodePartitionKey(const std::vector<uint8_t>& key) {
  BufferReader r(key);
  uint32_t p;
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&p));
  return p;
}

std::vector<mr::Record> MatrixToRecords(const FloatMatrix& data,
                                        Table table) {
  std::vector<mr::Record> out;
  out.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    VectorTuple t;
    t.table = table;
    t.id = static_cast<TupleId>(i);
    auto row = data.Row(i);
    t.vec.assign(row.begin(), row.end());
    out.push_back({{}, EncodeVectorTuple(t)});
  }
  return out;
}

Result<std::vector<JoinPair>> CollectJoinPairs(
    const std::vector<std::vector<mr::Record>>& outputs) {
  std::vector<JoinPair> pairs;
  for (const auto& part : outputs) {
    for (const auto& rec : part) {
      HAMMING_ASSIGN_OR_RETURN(JoinPair p, DecodeJoinPair(rec.value));
      pairs.push_back(p);
    }
  }
  return pairs;
}

}  // namespace hamming::mrjoin

// Distributed Hamming-select over MapReduce.
//
// The paper's title covers select as well as join; its Section 5 spells
// out only the join pipeline, so this plan applies the same machinery to
// a *batch* of select queries: hash and range-partition the dataset by
// Gray pivots, H-Build a local HA-Index per partition, broadcast the
// query codes through the distributed cache, and let every reducer answer
// the whole batch against its local index (a Hamming ball crosses
// Gray-range boundaries, so queries go to all partitions while data moves
// exactly once).
#pragma once

#include "dataset/pivots.h"
#include "hashing/spectral_hashing.h"
#include "index/dynamic_ha_index.h"
#include "mrjoin/common.h"

namespace hamming::mrjoin {

/// \brief Plan configuration (shared knobs come from MRJoinOptions).
struct MrSelectOptions : MRJoinOptions {
  DynamicHAIndexOptions index;
};

/// \brief Outcome: per query, the ids of qualifying dataset tuples.
struct MrSelectResult {
  std::vector<std::vector<TupleId>> matches;  // indexed by query position
  int64_t shuffle_bytes = 0;
  int64_t broadcast_bytes = 0;
};

/// \brief Runs the distributed batch Hamming-select of `queries` (feature
/// vectors) against `data`.
Result<MrSelectResult> RunMrSelect(const FloatMatrix& data,
                                   const FloatMatrix& queries,
                                   const MrSelectOptions& opts,
                                   mr::Cluster* cluster);

}  // namespace hamming::mrjoin

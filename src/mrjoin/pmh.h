// PMH: parallel Hamming-join via MultiHashTable (Manku et al. [4]
// distributed as the paper describes in Section 2: "extends the
// sequential approach to MapReduce by broadcasting Table R into each
// server, then applying a sequential algorithm between R and S").
//
// The whole R code table is broadcast to every node (the heavy shuffle
// the paper criticizes), each reducer builds a k-table MultiHashTable
// index over it and probes with its partition of S.
#pragma once

#include "hashing/spectral_hashing.h"
#include "mrjoin/common.h"

namespace hamming::mrjoin {

/// \brief Plan configuration (shared knobs come from MRJoinOptions; the
/// inherited sample_rate is the hash-training sample).
struct PmhOptions : MRJoinOptions {
  std::size_t num_tables = 10;  // PMH-10 in the evaluation
  /// Optional pre-trained hash (see MrhaOptions::pretrained).
  std::shared_ptr<const SpectralHashing> pretrained;
};

/// \brief Outcome of a PMH join run.
struct PmhResult {
  std::vector<JoinPair> pairs;
  int64_t shuffle_bytes = 0;
  int64_t broadcast_bytes = 0;
};

/// \brief Runs the broadcast-R MultiHashTable Hamming-join.
Result<PmhResult> RunPmhJoin(const FloatMatrix& r_data,
                             const FloatMatrix& s_data,
                             const PmhOptions& opts, mr::Cluster* cluster);

}  // namespace hamming::mrjoin

// PGBJ (Lu, Shen, Chen, Ooi — VLDB'12): pivot-partitioned exact kNN-join
// over MapReduce, the exact baseline of Figures 7 and 9.
//
// Phase 1 (driver): sample pivots; derive, per Voronoi cell, the cell
// radius U_i and a conservative kNN-distance estimate theta from the
// sample.
//
// Phase 2 (one MapReduce job): every R tuple is routed to its nearest
// pivot's partition; every S tuple goes to its own cell and is
// *replicated* to any cell i with d(s, p_i) <= U_i + theta (triangle
// inequality: any s within theta of some r in cell i satisfies this).
// Reducers run a local exact kNN of their R tuples against the received S
// candidates. Because records carry full d-dimensional vectors and S is
// replicated, the shuffle grows with the dimensionality — the linear
// blow-up Figure 7 shows dominating the hash-based plans.
#pragma once

#include "mrjoin/common.h"

namespace hamming::mrjoin {

/// \brief Plan configuration. Inherits MRJoinOptions (num_partitions is
/// the number of pivots / Voronoi cells; PGBJ joins in the original
/// metric space, so the inherited code_bits/h are unused).
struct PgbjOptions : MRJoinOptions {
  PgbjOptions() { sample_rate = 0.05; }  // pivot/theta estimation sample
  std::size_t k = 50;
  /// Multiplier on the sampled kNN-distance estimate; larger = more
  /// replication = higher recall (2.0 reaches ~exact on our workloads).
  double theta_slack = 2.0;
};

/// \brief One kNN-join result: r tuple and its neighbour ids in S.
struct KnnJoinRow {
  TupleId r;
  std::vector<TupleId> neighbors;  // ascending true distance
};

/// \brief Outcome of a PGBJ run.
struct PgbjResult {
  std::vector<KnnJoinRow> rows;
  int64_t shuffle_bytes = 0;
  int64_t broadcast_bytes = 0;
};

/// \brief Runs the pivot-partitioned kNN-join of R with S.
Result<PgbjResult> RunPgbjJoin(const FloatMatrix& r_data,
                               const FloatMatrix& s_data,
                               const PgbjOptions& opts, mr::Cluster* cluster);

}  // namespace hamming::mrjoin

#include "serving/load_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/sync.h"
#include "observability/stopwatch.h"

namespace hamming::serving {

namespace {

/// Draws one request from the workload mix.
QueryRequest DrawRequest(const std::vector<BinaryCode>& pool,
                         const WorkloadOptions& workload, Rng* rng) {
  const auto pick = static_cast<std::size_t>(
      rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
  if (workload.knn_fraction > 0.0 && rng->Bernoulli(workload.knn_fraction)) {
    return QueryRequest::Knn(pool[pick], workload.k);
  }
  return QueryRequest::Range(pool[pick], workload.h);
}

/// Percentile by rank over an ascending-sorted sample vector.
double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Classifies one finished request into the report tallies.
void Tally(const ServeResult& r, double latency_us, LoadReport* report,
           std::vector<double>* latencies) {
  if (r.response.status.ok()) {
    ++report->completed;
    latencies->push_back(latency_us);
  } else if (r.response.status.IsDeadlineExceeded()) {
    ++report->expired;
  } else {
    ++report->failed;
  }
}

}  // namespace

LatencySummary LatencySummary::FromSamples(std::vector<double>* samples_us) {
  LatencySummary s;
  if (samples_us->empty()) return s;
  std::sort(samples_us->begin(), samples_us->end());
  s.count = samples_us->size();
  double sum = 0.0;
  for (double v : *samples_us) sum += v;
  s.mean_us = sum / static_cast<double>(s.count);
  s.p50_us = PercentileSorted(*samples_us, 0.50);
  s.p90_us = PercentileSorted(*samples_us, 0.90);
  s.p99_us = PercentileSorted(*samples_us, 0.99);
  s.p999_us = PercentileSorted(*samples_us, 0.999);
  s.max_us = samples_us->back();
  return s;
}

LoadReport RunClosedLoop(QueryEngine* engine,
                         const std::vector<BinaryCode>& pool,
                         const WorkloadOptions& workload, std::size_t clients,
                         std::size_t queries_per_client) {
  struct ClientResult {
    LoadReport partial;
    std::vector<double> latencies_us;
  };
  std::vector<ClientResult> per_client(std::max<std::size_t>(1, clients));
  obs::Stopwatch run_watch;
  {
    std::vector<Thread> threads;
    threads.reserve(per_client.size());
    for (std::size_t c = 0; c < per_client.size(); ++c) {
      threads.emplace_back([&, c] {
        ClientResult& mine = per_client[c];
        // Per-client seed: identical run-to-run, distinct across clients.
        Rng rng(workload.seed + 0x9e3779b97f4a7c15ull * (c + 1));
        mine.latencies_us.reserve(queries_per_client);
        for (std::size_t i = 0; i < queries_per_client; ++i) {
          ++mine.partial.attempted;
          obs::Stopwatch watch;
          auto got = engine->Serve(DrawRequest(pool, workload, &rng),
                                   /*index_id=*/0, workload.deadline);
          if (!got.ok()) {
            // Admission rejection surfaces as the Serve status itself.
            if (got.status().IsResourceExhausted()) {
              ++mine.partial.rejected;
            } else {
              ++mine.partial.failed;
            }
            continue;
          }
          Tally(*got, watch.ElapsedMicros(), &mine.partial,
                &mine.latencies_us);
        }
      });
    }
    for (Thread& t : threads) t.join();
  }

  LoadReport report;
  std::vector<double> all_latencies;
  for (ClientResult& cr : per_client) {
    report.attempted += cr.partial.attempted;
    report.completed += cr.partial.completed;
    report.rejected += cr.partial.rejected;
    report.expired += cr.partial.expired;
    report.failed += cr.partial.failed;
    all_latencies.insert(all_latencies.end(), cr.latencies_us.begin(),
                         cr.latencies_us.end());
  }
  report.elapsed_seconds = run_watch.ElapsedSeconds();
  report.achieved_qps =
      report.elapsed_seconds > 0.0
          ? static_cast<double>(report.completed) / report.elapsed_seconds
          : 0.0;
  report.latency = LatencySummary::FromSamples(&all_latencies);
  return report;
}

LoadReport RunOpenLoop(QueryEngine* engine,
                       const std::vector<BinaryCode>& pool,
                       const WorkloadOptions& workload, double offered_qps,
                       std::chrono::milliseconds duration) {
  LoadReport report;
  if (offered_qps <= 0.0 || duration.count() <= 0) return report;
  Rng rng(workload.seed);
  const auto interarrival = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / offered_qps));

  struct InFlight {
    std::chrono::steady_clock::time_point scheduled;
    std::future<ServeResult> future;
  };
  std::vector<InFlight> inflight;
  inflight.reserve(static_cast<std::size_t>(
      offered_qps * std::chrono::duration<double>(duration).count() + 16));

  obs::Stopwatch run_watch;
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + duration;
  auto next_arrival = start;
  while (next_arrival < end) {
    // Pace to the schedule: sleep until the next arrival instant. If the
    // dispatcher itself falls behind (submission is cheap, so only under
    // extreme rates), requests burst out back-to-back — the schedule,
    // not the engine, stays the arrival authority.
    const auto now = std::chrono::steady_clock::now();
    if (next_arrival > now) SleepFor(next_arrival - now);
    ++report.attempted;
    std::chrono::steady_clock::time_point deadline{};
    if (workload.deadline.count() > 0) {
      deadline = next_arrival + workload.deadline;
    }
    auto got = engine->Submit(DrawRequest(pool, workload, &rng),
                              /*index_id=*/0, deadline);
    if (!got.ok()) {
      if (got.status().IsResourceExhausted()) {
        ++report.rejected;
      } else {
        ++report.failed;
      }
    } else {
      inflight.push_back({next_arrival, std::move(*got)});
    }
    next_arrival += interarrival;
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(inflight.size());
  for (InFlight& f : inflight) {
    ServeResult r = f.future.get();
    // Latency from the scheduled arrival, so dispatcher lag cannot mask
    // server-side queueing (coordinated omission).
    const double latency_us =
        std::chrono::duration<double, std::micro>(r.completed_at -
                                                  f.scheduled)
            .count();
    Tally(r, latency_us, &report, &latencies_us);
  }
  report.elapsed_seconds = run_watch.ElapsedSeconds();
  report.achieved_qps =
      report.elapsed_seconds > 0.0
          ? static_cast<double>(report.completed) / report.elapsed_seconds
          : 0.0;
  report.latency = LatencySummary::FromSamples(&latencies_us);
  return report;
}

ChurnReport RunChurn(QueryEngine* engine, ConcurrentHAIndex* index,
                     const std::vector<BinaryCode>& pool,
                     const ChurnOptions& opts) {
  ChurnReport report;
  if (pool.empty()) return report;
  const std::size_t threads = std::max<std::size_t>(1, opts.threads);
  const std::size_t initial = index->size();
  const uint64_t epoch_start = index->epoch();
  const uint64_t rebuilds_start = index->rebuilds();

  struct WorkerResult {
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    LoadReport queries;  // attempted/completed/rejected/expired/failed
    std::vector<double> latencies_us;
  };
  std::vector<WorkerResult> per_worker(threads);

  obs::Stopwatch run_watch;
  {
    std::vector<Thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        WorkerResult& mine = per_worker[t];
        Rng rng(opts.workload.seed + 0xd1b54a32d192ed03ull * (t + 1));
        // Id sharding: this worker owns residue class t (mod threads) —
        // its slice of the initial corpus plus every id it mints.
        std::vector<std::pair<TupleId, BinaryCode>> owned;
        for (std::size_t i = t; i < initial; i += threads) {
          owned.emplace_back(static_cast<TupleId>(i), pool[i]);
        }
        TupleId next_id = static_cast<TupleId>(initial + t);
        for (std::size_t op = 0; op < opts.ops_per_thread; ++op) {
          const double draw = rng.UniformReal(0.0, 1.0);
          const bool want_insert = draw < opts.insert_fraction;
          const bool want_delete =
              !want_insert && draw < opts.insert_fraction +
                                         opts.delete_fraction;
          if (want_insert || (want_delete && owned.empty())) {
            const TupleId id = next_id;
            next_id += static_cast<TupleId>(threads);
            const BinaryCode& code = pool[id % pool.size()];
            if (index->Insert(id, code).ok()) {
              ++mine.inserts;
              owned.emplace_back(id, code);
            }
          } else if (want_delete) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.UniformInt(0, static_cast<int64_t>(owned.size()) - 1));
            if (index->Delete(owned[pick].first, owned[pick].second).ok()) {
              ++mine.deletes;
              owned[pick] = std::move(owned.back());
              owned.pop_back();
            }
          } else {
            ++mine.queries.attempted;
            obs::Stopwatch watch;
            auto got = engine->Serve(DrawRequest(pool, opts.workload, &rng),
                                     /*index_id=*/0, opts.workload.deadline);
            if (!got.ok()) {
              if (got.status().IsResourceExhausted()) {
                ++mine.queries.rejected;
              } else {
                ++mine.queries.failed;
              }
              continue;
            }
            Tally(*got, watch.ElapsedMicros(), &mine.queries,
                  &mine.latencies_us);
          }
        }
      });
    }
    for (Thread& w : workers) w.join();
  }

  std::vector<double> all_latencies;
  for (WorkerResult& wr : per_worker) {
    report.inserts += wr.inserts;
    report.deletes += wr.deletes;
    report.query_attempted += wr.queries.attempted;
    report.query_completed += wr.queries.completed;
    report.query_rejected += wr.queries.rejected;
    report.query_expired += wr.queries.expired;
    report.query_failed += wr.queries.failed;
    all_latencies.insert(all_latencies.end(), wr.latencies_us.begin(),
                         wr.latencies_us.end());
  }
  report.elapsed_seconds = run_watch.ElapsedSeconds();
  if (report.elapsed_seconds > 0.0) {
    report.query_qps =
        static_cast<double>(report.query_completed) / report.elapsed_seconds;
    report.mutations_per_second =
        static_cast<double>(report.inserts + report.deletes) /
        report.elapsed_seconds;
  }
  report.epochs_published = index->epoch() - epoch_start;
  report.rebuilds = index->rebuilds() - rebuilds_start;
  report.latency = LatencySummary::FromSamples(&all_latencies);
  return report;
}

}  // namespace hamming::serving

// Concurrent online query engine (the serving layer).
//
// Everything below src/serving/ is a library that answers one query (or
// one caller-assembled batch) at a time; this layer is what turns it
// into a *system*: a stream of independent range/kNN queries from many
// client threads is funneled through a bounded admission queue, coalesced
// by kind into batches, and executed by a worker pool against shared
// read-only HammingIndex instances via the batch-first index surface
// (SearchBatch / KnnBatch, index/query.h).
//
// Data flow:
//
//   clients --Submit()--> [bounded queue] --workers--> [batcher] -->
//     index->SearchBatch/KnnBatch --> per-request promises
//
// Admission control. Submit() rejects with Status::ResourceExhausted when
// (a) the queue already holds `queue_capacity` requests, or (b) a latency
// budget is configured and the EWMA of recently observed queue waits
// exceeds it while requests are still queued — load shedding: when the
// engine is provably behind, refusing new work at the door keeps the tail
// of the accepted work bounded instead of letting every request time out.
//
// Batching. A worker drains the longest FIFO prefix of the queue that
// targets the same (index, kind), up to `max_batch`, and issues ONE
// batched index call for it. That is where the kernel-level amortization
// (one streaming pass over the stored codes shared by every query in the
// batch — kernels::MultiWithinDistance / MultiKnn) is harvested across
// concurrent *clients*, not just across stored codes. Requests in a batch
// are independent, and the batch-first index contract guarantees each
// response is byte-identical to sequential execution, so coalescing is
// invisible to callers. An optional `batch_linger` lets a worker wait
// briefly for the queue to fill before dispatching a small batch —
// trading a bounded latency add for better amortization.
//
// Deadlines. Each request may carry an absolute deadline. A request that
// expires while queued is completed with Status::DeadlineExceeded without
// touching the index; one that expires *during* service has its results
// discarded and the same status set (the caller stopped waiting — the
// work is wasted either way, and the serving.deadline_expired counter
// records it). Queue wait is stamped into the response's
// QueryStats::serving_queue_nanos so work profiles and queueing delay
// travel together.
//
// Threading. Built exclusively on the annotated primitives of
// common/sync.h (the raw-sync lint ban and the TSan stage of
// scripts/check.sh keep it honest). The engine never mutates the indexes.
// A plain (externally synchronized) index must not be mutated by anyone
// else while the engine serves it — HammingIndex reads are const but not
// synchronized against writers. An *internally synchronized* index
// (ConcurrentHAIndex) lifts that restriction: its owner may run a live
// Insert/Delete stream while the engine serves queries. Because the
// engine issues exactly ONE batched index call per coalesced batch, such
// an index pins one published epoch snapshot for the whole batch — every
// request coalesced together observes the same point-in-time dataset
// (see index/concurrent_ha_index.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "index/hamming_index.h"
#include "index/query.h"
#include "observability/metrics.h"
#include "observability/query_log.h"
#include "observability/query_stats.h"
#include "observability/request_trace.h"
#include "observability/trace.h"

namespace hamming::serving {

/// \brief Tuning knobs of a QueryEngine.
struct QueryEngineOptions {
  /// Worker threads executing batched index calls.
  std::size_t num_workers = 4;
  /// Maximum queued (admitted, not yet executing) requests; Submit
  /// beyond this rejects with kResourceExhausted.
  std::size_t queue_capacity = 1024;
  /// Maximum requests coalesced into one batched index call.
  std::size_t max_batch = 32;
  /// How long a worker may hold a non-full batch open waiting for more
  /// same-kind requests. Zero = dispatch immediately (latency-first).
  std::chrono::microseconds batch_linger{0};
  /// Queue-wait EWMA above which Submit sheds new requests while the
  /// queue is non-empty. Zero = shedding disabled (queue capacity is
  /// then the only admission limit).
  std::chrono::microseconds latency_budget{0};
  /// Smoothing factor of the queue-wait EWMA in (0, 1]; higher reacts
  /// faster to load changes.
  double ewma_alpha = 0.2;
  /// Optional registry receiving the serving.* metrics and the
  /// serving.query.* per-request work histograms. May be null.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional request tracer. When set, every request gets a trace id
  /// and phase timestamps; head-sampled (1-in-N, deterministic in the
  /// sampler seed) and slow (past the sampler's slow_threshold, tail
  /// capture) requests are exported to `trace` and flagged in
  /// `query_log`. Null = per-request tracing off, zero cost.
  obs::TraceSampler* sampler = nullptr;
  /// Where sampled request spans render: an auxiliary "serving" process
  /// on the Chrome/Perfetto timeline, one thread lane per worker.
  /// Only consulted when `sampler` is set. May be null.
  obs::TraceCollector* trace = nullptr;
  /// Optional sampled exemplar log; every completed (or expired)
  /// request is offered, the log's reservoir/slow policy decides what
  /// is kept. Span breakdowns are attached when `sampler` is set.
  obs::QueryLog* query_log = nullptr;
};

/// \brief What the engine hands back for one request.
struct ServeResult {
  QueryResponse response;
  /// Time spent in the admission queue before the batch was formed
  /// (also stamped into response.stats.serving_queue_nanos).
  std::chrono::nanoseconds queue_wait{0};
  /// Wall time of the batched index call that served this request.
  std::chrono::nanoseconds service_time{0};
  /// How many requests shared that index call (>= 1).
  std::size_t batch_size = 0;
  /// When the engine completed the request (steady clock) — lets
  /// open-loop load generators compute latency from the *scheduled*
  /// arrival without a harvest thread per request.
  std::chrono::steady_clock::time_point completed_at{};
};

/// \brief Monotonic totals since Start (reads are racy-free snapshots).
struct ServingCounters {
  uint64_t accepted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_latency = 0;   // shed by the latency budget
  uint64_t deadline_expired = 0;   // queued or in-service expiries
  uint64_t batches = 0;            // batched index calls issued
  uint64_t batched_queries = 0;    // requests served through those calls
};

/// \brief The concurrent serving engine over shared HammingIndex
/// instances. Const index access only; engine lifetime must sit inside
/// the indexes' lifetime.
class QueryEngine {
 public:
  /// \brief Serves the given read-only indexes. `indexes` must be
  /// non-empty and the pointers non-null and valid until Shutdown.
  QueryEngine(std::vector<const HammingIndex*> indexes,
              QueryEngineOptions opts);
  /// \brief Single-index convenience.
  QueryEngine(const HammingIndex* index, QueryEngineOptions opts)
      : QueryEngine(std::vector<const HammingIndex*>{index},
                    std::move(opts)) {}
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// \brief Spawns the worker pool. Requests submitted before Start sit
  /// in the queue (subject to admission control) until workers exist.
  Status Start();

  /// \brief Stops accepting work, drains every queued request, joins the
  /// workers. Requests still queued when Shutdown is called ARE served
  /// (drain-on-shutdown); requests submitted after it are rejected.
  /// Idempotent. If Start was never called, queued requests are failed
  /// instead (there is nobody to serve them): a request whose deadline
  /// has already passed completes with kDeadlineExceeded — exactly what
  /// a worker drain would report — and the rest with kResourceExhausted.
  /// Either way every admitted request's future is completed; none are
  /// dropped and none are served after their deadline.
  void Shutdown();

  /// \brief Enqueues one query against indexes()[index_id]. Returns the
  /// future carrying the ServeResult, or a non-OK status when admission
  /// control rejects (kResourceExhausted) or index_id is out of range
  /// (kInvalidArgument). `deadline` of time_point{} (the default) means
  /// no deadline.
  Result<std::future<ServeResult>> Submit(
      QueryRequest req, std::size_t index_id = 0,
      std::chrono::steady_clock::time_point deadline = {});

  /// \brief Submit + wait: serves one query synchronously, with an
  /// optional relative timeout that becomes the request's deadline.
  Result<ServeResult> Serve(QueryRequest req, std::size_t index_id = 0,
                            std::chrono::microseconds timeout =
                                std::chrono::microseconds{0});

  ServingCounters counters() const;
  std::size_t num_indexes() const { return indexes_.size(); }
  const QueryEngineOptions& options() const { return opts_; }

  /// \brief Test-only: overwrites the queue-wait EWMA (microseconds) so
  /// latency-budget shedding can be exercised deterministically without
  /// staging a real convoy.
  void SetQueueWaitEwmaForTest(double ewma_us);

 private:
  struct Pending {
    std::size_t index_id = 0;
    QueryRequest req;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    // Telemetry identity (zero / unset when no sampler is configured).
    uint64_t trace_id = 0;
    bool head_sampled = false;
    std::chrono::steady_clock::time_point gathered{};
  };

  /// Phase boundaries of one request's trip through a batch, for span
  /// assembly (all on the steady clock).
  struct RequestTiming {
    std::chrono::steady_clock::time_point exec_start{};
    std::chrono::steady_clock::time_point svc_start{};
    std::chrono::steady_clock::time_point svc_end{};
    std::chrono::steady_clock::time_point done{};
  };

  struct Metrics {
    obs::MetricId queue_wait_us = obs::kOverflowMetric;
    obs::MetricId service_us = obs::kOverflowMetric;
    obs::MetricId e2e_us = obs::kOverflowMetric;
    obs::MetricId batch_size = obs::kOverflowMetric;
    obs::MetricId accepted = obs::kOverflowMetric;
    obs::MetricId rejected_queue_full = obs::kOverflowMetric;
    obs::MetricId rejected_latency = obs::kOverflowMetric;
    obs::MetricId deadline_expired = obs::kOverflowMetric;
    obs::MetricId batches = obs::kOverflowMetric;
    obs::MetricId queue_depth_peak = obs::kOverflowMetric;
    obs::QueryStatsHistograms query_hists;
  };

  void WorkerLoop(uint32_t worker_id);
  /// Pops the longest same-(index, kind) FIFO prefix (up to max_batch)
  /// off the queue. Caller holds mu_.
  void GatherBatchLocked(std::vector<std::unique_ptr<Pending>>* batch)
      HAMMING_REQUIRES(mu_);
  /// Executes one gathered batch outside the lock and fulfills its
  /// promises. `worker_id` labels the trace lane.
  void ExecuteBatch(std::vector<std::unique_ptr<Pending>> batch,
                    uint32_t worker_id);
  /// Completes one request with a terminal status (no index call).
  void FailPending(std::unique_ptr<Pending> p, Status status,
                   std::size_t batch_size);
  /// Assembles one request's span stack and offers it to the configured
  /// trace (head-sampled or slow only) and query log (every request).
  /// No-op unless a sampler is configured.
  void RecordRequestTelemetry(const Pending& p, char kind, uint64_t param,
                              bool ok, const obs::QueryStats& stats,
                              std::size_t batch_size, uint32_t worker_id,
                              const RequestTiming& t,
                              const std::vector<obs::RequestSpan>& pin_spans);

  const std::vector<const HammingIndex*> indexes_;
  const QueryEngineOptions opts_;
  Metrics metrics_;

  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_ HAMMING_GUARDED_BY(mu_);
  bool started_ HAMMING_GUARDED_BY(mu_) = false;
  bool stopping_ HAMMING_GUARDED_BY(mu_) = false;
  double ewma_queue_wait_us_ HAMMING_GUARDED_BY(mu_) = 0.0;
  ServingCounters counters_ HAMMING_GUARDED_BY(mu_);
  std::vector<Thread> workers_;  // mutated only by Start/Shutdown
};

}  // namespace hamming::serving

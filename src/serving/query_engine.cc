#include "serving/query_engine.h"

#include <algorithm>

#include "observability/stopwatch.h"

namespace hamming::serving {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point{};

bool HasDeadline(std::chrono::steady_clock::time_point d) {
  return d != kNoDeadline;
}

uint64_t ToMicros(std::chrono::nanoseconds d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

}  // namespace

QueryEngine::QueryEngine(std::vector<const HammingIndex*> indexes,
                         QueryEngineOptions opts)
    : indexes_(std::move(indexes)), opts_(std::move(opts)) {
  obs::MetricsRegistry* reg = opts_.metrics;
  if (reg != nullptr) {
    metrics_.queue_wait_us = reg->Histogram("serving.queue_wait_us");
    metrics_.service_us = reg->Histogram("serving.service_us");
    metrics_.e2e_us = reg->Histogram("serving.e2e_us");
    metrics_.batch_size = reg->Histogram("serving.batch_size");
    metrics_.accepted = reg->Counter("serving.accepted");
    metrics_.rejected_queue_full = reg->Counter("serving.rejected_queue_full");
    metrics_.rejected_latency = reg->Counter("serving.rejected_latency");
    metrics_.deadline_expired = reg->Counter("serving.deadline_expired");
    metrics_.batches = reg->Counter("serving.batches");
    metrics_.queue_depth_peak = reg->Gauge("serving.queue_depth_peak");
    metrics_.query_hists =
        obs::QueryStatsHistograms::Register(reg, "serving.query");
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

Status QueryEngine::Start() {
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::InvalidArgument("engine already shut down");
    }
    if (started_) return Status::OK();
    started_ = true;
  }
  const std::size_t n = std::max<std::size_t>(1, opts_.num_workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void QueryEngine::Shutdown() {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    MutexLock lock(&mu_);
    if (stopping_) return;
    stopping_ = true;
    if (!started_) {
      // Nobody will ever drain the queue; fail the waiters now instead
      // of leaving their futures hanging.
      orphans.swap(queue_);
    }
  }
  queue_cv_.NotifyAll();
  uint64_t expired = 0;
  const auto drain_now = std::chrono::steady_clock::now();
  for (auto& p : orphans) {
    // A request whose deadline has already passed completes with the
    // same DeadlineExceeded it would have gotten from a worker drain —
    // the shutdown path must not relabel (or outlive) an expiry.
    if (HasDeadline(p->deadline) && drain_now > p->deadline) {
      ++expired;
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.deadline_expired, 1);
      FailPending(std::move(p),
                  Status::DeadlineExceeded("deadline expired in queue"),
                  /*batch_size=*/0);
    } else {
      FailPending(std::move(p),
                  Status::ResourceExhausted("engine shut down before Start"),
                  /*batch_size=*/0);
    }
  }
  if (expired > 0) {
    MutexLock lock(&mu_);
    counters_.deadline_expired += expired;
  }
  for (Thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

Result<std::future<ServeResult>> QueryEngine::Submit(
    QueryRequest req, std::size_t index_id,
    std::chrono::steady_clock::time_point deadline) {
  if (index_id >= indexes_.size()) {
    return Status::InvalidArgument("index_id out of range");
  }
  auto pending = std::make_unique<Pending>();
  pending->index_id = index_id;
  pending->req = std::move(req);
  pending->enqueued = std::chrono::steady_clock::now();
  pending->deadline = deadline;
  std::future<ServeResult> fut = pending->promise.get_future();
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::ResourceExhausted("engine is shutting down");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++counters_.rejected_queue_full;
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.rejected_queue_full, 1);
      return Status::ResourceExhausted(
          "serving queue full (" + std::to_string(opts_.queue_capacity) +
          " requests)");
    }
    if (opts_.latency_budget.count() > 0 && !queue_.empty() &&
        ewma_queue_wait_us_ >
            static_cast<double>(opts_.latency_budget.count())) {
      ++counters_.rejected_latency;
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.rejected_latency, 1);
      return Status::ResourceExhausted("latency budget exceeded (ewma wait)");
    }
    queue_.push_back(std::move(pending));
    ++counters_.accepted;
    HAMMING_METRIC_ADD(opts_.metrics, metrics_.accepted, 1);
    HAMMING_METRIC_SET(opts_.metrics, metrics_.queue_depth_peak,
                       static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.NotifyOne();
  return fut;
}

Result<ServeResult> QueryEngine::Serve(QueryRequest req, std::size_t index_id,
                                       std::chrono::microseconds timeout) {
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  if (timeout.count() > 0) {
    deadline = std::chrono::steady_clock::now() + timeout;
  }
  HAMMING_ASSIGN_OR_RETURN(std::future<ServeResult> fut,
                           Submit(std::move(req), index_id, deadline));
  return fut.get();
}

ServingCounters QueryEngine::counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

void QueryEngine::SetQueueWaitEwmaForTest(double ewma_us) {
  MutexLock lock(&mu_);
  ewma_queue_wait_us_ = ewma_us;
}

void QueryEngine::GatherBatchLocked(
    std::vector<std::unique_ptr<Pending>>* batch) {
  const auto now = std::chrono::steady_clock::now();
  const std::size_t key_index = queue_.front()->index_id;
  const QueryKind key_kind = queue_.front()->req.kind;
  while (!queue_.empty() && batch->size() < opts_.max_batch &&
         queue_.front()->index_id == key_index &&
         queue_.front()->req.kind == key_kind) {
    std::unique_ptr<Pending> p = std::move(queue_.front());
    queue_.pop_front();
    const double wait_us = static_cast<double>(ToMicros(now - p->enqueued));
    ewma_queue_wait_us_ = opts_.ewma_alpha * wait_us +
                          (1.0 - opts_.ewma_alpha) * ewma_queue_wait_us_;
    batch->push_back(std::move(p));
  }
}

void QueryEngine::WorkerLoop() {
  std::vector<std::unique_ptr<Pending>> batch;
  mu_.Lock();
  for (;;) {
    while (queue_.empty() && !stopping_) queue_cv_.Wait(&mu_);
    if (queue_.empty() && stopping_) break;  // drained; time to go
    batch.clear();
    GatherBatchLocked(&batch);
    if (opts_.batch_linger.count() > 0 && batch.size() < opts_.max_batch &&
        !stopping_) {
      // Hold the batch open briefly: more same-kind arrivals amortize
      // the index call further, and the linger bounds the latency cost.
      const auto linger_until =
          std::chrono::steady_clock::now() + opts_.batch_linger;
      while (batch.size() < opts_.max_batch && !stopping_) {
        if (!queue_.empty()) {
          if (queue_.front()->index_id != batch.front()->index_id ||
              queue_.front()->req.kind != batch.front()->req.kind) {
            break;  // different stream; let the next worker have it
          }
          GatherBatchLocked(&batch);
          continue;
        }
        if (queue_cv_.WaitUntil(&mu_, linger_until)) break;  // timed out
      }
    }
    mu_.Unlock();
    ExecuteBatch(std::move(batch));
    batch.clear();
    mu_.Lock();
  }
  mu_.Unlock();
}

void QueryEngine::FailPending(std::unique_ptr<Pending> p, Status status,
                              std::size_t batch_size) {
  const auto now = std::chrono::steady_clock::now();
  ServeResult r;
  r.response.status = std::move(status);
  r.queue_wait = now - p->enqueued;
  r.response.stats.serving_queue_nanos =
      static_cast<uint64_t>(r.queue_wait.count());
  r.batch_size = batch_size;
  r.completed_at = now;
  HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.queue_wait_us,
                         ToMicros(r.queue_wait));
  HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.e2e_us,
                         ToMicros(now - p->enqueued));
  p->promise.set_value(std::move(r));
}

void QueryEngine::ExecuteBatch(std::vector<std::unique_ptr<Pending>> batch) {
  if (batch.empty()) return;
  const auto exec_start = std::chrono::steady_clock::now();

  // Queued expiries never reach the index.
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  uint64_t expired = 0;
  for (auto& p : batch) {
    if (HasDeadline(p->deadline) && exec_start > p->deadline) {
      ++expired;
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.deadline_expired, 1);
      FailPending(std::move(p),
                  Status::DeadlineExceeded("deadline expired in queue"),
                  /*batch_size=*/0);
    } else {
      live.push_back(std::move(p));
    }
  }

  uint64_t in_service_expired = 0;
  if (!live.empty()) {
    const std::size_t n = live.size();
    const HammingIndex* index = indexes_[live.front()->index_id];
    const QueryKind kind = live.front()->req.kind;
    std::vector<QueryRequest> requests;
    requests.reserve(n);
    for (auto& p : live) requests.push_back(std::move(p->req));
    std::vector<QueryResponse> responses(n);

    obs::Stopwatch service_watch;
    Status batch_status =
        kind == QueryKind::kKnn
            ? index->KnnBatch({requests.data(), n}, {responses.data(), n})
            : index->SearchBatch({requests.data(), n}, {responses.data(), n});
    const auto service_time = std::chrono::nanoseconds(
        static_cast<int64_t>(service_watch.ElapsedNanos()));
    const auto done = std::chrono::steady_clock::now();

    HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.batch_size, n);
    for (std::size_t i = 0; i < n; ++i) {
      std::unique_ptr<Pending> p = std::move(live[i]);
      ServeResult r;
      r.response = std::move(responses[i]);
      if (!batch_status.ok() && r.response.status.ok()) {
        r.response.status = batch_status;
      }
      if (HasDeadline(p->deadline) && done > p->deadline &&
          r.response.status.ok()) {
        // Expired mid-service: the caller has stopped waiting, so the
        // results are discarded and the expiry recorded.
        r.response.ids.clear();
        r.response.distances.clear();
        r.response.has_distances = false;
        r.response.neighbors.clear();
        r.response.status =
            Status::DeadlineExceeded("deadline expired during service");
        ++in_service_expired;
        HAMMING_METRIC_ADD(opts_.metrics, metrics_.deadline_expired, 1);
      }
      r.queue_wait = exec_start - p->enqueued;
      r.response.stats.serving_queue_nanos =
          static_cast<uint64_t>(r.queue_wait.count());
      r.service_time = service_time;
      r.batch_size = n;
      r.completed_at = done;
      HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.queue_wait_us,
                             ToMicros(r.queue_wait));
      HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.service_us,
                             ToMicros(service_time));
      HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.e2e_us,
                             ToMicros(done - p->enqueued));
      if (opts_.metrics != nullptr) {
        metrics_.query_hists.Observe(opts_.metrics, r.response.stats);
      }
      p->promise.set_value(std::move(r));
    }
  }

  MutexLock lock(&mu_);
  counters_.deadline_expired += expired + in_service_expired;
  if (!live.empty()) {
    ++counters_.batches;
    counters_.batched_queries += live.size();
    HAMMING_METRIC_ADD(opts_.metrics, metrics_.batches, 1);
  }
}

}  // namespace hamming::serving

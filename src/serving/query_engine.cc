#include "serving/query_engine.h"

#include <algorithm>

#include "observability/metric_names.h"

namespace hamming::serving {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point{};

bool HasDeadline(std::chrono::steady_clock::time_point d) {
  return d != kNoDeadline;
}

uint64_t ToMicros(std::chrono::nanoseconds d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

// Steady time_point <-> the RequestSpan nanosecond timebase
// (steady-clock nanos since epoch, see obs::RequestTraceNowNs).
uint64_t ToSpanNs(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

std::chrono::steady_clock::time_point FromSpanNs(uint64_t ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

}  // namespace

QueryEngine::QueryEngine(std::vector<const HammingIndex*> indexes,
                         QueryEngineOptions opts)
    : indexes_(std::move(indexes)), opts_(std::move(opts)) {
  obs::MetricsRegistry* reg = opts_.metrics;
  if (reg != nullptr) {
    namespace mn = obs::metric_names;
    metrics_.queue_wait_us = reg->Histogram(mn::kServingQueueWaitUs);
    metrics_.service_us = reg->Histogram(mn::kServingServiceUs);
    metrics_.e2e_us = reg->Histogram(mn::kServingE2eUs);
    metrics_.batch_size = reg->Histogram(mn::kServingBatchSize);
    metrics_.accepted = reg->Counter(mn::kServingAccepted);
    metrics_.rejected_queue_full = reg->Counter(mn::kServingRejectedQueueFull);
    metrics_.rejected_latency = reg->Counter(mn::kServingRejectedLatency);
    metrics_.deadline_expired = reg->Counter(mn::kServingDeadlineExpired);
    metrics_.batches = reg->Counter(mn::kServingBatches);
    metrics_.queue_depth_peak = reg->Gauge(mn::kServingQueueDepthPeak);
    metrics_.query_hists =
        obs::QueryStatsHistograms::Register(reg, "serving.query");
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

Status QueryEngine::Start() {
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::InvalidArgument("engine already shut down");
    }
    if (started_) return Status::OK();
    started_ = true;
  }
  const std::size_t n = std::max<std::size_t>(1, opts_.num_workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (opts_.sampler != nullptr && opts_.trace != nullptr) {
      opts_.trace->NameProcessThread("serving", static_cast<uint32_t>(i),
                                     "worker-" + std::to_string(i));
    }
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<uint32_t>(i)); });
  }
  return Status::OK();
}

void QueryEngine::Shutdown() {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    MutexLock lock(&mu_);
    if (stopping_) return;
    stopping_ = true;
    if (!started_) {
      // Nobody will ever drain the queue; fail the waiters now instead
      // of leaving their futures hanging.
      orphans.swap(queue_);
    }
  }
  queue_cv_.NotifyAll();
  const auto drain_now = std::chrono::steady_clock::now();
  const auto is_expired = [&](const std::unique_ptr<Pending>& p) {
    return HasDeadline(p->deadline) && drain_now > p->deadline;
  };
  // Counters are updated before any promise is fulfilled (same rule as
  // ExecuteBatch): a caller waking from get() must see its own expiry.
  uint64_t expired = 0;
  for (const auto& p : orphans) expired += is_expired(p) ? 1 : 0;
  if (expired > 0) {
    MutexLock lock(&mu_);
    counters_.deadline_expired += expired;
  }
  for (auto& p : orphans) {
    // A request whose deadline has already passed completes with the
    // same DeadlineExceeded it would have gotten from a worker drain —
    // the shutdown path must not relabel (or outlive) an expiry.
    if (is_expired(p)) {
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.deadline_expired, 1);
      FailPending(std::move(p),
                  Status::DeadlineExceeded("deadline expired in queue"),
                  /*batch_size=*/0);
    } else {
      FailPending(std::move(p),
                  Status::ResourceExhausted("engine shut down before Start"),
                  /*batch_size=*/0);
    }
  }
  for (Thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

Result<std::future<ServeResult>> QueryEngine::Submit(
    QueryRequest req, std::size_t index_id,
    std::chrono::steady_clock::time_point deadline) {
  if (index_id >= indexes_.size()) {
    return Status::InvalidArgument("index_id out of range");
  }
  auto pending = std::make_unique<Pending>();
  pending->index_id = index_id;
  pending->req = std::move(req);
  pending->enqueued = std::chrono::steady_clock::now();
  pending->deadline = deadline;
  if (opts_.sampler != nullptr) {
    pending->trace_id = opts_.sampler->NextTraceId();
    pending->head_sampled = opts_.sampler->HeadSampled(pending->trace_id);
  }
  std::future<ServeResult> fut = pending->promise.get_future();
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::ResourceExhausted("engine is shutting down");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++counters_.rejected_queue_full;
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.rejected_queue_full, 1);
      return Status::ResourceExhausted(
          "serving queue full (" + std::to_string(opts_.queue_capacity) +
          " requests)");
    }
    if (opts_.latency_budget.count() > 0 && !queue_.empty() &&
        ewma_queue_wait_us_ >
            static_cast<double>(opts_.latency_budget.count())) {
      ++counters_.rejected_latency;
      HAMMING_METRIC_ADD(opts_.metrics, metrics_.rejected_latency, 1);
      return Status::ResourceExhausted("latency budget exceeded (ewma wait)");
    }
    queue_.push_back(std::move(pending));
    ++counters_.accepted;
    HAMMING_METRIC_ADD(opts_.metrics, metrics_.accepted, 1);
    HAMMING_METRIC_SET(opts_.metrics, metrics_.queue_depth_peak,
                       static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.NotifyOne();
  return fut;
}

Result<ServeResult> QueryEngine::Serve(QueryRequest req, std::size_t index_id,
                                       std::chrono::microseconds timeout) {
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  if (timeout.count() > 0) {
    deadline = std::chrono::steady_clock::now() + timeout;
  }
  HAMMING_ASSIGN_OR_RETURN(std::future<ServeResult> fut,
                           Submit(std::move(req), index_id, deadline));
  return fut.get();
}

ServingCounters QueryEngine::counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

void QueryEngine::SetQueueWaitEwmaForTest(double ewma_us) {
  MutexLock lock(&mu_);
  ewma_queue_wait_us_ = ewma_us;
}

void QueryEngine::GatherBatchLocked(
    std::vector<std::unique_ptr<Pending>>* batch) {
  const auto now = std::chrono::steady_clock::now();
  const std::size_t key_index = queue_.front()->index_id;
  const QueryKind key_kind = queue_.front()->req.kind;
  while (!queue_.empty() && batch->size() < opts_.max_batch &&
         queue_.front()->index_id == key_index &&
         queue_.front()->req.kind == key_kind) {
    std::unique_ptr<Pending> p = std::move(queue_.front());
    queue_.pop_front();
    p->gathered = now;
    const double wait_us = static_cast<double>(ToMicros(now - p->enqueued));
    ewma_queue_wait_us_ = opts_.ewma_alpha * wait_us +
                          (1.0 - opts_.ewma_alpha) * ewma_queue_wait_us_;
    batch->push_back(std::move(p));
  }
}

void QueryEngine::WorkerLoop(uint32_t worker_id) {
  std::vector<std::unique_ptr<Pending>> batch;
  mu_.Lock();
  for (;;) {
    while (queue_.empty() && !stopping_) queue_cv_.Wait(&mu_);
    if (queue_.empty() && stopping_) break;  // drained; time to go
    batch.clear();
    GatherBatchLocked(&batch);
    if (opts_.batch_linger.count() > 0 && batch.size() < opts_.max_batch &&
        !stopping_) {
      // Hold the batch open briefly: more same-kind arrivals amortize
      // the index call further, and the linger bounds the latency cost.
      const auto linger_until =
          std::chrono::steady_clock::now() + opts_.batch_linger;
      while (batch.size() < opts_.max_batch && !stopping_) {
        if (!queue_.empty()) {
          if (queue_.front()->index_id != batch.front()->index_id ||
              queue_.front()->req.kind != batch.front()->req.kind) {
            break;  // different stream; let the next worker have it
          }
          GatherBatchLocked(&batch);
          continue;
        }
        if (queue_cv_.WaitUntil(&mu_, linger_until)) break;  // timed out
      }
    }
    mu_.Unlock();
    ExecuteBatch(std::move(batch), worker_id);
    batch.clear();
    mu_.Lock();
  }
  mu_.Unlock();
}

void QueryEngine::FailPending(std::unique_ptr<Pending> p, Status status,
                              std::size_t batch_size) {
  const auto now = std::chrono::steady_clock::now();
  ServeResult r;
  r.response.status = std::move(status);
  r.queue_wait = now - p->enqueued;
  r.response.stats.serving_queue_nanos =
      static_cast<uint64_t>(r.queue_wait.count());
  r.batch_size = batch_size;
  r.completed_at = now;
  HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.queue_wait_us,
                         ToMicros(r.queue_wait));
  HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.e2e_us,
                         ToMicros(now - p->enqueued));
  p->promise.set_value(std::move(r));
}

void QueryEngine::ExecuteBatch(std::vector<std::unique_ptr<Pending>> batch,
                               uint32_t worker_id) {
  if (batch.empty()) return;
  const auto exec_start = std::chrono::steady_clock::now();

  // Queued expiries never reach the index.
  std::vector<std::unique_ptr<Pending>> live;
  std::vector<std::unique_ptr<Pending>> dead;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (HasDeadline(p->deadline) && exec_start > p->deadline) {
      dead.push_back(std::move(p));
    } else {
      live.push_back(std::move(p));
    }
  }
  // Counters are updated BEFORE the promises are fulfilled: a caller
  // that wakes from get() must already see its own expiry in
  // counters(), or the count is racy from the caller's point of view.
  if (!dead.empty()) {
    MutexLock lock(&mu_);
    counters_.deadline_expired += dead.size();
  }
  for (auto& p : dead) {
    HAMMING_METRIC_ADD(opts_.metrics, metrics_.deadline_expired, 1);
    // An expired request still belongs in the exemplar log — a
    // calibration corpus that omits the requests the engine gave up
    // on would under-represent exactly the overload it must model.
    const char kind = p->req.kind == QueryKind::kKnn ? 'k' : 'r';
    const uint64_t param =
        p->req.kind == QueryKind::kKnn ? p->req.k : p->req.h;
    RequestTiming t;
    t.exec_start = exec_start;
    t.svc_start = exec_start;
    t.svc_end = exec_start;
    t.done = std::chrono::steady_clock::now();
    RecordRequestTelemetry(*p, kind, param, /*ok=*/false,
                           obs::QueryStats{}, /*batch_size=*/0, worker_id,
                           t, {});
    FailPending(std::move(p),
                Status::DeadlineExceeded("deadline expired in queue"),
                /*batch_size=*/0);
  }
  if (!live.empty()) {
    const std::size_t n = live.size();
    const HammingIndex* index = indexes_[live.front()->index_id];
    const QueryKind kind = live.front()->req.kind;
    std::vector<QueryRequest> requests;
    requests.reserve(n);
    for (auto& p : live) requests.push_back(std::move(p->req));
    std::vector<QueryResponse> responses(n);

    // Record spans emitted below the serving layer (the epoch pin of a
    // concurrent index) for the duration of the batched call. Installed
    // only when tracing is on, so the untraced path stays span-free.
    obs::SpanSink pin_sink;
    const auto svc_start = std::chrono::steady_clock::now();
    Status batch_status;
    {
      obs::SpanSinkScope sink_scope(opts_.sampler != nullptr ? &pin_sink
                                                             : nullptr);
      batch_status =
          kind == QueryKind::kKnn
              ? index->KnnBatch({requests.data(), n}, {responses.data(), n})
              : index->SearchBatch({requests.data(), n}, {responses.data(), n});
    }
    const auto svc_end = std::chrono::steady_clock::now();
    const auto service_time = svc_end - svc_start;
    const auto done = svc_end;

    // Same ordering rule as the queued expiries above: classify
    // mid-service expiries and publish every counter this batch will
    // bump before any promise is fulfilled.
    std::vector<bool> expired_mid(n, false);
    uint64_t in_service_expired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (HasDeadline(live[i]->deadline) && done > live[i]->deadline &&
          batch_status.ok() && responses[i].status.ok()) {
        expired_mid[i] = true;
        ++in_service_expired;
      }
    }
    {
      MutexLock lock(&mu_);
      counters_.deadline_expired += in_service_expired;
      ++counters_.batches;
      counters_.batched_queries += n;
    }
    HAMMING_METRIC_ADD(opts_.metrics, metrics_.batches, 1);

    HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.batch_size, n);
    for (std::size_t i = 0; i < n; ++i) {
      std::unique_ptr<Pending> p = std::move(live[i]);
      ServeResult r;
      r.response = std::move(responses[i]);
      if (!batch_status.ok() && r.response.status.ok()) {
        r.response.status = batch_status;
      }
      if (expired_mid[i]) {
        // Expired mid-service: the caller has stopped waiting, so the
        // results are discarded and the expiry recorded.
        r.response.ids.clear();
        r.response.distances.clear();
        r.response.has_distances = false;
        r.response.neighbors.clear();
        r.response.status =
            Status::DeadlineExceeded("deadline expired during service");
        HAMMING_METRIC_ADD(opts_.metrics, metrics_.deadline_expired, 1);
      }
      r.queue_wait = exec_start - p->enqueued;
      r.response.stats.serving_queue_nanos =
          static_cast<uint64_t>(r.queue_wait.count());
      r.service_time = service_time;
      r.batch_size = n;
      r.completed_at = done;
      HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.queue_wait_us,
                             ToMicros(r.queue_wait));
      HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.service_us,
                             ToMicros(service_time));
      HAMMING_METRIC_OBSERVE(opts_.metrics, metrics_.e2e_us,
                             ToMicros(done - p->enqueued));
      if (opts_.metrics != nullptr) {
        metrics_.query_hists.Observe(opts_.metrics, r.response.stats);
      }
      const char kind_c = kind == QueryKind::kKnn ? 'k' : 'r';
      const uint64_t param =
          kind == QueryKind::kKnn ? requests[i].k : requests[i].h;
      RequestTiming t;
      t.exec_start = exec_start;
      t.svc_start = svc_start;
      t.svc_end = svc_end;
      t.done = done;
      RecordRequestTelemetry(*p, kind_c, param, r.response.status.ok(),
                             r.response.stats, n, worker_id, t,
                             pin_sink.spans());
      p->promise.set_value(std::move(r));
    }
  }
}

void QueryEngine::RecordRequestTelemetry(
    const Pending& p, char kind, uint64_t param, bool ok,
    const obs::QueryStats& stats, std::size_t batch_size, uint32_t worker_id,
    const RequestTiming& t, const std::vector<obs::RequestSpan>& pin_spans) {
  if (opts_.sampler == nullptr) return;
  const auto e2e = t.done - p.enqueued;
  const bool slow = opts_.sampler->Slow(
      std::chrono::duration_cast<std::chrono::nanoseconds>(e2e));

  // Assemble the span stack in phase order. `gathered` is unset when a
  // request expired before any worker picked it up; the queue span then
  // runs to exec_start and batch_form is empty.
  const auto gathered =
      p.gathered == std::chrono::steady_clock::time_point{} ? t.exec_start
                                                            : p.gathered;
  std::vector<obs::RequestSpan> spans;
  spans.reserve(4 + pin_spans.size());
  spans.push_back(obs::RequestSpan{obs::RequestPhase::kQueue,
                                   ToSpanNs(p.enqueued), ToSpanNs(gathered),
                                   0});
  spans.push_back(obs::RequestSpan{obs::RequestPhase::kBatchForm,
                                   ToSpanNs(gathered), ToSpanNs(t.exec_start),
                                   0});
  for (const obs::RequestSpan& s : pin_spans) spans.push_back(s);
  spans.push_back(obs::RequestSpan{obs::RequestPhase::kKernel,
                                   ToSpanNs(t.svc_start), ToSpanNs(t.svc_end),
                                   batch_size});
  spans.push_back(obs::RequestSpan{obs::RequestPhase::kRespond,
                                   ToSpanNs(t.svc_end), ToSpanNs(t.done), 0});

  if (opts_.trace != nullptr && (p.head_sampled || slow)) {
    const double req_start_us = opts_.sampler->ToTraceMicros(p.enqueued);
    const double req_dur_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            e2e)
            .count();
    // Parent request span with an admit instant at its start, children
    // for each phase — all on this worker's lane of the auxiliary
    // "serving" process.
    opts_.trace->AddProcessSpan(
        "serving", worker_id, "req " + std::to_string(p.trace_id), "request",
        req_start_us, req_dur_us,
        std::string(slow ? "slow" : "head") + " kind=" + kind +
            " batch=" + std::to_string(batch_size));
    opts_.trace->AddProcessSpan("serving", worker_id, "admit",
                                "request.phase", req_start_us, 0.0, "",
                                /*instant=*/true);
    for (const obs::RequestSpan& s : spans) {
      const double start_us =
          opts_.sampler->ToTraceMicros(FromSpanNs(s.start_ns));
      const double dur_us = static_cast<double>(s.DurationNs()) / 1000.0;
      std::string detail;
      if (s.phase == obs::RequestPhase::kEpochPin) {
        detail = "epoch=" + std::to_string(s.detail);
      }
      opts_.trace->AddProcessSpan("serving", worker_id,
                                  obs::RequestPhaseName(s.phase),
                                  "request.phase", start_us, dur_us, detail);
    }
  }

  if (opts_.query_log != nullptr) {
    obs::QueryLogEntry entry;
    entry.trace_id = p.trace_id;
    entry.head_sampled = p.head_sampled;
    entry.slow = slow;
    entry.ok = ok;
    entry.kind = kind;
    entry.param = param;
    entry.e2e_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            e2e)
            .count();
    entry.queue_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            t.exec_start - p.enqueued)
            .count();
    entry.service_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            t.svc_end - t.svc_start)
            .count();
    entry.batch_size = batch_size;
    entry.stats = stats;
    entry.spans = std::move(spans);
    opts_.query_log->Record(std::move(entry));
  }
}

}  // namespace hamming::serving

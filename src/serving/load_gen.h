// Closed- and open-loop load generation against a QueryEngine.
//
// Closed loop: N client threads, each submitting its next query the
// moment the previous one completes — throughput-oriented, models a
// fixed concurrency level, and cannot observe queueing collapse (the
// clients self-throttle). Latency is measured submit -> completion.
//
// Open loop: queries arrive on a fixed schedule at an offered QPS
// regardless of how the engine is doing — the arrival process of a
// public service. Latency is measured from the *scheduled* arrival time
// (not the actual submit instant) to completion, so dispatcher lag
// cannot hide server-side queueing (the coordinated-omission trap); an
// engine that cannot sustain the offered rate shows it as unbounded tail
// growth and/or admission rejections rather than a flattering average.
//
// Both report exact percentiles (p50/p99/p999) computed from the full
// per-request latency sample vector — log-bucketed histograms are fine
// for always-on metrics but too coarse for SLO verdicts.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "code/binary_code.h"
#include "index/concurrent_ha_index.h"
#include "serving/query_engine.h"

namespace hamming::serving {

/// \brief What queries the generator draws. Queries are picked uniformly
/// (seeded) from `pool`; each is a range query with radius `h` with
/// probability 1 - knn_fraction, else a kNN query with neighbour count
/// `k`.
struct WorkloadOptions {
  std::size_t h = 2;
  std::size_t k = 8;
  double knn_fraction = 0.0;
  uint64_t seed = 42;
  /// Per-request relative deadline; zero = none.
  std::chrono::microseconds deadline{0};
};

/// \brief Exact latency percentiles over one run's completed requests.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;

  /// \brief Sorts `samples_us` in place and summarizes it.
  static LatencySummary FromSamples(std::vector<double>* samples_us);
};

/// \brief One load-generation run's outcome.
struct LoadReport {
  uint64_t attempted = 0;  // submissions tried
  uint64_t completed = 0;  // served with OK status
  uint64_t rejected = 0;   // admission-control rejections
  uint64_t expired = 0;    // completed with kDeadlineExceeded
  uint64_t failed = 0;     // any other non-OK completion
  double elapsed_seconds = 0.0;
  double achieved_qps = 0.0;  // completed / elapsed
  LatencySummary latency;     // over completed requests only
};

/// \brief Runs `clients` closed-loop threads for `queries_per_client`
/// queries each. The engine must be Start()ed.
LoadReport RunClosedLoop(QueryEngine* engine,
                         const std::vector<BinaryCode>& pool,
                         const WorkloadOptions& workload, std::size_t clients,
                         std::size_t queries_per_client);

/// \brief Offers `offered_qps` uniformly paced arrivals for `duration`,
/// then waits for every in-flight request. The engine must be Start()ed.
LoadReport RunOpenLoop(QueryEngine* engine,
                       const std::vector<BinaryCode>& pool,
                       const WorkloadOptions& workload, double offered_qps,
                       std::chrono::milliseconds duration);

/// \brief Mixed insert/delete/query churn against an internally
/// synchronized ConcurrentHAIndex being served by `engine`.
///
/// Each of `threads` workers draws ops from the configured mix: inserts
/// and deletes go straight at the index (its write lock serializes
/// them), queries go through the engine like any other client. Tuple
/// ids are sharded per thread (worker t owns initial ids congruent to t
/// modulo `threads` and mints fresh ids in its own residue class), so
/// deletes never race each other on an id — all remaining interleaving
/// is the epoch layer's problem, which is the point of the workload.
struct ChurnOptions {
  /// Probability that one op is an Insert / a Delete; the remainder are
  /// queries drawn from `workload`. A delete drawn with nothing left to
  /// delete runs as an insert instead (tallied as the op it became).
  double insert_fraction = 0.2;
  double delete_fraction = 0.1;
  std::size_t threads = 4;
  std::size_t ops_per_thread = 2000;
  /// Query shape + per-request deadline + seed.
  WorkloadOptions workload;
};

/// \brief One churn run's outcome: the query-side LoadReport fields plus
/// the mutation and epoch-motion tallies.
struct ChurnReport {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t query_attempted = 0;
  uint64_t query_completed = 0;  // OK status
  uint64_t query_rejected = 0;   // admission control
  uint64_t query_expired = 0;    // kDeadlineExceeded
  uint64_t query_failed = 0;     // any other non-OK
  double elapsed_seconds = 0.0;
  double query_qps = 0.0;             // completed / elapsed
  double mutations_per_second = 0.0;  // (inserts + deletes) / elapsed
  uint64_t epochs_published = 0;      // index epoch delta over the run
  uint64_t rebuilds = 0;              // base rebuild delta over the run
  LatencySummary latency;  // completed queries, submit -> completion
};

/// \brief Runs the churn mix. The engine must be Start()ed and serving
/// `index`; `index` must have been Built over `pool` (tuple i holds
/// pool[i]) so the workers know which ids exist. Inserted tuples reuse
/// codes from `pool` under fresh ids.
ChurnReport RunChurn(QueryEngine* engine, ConcurrentHAIndex* index,
                     const std::vector<BinaryCode>& pool,
                     const ChurnOptions& opts);

}  // namespace hamming::serving

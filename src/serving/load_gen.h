// Closed- and open-loop load generation against a QueryEngine.
//
// Closed loop: N client threads, each submitting its next query the
// moment the previous one completes — throughput-oriented, models a
// fixed concurrency level, and cannot observe queueing collapse (the
// clients self-throttle). Latency is measured submit -> completion.
//
// Open loop: queries arrive on a fixed schedule at an offered QPS
// regardless of how the engine is doing — the arrival process of a
// public service. Latency is measured from the *scheduled* arrival time
// (not the actual submit instant) to completion, so dispatcher lag
// cannot hide server-side queueing (the coordinated-omission trap); an
// engine that cannot sustain the offered rate shows it as unbounded tail
// growth and/or admission rejections rather than a flattering average.
//
// Both report exact percentiles (p50/p99/p999) computed from the full
// per-request latency sample vector — log-bucketed histograms are fine
// for always-on metrics but too coarse for SLO verdicts.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "code/binary_code.h"
#include "serving/query_engine.h"

namespace hamming::serving {

/// \brief What queries the generator draws. Queries are picked uniformly
/// (seeded) from `pool`; each is a range query with radius `h` with
/// probability 1 - knn_fraction, else a kNN query with neighbour count
/// `k`.
struct WorkloadOptions {
  std::size_t h = 2;
  std::size_t k = 8;
  double knn_fraction = 0.0;
  uint64_t seed = 42;
  /// Per-request relative deadline; zero = none.
  std::chrono::microseconds deadline{0};
};

/// \brief Exact latency percentiles over one run's completed requests.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;

  /// \brief Sorts `samples_us` in place and summarizes it.
  static LatencySummary FromSamples(std::vector<double>* samples_us);
};

/// \brief One load-generation run's outcome.
struct LoadReport {
  uint64_t attempted = 0;  // submissions tried
  uint64_t completed = 0;  // served with OK status
  uint64_t rejected = 0;   // admission-control rejections
  uint64_t expired = 0;    // completed with kDeadlineExceeded
  uint64_t failed = 0;     // any other non-OK completion
  double elapsed_seconds = 0.0;
  double achieved_qps = 0.0;  // completed / elapsed
  LatencySummary latency;     // over completed requests only
};

/// \brief Runs `clients` closed-loop threads for `queries_per_client`
/// queries each. The engine must be Start()ed.
LoadReport RunClosedLoop(QueryEngine* engine,
                         const std::vector<BinaryCode>& pool,
                         const WorkloadOptions& workload, std::size_t clients,
                         std::size_t queries_per_client);

/// \brief Offers `offered_qps` uniformly paced arrivals for `duration`,
/// then waits for every in-flight request. The engine must be Start()ed.
LoadReport RunOpenLoop(QueryEngine* engine,
                       const std::vector<BinaryCode>& pool,
                       const WorkloadOptions& workload, double offered_qps,
                       std::chrono::milliseconds duration);

}  // namespace hamming::serving

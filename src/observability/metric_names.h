// Central declarations of every statically named metric in src/.
//
// The [metric-name] lint rule (tools/lint/lint.py) enforces that any
// string-literal registration — Counter("..."), Gauge("..."),
// Histogram("...") — anywhere under src/ uses a lowercase dotted
// identifier that is declared here. One file to grep means a typo'd
// near-duplicate ("serving.accepted" vs "serving.acepted") becomes a
// lint failure instead of two silently diverging time series.
//
// Families built from a runtime prefix (epoch.h's "<prefix>.epoch_*",
// query_stats.cc's "<prefix>.candidates", job.cc's per-phase
// "time.<phase>_seconds") are exempt by construction: the lint rule only
// matches literal-only registrations. Document such families here in
// comments so the namespace stays surveyable.
#pragma once

namespace hamming::obs::metric_names {

// ---- diagnostics (src/observability/metrics.cc) ---------------------------
inline constexpr char kMetricsRegistrationOverflow[] =
    "metrics.registration_overflow";

// ---- process (src/observability/memtrack.cc) ------------------------------
inline constexpr char kProcessPeakRssBytes[] = "process.peak_rss_bytes";

// ---- mapreduce (src/mapreduce/job.cc) -------------------------------------
// Dynamic family, not declared: "time.<phase>_seconds" per-phase gauges.
inline constexpr char kMrReduceInputRecords[] = "mr.reduce_input_records";
inline constexpr char kMrReduceInputBytes[] = "mr.reduce_input_bytes";

// ---- serving (src/serving/query_engine.cc) --------------------------------
// Dynamic family, not declared: "serving.query.*" per-request work
// histograms (QueryStatsHistograms with prefix "serving.query").
inline constexpr char kServingQueueWaitUs[] = "serving.queue_wait_us";
inline constexpr char kServingServiceUs[] = "serving.service_us";
inline constexpr char kServingE2eUs[] = "serving.e2e_us";
inline constexpr char kServingBatchSize[] = "serving.batch_size";
inline constexpr char kServingAccepted[] = "serving.accepted";
inline constexpr char kServingRejectedQueueFull[] =
    "serving.rejected_queue_full";
inline constexpr char kServingRejectedLatency[] = "serving.rejected_latency";
inline constexpr char kServingDeadlineExpired[] = "serving.deadline_expired";
inline constexpr char kServingBatches[] = "serving.batches";
inline constexpr char kServingQueueDepthPeak[] = "serving.queue_depth_peak";

// ---- kernels (src/observability/query_stats.cc) ---------------------------
// Dynamic family, not declared: "<prefix>.candidates",
// "<prefix>.verified", "<prefix>.results", "<prefix>.kernel_nanos".
inline constexpr char kKernelPlanesScanned[] = "kernel.planes_scanned";
inline constexpr char kKernelBlocksPruned[] = "kernel.blocks_pruned";

// ---- index epochs (src/index/epoch.h) -------------------------------------
// Dynamic family, not declared: "<prefix>.epoch_published",
// "<prefix>.epoch_retired", "<prefix>.epoch_rebuilds",
// "<prefix>.epoch_live".

}  // namespace hamming::obs::metric_names

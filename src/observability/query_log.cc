#include "observability/query_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "observability/json.h"

namespace hamming::obs {

namespace {

// xorshift64*: tiny seeded PRNG for the reservoir; quality is ample for
// sampling and the fixed seed keeps the kept set reproducible.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dull;
}

}  // namespace

QueryLog::QueryLog(QueryLogOptions opts)
    : opts_(opts),
      base_(std::chrono::steady_clock::now()),
      rng_state_(opts.seed == 0 ? 1 : opts.seed) {}

void QueryLog::Record(QueryLogEntry entry) {
  MutexLock lock(&mu_);
  // Stamp arrival on the log's own clock so entries order/rate without
  // an external timebase.
  entry.t_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - base_)
                  .count();
  if (entry.slow && opts_.slow_capacity > 0) {
    ++slow_seen_;
    if (slow_.size() < opts_.slow_capacity) {
      slow_.push_back(std::move(entry));
    } else {
      // Evict the fastest retained slow query if the newcomer is
      // slower — the K worst always survive.
      auto fastest = std::min_element(
          slow_.begin(), slow_.end(),
          [](const QueryLogEntry& a, const QueryLogEntry& b) {
            return a.e2e_us < b.e2e_us;
          });
      if (fastest->e2e_us < entry.e2e_us) *fastest = std::move(entry);
    }
    return;
  }
  ++normal_seen_;
  if (opts_.reservoir_capacity == 0) return;
  if (reservoir_.size() < opts_.reservoir_capacity) {
    reservoir_.push_back(std::move(entry));
    return;
  }
  // Algorithm R: the n-th element replaces a random slot with
  // probability capacity/n, keeping the sample uniform over the stream.
  const uint64_t j = NextRand(&rng_state_) % normal_seen_;
  if (j < reservoir_.size()) reservoir_[j] = std::move(entry);
}

std::vector<QueryLogEntry> QueryLog::ReservoirSnapshot() const {
  MutexLock lock(&mu_);
  return reservoir_;
}

std::vector<QueryLogEntry> QueryLog::SlowSnapshot() const {
  std::vector<QueryLogEntry> out;
  {
    MutexLock lock(&mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(),
            [](const QueryLogEntry& a, const QueryLogEntry& b) {
              return a.e2e_us > b.e2e_us;
            });
  return out;
}

uint64_t QueryLog::recorded() const {
  MutexLock lock(&mu_);
  return normal_seen_ + slow_seen_;
}

uint64_t QueryLog::slow_seen() const {
  MutexLock lock(&mu_);
  return slow_seen_;
}

std::string QueryLogEntry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("trace_id");
  w.Uint(trace_id);
  w.Key("head_sampled");
  w.Bool(head_sampled);
  w.Key("slow");
  w.Bool(slow);
  w.Key("ok");
  w.Bool(ok);
  w.Key("kind");
  w.String(kind == 'k' ? "knn" : "range");
  w.Key("param");
  w.Uint(param);
  w.Key("t_s");
  w.Double(t_s);
  w.Key("e2e_us");
  w.Double(e2e_us);
  w.Key("queue_us");
  w.Double(queue_us);
  w.Key("service_us");
  w.Double(service_us);
  w.Key("batch_size");
  w.Uint(batch_size);
  w.Key("stats");
  w.Raw(stats.ToJson());
  w.Key("spans");
  w.BeginArray();
  for (const RequestSpan& s : spans) {
    w.BeginObject();
    w.Key("phase");
    w.String(RequestPhaseName(s.phase));
    w.Key("dur_us");
    w.Double(static_cast<double>(s.DurationNs()) / 1e3);
    if (s.detail != 0) {
      w.Key("detail");
      w.Uint(s.detail);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Release();
}

std::string QueryLog::ToJsonl() const {
  std::string out;
  for (const QueryLogEntry& e : SlowSnapshot()) {
    out += e.ToJson();
    out += '\n';
  }
  for (const QueryLogEntry& e : ReservoirSnapshot()) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

bool QueryLog::ExportJsonl(const std::string& path) const {
  const std::string body = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace hamming::obs

// TimeSeriesCollector: windowed serving telemetry from cumulative
// metrics.
//
// MetricsRegistry keeps monotone totals — perfect for "what happened
// over the whole run", useless for "what is happening NOW". This
// collector turns totals into fixed-interval windows by periodically
// snapshotting the registry and diffing consecutive snapshots:
//
//  * counters  -> per-window delta and rate (delta / window seconds);
//  * gauges    -> current high-watermark value (gauges are cumulative
//                 maxima by design, so the window reports the level);
//  * histograms-> HistogramSnapshot::Delta of the window, exported as
//                 count / mean / interpolated p50, p99, p999 —
//                 the serving latency timeline.
//
// Windows live in a bounded ring (oldest evicted, eviction counted) and
// are appended to a JSONL file by the same background exporter thread
// that closes them — one window, one line, flushed immediately, so a
// crashed run still leaves its telemetry behind. Built on the annotated
// sync.h primitives; Stop() drains: it closes one final partial window,
// flushes the file, and joins the thread, and is safe to call twice or
// without Start() — the shutdown/drain races the TSan telemetry tests
// hammer.
//
// CloseWindowNow() ticks synchronously, for tests and for callers
// (bench_serving) that want a deterministic final window without
// sleeping through an interval.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "observability/metrics.h"

namespace hamming::obs {

struct TimeSeriesOptions {
  /// Window length the exporter thread closes windows at.
  std::chrono::milliseconds interval{1000};
  /// Bounded ring capacity; the oldest window is evicted beyond it.
  std::size_t ring_capacity = 512;
  /// JSONL destination (one window per line); empty = in-memory only.
  std::string export_path;
};

/// \brief One histogram's windowed view.
struct WindowHistogram {
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// \brief One closed window, plain data.
struct TimeSeriesWindow {
  uint64_t index = 0;
  /// Window start, seconds since the collector was constructed.
  double t_start_s = 0.0;
  double duration_s = 0.0;
  /// Counter deltas over the window (zero deltas omitted) and the same
  /// as per-second rates.
  std::map<std::string, int64_t> counter_deltas;
  std::map<std::string, double> counter_rates;
  /// Gauge levels at window close.
  std::map<std::string, int64_t> gauges;
  /// Histogram windows (zero-count windows omitted).
  std::map<std::string, WindowHistogram> histograms;

  /// \brief The window as one JSON object (one JSONL line, no newline).
  std::string ToJson() const;
};

/// \brief Periodic snapshot-diff collector with a background exporter
/// thread. The registry must outlive the collector.
class TimeSeriesCollector {
 public:
  TimeSeriesCollector(MetricsRegistry* registry, TimeSeriesOptions opts);
  ~TimeSeriesCollector();  // Stop()

  TimeSeriesCollector(const TimeSeriesCollector&) = delete;
  TimeSeriesCollector& operator=(const TimeSeriesCollector&) = delete;

  /// \brief Opens the export file (when configured) and spawns the
  /// exporter thread. Idempotent; fails if the file cannot be opened.
  Status Start() HAMMING_EXCLUDES(lifecycle_mu_, mu_);

  /// \brief Drains and stops: joins the exporter, closes one final
  /// partial window, flushes and closes the file. Idempotent, safe from
  /// multiple threads, callable without Start().
  void Stop() HAMMING_EXCLUDES(lifecycle_mu_, mu_);

  /// \brief Synchronously closes the current window and returns it.
  TimeSeriesWindow CloseWindowNow() HAMMING_EXCLUDES(mu_);

  /// \brief Ring contents, oldest first.
  std::vector<TimeSeriesWindow> Windows() const HAMMING_EXCLUDES(mu_);

  /// \brief Total windows closed (>= ring size).
  uint64_t windows_closed() const HAMMING_EXCLUDES(mu_);
  /// \brief Windows evicted from the ring.
  uint64_t windows_evicted() const HAMMING_EXCLUDES(mu_);

 private:
  void ExporterLoop() HAMMING_EXCLUDES(mu_);
  TimeSeriesWindow CloseWindowLocked() HAMMING_REQUIRES(mu_);

  MetricsRegistry* const registry_;
  const TimeSeriesOptions opts_;
  const std::chrono::steady_clock::time_point base_;

  // Serializes Start/Stop against each other (the exporter Thread
  // object must have exactly one joiner); never held while waiting for
  // work. Lock order: lifecycle_mu_ before mu_.
  Mutex lifecycle_mu_ HAMMING_ACQUIRED_BEFORE(mu_);
  mutable Mutex mu_;
  CondVar stop_cv_;
  bool started_ HAMMING_GUARDED_BY(mu_) = false;
  bool stopping_ HAMMING_GUARDED_BY(mu_) = false;
  bool drained_ HAMMING_GUARDED_BY(mu_) = false;
  std::FILE* file_ HAMMING_GUARDED_BY(mu_) = nullptr;
  MetricsSnapshot prev_ HAMMING_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point prev_time_ HAMMING_GUARDED_BY(mu_);
  std::vector<TimeSeriesWindow> ring_ HAMMING_GUARDED_BY(mu_);
  uint64_t closed_ HAMMING_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ HAMMING_GUARDED_BY(mu_) = 0;
  Thread exporter_;  // assigned in Start, joined in Stop (lifecycle_mu_)
};

}  // namespace hamming::obs

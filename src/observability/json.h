// Minimal JSON emission shared by the observability exporters (metrics
// snapshots, trace-event files, bench harness BENCH_*.json emitters) and
// the MapReduce JobEventTrace export.
//
// Two layers:
//  * AppendJsonEscaped — the one string-escaping routine in the repo.
//    Fault-injection statuses and spill details carry user/OS text
//    (paths, errno strings, injected-fault messages); anything that can
//    hold a quote, backslash or control character must pass through here
//    or the exported file stops being JSON.
//  * JsonWriter — a comma/nesting bookkeeper so exporters cannot emit
//    structurally invalid documents (mismatched braces, missing commas,
//    keys outside objects abort in debug builds and degrade to valid-ish
//    output in release).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hamming::obs {

/// \brief Appends `s` to `*out` as a JSON string literal (quotes
/// included). Escapes quotes, backslashes, and all control characters
/// (short forms \n \t \r \b \f, \u00XX otherwise); non-ASCII bytes pass
/// through untouched (the output stays valid for UTF-8 input).
void AppendJsonEscaped(std::string* out, std::string_view s);

/// \brief `s` rendered as a JSON string literal.
std::string JsonEscaped(std::string_view s);

/// \brief Unescapes one JSON string literal (must include the quotes).
/// Used by the round-trip regression tests; returns false on malformed
/// input. Handles every escape AppendJsonEscaped produces plus \/ and
/// ASCII \uXXXX.
bool JsonUnescape(std::string_view literal, std::string* out);

/// \brief Streaming JSON document builder with automatic commas.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("rows"); w.BeginArray();
///   w.BeginObject(); w.Key("n"); w.Int(3); w.EndObject();
///   w.EndArray();
///   w.EndObject();
///   file << w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices a pre-rendered JSON value (caller guarantees validity).
  void Raw(std::string_view json);

  /// \brief The document so far; call once nesting is closed.
  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }

 private:
  enum class Frame : uint8_t { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_prev_;
  bool pending_key_ = false;
};

}  // namespace hamming::obs

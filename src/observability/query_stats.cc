#include "observability/query_stats.h"

#include "observability/json.h"
#include "observability/metric_names.h"

namespace hamming::obs {

std::string QueryStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("signatures_enumerated");
  w.Uint(signatures_enumerated);
  w.Key("candidates_generated");
  w.Uint(candidates_generated);
  w.Key("exact_distance_computations");
  w.Uint(exact_distance_computations);
  w.Key("kernel_batch_calls");
  w.Uint(kernel_batch_calls);
  w.Key("radius_expansions");
  w.Uint(radius_expansions);
  w.Key("rescanned_results");
  w.Uint(rescanned_results);
  w.Key("results");
  w.Uint(results);
  w.Key("planes_scanned");
  w.Uint(planes_scanned);
  w.Key("blocks_pruned");
  w.Uint(blocks_pruned);
  w.Key("serving_queue_nanos");
  w.Uint(serving_queue_nanos);
  w.EndObject();
  return w.Release();
}

QueryStatsHistograms QueryStatsHistograms::Register(
    MetricsRegistry* registry, const std::string& prefix) {
  QueryStatsHistograms h;
  if (registry == nullptr) return h;
  h.signatures = registry->Histogram(prefix + ".signatures_enumerated");
  h.candidates = registry->Histogram(prefix + ".candidates");
  h.exact_distances = registry->Histogram(prefix + ".exact_distances");
  h.kernel_batches = registry->Histogram(prefix + ".kernel_batches");
  h.radius_expansions = registry->Histogram(prefix + ".radius_expansions");
  h.rescanned_results = registry->Histogram(prefix + ".rescanned_results");
  h.results = registry->Histogram(prefix + ".results");
  h.planes_scanned = registry->Histogram(metric_names::kKernelPlanesScanned);
  h.blocks_pruned = registry->Histogram(metric_names::kKernelBlocksPruned);
  h.serving_queue_nanos = registry->Histogram(prefix + ".serving_queue_nanos");
  return h;
}

void QueryStatsHistograms::Observe(MetricsRegistry* registry,
                                   const QueryStats& stats) const {
  if (registry == nullptr) return;
  HAMMING_METRIC_OBSERVE(registry, signatures, stats.signatures_enumerated);
  HAMMING_METRIC_OBSERVE(registry, candidates, stats.candidates_generated);
  HAMMING_METRIC_OBSERVE(registry, exact_distances,
                         stats.exact_distance_computations);
  HAMMING_METRIC_OBSERVE(registry, kernel_batches, stats.kernel_batch_calls);
  HAMMING_METRIC_OBSERVE(registry, radius_expansions,
                         stats.radius_expansions);
  HAMMING_METRIC_OBSERVE(registry, rescanned_results,
                         stats.rescanned_results);
  HAMMING_METRIC_OBSERVE(registry, results, stats.results);
  HAMMING_METRIC_OBSERVE(registry, planes_scanned, stats.planes_scanned);
  HAMMING_METRIC_OBSERVE(registry, blocks_pruned, stats.blocks_pruned);
  HAMMING_METRIC_OBSERVE(registry, serving_queue_nanos,
                         stats.serving_queue_nanos);
}

}  // namespace hamming::obs

// MetricsRegistry: interned-id counters, high-watermark gauges and
// log-bucketed histograms with thread-local shards.
//
// The design scales PR 1's contention-free LocalCounters pattern from
// "one bag per task, merged once" to "one shard per recording thread,
// merged on snapshot": a metric is registered once (string name -> dense
// MetricId), and every Add/Set/Observe touches only the calling thread's
// shard — a relaxed atomic the owner thread alone writes, so recording a
// sample costs an increment with no cache-line ping-pong and no locks.
// Snapshot() folds all shards under the registry mutex; the fold is a
// commutative sum (max for gauges, bucket-wise sum for histograms), so
// the merged totals are independent of thread scheduling and shard
// count — the determinism the shard-merge tests pin down.
//
// Histograms are log-linear-bucketed with 4 sub-buckets per octave:
// buckets 0-3 hold the exact values 0-3, and every octave [2^k, 2^(k+1))
// for k >= 2 splits into 4 equal-width sub-buckets of 2^(k-2) values, so
// 252 buckets cover all of uint64 and a histogram costs ~2 KB per
// recording thread. The sub-buckets bound any bucket's relative width by
// 25% of its lower edge, which is what makes the interpolated
// HistogramSnapshot::Percentile() estimates usable for serving p99/p999
// (a pure log2 scheme quantizes tails to powers of two). Each histogram
// also tracks count/sum/min/max, from which SkewMaxOverMean() derives
// the max/mean skew coefficient the MapReduce reducer-balance reports
// use (the quantity Lu et al.'s kNN-join partitioning tries to drive to
// 1.0 — see PAPERS.md).
//
// Compile-out: building with -DHAMMING_METRICS_DISABLED turns the
// HAMMING_METRIC_* macros into no-ops with zero argument evaluation, so
// instrumented hot paths cost nothing in a stripped build (the overhead
// bench in bench_micro compares against this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace hamming::obs {

/// \brief Dense handle of a registered metric (index into shard arrays).
using MetricId = uint32_t;

/// \brief Hard cap on metrics per registry; registration beyond it
/// returns the overflow sink id (kOverflowMetric) instead of growing.
/// Every overflowed registration is counted and surfaced in Snapshot()
/// as the "metrics.registration_overflow" diagnostics counter, so the
/// lumped accounting is visible instead of silent.
inline constexpr std::size_t kMaxMetricsPerRegistry = 256;
inline constexpr MetricId kOverflowMetric = kMaxMetricsPerRegistry - 1;

/// \brief Number of log-linear histogram buckets. Buckets 0-3 hold the
/// exact values 0-3; each octave [2^k, 2^(k+1)) for k in [2, 63] splits
/// into 4 equal sub-buckets of width 2^(k-2), so any bucket's width is
/// at most 25% of its lower edge. 4 + 62*4 = 252 buckets cover uint64.
inline constexpr std::size_t kHistogramBuckets = 252;

/// \brief Sub-buckets per octave (the "4" in the layout above).
inline constexpr std::size_t kHistogramSubBuckets = 4;

/// \brief Bucket index of a value: v for v < 4, else
/// 4 + (k-2)*4 + ((v >> (k-2)) & 3) with k = floor(log2 v).
std::size_t HistogramBucketOf(uint64_t value);
/// \brief Inclusive lower bound of bucket `i` (0, 1, 2, 3, 4, 5, 6, 7,
/// 8, 10, 12, 14, 16, 20, ...).
uint64_t HistogramBucketLowerBound(std::size_t i);
/// \brief Inclusive upper bound of bucket `i` (saturates at uint64 max
/// for the last bucket).
uint64_t HistogramBucketUpperBound(std::size_t i);

enum class MetricKind : uint8_t { kCounter = 0, kGauge, kHistogram };

/// \brief Merged view of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// \brief The skew coefficient max/mean (1.0 = perfectly balanced;
  /// 0 when empty). For a per-reducer input histogram this is exactly
  /// "how much worse the hottest reducer is than the average".
  double SkewMaxOverMean() const {
    const double mean = Mean();
    return mean == 0.0 ? 0.0 : static_cast<double>(max) / mean;
  }

  /// \brief Bucket-interpolated quantile estimate (q in [0, 1]; 0 when
  /// empty). Walks the cumulative bucket counts to the bucket holding
  /// rank q*count and interpolates linearly inside it, clamped to the
  /// exact [min, max]. The log-linear layout bounds the relative error
  /// at < 25% for any value >= 4 (buckets below 4 are exact), the bound
  /// the percentile unit tests pin.
  double Percentile(double q) const;

  /// \brief The window between two snapshots of the SAME histogram
  /// (`after` taken later than `before`): count/sum/buckets subtract;
  /// min/max are bucket-resolution estimates from the windowed buckets
  /// (the cumulative min/max are not invertible) with max clamped to
  /// the cumulative max. This is what TimeSeriesCollector emits per
  /// window.
  static HistogramSnapshot Delta(const HistogramSnapshot& before,
                                 const HistogramSnapshot& after);
};

/// \brief A merged point-in-time view of a registry, plain data.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// \brief The snapshot as one JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"count","sum","min","max","mean","skew_max_over_mean",
  ///   "buckets":[{"ge":...,"count":...}, ...]}, ...}}.
  /// Empty buckets are omitted.
  std::string ToJson() const;

  /// \brief Equality over every recorded value (the byte-identical
  /// retry tests compare snapshots with this).
  bool operator==(const MetricsSnapshot& other) const;
};

/// \brief Thread-safe metric registry with per-thread shards.
///
/// Registration (Counter/Gauge/Histogram) takes the registry mutex and
/// may be called at any time; re-registering a name returns the existing
/// id. Recording (Add/Set/Observe) is lock-free after a thread's first
/// record into the registry. Snapshot() may run concurrently with
/// recording: each cell is read atomically, so values are never torn,
/// but a snapshot racing active writers is only guaranteed to include
/// records that happened-before the call — quiesce writers first when
/// exact totals matter.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Registers (or finds) a monotonically increasing counter.
  MetricId Counter(std::string_view name);
  /// \brief Registers (or finds) a high-watermark gauge: Snapshot
  /// reports the maximum value Set across all threads (the natural
  /// semantics for peaks like peak-RSS; last-write-wins is meaningless
  /// once recording is sharded).
  MetricId Gauge(std::string_view name);
  /// \brief Registers (or finds) a log-linear-bucketed histogram.
  MetricId Histogram(std::string_view name);

  void Add(MetricId id, int64_t delta);
  void Set(MetricId id, int64_t value);
  void Observe(MetricId id, uint64_t value);

  /// \brief Merges every shard into one plain-data view. Always carries
  /// the "metrics.registration_overflow" counter (0 in the healthy
  /// case) so registration overflow is observable wherever snapshots
  /// are exported.
  MetricsSnapshot Snapshot() const HAMMING_EXCLUDES(mu_);

  /// \brief Number of registered metrics (for tests).
  std::size_t NumMetrics() const HAMMING_EXCLUDES(mu_);

  /// \brief Registrations of NEW names rejected because the registry
  /// was full (re-registrations of existing names never count).
  uint64_t RegistrationOverflows() const HAMMING_EXCLUDES(mu_);

 private:
  struct HistCell;
  struct Shard;

  Shard* LocalShard() const HAMMING_EXCLUDES(mu_);
  MetricId Register(std::string_view name, MetricKind kind)
      HAMMING_EXCLUDES(mu_);

  const uint64_t epoch_;  // process-unique; keys the thread-local cache
  mutable Mutex mu_;
  std::vector<std::string> names_ HAMMING_GUARDED_BY(mu_);
  std::vector<MetricKind> kinds_ HAMMING_GUARDED_BY(mu_);
  uint64_t overflow_registrations_ HAMMING_GUARDED_BY(mu_) = 0;
  std::map<std::string, MetricId, std::less<>> by_name_
      HAMMING_GUARDED_BY(mu_);
  // The vector is guarded; the shard cells it points at are the
  // recording threads' single-writer atomics and deliberately are not.
  mutable std::vector<std::unique_ptr<Shard>> shards_
      HAMMING_GUARDED_BY(mu_);
};

// ---- Compile-out macros ---------------------------------------------------
//
// `reg` is a MetricsRegistry* that may be null (null = not collecting).
// In a -DHAMMING_METRICS_DISABLED build the macros expand to a no-op
// that evaluates none of its arguments.
#if defined(HAMMING_METRICS_DISABLED)
#define HAMMING_METRICS_ENABLED 0
#define HAMMING_METRIC_ADD(reg, id, delta) ((void)0)
#define HAMMING_METRIC_SET(reg, id, value) ((void)0)
#define HAMMING_METRIC_OBSERVE(reg, id, value) ((void)0)
#else
#define HAMMING_METRICS_ENABLED 1
#define HAMMING_METRIC_ADD(reg, id, delta)                    \
  do {                                                        \
    ::hamming::obs::MetricsRegistry* hm_reg_ = (reg);         \
    if (hm_reg_ != nullptr) hm_reg_->Add((id), (delta));      \
  } while (0)
#define HAMMING_METRIC_SET(reg, id, value)                    \
  do {                                                        \
    ::hamming::obs::MetricsRegistry* hm_reg_ = (reg);         \
    if (hm_reg_ != nullptr) hm_reg_->Set((id), (value));      \
  } while (0)
#define HAMMING_METRIC_OBSERVE(reg, id, value)                \
  do {                                                        \
    ::hamming::obs::MetricsRegistry* hm_reg_ = (reg);         \
    if (hm_reg_ != nullptr) hm_reg_->Observe((id), (value));  \
  } while (0)
#endif

}  // namespace hamming::obs

// Per-query search statistics — the quantities the paper's relative
// claims (and the multi-index-hashing analyses in PAPERS.md) are built
// on, recorded by every HammingIndex::Search/Knn when the caller passes
// a QueryStats*.
//
// Field semantics across the index families:
//  * signatures_enumerated — hash keys / segment signatures / shared
//    tree-node patterns the index evaluated for this query: MH table
//    probes, HmSearch segment probes, HA-Index node partial distances.
//  * candidates_generated — tuples surfaced by the filtering structure
//    before (or without) exact verification: hash-bucket members,
//    HA-Index rows reaching the path walk, linear-scan rows.
//  * exact_distance_computations — full-width XOR+popcount distance (or
//    bounded WithinDistance) evaluations against stored codes.
//  * kernel_batch_calls — calls into the batched kernels
//    (kernels/hamming_kernels.h); candidates / batches is the average
//    batch occupancy, the quantity that decides whether the SIMD path
//    pays off.
//  * radius_expansions — Search(h) rounds issued by the radius-expanding
//    default Knn.
//  * rescanned_results — tuples re-surfaced by a later expansion round
//    that an earlier Search(h) had already returned: the pure re-scan
//    waste of radius-expanding Knn. The geometric (distance-guided)
//    expansion exists to drive this number down; the legacy h += 1
//    walk pays it once per extra round.
//  * results — qualifying tuples returned.
//  * serving_queue_nanos — time the request spent waiting in the serving
//    layer's admission queue before its batch reached the index (zero
//    for queries issued outside src/serving/). The serving engine stamps
//    it so per-query work profiles and queueing delay travel together.
//  * planes_scanned / blocks_pruned — vertical (bit-sliced) kernel
//    counters: plane rows actually read and 512-code blocks abandoned
//    early. Zero whenever the query ran on the horizontal layout; the
//    pruned/scanned ratio is the layout's win on this query.
//
// QueryStats is a plain accumulator with no synchronization: one stats
// object belongs to one query (or one single-threaded batch). Aggregate
// across threads by recording each finished query into a
// MetricsRegistry through QueryStatsHistograms.
#pragma once

#include <cstdint>
#include <string>

#include "observability/metrics.h"

namespace hamming::obs {

struct QueryStats {
  uint64_t signatures_enumerated = 0;
  uint64_t candidates_generated = 0;
  uint64_t exact_distance_computations = 0;
  uint64_t kernel_batch_calls = 0;
  uint64_t radius_expansions = 0;
  uint64_t rescanned_results = 0;
  uint64_t results = 0;
  uint64_t planes_scanned = 0;
  uint64_t blocks_pruned = 0;
  uint64_t serving_queue_nanos = 0;

  QueryStats& operator+=(const QueryStats& o) {
    signatures_enumerated += o.signatures_enumerated;
    candidates_generated += o.candidates_generated;
    exact_distance_computations += o.exact_distance_computations;
    kernel_batch_calls += o.kernel_batch_calls;
    radius_expansions += o.radius_expansions;
    rescanned_results += o.rescanned_results;
    results += o.results;
    planes_scanned += o.planes_scanned;
    blocks_pruned += o.blocks_pruned;
    serving_queue_nanos += o.serving_queue_nanos;
    return *this;
  }

  bool operator==(const QueryStats& o) const {
    return signatures_enumerated == o.signatures_enumerated &&
           candidates_generated == o.candidates_generated &&
           exact_distance_computations == o.exact_distance_computations &&
           kernel_batch_calls == o.kernel_batch_calls &&
           radius_expansions == o.radius_expansions &&
           rescanned_results == o.rescanned_results && results == o.results &&
           planes_scanned == o.planes_scanned &&
           blocks_pruned == o.blocks_pruned &&
           serving_queue_nanos == o.serving_queue_nanos;
  }

  /// \brief One JSON object with every field.
  std::string ToJson() const;
};

/// \brief Pre-registered per-query histograms ("query.candidates",
/// "query.exact_distances", ...) on a registry; Observe() records one
/// finished query's stats as one sample per histogram.
struct QueryStatsHistograms {
  MetricId signatures = kOverflowMetric;
  MetricId candidates = kOverflowMetric;
  MetricId exact_distances = kOverflowMetric;
  MetricId kernel_batches = kOverflowMetric;
  MetricId radius_expansions = kOverflowMetric;
  MetricId rescanned_results = kOverflowMetric;
  MetricId results = kOverflowMetric;
  MetricId planes_scanned = kOverflowMetric;
  MetricId blocks_pruned = kOverflowMetric;
  MetricId serving_queue_nanos = kOverflowMetric;

  /// \brief Registers the histograms under `prefix` + ".candidates" etc.
  /// (default prefix "query"). The vertical-kernel counters always
  /// register under the fixed names "kernel.planes_scanned" and
  /// "kernel.blocks_pruned" regardless of prefix, so every index family
  /// feeds one pair of kernel histograms. Safe to call repeatedly.
  static QueryStatsHistograms Register(MetricsRegistry* registry,
                                       const std::string& prefix = "query");

  void Observe(MetricsRegistry* registry, const QueryStats& stats) const;
};

}  // namespace hamming::obs

#include "observability/memtrack.h"

#include <cstdio>

#include "observability/metric_names.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hamming::obs {

std::string FormatBytes(std::size_t bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string MemoryBreakdown::ToString() const {
  std::string out = FormatBytes(total());
  out += " (internal ";
  out += FormatBytes(internal_bytes);
  out += " / leaf ";
  out += FormatBytes(leaf_bytes);
  out += ")";
  return out;
}

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

void RecordPeakRss(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  uint64_t rss = PeakRssBytes();
  if (rss == 0) return;
  MetricId id = registry->Gauge(metric_names::kProcessPeakRssBytes);
  registry->Set(id, static_cast<int64_t>(rss));
}

}  // namespace hamming::obs

#include "observability/metrics.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "observability/json.h"
#include "observability/metric_names.h"

namespace hamming::obs {

std::size_t HistogramBucketOf(uint64_t value) {
  if (value < kHistogramSubBuckets) return static_cast<std::size_t>(value);
  // Octave k = floor(log2 v) >= 2; the top two bits below the leading
  // bit select one of the 4 equal-width sub-buckets of [2^k, 2^(k+1)).
  const std::size_t k = static_cast<std::size_t>(63 - std::countl_zero(value));
  const std::size_t sub =
      static_cast<std::size_t>((value >> (k - 2)) & (kHistogramSubBuckets - 1));
  return kHistogramSubBuckets + (k - 2) * kHistogramSubBuckets + sub;
}

uint64_t HistogramBucketLowerBound(std::size_t i) {
  if (i < kHistogramSubBuckets) return static_cast<uint64_t>(i);
  const std::size_t j = i - kHistogramSubBuckets;
  const std::size_t k = 2 + j / kHistogramSubBuckets;
  const uint64_t sub = j % kHistogramSubBuckets;
  return (uint64_t{1} << k) + sub * (uint64_t{1} << (k - 2));
}

uint64_t HistogramBucketUpperBound(std::size_t i) {
  if (i + 1 >= kHistogramBuckets) return ~uint64_t{0};
  return HistogramBucketLowerBound(i + 1) - 1;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[b]);
    if (cum + in_bucket >= target) {
      const double lo = static_cast<double>(HistogramBucketLowerBound(b));
      const double hi = static_cast<double>(HistogramBucketUpperBound(b));
      const double frac = std::clamp((target - cum) / in_bucket, 0.0, 1.0);
      // Interpolate inside the bucket, then clamp into the exact
      // observed range — single-valued histograms come out exact.
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min),
                        static_cast<double>(max));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::Delta(const HistogramSnapshot& before,
                                           const HistogramSnapshot& after) {
  HistogramSnapshot d;
  d.count = after.count >= before.count ? after.count - before.count : 0;
  if (d.count == 0) return d;
  d.sum = after.sum >= before.sum ? after.sum - before.sum : 0;
  std::size_t first = kHistogramBuckets;
  std::size_t last = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    const uint64_t delta =
        after.buckets[b] >= before.buckets[b]
            ? after.buckets[b] - before.buckets[b]
            : 0;
    d.buckets[b] = delta;
    if (delta > 0) {
      first = std::min(first, b);
      last = b;
    }
  }
  if (first == kHistogramBuckets) return d;  // counts moved, buckets didn't
  d.min = HistogramBucketLowerBound(first);
  d.max = std::min(after.max, HistogramBucketUpperBound(last));
  d.max = std::max(d.max, d.min);
  return d;
}

// One histogram's per-shard cells. The owning thread is the only writer;
// Snapshot reads concurrently, so every cell is a relaxed atomic.
struct MetricsRegistry::HistCell {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> min{~uint64_t{0}};
  std::atomic<uint64_t> max{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
};

// One recording thread's private slice of the registry. Scalar cells
// (counters accumulate, gauges keep the shard's max) are inline; the
// larger histogram cells are allocated on a histogram's first record
// from this thread.
struct MetricsRegistry::Shard {
  std::array<std::atomic<int64_t>, kMaxMetricsPerRegistry> scalars{};
  std::array<std::atomic<HistCell*>, kMaxMetricsPerRegistry> hists{};

  ~Shard() {
    for (auto& h : hists) delete h.load(std::memory_order_relaxed);
  }

  HistCell* HistFor(MetricId id) {
    HistCell* cell = hists[id].load(std::memory_order_relaxed);
    if (cell == nullptr) {
      cell = new HistCell();
      // The owning thread is the only writer of this slot; release so a
      // snapshotting reader that sees the pointer sees the cell's init.
      hists[id].store(cell, std::memory_order_release);
    }
    return cell;
  }
};

namespace {

std::atomic<uint64_t> g_registry_epoch{1};

}  // namespace

MetricsRegistry::MetricsRegistry()
    : epoch_(g_registry_epoch.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard* MetricsRegistry::LocalShard() const {
  // Thread-local shard lookup keyed by registry epoch (not address: a
  // new registry may reuse a dead one's address, and a stale cache hit
  // would hand out a pointer into freed memory). Entries for dead
  // registries linger harmlessly — the shard they point to is owned by
  // the registry and gone with it, and a dead epoch key can never be
  // looked up again.
  thread_local std::unordered_map<uint64_t, Shard*> cache;
  auto it = cache.find(epoch_);
  if (it != cache.end()) return it->second;
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    MutexLock lock(&mu_);
    shards_.push_back(std::move(owned));
  }
  cache.emplace(epoch_, shard);
  return shard;
}

MetricId MetricsRegistry::Register(std::string_view name, MetricKind kind) {
  MutexLock lock(&mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  if (names_.size() >= kMaxMetricsPerRegistry - 1) {
    // The last slot is the shared overflow sink, so runaway registration
    // degrades to lumped accounting instead of UB or unbounded growth.
    // Count the rejection: Snapshot() surfaces it as the
    // metrics.registration_overflow diagnostics counter.
    ++overflow_registrations_;
    return kOverflowMetric;
  }
  const MetricId id = static_cast<MetricId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  by_name_.emplace(names_.back(), id);
  return id;
}

MetricId MetricsRegistry::Counter(std::string_view name) {
  return Register(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::Gauge(std::string_view name) {
  return Register(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::Histogram(std::string_view name) {
  return Register(name, MetricKind::kHistogram);
}

void MetricsRegistry::Add(MetricId id, int64_t delta) {
  auto& cell = LocalShard()->scalars[id];
  // Single-writer cell: a plain load+store pair would be correct for the
  // writer but fetch_add keeps it obviously sound and is uncontended.
  cell.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(MetricId id, int64_t value) {
  auto& cell = LocalShard()->scalars[id];
  // High-watermark per shard; Snapshot maxes across shards.
  if (cell.load(std::memory_order_relaxed) < value) {
    cell.store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::Observe(MetricId id, uint64_t value) {
  HistCell* cell = LocalShard()->HistFor(id);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  cell->sum.fetch_add(value, std::memory_order_relaxed);
  if (cell->min.load(std::memory_order_relaxed) > value) {
    cell->min.store(value, std::memory_order_relaxed);
  }
  if (cell->max.load(std::memory_order_relaxed) < value) {
    cell->max.store(value, std::memory_order_relaxed);
  }
  cell->buckets[HistogramBucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  // Always present (0 when healthy) so registration overflow is visible
  // in every exported snapshot, not only after someone thinks to ask.
  snap.counters[metric_names::kMetricsRegistrationOverflow] =
      static_cast<int64_t>(overflow_registrations_);
  for (std::size_t id = 0; id < names_.size(); ++id) {
    const std::string& name = names_[id];
    switch (kinds_[id]) {
      case MetricKind::kCounter: {
        int64_t total = 0;
        for (const auto& shard : shards_) {
          total += shard->scalars[id].load(std::memory_order_relaxed);
        }
        snap.counters[name] = total;
        break;
      }
      case MetricKind::kGauge: {
        int64_t peak = 0;
        for (const auto& shard : shards_) {
          peak = std::max(peak,
                          shard->scalars[id].load(std::memory_order_relaxed));
        }
        snap.gauges[name] = peak;
        break;
      }
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        uint64_t min = ~uint64_t{0};
        for (const auto& shard : shards_) {
          const HistCell* cell =
              shard->hists[id].load(std::memory_order_acquire);
          if (cell == nullptr) continue;
          h.count += cell->count.load(std::memory_order_relaxed);
          h.sum += cell->sum.load(std::memory_order_relaxed);
          min = std::min(min, cell->min.load(std::memory_order_relaxed));
          h.max = std::max(h.max, cell->max.load(std::memory_order_relaxed));
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            h.buckets[b] += cell->buckets[b].load(std::memory_order_relaxed);
          }
        }
        h.min = h.count == 0 ? 0 : min;
        snap.histograms[name] = h;
        break;
      }
    }
  }
  return snap;
}

std::size_t MetricsRegistry::NumMetrics() const {
  MutexLock lock(&mu_);
  return names_.size();
}

uint64_t MetricsRegistry::RegistrationOverflows() const {
  MutexLock lock(&mu_);
  return overflow_registrations_;
}

bool MetricsSnapshot::operator==(const MetricsSnapshot& other) const {
  if (counters != other.counters || gauges != other.gauges) return false;
  if (histograms.size() != other.histograms.size()) return false;
  auto it = histograms.begin();
  auto jt = other.histograms.begin();
  for (; it != histograms.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    const HistogramSnapshot& a = it->second;
    const HistogramSnapshot& b = jt->second;
    if (a.count != b.count || a.sum != b.sum || a.min != b.min ||
        a.max != b.max || a.buckets != b.buckets) {
      return false;
    }
  }
  return true;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Uint(h.count);
    w.Key("sum");
    w.Uint(h.sum);
    w.Key("min");
    w.Uint(h.min);
    w.Key("max");
    w.Uint(h.max);
    w.Key("mean");
    w.Double(h.Mean());
    w.Key("skew_max_over_mean");
    w.Double(h.SkewMaxOverMean());
    w.Key("buckets");
    w.BeginArray();
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      w.BeginObject();
      w.Key("ge");
      w.Uint(HistogramBucketLowerBound(b));
      w.Key("count");
      w.Uint(h.buckets[b]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Release();
}

}  // namespace hamming::obs

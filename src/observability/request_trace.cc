#include "observability/request_trace.h"

namespace hamming::obs {

namespace {

thread_local SpanSink* g_current_sink = nullptr;

// SplitMix64 finalizer: a cheap, well-mixed hash so head-sampling is
// uniform over ids even though ids are sequential.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* RequestPhaseName(RequestPhase phase) {
  switch (phase) {
    case RequestPhase::kAdmit:
      return "admit";
    case RequestPhase::kQueue:
      return "queue";
    case RequestPhase::kBatchForm:
      return "batch_form";
    case RequestPhase::kEpochPin:
      return "epoch_pin";
    case RequestPhase::kKernel:
      return "kernel";
    case RequestPhase::kRespond:
      return "respond";
  }
  return "unknown";
}

TraceSampler::TraceSampler(TraceSamplerOptions opts)
    : opts_(opts), base_(std::chrono::steady_clock::now()) {}

uint64_t TraceSampler::NextTraceId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

bool TraceSampler::HeadSampled(uint64_t trace_id) const {
  if (opts_.sample_every <= 1) return true;
  return Mix64(opts_.seed ^ trace_id) % opts_.sample_every == 0;
}

bool TraceSampler::Slow(std::chrono::nanoseconds e2e) const {
  return opts_.slow_threshold.count() > 0 && e2e >= opts_.slow_threshold;
}

double TraceSampler::ToTraceMicros(
    std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             tp - base_)
      .count();
}

SpanSink* CurrentSpanSink() { return g_current_sink; }

SpanSinkScope::SpanSinkScope(SpanSink* sink) : previous_(g_current_sink) {
  g_current_sink = sink;
}

SpanSinkScope::~SpanSinkScope() { g_current_sink = previous_; }

ScopedRequestSpan::ScopedRequestSpan(RequestPhase phase, uint64_t detail)
    : sink_(g_current_sink), phase_(phase), detail_(detail) {
  if (sink_ != nullptr) start_ns_ = RequestTraceNowNs();
}

ScopedRequestSpan::~ScopedRequestSpan() { End(); }

void ScopedRequestSpan::End() {
  if (sink_ != nullptr) {
    sink_->Record(phase_, start_ns_, RequestTraceNowNs(), detail_);
    sink_ = nullptr;
  }
}

uint64_t RequestTraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace hamming::obs

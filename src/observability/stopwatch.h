// Wall-clock timing — part of the observability layer (canonical home
// since the metrics/tracing PR; common/stopwatch.h forwards here).
#pragma once

#include <chrono>
#include <cstdint>

namespace hamming::obs {

/// \brief A simple steady-clock stopwatch.
///
/// Starts running on construction; Elapsed* may be called repeatedly,
/// Restart resets the origin.
class Stopwatch {
 public:
  Stopwatch();

  /// Resets the start point to now.
  void Restart();

  /// \brief Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const;
  /// \brief Elapsed time in microseconds.
  double ElapsedMicros() const;
  /// \brief Elapsed time in milliseconds.
  double ElapsedMillis() const;
  /// \brief Elapsed time in seconds.
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hamming::obs

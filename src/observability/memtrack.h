// Memory accounting — part of the observability layer (canonical home
// since the metrics/tracing PR; common/memtrack.h forwards here).
//
// Table 4 of the paper compares index memory footprints (MB). Each index
// reports its heap usage through MemoryBreakdown so the bench harness can
// print the same columns. PeakRssBytes()/RecordPeakRss() add the
// process-wide high-watermark the same harnesses attach to their
// BENCH_*.json snapshots as the "process.peak_rss_bytes" gauge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "observability/metrics.h"

namespace hamming::obs {

/// \brief Byte counts for the structural parts of an index.
struct MemoryBreakdown {
  /// Bytes spent on internal (non-leaf) structure: nodes, edges, tables.
  std::size_t internal_bytes = 0;
  /// Bytes spent on leaf-level payload: stored codes, tuple-id hash tables.
  std::size_t leaf_bytes = 0;

  std::size_t total() const { return internal_bytes + leaf_bytes; }

  MemoryBreakdown& operator+=(const MemoryBreakdown& other) {
    internal_bytes += other.internal_bytes;
    leaf_bytes += other.leaf_bytes;
    return *this;
  }

  /// \brief "12.3MB (internal 4.1MB / leaf 8.2MB)" style rendering.
  std::string ToString() const;
};

/// \brief Pretty-prints a byte count ("473B", "1.2KB", "34.5MB").
std::string FormatBytes(std::size_t bytes);

/// \brief The process's peak resident set size in bytes (getrusage
/// ru_maxrss); 0 where the platform doesn't report it.
uint64_t PeakRssBytes();

/// \brief Sets the "process.peak_rss_bytes" gauge on `registry` to the
/// current PeakRssBytes() (no-op for null registry or unsupported
/// platforms). Gauges are high-watermark, so calling repeatedly is safe.
void RecordPeakRss(MetricsRegistry* registry);

}  // namespace hamming::obs

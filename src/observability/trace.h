// TraceCollector: turns the MapReduce runtime's JobEvent stream into a
// Chrome trace-event / Perfetto-loadable timeline.
//
// The simulated cluster places task t of a job on node t % num_nodes
// (the same round-robin the paper's 16-node Hadoop cluster approximates
// with its slot scheduler), so the collector renders one Perfetto
// *process* per node ("node-0".."node-N"), plus a "driver" process for
// phase boundaries. Within a node, a task's slot (t / num_nodes) picks
// the thread lane, with attempts fanned out to neighbouring lanes so a
// speculative backup shows up beside the straggler it raced.
//
// Span mapping:
//  * attempt_finish/fail/kill   -> "X" (complete) spans of duration d,
//    named "map 3 a0" etc., categorized by phase, with the outcome and
//    detail text in args. (JobEvents carry the *end* time plus duration,
//    so ts = end - duration.)
//  * spill / merge_pass         -> "i" (instant) events on the task lane.
//  * phase_start/phase_finish   -> "X" spans on the driver lane, one per
//    map/shuffle/reduce phase, paired by phase name.
//
// Successive jobs observed by one collector (a multi-job plan like MRHA)
// each restart the job clock at 0; the collector re-bases every job at
// the maximum absolute timestamp seen so far, so a plan's jobs lay out
// end-to-end on one timeline. Label jobs with BeginJob() to get named
// "job" spans around each.
//
// Beyond job events, AddProcessSpan() injects spans into auxiliary named
// processes (pids from kAuxTracePidBase up, one per distinct name) on a
// caller-supplied clock — this is how the serving layer's sampled
// per-request traces (observability/request_trace.h) land on the same
// timeline as the MapReduce jobs, one thread lane per engine worker
// (label lanes with NameProcessThread). Aux spans never perturb the job
// re-basing clock.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/sync.h"
#include "mapreduce/execution.h"

namespace hamming::obs {

struct TraceOptions {
  /// Simulated node count used for the task -> node placement; must
  /// match the Cluster the jobs run on for the lanes to be truthful.
  std::size_t num_nodes = 16;
};

/// \brief First pid of auxiliary named processes (AddProcessSpan); well
/// above any node pid so the two families can never collide.
inline constexpr uint32_t kAuxTracePidBase = 1000;

/// \brief Collects JobEvents (as a mr::JobObserver) and exports a
/// Chrome trace-event JSON document.
///
/// OnEvent calls are serialized by the job runner but may arrive from
/// any worker thread, and one collector may outlive many jobs; all
/// state is guarded by an internal mutex.
class TraceCollector final : public mr::JobObserver {
 public:
  explicit TraceCollector(TraceOptions opts = {});

  /// \brief Starts a labelled job region: subsequent events belong to
  /// `name` until the next BeginJob. Optional — unlabelled jobs get
  /// "job-<index>".
  void BeginJob(const std::string& name) HAMMING_EXCLUDES(mu_);

  void OnEvent(const mr::JobEvent& event) override HAMMING_EXCLUDES(mu_);

  /// \brief Ingests a whole finished trace (the pull-style alternative
  /// for callers that kept JobResult::trace instead of observing live).
  void AddJobTrace(const mr::JobEventTrace& trace,
                   const std::string& job_name = "") HAMMING_EXCLUDES(mu_);

  /// \brief Appends one span to the auxiliary process named `process`
  /// (created on first use), thread lane `tid`. Timestamps are on the
  /// caller's clock in microseconds; `duration_us` <= 0 with
  /// `instant` = true renders an instant marker. Thread-safe.
  void AddProcessSpan(const std::string& process, uint32_t tid,
                      const std::string& name, const std::string& category,
                      double start_us, double duration_us,
                      const std::string& args_detail = "",
                      bool instant = false) HAMMING_EXCLUDES(mu_);

  /// \brief Labels thread lane `tid` of auxiliary process `process`
  /// (e.g. "worker-3") via thread_name metadata.
  void NameProcessThread(const std::string& process, uint32_t tid,
                         const std::string& thread_name)
      HAMMING_EXCLUDES(mu_);

  /// \brief Number of trace events collected so far.
  std::size_t size() const HAMMING_EXCLUDES(mu_);

  /// \brief The timeline as a Chrome trace-event JSON object
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}) loadable by
  /// chrome://tracing and ui.perfetto.dev.
  std::string ToChromeJson() const HAMMING_EXCLUDES(mu_);

  /// \brief Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  struct Span {
    std::string name;
    std::string category;  // "map", "shuffle", "reduce", "spill", "job"
    std::string args_detail;
    double start_us = 0.0;
    double duration_us = 0.0;  // 0 => instant event
    uint32_t pid = 0;          // node + 1 (0 = driver)
    uint32_t tid = 0;
    bool instant = false;
  };

  void Ingest(const mr::JobEvent& e) HAMMING_REQUIRES(mu_);
  void CloseJobSpan() HAMMING_REQUIRES(mu_);
  uint32_t AuxProcessPidLocked(const std::string& process)
      HAMMING_REQUIRES(mu_);

  TraceOptions opts_;
  mutable Mutex mu_;
  std::vector<Span> spans_ HAMMING_GUARDED_BY(mu_);
  std::size_t max_node_seen_ HAMMING_GUARDED_BY(mu_) = 0;
  // Auxiliary named processes: index i renders as pid
  // kAuxTracePidBase + i; thread_names_ holds (pid, tid, label).
  std::vector<std::string> aux_processes_ HAMMING_GUARDED_BY(mu_);
  std::vector<std::tuple<uint32_t, uint32_t, std::string>> thread_names_
      HAMMING_GUARDED_BY(mu_);
  // Job re-basing state.
  double job_base_us_ HAMMING_GUARDED_BY(mu_) = 0.0;
  double max_abs_us_ HAMMING_GUARDED_BY(mu_) = 0.0;
  std::size_t job_index_ HAMMING_GUARDED_BY(mu_) = 0;
  bool job_open_ HAMMING_GUARDED_BY(mu_) = false;
  std::string next_job_name_ HAMMING_GUARDED_BY(mu_);
  std::string open_job_name_ HAMMING_GUARDED_BY(mu_);
  double open_job_start_us_ HAMMING_GUARDED_BY(mu_) = 0.0;
  // Open phase starts of the current job, keyed by phase name.
  std::vector<std::pair<std::string, double>> open_phases_
      HAMMING_GUARDED_BY(mu_);
};

/// \brief One-shot conversion of a finished job trace (convenience
/// around TraceCollector::AddJobTrace + ToChromeJson).
std::string ChromeTraceFromJobTrace(const mr::JobEventTrace& trace,
                                    std::size_t num_nodes,
                                    const std::string& job_name = "");

}  // namespace hamming::obs

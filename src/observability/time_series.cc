#include "observability/time_series.h"

#include <algorithm>

#include "observability/json.h"

namespace hamming::obs {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

}  // namespace

TimeSeriesCollector::TimeSeriesCollector(MetricsRegistry* registry,
                                         TimeSeriesOptions opts)
    : registry_(registry),
      opts_(std::move(opts)),
      base_(std::chrono::steady_clock::now()) {
  MutexLock lock(&mu_);
  prev_time_ = base_;
  if (registry_ != nullptr) prev_ = registry_->Snapshot();
}

TimeSeriesCollector::~TimeSeriesCollector() { Stop(); }

Status TimeSeriesCollector::Start() {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&mu_);
    if (started_) return Status::OK();
    if (stopping_) return Status::InvalidArgument("collector already stopped");
    if (!opts_.export_path.empty()) {
      file_ = std::fopen(opts_.export_path.c_str(), "w");
      if (file_ == nullptr) {
        return Status::IOError("cannot open time-series export path: " +
                               opts_.export_path);
      }
    }
    started_ = true;
  }
  exporter_ = Thread([this] { ExporterLoop(); });
  return Status::OK();
}

void TimeSeriesCollector::ExporterLoop() {
  MutexLock lock(&mu_);
  auto next = std::chrono::steady_clock::now() + opts_.interval;
  while (!stopping_) {
    // WaitUntil returns true on timeout: time to close a window. A
    // spurious or stop wakeup just re-checks the flag.
    if (stop_cv_.WaitUntil(&mu_, next)) {
      CloseWindowLocked();
      next = std::chrono::steady_clock::now() + opts_.interval;
    }
  }
}

void TimeSeriesCollector::Stop() {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (exporter_.joinable()) exporter_.join();
  MutexLock lock(&mu_);
  if (drained_) return;
  drained_ = true;
  if (started_) {
    // Final partial window: whatever accumulated since the last tick
    // still reaches the ring and the file.
    CloseWindowLocked();
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

TimeSeriesWindow TimeSeriesCollector::CloseWindowNow() {
  MutexLock lock(&mu_);
  return CloseWindowLocked();
}

TimeSeriesWindow TimeSeriesCollector::CloseWindowLocked() {
  const auto now = std::chrono::steady_clock::now();
  MetricsSnapshot snap =
      registry_ != nullptr ? registry_->Snapshot() : MetricsSnapshot{};

  TimeSeriesWindow w;
  w.index = closed_;
  w.t_start_s = SecondsBetween(base_, prev_time_);
  w.duration_s = SecondsBetween(prev_time_, now);
  const double dt = std::max(w.duration_s, 1e-9);

  for (const auto& [name, value] : snap.counters) {
    auto it = prev_.counters.find(name);
    const int64_t before = it == prev_.counters.end() ? 0 : it->second;
    const int64_t delta = value - before;
    if (delta == 0) continue;
    w.counter_deltas[name] = delta;
    w.counter_rates[name] = static_cast<double>(delta) / dt;
  }
  w.gauges = snap.gauges;
  for (const auto& [name, after] : snap.histograms) {
    auto it = prev_.histograms.find(name);
    const HistogramSnapshot empty;
    const HistogramSnapshot& before =
        it == prev_.histograms.end() ? empty : it->second;
    HistogramSnapshot win = HistogramSnapshot::Delta(before, after);
    if (win.count == 0) continue;
    WindowHistogram wh;
    wh.count = win.count;
    wh.sum = win.sum;
    wh.mean = win.Mean();
    wh.p50 = win.Percentile(0.50);
    wh.p99 = win.Percentile(0.99);
    wh.p999 = win.Percentile(0.999);
    w.histograms[name] = wh;
  }

  prev_ = std::move(snap);
  prev_time_ = now;
  ++closed_;

  if (file_ != nullptr) {
    const std::string line = w.ToJson();
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
  if (opts_.ring_capacity > 0) {
    if (ring_.size() >= opts_.ring_capacity) {
      ring_.erase(ring_.begin());
      ++evicted_;
    }
    ring_.push_back(w);
  }
  return w;
}

std::vector<TimeSeriesWindow> TimeSeriesCollector::Windows() const {
  MutexLock lock(&mu_);
  return ring_;
}

uint64_t TimeSeriesCollector::windows_closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

uint64_t TimeSeriesCollector::windows_evicted() const {
  MutexLock lock(&mu_);
  return evicted_;
}

std::string TimeSeriesWindow::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("window");
  w.Uint(index);
  w.Key("t_start_s");
  w.Double(t_start_s);
  w.Key("duration_s");
  w.Double(duration_s);
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, delta] : counter_deltas) {
    w.Key(name);
    w.BeginObject();
    w.Key("delta");
    w.Int(delta);
    w.Key("rate");
    auto it = counter_rates.find(name);
    w.Double(it == counter_rates.end() ? 0.0 : it->second);
    w.EndObject();
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Uint(h.count);
    w.Key("sum");
    w.Uint(h.sum);
    w.Key("mean");
    w.Double(h.mean);
    w.Key("p50");
    w.Double(h.p50);
    w.Key("p99");
    w.Double(h.p99);
    w.Key("p999");
    w.Double(h.p999);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Release();
}

}  // namespace hamming::obs

// Sampled query log: the planner's calibration corpus.
//
// ROADMAP item 4 (adaptive planner) needs recorded per-query
// QueryStats — candidate counts, kernel work, queueing delay — joined
// with outcomes and latencies. This log keeps a bounded, statistically
// honest record of a serving run:
//
//  * a seeded reservoir (algorithm R) of NORMAL queries, so the corpus
//    stays a uniform sample of the whole stream no matter how long the
//    run, at fixed memory;
//  * the top-K SLOWEST queries kept separately and exhaustively up to
//    capacity — the tail exemplars a latency post-mortem (and a cost
//    model that must not under-predict the tail) actually wants. Every
//    slow query is considered; when the set is full the fastest of the
//    kept slow queries is evicted, so the K worst always survive.
//
// Entries carry the trace id, so a slow exemplar in the JSONL can be
// joined against its span breakdown in the Perfetto timeline. Export is
// one JSON object per line (JSONL): streaming-friendly for
// tools/telemetry_report and future planner training.
//
// Thread-safe: Record() is called by every engine worker; a single
// mutex is fine because recording happens once per request, not per
// code probe.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "observability/query_stats.h"
#include "observability/request_trace.h"

namespace hamming::obs {

/// \brief One sampled query: identity, outcome, latency breakdown,
/// work profile, span stack.
struct QueryLogEntry {
  uint64_t trace_id = 0;
  bool head_sampled = false;
  bool slow = false;  // exceeded the sampler's slow threshold
  bool ok = true;     // final status was OK
  /// 'r' = range query, 'k' = kNN (kept as a char so this layer stays
  /// below index/query.h in the layering DAG).
  char kind = 'r';
  /// Radius h for range queries, k for kNN.
  uint64_t param = 0;
  /// Seconds since the log was created (relative, steady clock).
  double t_s = 0.0;
  double e2e_us = 0.0;
  double queue_us = 0.0;
  double service_us = 0.0;
  uint64_t batch_size = 0;
  QueryStats stats;
  std::vector<RequestSpan> spans;

  /// \brief The entry as one JSON object (one JSONL line, no newline).
  std::string ToJson() const;
};

struct QueryLogOptions {
  /// Reservoir capacity for normal (non-slow) queries.
  std::size_t reservoir_capacity = 256;
  /// How many slowest queries are retained.
  std::size_t slow_capacity = 64;
  /// Reservoir RNG seed — fixed seed, fixed sample, the determinism
  /// the reservoir tests rely on.
  uint64_t seed = 42;
};

/// \brief Bounded exemplar log: uniform reservoir of normal queries +
/// the slowest queries kept exhaustively up to capacity.
class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions opts = {});

  /// \brief Records one completed query. `entry.slow` routes it: slow
  /// entries compete for the slow set, others for the reservoir.
  /// `entry.t_s` is overwritten with the log-relative arrival time.
  void Record(QueryLogEntry entry) HAMMING_EXCLUDES(mu_);

  /// \brief Uniform sample of normal queries (insertion order).
  std::vector<QueryLogEntry> ReservoirSnapshot() const
      HAMMING_EXCLUDES(mu_);

  /// \brief Retained slow queries, slowest first.
  std::vector<QueryLogEntry> SlowSnapshot() const HAMMING_EXCLUDES(mu_);

  /// \brief Total queries offered to Record().
  uint64_t recorded() const HAMMING_EXCLUDES(mu_);
  /// \brief How many of those were slow.
  uint64_t slow_seen() const HAMMING_EXCLUDES(mu_);

  /// \brief Every retained entry (slow set first, then reservoir) as
  /// JSONL.
  std::string ToJsonl() const HAMMING_EXCLUDES(mu_);

  /// \brief Writes ToJsonl() to `path`; false on I/O failure.
  bool ExportJsonl(const std::string& path) const;

 private:
  const QueryLogOptions opts_;
  const std::chrono::steady_clock::time_point base_;
  mutable Mutex mu_;
  std::vector<QueryLogEntry> reservoir_ HAMMING_GUARDED_BY(mu_);
  std::vector<QueryLogEntry> slow_ HAMMING_GUARDED_BY(mu_);
  uint64_t normal_seen_ HAMMING_GUARDED_BY(mu_) = 0;
  uint64_t slow_seen_ HAMMING_GUARDED_BY(mu_) = 0;
  uint64_t rng_state_ HAMMING_GUARDED_BY(mu_);
};

}  // namespace hamming::obs

// Per-request spans for the online serving path.
//
// One served query crosses the engine as admit → queue → batch-form →
// epoch-pin → kernel → respond; this header carries that span stack as
// plain data (RequestSpan/RequestTrace) plus the two pieces that make
// recording cheap enough for the hot path:
//
//  * TraceSampler — hands out process-unique trace ids and decides,
//    deterministically in (seed, id), whether a request is HEAD-sampled
//    (1-in-N at admission). Tail capture is the complement: requests
//    whose end-to-end latency exceeds `slow_threshold` are exported even
//    when the head coin said no, so the p999 stragglers the timeline
//    exists for are never missing from it. Determinism matters: replays
//    of the same request stream sample the same ids, which is what the
//    sampler tests pin.
//
//  * SpanSink + ScopedRequestSpan — a thread-local recording channel.
//    The engine installs a sink around the batched index call
//    (SpanSinkScope) and layers *below* serving (ConcurrentHAIndex's
//    epoch pin) record spans through it without any interface change or
//    layering edge: no sink installed = one thread-local load and no
//    other work. Timestamps are steady-clock nanos.
//
// Export goes through TraceCollector::AddProcessSpan into an auxiliary
// "serving" process (one thread lane per engine worker), alongside the
// MapReduce job timeline, and through QueryLog entries (span
// breakdowns ride with the sampled QueryStats exemplars).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace hamming::obs {

/// \brief Phases of one served request, in hot-path order.
enum class RequestPhase : uint8_t {
  kAdmit = 0,
  kQueue,
  kBatchForm,
  kEpochPin,
  kKernel,
  kRespond,
};

/// \brief Stable lowercase label of a phase ("admit", "queue", ...).
const char* RequestPhaseName(RequestPhase phase);

/// \brief One recorded phase interval (steady-clock nanos). `detail` is
/// a phase-defined payload (the pinned epoch number for kEpochPin).
struct RequestSpan {
  RequestPhase phase = RequestPhase::kAdmit;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t detail = 0;

  uint64_t DurationNs() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// \brief One request's identity + span stack, as exported.
struct RequestTrace {
  uint64_t trace_id = 0;
  bool head_sampled = false;
  std::vector<RequestSpan> spans;
};

struct TraceSamplerOptions {
  /// Head-sample 1 request in this many (deterministic in the trace
  /// id); <= 1 samples every request.
  uint32_t sample_every = 64;
  /// Seed of the sampling hash — fixed seed, fixed decisions.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Requests slower than this end-to-end are captured even when not
  /// head-sampled (tail capture); zero disables.
  std::chrono::microseconds slow_threshold{0};
};

/// \brief Trace-id allocator + deterministic head-sampling decision +
/// the trace clock (micros since sampler construction, the timebase of
/// exported serving spans). Thread-safe; recording threads share it.
class TraceSampler {
 public:
  explicit TraceSampler(TraceSamplerOptions opts = {});

  /// \brief Next trace id (1-based, unique per sampler).
  uint64_t NextTraceId();

  /// \brief Whether `trace_id` is head-sampled — pure in (seed, id).
  bool HeadSampled(uint64_t trace_id) const;

  /// \brief Whether an end-to-end latency trips tail capture.
  bool Slow(std::chrono::nanoseconds e2e) const;

  /// \brief `tp` on the trace timeline (micros since construction).
  double ToTraceMicros(std::chrono::steady_clock::time_point tp) const;

  const TraceSamplerOptions& options() const { return opts_; }

 private:
  TraceSamplerOptions opts_;
  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point base_;
};

/// \brief Collects the spans recorded on one thread during one batched
/// index call. Single-writer (the worker thread that installed it).
class SpanSink {
 public:
  void Record(RequestPhase phase, uint64_t start_ns, uint64_t end_ns,
              uint64_t detail) {
    spans_.push_back(RequestSpan{phase, start_ns, end_ns, detail});
  }
  void Clear() { spans_.clear(); }
  const std::vector<RequestSpan>& spans() const { return spans_; }

 private:
  std::vector<RequestSpan> spans_;
};

/// \brief The calling thread's current sink (null = not recording).
SpanSink* CurrentSpanSink();

/// \brief RAII installation of a SpanSink as the calling thread's
/// current sink; restores the previous sink on destruction.
class SpanSinkScope {
 public:
  explicit SpanSinkScope(SpanSink* sink);
  ~SpanSinkScope();
  SpanSinkScope(const SpanSinkScope&) = delete;
  SpanSinkScope& operator=(const SpanSinkScope&) = delete;

 private:
  SpanSink* previous_;
};

/// \brief RAII span: stamps the start at construction and records into
/// the thread's current sink at destruction — a no-op (one thread-local
/// load, no clock read) when no sink is installed.
class ScopedRequestSpan {
 public:
  explicit ScopedRequestSpan(RequestPhase phase, uint64_t detail = 0);
  ~ScopedRequestSpan();
  ScopedRequestSpan(const ScopedRequestSpan&) = delete;
  ScopedRequestSpan& operator=(const ScopedRequestSpan&) = delete;

  /// \brief Sets the phase payload (e.g. the pinned epoch number).
  void SetDetail(uint64_t detail) { detail_ = detail; }

  /// \brief Records the span now (instead of at scope exit) — for
  /// phases that finish mid-scope, like an epoch pin that precedes the
  /// kernel call sharing its scope. Idempotent; disarms the destructor.
  void End();

 private:
  SpanSink* sink_;
  RequestPhase phase_;
  uint64_t detail_;
  uint64_t start_ns_ = 0;
};

/// \brief Steady-clock now in nanos (the RequestSpan timebase).
uint64_t RequestTraceNowNs();

}  // namespace hamming::obs

#include "observability/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace hamming::obs {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonEscaped(&out, s);
  return out;
}

bool JsonUnescape(std::string_view literal, std::string* out) {
  out->clear();
  if (literal.size() < 2 || literal.front() != '"' || literal.back() != '"') {
    return false;
  }
  std::string_view body = literal.substr(1, literal.size() - 2);
  for (std::size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (c == '"') return false;  // unescaped quote would have ended the body
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= body.size()) return false;
    switch (body[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (i + 4 >= body.size()) return false;
        unsigned value = 0;
        for (int k = 1; k <= 4; ++k) {
          char h = body[i + static_cast<std::size_t>(k)];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        if (value > 0x7f) return false;  // escaper only emits ASCII \u
        out->push_back(static_cast<char>(value));
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    // A value inside an object must follow Key(); Key() already wrote the
    // separator and cleared has_prev_ bookkeeping for us.
    assert(pending_key_ && "JsonWriter: object value without a Key()");
    pending_key_ = false;
    return;
  }
  if (has_prev_.back()) out_.push_back(',');
  has_prev_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  has_prev_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  out_.push_back('}');
  stack_.pop_back();
  has_prev_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  has_prev_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  out_.push_back(']');
  stack_.pop_back();
  has_prev_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  assert(!pending_key_ && "JsonWriter: two Key() calls in a row");
  if (has_prev_.back()) out_.push_back(',');
  has_prev_.back() = true;
  AppendJsonEscaped(&out_, key);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendJsonEscaped(&out_, value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
}

}  // namespace hamming::obs

#include "observability/trace.h"

#include <algorithm>
#include <cstdio>

#include "observability/json.h"

namespace hamming::obs {

namespace {

const char* PhaseOfEvent(const mr::JobEvent& e) {
  if (e.type == mr::JobEventType::kSpill) return "spill";
  if (e.type == mr::JobEventType::kMergePass) return "merge";
  return e.kind == mr::TaskKind::kMap ? "map" : "reduce";
}

}  // namespace

TraceCollector::TraceCollector(TraceOptions opts) : opts_(opts) {
  if (opts_.num_nodes == 0) opts_.num_nodes = 1;
}

void TraceCollector::BeginJob(const std::string& name) {
  MutexLock lock(&mu_);
  next_job_name_ = name;
}

void TraceCollector::OnEvent(const mr::JobEvent& event) {
  MutexLock lock(&mu_);
  Ingest(event);
}

void TraceCollector::AddJobTrace(const mr::JobEventTrace& trace,
                                 const std::string& job_name) {
  MutexLock lock(&mu_);
  if (!job_name.empty()) next_job_name_ = job_name;
  for (const mr::JobEvent& e : trace.events()) Ingest(e);
}

std::size_t TraceCollector::size() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

uint32_t TraceCollector::AuxProcessPidLocked(const std::string& process) {
  for (std::size_t i = 0; i < aux_processes_.size(); ++i) {
    if (aux_processes_[i] == process) {
      return kAuxTracePidBase + static_cast<uint32_t>(i);
    }
  }
  aux_processes_.push_back(process);
  return kAuxTracePidBase + static_cast<uint32_t>(aux_processes_.size() - 1);
}

void TraceCollector::AddProcessSpan(const std::string& process, uint32_t tid,
                                    const std::string& name,
                                    const std::string& category,
                                    double start_us, double duration_us,
                                    const std::string& args_detail,
                                    bool instant) {
  MutexLock lock(&mu_);
  Span s;
  s.name = name;
  s.category = category;
  s.args_detail = args_detail;
  s.start_us = start_us;
  s.duration_us = instant ? 0.0 : std::max(0.0, duration_us);
  s.pid = AuxProcessPidLocked(process);
  s.tid = tid;
  s.instant = instant;
  // Deliberately no max_abs_us_ update: aux spans ride their own clock
  // and must not push the job re-basing forward.
  spans_.push_back(std::move(s));
}

void TraceCollector::NameProcessThread(const std::string& process,
                                       uint32_t tid,
                                       const std::string& thread_name) {
  MutexLock lock(&mu_);
  const uint32_t pid = AuxProcessPidLocked(process);
  for (auto& [p, t, n] : thread_names_) {
    if (p == pid && t == tid) {
      n = thread_name;
      return;
    }
  }
  thread_names_.emplace_back(pid, tid, thread_name);
}

void TraceCollector::CloseJobSpan() {
  if (!job_open_) return;
  Span job;
  job.name = open_job_name_;
  job.category = "job";
  job.start_us = open_job_start_us_;
  job.duration_us = std::max(0.0, max_abs_us_ - open_job_start_us_);
  job.pid = 0;
  job.tid = 0;
  spans_.push_back(std::move(job));
  job_open_ = false;
  open_phases_.clear();
}

void TraceCollector::Ingest(const mr::JobEvent& e) {
  // A new job announces itself with the map phase_start; re-base it at
  // the end of everything seen so far so sequential jobs don't overlap.
  if (e.type == mr::JobEventType::kPhaseStart && e.detail == "map") {
    CloseJobSpan();
    job_base_us_ = max_abs_us_;
    ++job_index_;
    open_job_name_ = next_job_name_.empty()
                         ? "job-" + std::to_string(job_index_)
                         : next_job_name_;
    next_job_name_.clear();
    job_open_ = true;
    open_job_start_us_ = job_base_us_ + e.time_seconds * 1e6;
  }
  const double end_us = job_base_us_ + e.time_seconds * 1e6;
  const double dur_us = e.duration_seconds * 1e6;
  max_abs_us_ = std::max(max_abs_us_, end_us);

  switch (e.type) {
    case mr::JobEventType::kPhaseStart:
      open_phases_.emplace_back(e.detail, end_us);
      return;
    case mr::JobEventType::kPhaseFinish: {
      Span s;
      s.name = open_job_name_.empty() ? e.detail
                                      : open_job_name_ + " " + e.detail;
      s.category = e.detail;
      s.pid = 0;
      s.tid = 1;
      s.duration_us = dur_us;
      s.start_us = end_us - dur_us;
      // Prefer the recorded start (re-based) when we saw it; the pair is
      // redundant but keeps the span honest if duration was rounded.
      for (auto it = open_phases_.rbegin(); it != open_phases_.rend(); ++it) {
        if (it->first == e.detail) {
          s.start_us = it->second;
          s.duration_us = std::max(dur_us, end_us - it->second);
          open_phases_.erase(std::next(it).base());
          break;
        }
      }
      spans_.push_back(std::move(s));
      return;
    }
    case mr::JobEventType::kAttemptStart:
    case mr::JobEventType::kAttemptSpeculate:
      // Spans are drawn from the finish-side events (which carry the
      // duration); starts and speculation decisions appear as instants
      // so the scheduling story stays visible.
      {
        if (e.task == mr::kNoTask) return;
        Span s;
        s.instant = true;
        s.name = e.type == mr::JobEventType::kAttemptSpeculate
                     ? "speculate"
                     : (e.detail == "speculative" ? "backup start" : "start");
        s.category = PhaseOfEvent(e);
        s.args_detail = e.detail;
        s.start_us = end_us;
        s.pid = static_cast<uint32_t>(e.task % opts_.num_nodes) + 1;
        s.tid = static_cast<uint32_t>(e.task / opts_.num_nodes);
        max_node_seen_ = std::max(max_node_seen_, e.task % opts_.num_nodes);
        spans_.push_back(std::move(s));
        return;
      }
    case mr::JobEventType::kAttemptFinish:
    case mr::JobEventType::kAttemptFail:
    case mr::JobEventType::kAttemptKill: {
      if (e.task == mr::kNoTask) return;
      Span s;
      const char* outcome = e.type == mr::JobEventType::kAttemptFinish
                                ? ""
                                : (e.type == mr::JobEventType::kAttemptFail
                                       ? " FAIL"
                                       : " killed");
      s.name = std::string(mr::TaskKindName(e.kind)) + " " +
               std::to_string(e.task) + " a" + std::to_string(e.attempt) +
               outcome;
      s.category = PhaseOfEvent(e);
      s.args_detail = e.detail;
      s.duration_us = dur_us;
      s.start_us = end_us - dur_us;
      s.pid = static_cast<uint32_t>(e.task % opts_.num_nodes) + 1;
      // Slot lane within the node; attempts fan out to adjacent lanes so
      // racing attempts of one task render side by side, not stacked.
      s.tid = static_cast<uint32_t>(e.task / opts_.num_nodes) * 4 +
              static_cast<uint32_t>(std::max(0, e.attempt) % 4);
      max_node_seen_ = std::max(max_node_seen_, e.task % opts_.num_nodes);
      spans_.push_back(std::move(s));
      return;
    }
    case mr::JobEventType::kSpill:
    case mr::JobEventType::kMergePass: {
      if (e.task == mr::kNoTask) return;
      Span s;
      s.instant = true;
      s.name = e.type == mr::JobEventType::kSpill ? "spill" : "merge pass";
      s.category = PhaseOfEvent(e);
      s.args_detail = e.detail;
      s.start_us = end_us;
      s.pid = static_cast<uint32_t>(e.task % opts_.num_nodes) + 1;
      s.tid = static_cast<uint32_t>(e.task / opts_.num_nodes) * 4 +
              static_cast<uint32_t>(std::max(0, e.attempt) % 4);
      max_node_seen_ = std::max(max_node_seen_, e.task % opts_.num_nodes);
      spans_.push_back(std::move(s));
      return;
    }
  }
}

std::string TraceCollector::ToChromeJson() const {
  MutexLock lock(&mu_);
  // Flush the trailing job span into a local copy so export is const.
  std::vector<Span> spans = spans_;
  if (job_open_) {
    Span job;
    job.name = open_job_name_;
    job.category = "job";
    job.start_us = open_job_start_us_;
    job.duration_us = std::max(0.0, max_abs_us_ - open_job_start_us_);
    spans.push_back(std::move(job));
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  // Process-name metadata: pid 0 is the driver, pid n+1 is node-n.
  auto name_process = [&w](uint32_t pid, const std::string& name) {
    w.BeginObject();
    w.Key("name");
    w.String("process_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Uint(pid);
    w.Key("tid");
    w.Uint(0);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.EndObject();
    w.EndObject();
  };
  name_process(0, "driver");
  for (std::size_t n = 0; n <= max_node_seen_; ++n) {
    name_process(static_cast<uint32_t>(n) + 1, "node-" + std::to_string(n));
  }
  for (std::size_t i = 0; i < aux_processes_.size(); ++i) {
    name_process(kAuxTracePidBase + static_cast<uint32_t>(i),
                 aux_processes_[i]);
  }
  for (const auto& [pid, tid, label] : thread_names_) {
    w.BeginObject();
    w.Key("name");
    w.String("thread_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Uint(pid);
    w.Key("tid");
    w.Uint(tid);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(label);
    w.EndObject();
    w.EndObject();
  }
  for (const Span& s : spans) {
    w.BeginObject();
    w.Key("name");
    w.String(s.name);
    w.Key("cat");
    w.String(s.category);
    w.Key("ph");
    w.String(s.instant ? "i" : "X");
    w.Key("ts");
    w.Double(s.start_us);
    if (!s.instant) {
      w.Key("dur");
      w.Double(std::max(0.0, s.duration_us));
    } else {
      w.Key("s");
      w.String("t");  // instant scope: thread
    }
    w.Key("pid");
    w.Uint(s.pid);
    w.Key("tid");
    w.Uint(s.tid);
    if (!s.args_detail.empty()) {
      w.Key("args");
      w.BeginObject();
      w.Key("detail");
      w.String(s.args_detail);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  return w.Release();
}

bool TraceCollector::WriteChromeJson(const std::string& path) const {
  std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string ChromeTraceFromJobTrace(const mr::JobEventTrace& trace,
                                    std::size_t num_nodes,
                                    const std::string& job_name) {
  TraceCollector collector(TraceOptions{num_nodes});
  collector.AddJobTrace(trace, job_name);
  return collector.ToChromeJson();
}

}  // namespace hamming::obs

#include "observability/stopwatch.h"

namespace hamming::obs {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

int64_t Stopwatch::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Stopwatch::ElapsedMicros() const { return ElapsedNanos() / 1e3; }

double Stopwatch::ElapsedMillis() const { return ElapsedNanos() / 1e6; }

double Stopwatch::ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

}  // namespace hamming::obs

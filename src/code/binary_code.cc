#include "code/binary_code.h"

namespace hamming {

BinaryCode::BinaryCode(std::size_t nbits) : nbits_(static_cast<uint32_t>(nbits)) {
  words_.fill(0);
}

Result<BinaryCode> BinaryCode::FromString(std::string_view bits) {
  BinaryCode code;
  std::size_t pos = 0;
  for (char ch : bits) {
    if (ch == ' ' || ch == '\t' || ch == '_') continue;
    if (ch != '0' && ch != '1') {
      return Status::InvalidArgument("invalid character in binary code string");
    }
    if (pos >= kMaxBits) {
      return Status::OutOfRange("binary code longer than kMaxBits");
    }
    if (ch == '1') code.words_[pos >> 6] |= 1ull << (63 - (pos & 63));
    ++pos;
  }
  code.nbits_ = static_cast<uint32_t>(pos);
  return code;
}

Result<BinaryCode> BinaryCode::FromUint64(uint64_t value, std::size_t nbits) {
  if (nbits > 64) {
    return Status::InvalidArgument("FromUint64 supports at most 64 bits");
  }
  BinaryCode code(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    if ((value >> (nbits - 1 - i)) & 1) code.SetBit(i, true);
  }
  return code;
}

BinaryCode BinaryCode::Substring(std::size_t start, std::size_t len) const {
  BinaryCode out(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (GetBit(start + i)) out.SetBit(i, true);
  }
  return out;
}

uint64_t BinaryCode::SubstringAsUint64(std::size_t start, std::size_t len) const {
  uint64_t v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    v = (v << 1) | static_cast<uint64_t>(GetBit(start + i));
  }
  return v;
}

BinaryCode BinaryCode::operator^(const BinaryCode& other) const {
  BinaryCode out(nbits_);
  for (std::size_t i = 0; i < kWords; ++i) {
    out.words_[i] = words_[i] ^ other.words_[i];
  }
  return out;
}

BinaryCode BinaryCode::operator&(const BinaryCode& other) const {
  BinaryCode out(nbits_);
  for (std::size_t i = 0; i < kWords; ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

BinaryCode BinaryCode::operator|(const BinaryCode& other) const {
  BinaryCode out(nbits_);
  for (std::size_t i = 0; i < kWords; ++i) {
    out.words_[i] = words_[i] | other.words_[i];
  }
  return out;
}

BinaryCode BinaryCode::Not() const {
  BinaryCode out(nbits_);
  for (std::size_t i = 0; i < kWords; ++i) out.words_[i] = ~words_[i];
  out.MaskTail();
  return out;
}

void BinaryCode::MaskTail() {
  // Clear bits at positions >= nbits_. Position p lives in word p/64 at
  // bit 63-(p%64), so word w keeps its top (nbits_-64w) bits.
  for (std::size_t w = 0; w < kWords; ++w) {
    std::size_t first_pos = w * 64;
    if (first_pos >= nbits_) {
      words_[w] = 0;
    } else {
      std::size_t keep = nbits_ - first_pos;
      if (keep < 64) words_[w] &= ~((1ull << (64 - keep)) - 1);
    }
  }
}

std::string BinaryCode::ToString() const {
  std::string out;
  out.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) out.push_back(GetBit(i) ? '1' : '0');
  return out;
}

uint64_t BinaryCode::Hash() const {
  // FNV-1a over the words plus the length.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (uint64_t w : words_) mix(w);
  mix(nbits_);
  return h;
}

void BinaryCode::Serialize(BufferWriter* w) const {
  w->PutVarint64(nbits_);
  std::size_t nbytes = PackedBytes();
  for (std::size_t b = 0; b < nbytes; ++b) {
    uint8_t byte = static_cast<uint8_t>(
        (words_[b / 8] >> (56 - 8 * (b % 8))) & 0xff);
    w->PutRaw(&byte, 1);
  }
}

Status BinaryCode::Deserialize(BufferReader* r, BinaryCode* out) {
  uint64_t nbits;
  HAMMING_RETURN_NOT_OK(r->GetVarint64(&nbits));
  if (nbits > kMaxBits) return Status::IOError("binary code too long");
  BinaryCode code(static_cast<std::size_t>(nbits));
  std::size_t nbytes = code.PackedBytes();
  for (std::size_t b = 0; b < nbytes; ++b) {
    uint8_t byte;
    HAMMING_RETURN_NOT_OK(r->GetRaw(&byte, 1));
    code.words_[b / 8] |= static_cast<uint64_t>(byte) << (56 - 8 * (b % 8));
  }
  code.MaskTail();
  *out = code;
  return Status::OK();
}

}  // namespace hamming

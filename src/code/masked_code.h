// Masked binary codes: the FLSS / FLSSeq abstraction (Definitions 3-4).
//
// A MaskedCode is a pattern like ". . . 0 . 1 . 1 ." from the paper: a
// value together with a mask of *effective* bit positions. It represents
// the set of full codes that agree with `value` on every masked position.
// Internal nodes of both HA-Index variants store MaskedCodes; the partial
// Hamming distance between a query and a MaskedCode counts differing bits
// at effective positions only, which is a lower bound on the full distance
// to any represented code (the Hamming downward-closure property,
// Proposition 1) and therefore a safe pruning test.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "code/binary_code.h"
#include "common/result.h"

namespace hamming {

/// \brief A fixed-length bit pattern with wildcard positions.
class MaskedCode {
 public:
  MaskedCode() = default;

  /// Creates an all-wildcard pattern of the given length.
  explicit MaskedCode(std::size_t nbits)
      : value_(nbits), mask_(nbits) {}

  /// \brief A pattern whose every position is effective (mask all ones).
  static MaskedCode FromFullCode(const BinaryCode& code);

  /// \brief Parses the paper's dot notation, e.g. "..10.1..."; '.' is a
  /// wildcard, '0'/'1' are effective bits; whitespace ignored.
  static Result<MaskedCode> FromPattern(std::string_view pattern);

  /// \brief The maximal pattern on which two codes agree: mask is the
  /// complement of a XOR b, value carries the agreed bits.
  static MaskedCode Agreement(const BinaryCode& a, const BinaryCode& b);

  /// \brief The maximal pattern on which two masked codes agree: effective
  /// where both are effective and their values coincide.
  static MaskedCode Agreement(const MaskedCode& a, const MaskedCode& b);

  std::size_t size() const { return value_.size(); }

  /// \brief Number of effective (non-wildcard) positions.
  std::size_t EffectiveBits() const { return mask_.PopCount(); }
  bool AllWildcard() const { return EffectiveBits() == 0; }

  /// \brief Partial Hamming distance: differing bits at effective
  /// positions between `code` and the pattern.
  std::size_t PartialDistance(const BinaryCode& code) const {
    std::size_t c = 0;
    const auto& v = value_.words();
    const auto& m = mask_.words();
    const auto& q = code.words();
    const std::size_t nw = value_.SignificantWords();
    for (std::size_t i = 0; i < nw; ++i) {
      c += static_cast<std::size_t>(std::popcount((v[i] ^ q[i]) & m[i]));
    }
    return c;
  }

  /// \brief True iff `code` matches the pattern exactly on every
  /// effective position (the paper's `bitmatch`).
  bool Matches(const BinaryCode& code) const {
    return PartialDistance(code) == 0;
  }

  /// \brief True iff `other`'s pattern is consistent with this one
  /// wherever both are effective.
  bool CompatibleWith(const MaskedCode& other) const;

  /// \brief Restricts this pattern to positions NOT effective in `parent`
  /// (the residual a child node stores below an internal node, keeping
  /// root-to-leaf masks disjoint so path distances sum exactly).
  MaskedCode Residual(const MaskedCode& parent) const;

  /// \brief Union of two disjoint-or-consistent patterns.
  MaskedCode CombinedWith(const MaskedCode& other) const;

  const BinaryCode& value() const { return value_; }
  const BinaryCode& mask() const { return mask_; }

  bool operator==(const MaskedCode& other) const {
    return value_ == other.value_ && mask_ == other.mask_;
  }
  bool operator!=(const MaskedCode& other) const { return !(*this == other); }

  /// \brief Dot-notation rendering, e.g. "..10.1...".
  std::string ToString() const;

  /// \brief Stable hash over value and mask.
  uint64_t Hash() const { return value_.Hash() * 31 + mask_.Hash(); }

  void Serialize(BufferWriter* w) const;
  static Status Deserialize(BufferReader* r, MaskedCode* out);

  /// \brief Packed size for memory accounting: value bits + mask bits.
  std::size_t PackedBytes() const {
    return value_.PackedBytes() + mask_.PackedBytes();
  }

 private:
  BinaryCode value_;  // effective bit values; zero at wildcard positions
  BinaryCode mask_;   // 1 = effective position
};

/// \brief std::hash adapter.
struct MaskedCodeHash {
  std::size_t operator()(const MaskedCode& c) const {
    return static_cast<std::size_t>(c.Hash());
  }
};

}  // namespace hamming

// Gray-code ordering of binary codes (Definition 5 / Proposition 2).
//
// The Dynamic HA-Index sorts codes "according to the Gray order": code U
// precedes code V iff the integer whose reflected-Gray-code encoding equals
// U is smaller than the one encoding V. Consecutive integers have Gray
// encodings differing in exactly one bit, so Gray-sorted codes cluster
// tuples whose codes share long common subsequences — the property H-Build
// exploits when extracting FLSSeqs (Proposition 2) and the partitioner
// exploits for locality-preserving range partitioning (Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "code/binary_code.h"

namespace hamming {

/// \brief Interprets `code` as a reflected Gray code and returns the
/// integer it encodes, as a same-length binary code (MSB at position 0).
///
/// b[0] = g[0]; b[i] = b[i-1] XOR g[i]. Comparing ranks lexicographically
/// is exactly comparing the decoded integers.
BinaryCode GrayRank(const BinaryCode& code);

/// \brief Inverse of GrayRank: Gray encoding of the integer in `rank`.
BinaryCode GrayEncode(const BinaryCode& rank);

/// \brief Comparator ordering codes by Gray rank (ascending).
struct GrayLess {
  bool operator()(const BinaryCode& a, const BinaryCode& b) const {
    return GrayRank(a) < GrayRank(b);
  }
};

/// \brief Sorts `ids` so that codes[ids[i]] is Gray-ordered ascending.
///
/// Ranks are materialized once (O(n) GrayRank calls) rather than decoded
/// per comparison.
void GraySortIds(const std::vector<BinaryCode>& codes,
                 std::vector<uint32_t>* ids);

}  // namespace hamming

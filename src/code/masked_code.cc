#include "code/masked_code.h"

namespace hamming {

MaskedCode MaskedCode::FromFullCode(const BinaryCode& code) {
  MaskedCode out(code.size());
  out.value_ = code;
  out.mask_ = BinaryCode(code.size()).Not();
  return out;
}

Result<MaskedCode> MaskedCode::FromPattern(std::string_view pattern) {
  std::string value_bits, mask_bits;
  for (char ch : pattern) {
    if (ch == ' ' || ch == '\t' || ch == '_') continue;
    switch (ch) {
      case '0':
        value_bits.push_back('0');
        mask_bits.push_back('1');
        break;
      case '1':
        value_bits.push_back('1');
        mask_bits.push_back('1');
        break;
      case '.':
      case '*':
        value_bits.push_back('0');
        mask_bits.push_back('0');
        break;
      default:
        return Status::InvalidArgument("invalid character in pattern");
    }
  }
  MaskedCode out;
  HAMMING_ASSIGN_OR_RETURN(out.value_, BinaryCode::FromString(value_bits));
  HAMMING_ASSIGN_OR_RETURN(out.mask_, BinaryCode::FromString(mask_bits));
  return out;
}

MaskedCode MaskedCode::Agreement(const BinaryCode& a, const BinaryCode& b) {
  MaskedCode out(a.size());
  out.mask_ = (a ^ b).Not();
  out.value_ = a & out.mask_;
  return out;
}

MaskedCode MaskedCode::Agreement(const MaskedCode& a, const MaskedCode& b) {
  MaskedCode out(a.size());
  // Effective where both effective and values agree.
  BinaryCode both = a.mask_ & b.mask_;
  out.mask_ = both & (a.value_ ^ b.value_).Not();
  out.value_ = a.value_ & out.mask_;
  return out;
}

bool MaskedCode::CompatibleWith(const MaskedCode& other) const {
  BinaryCode both = mask_ & other.mask_;
  return ((value_ ^ other.value_) & both).PopCount() == 0;
}

MaskedCode MaskedCode::Residual(const MaskedCode& parent) const {
  MaskedCode out(size());
  out.mask_ = mask_ & parent.mask_.Not();
  out.value_ = value_ & out.mask_;
  return out;
}

MaskedCode MaskedCode::CombinedWith(const MaskedCode& other) const {
  MaskedCode out(size());
  out.mask_ = mask_ | other.mask_;
  out.value_ = value_ | other.value_;
  return out;
}

std::string MaskedCode::ToString() const {
  std::string out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    if (!mask_.GetBit(i)) {
      out.push_back('.');
    } else {
      out.push_back(value_.GetBit(i) ? '1' : '0');
    }
  }
  return out;
}

void MaskedCode::Serialize(BufferWriter* w) const {
  value_.Serialize(w);
  mask_.Serialize(w);
}

Status MaskedCode::Deserialize(BufferReader* r, MaskedCode* out) {
  HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(r, &out->value_));
  HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(r, &out->mask_));
  return Status::OK();
}

}  // namespace hamming

#include "code/gray.h"

#include <algorithm>
#include <numeric>

namespace hamming {

BinaryCode GrayRank(const BinaryCode& code) {
  // Per-word formulation of the prefix-XOR scan b[i] = g[0]^...^g[i].
  // Within a word the classic g ^= g>>1 ^ g>>2 ... doubling trick applies;
  // the parity of the previous words' last decoded bit carries across.
  BinaryCode out(code.size());
  auto& w = out.mutable_words();
  const auto& g = code.words();
  uint64_t carry = 0;  // all-ones if the previous decoded bit was 1
  for (std::size_t i = 0; i < BinaryCode::kWords; ++i) {
    uint64_t x = g[i];
    x ^= x >> 1;
    x ^= x >> 2;
    x ^= x >> 4;
    x ^= x >> 8;
    x ^= x >> 16;
    x ^= x >> 32;
    w[i] = x ^ carry;
    carry = (w[i] & 1) ? ~0ull : 0ull;
  }
  // The decoded tail repeats the last real bit (b[i] = b[i-1] when
  // g[i] = 0), which would leave set bits past nbits; clear them.
  out.MaskTail();
  return out;
}

BinaryCode GrayEncode(const BinaryCode& rank) {
  // g[0] = b[0]; g[i] = b[i-1] XOR b[i]  ==  b XOR (b >> 1) on the whole
  // bit string, with the shift crossing word boundaries.
  BinaryCode out(rank.size());
  auto& w = out.mutable_words();
  const auto& b = rank.words();
  uint64_t prev_lsb = 0;
  for (std::size_t i = 0; i < BinaryCode::kWords; ++i) {
    uint64_t shifted = (b[i] >> 1) | (prev_lsb << 63);
    w[i] = b[i] ^ shifted;
    prev_lsb = b[i] & 1;
  }
  out.MaskTail();
  return out;
}

void GraySortIds(const std::vector<BinaryCode>& codes,
                 std::vector<uint32_t>* ids) {
  std::vector<BinaryCode> ranks;
  ranks.reserve(codes.size());
  for (const auto& c : codes) ranks.push_back(GrayRank(c));
  std::sort(ids->begin(), ids->end(), [&ranks](uint32_t a, uint32_t b) {
    int cmp = ranks[a].Compare(ranks[b]);
    if (cmp != 0) return cmp < 0;
    return a < b;  // stable tie-break for determinism
  });
}

}  // namespace hamming

// Fixed-length binary similarity codes.
//
// A BinaryCode is the L-bit string a similarity hash function (hashing/)
// produces for one data tuple; all Hamming-distance machinery in the
// library operates on these. Codes up to 512 bits are stored inline (no
// heap allocation) in eight 64-bit words.
//
// Bit-order convention: bit position 0 is the *leftmost* character of the
// string form, matching the paper's notation (e.g. "001001010" has bit 0 ==
// '0', bit 2 == '1'). Internally bit i lives in word i/64 at bit
// (63 - i%64), so comparing the word arrays as big-endian numbers yields
// the lexicographic order of the bit strings.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/serde.h"
#include "common/status.h"

namespace hamming {

/// \brief A fixed-length binary code of up to kMaxBits bits.
class BinaryCode {
 public:
  static constexpr std::size_t kMaxBits = 512;
  static constexpr std::size_t kWords = kMaxBits / 64;

  /// Creates an empty (zero-length) code.
  BinaryCode() : nbits_(0) { words_.fill(0); }

  /// Creates an all-zero code of the given length.
  explicit BinaryCode(std::size_t nbits);

  /// \brief Parses a code from a string of '0'/'1' characters; whitespace
  /// is ignored (the paper writes codes as "001 001 010").
  static Result<BinaryCode> FromString(std::string_view bits);

  /// \brief Builds an nbits-length code from the low bits of `value`,
  /// with the most significant of those bits at position 0.
  ///
  /// Requires nbits <= 64.
  static Result<BinaryCode> FromUint64(uint64_t value, std::size_t nbits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  /// \brief Number of 64-bit words actually covering size() bits; words
  /// beyond this are all-zero by invariant, so hot loops stop here.
  std::size_t SignificantWords() const { return (nbits_ + 63) >> 6; }

  /// \brief The bit at string position `pos` (0 == leftmost).
  bool GetBit(std::size_t pos) const {
    return (words_[pos >> 6] >> (63 - (pos & 63))) & 1;
  }
  /// \brief Sets the bit at string position `pos`.
  void SetBit(std::size_t pos, bool value) {
    uint64_t m = 1ull << (63 - (pos & 63));
    if (value) {
      words_[pos >> 6] |= m;
    } else {
      words_[pos >> 6] &= ~m;
    }
  }
  /// \brief Flips the bit at string position `pos`.
  void FlipBit(std::size_t pos) { words_[pos >> 6] ^= 1ull << (63 - (pos & 63)); }

  /// \brief Number of set bits.
  std::size_t PopCount() const {
    std::size_t c = 0;
    const std::size_t nw = SignificantWords();
    for (std::size_t i = 0; i < nw; ++i) {
      c += static_cast<std::size_t>(std::popcount(words_[i]));
    }
    return c;
  }

  /// \brief Hamming distance to another code of the same length.
  std::size_t Distance(const BinaryCode& other) const {
    std::size_t c = 0;
    const std::size_t nw = SignificantWords();
    for (std::size_t i = 0; i < nw; ++i) {
      c += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
    }
    return c;
  }

  /// \brief True iff Distance(other) <= h, with early termination.
  bool WithinDistance(const BinaryCode& other, std::size_t h) const {
    std::size_t c = 0;
    const std::size_t nw = SignificantWords();
    for (std::size_t i = 0; i < nw; ++i) {
      c += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
      if (c > h) return false;
    }
    return true;
  }

  /// \brief Extracts bits [start, start+len) as a new code of length len.
  BinaryCode Substring(std::size_t start, std::size_t len) const;

  /// \brief Returns the substring packed into a uint64_t (len <= 64),
  /// most significant bit first.
  uint64_t SubstringAsUint64(std::size_t start, std::size_t len) const;

  /// \brief Lexicographic comparison of the bit strings (lengths must
  /// match); negative / zero / positive like memcmp.
  int Compare(const BinaryCode& other) const {
    const std::size_t nw = SignificantWords();
    for (std::size_t i = 0; i < nw; ++i) {
      if (words_[i] != other.words_[i]) {
        return words_[i] < other.words_[i] ? -1 : 1;
      }
    }
    return 0;
  }

  bool operator==(const BinaryCode& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }
  bool operator!=(const BinaryCode& other) const { return !(*this == other); }
  bool operator<(const BinaryCode& other) const { return Compare(other) < 0; }

  /// \brief Bitwise operators (lengths must match).
  BinaryCode operator^(const BinaryCode& other) const;
  BinaryCode operator&(const BinaryCode& other) const;
  BinaryCode operator|(const BinaryCode& other) const;
  /// \brief Bitwise complement restricted to the code's nbits.
  BinaryCode Not() const;

  /// \brief String of '0'/'1' characters.
  std::string ToString() const;

  /// \brief Stable 64-bit hash of the code contents.
  uint64_t Hash() const;

  /// \brief Serializes as nbits varint + ceil(nbits/8) raw bytes.
  void Serialize(BufferWriter* w) const;
  static Status Deserialize(BufferReader* r, BinaryCode* out);

  /// \brief Heap-free footprint in bytes (for memory accounting we charge
  /// only the bytes needed for nbits, as a packed on-disk code would use).
  std::size_t PackedBytes() const { return (nbits_ + 7) / 8; }

  const std::array<uint64_t, kWords>& words() const { return words_; }
  std::array<uint64_t, kWords>& mutable_words() { return words_; }

  /// \brief Zeroes any bits at positions >= size(). Callers that write
  /// through mutable_words() must restore this invariant before using
  /// equality, PopCount, or Hash.
  void MaskTail();

 private:

  std::array<uint64_t, kWords> words_;
  uint32_t nbits_;
};

/// \brief std::hash adapter so BinaryCode can key unordered containers.
struct BinaryCodeHash {
  std::size_t operator()(const BinaryCode& c) const {
    return static_cast<std::size_t>(c.Hash());
  }
};

}  // namespace hamming

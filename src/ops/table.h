// HammingTable: the user-facing binding of a dataset to its binary codes
// and similarity hash — what a downstream application keeps per relation
// when using hamming-db as a similarity-search engine.
#pragma once

#include <memory>

#include "code/binary_code.h"
#include "common/result.h"
#include "dataset/matrix.h"
#include "hashing/similarity_hash.h"
#include "index/hamming_index.h"

namespace hamming {

/// \brief A relation prepared for Hamming similarity operations: feature
/// vectors, their binary codes, and the hash that maps between them.
///
/// The hash is shared (several tables joined together must be hashed by
/// the same function, Section 5.1's preprocessing trains it once).
class HammingTable {
 public:
  /// \brief Hashes every row of `data` with `hash`.
  static Result<HammingTable> FromFeatures(
      FloatMatrix data, std::shared_ptr<const SimilarityHash> hash);

  /// \brief Wraps pre-computed codes (no feature vectors available; kNN
  /// re-ranking is then unavailable).
  static Result<HammingTable> FromCodes(std::vector<BinaryCode> codes);

  /// \brief Reassembles a table from previously saved parts (storage
  /// layer); data and hash may be empty/null, codes are authoritative.
  static Result<HammingTable> FromParts(
      FloatMatrix data, std::vector<BinaryCode> codes,
      std::shared_ptr<const SimilarityHash> hash);

  std::size_t size() const { return codes_.size(); }
  std::size_t code_bits() const {
    return codes_.empty() ? 0 : codes_[0].size();
  }
  bool has_features() const { return !data_.empty(); }

  const FloatMatrix& data() const { return data_; }
  const std::vector<BinaryCode>& codes() const { return codes_; }
  const std::shared_ptr<const SimilarityHash>& hash() const { return hash_; }

  /// \brief Hashes an external query vector with this table's hash.
  Result<BinaryCode> HashQuery(std::span<const double> vec) const;

 private:
  HammingTable() = default;

  FloatMatrix data_;
  std::vector<BinaryCode> codes_;
  std::shared_ptr<const SimilarityHash> hash_;
};

}  // namespace hamming

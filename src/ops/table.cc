#include "ops/table.h"

namespace hamming {

Result<HammingTable> HammingTable::FromFeatures(
    FloatMatrix data, std::shared_ptr<const SimilarityHash> hash) {
  if (hash == nullptr) {
    return Status::InvalidArgument("hash must not be null");
  }
  if (data.cols() != hash->input_dim()) {
    return Status::InvalidArgument(
        "data dimensionality does not match hash input_dim");
  }
  HammingTable t;
  t.codes_ = hash->HashAll(data);
  t.data_ = std::move(data);
  t.hash_ = std::move(hash);
  return t;
}

Result<HammingTable> HammingTable::FromCodes(std::vector<BinaryCode> codes) {
  for (const auto& c : codes) {
    if (c.size() != codes[0].size()) {
      return Status::InvalidArgument("codes of mixed lengths");
    }
  }
  HammingTable t;
  t.codes_ = std::move(codes);
  return t;
}

Result<HammingTable> HammingTable::FromParts(
    FloatMatrix data, std::vector<BinaryCode> codes,
    std::shared_ptr<const SimilarityHash> hash) {
  if (!data.empty() && data.rows() != codes.size()) {
    return Status::InvalidArgument("row count does not match code count");
  }
  for (const auto& c : codes) {
    if (c.size() != codes[0].size()) {
      return Status::InvalidArgument("codes of mixed lengths");
    }
  }
  HammingTable t;
  t.data_ = std::move(data);
  t.codes_ = std::move(codes);
  t.hash_ = std::move(hash);
  return t;
}

Result<BinaryCode> HammingTable::HashQuery(
    std::span<const double> vec) const {
  if (hash_ == nullptr) {
    return Status::InvalidArgument("table has no hash function");
  }
  if (vec.size() != hash_->input_dim()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  return hash_->Hash(vec);
}

}  // namespace hamming

// Cost-based physical plan selection for Hamming operators.
//
// The right index depends on the workload: a flat XOR scan wins on small
// or very-high-selectivity inputs, Manku tables win on dispersed codes
// with selective buckets, the HA-Index wins on clustered codes and large
// batches. The planner estimates the result selectivity of a Hamming ball
// from a sampled distance histogram and picks a plan with a simple cost
// model — the kind of decision a downstream system would otherwise
// hard-code.
#pragma once

#include <array>

#include "common/rng.h"
#include "ops/operators.h"

namespace hamming::ops {

/// \brief Distribution statistics collected from a table's codes.
class TableStats {
 public:
  /// \brief Samples `pairs` random code pairs and builds the pairwise
  /// distance histogram, plus a distinct-code estimate.
  static TableStats Collect(const HammingTable& table,
                            std::size_t pairs = 2000, uint64_t seed = 42);

  /// \brief Estimated fraction of tuples within distance h of a random
  /// query drawn from the same distribution.
  double EstimateSelectivity(std::size_t h) const;

  /// \brief Estimated number of distinct codes / total (1.0 = all
  /// distinct, small = heavy duplication ⇒ strong HA-Index sharing).
  double distinct_ratio() const { return distinct_ratio_; }

  std::size_t code_bits() const { return code_bits_; }
  std::size_t num_tuples() const { return num_tuples_; }

 private:
  std::size_t code_bits_ = 0;
  std::size_t num_tuples_ = 0;
  double distinct_ratio_ = 1.0;
  // cdf_[d] = fraction of sampled pairs with distance <= d.
  std::vector<double> cdf_;
};

/// \brief The planner's verdict with its reasoning, for EXPLAIN-style
/// introspection.
struct PlanChoice {
  JoinPlan plan;
  double estimated_selectivity = 0.0;
  std::string reason;
};

/// \brief Chooses a plan for a batch of `num_queries` selects at
/// threshold h against a table with the given stats.
PlanChoice ChooseSelectPlan(const TableStats& stats, std::size_t num_queries,
                            std::size_t h);

/// \brief Chooses a plan for h-join(R, S).
PlanChoice ChooseJoinPlan(const TableStats& r_stats,
                          const TableStats& s_stats, std::size_t h);

}  // namespace hamming::ops

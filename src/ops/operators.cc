#include "ops/operators.h"

#include <algorithm>
#include <atomic>
#include <span>

#include "common/sync.h"
#include "join/centralized_join.h"
#include "kernels/code_store.h"
#include "kernels/hamming_kernels.h"
#include "kernels/vertical_code_store.h"

namespace hamming::ops {

namespace {

// Builds the configured index over a table's codes.
Result<DynamicHAIndex> BuildIndex(const HammingTable& t,
                                  const DynamicHAIndexOptions& opts) {
  DynamicHAIndex index(opts);
  HAMMING_RETURN_NOT_OK(index.Build(t.codes()));
  return index;
}

// Full-table selection through the batched kernels; slot i is tuple id i.
// `mirror` (optional) is the bit-plane transpose of `store`; when present
// the layout dispatch may take the vertical plane-pruning kernel.
Result<std::vector<TupleId>> ScanSelect(
    const kernels::CodeStore& store,
    const kernels::VerticalCodeStore* mirror, const BinaryCode& query,
    std::size_t h) {
  std::vector<uint32_t> slots;
  kernels::BatchWithinDistanceDual(query, store, mirror, h, &slots);
  return std::vector<TupleId>(slots.begin(), slots.end());
}

// One coalesced range batch: queries[i] answered into out[i]. The index's
// SearchBatch plan streams the stored codes once for the whole span; any
// per-request failure aborts the operator (requests here are internally
// generated, never user-malformed).
Status BatchSelectInto(const HammingIndex& index,
                       std::span<const BinaryCode> queries, std::size_t h,
                       std::span<std::vector<TupleId>> out) {
  std::vector<QueryRequest> reqs(queries.size());
  std::vector<QueryResponse> resps(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    reqs[i] = QueryRequest::Range(queries[i], h);
  }
  HAMMING_RETURN_NOT_OK(index.SearchBatch(reqs, resps));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    HAMMING_RETURN_NOT_OK(resps[i].status);
    out[i] = std::move(resps[i].ids);
  }
  return Status::OK();
}

// Queries per parallel chunk: wide enough that the multi-query kernel
// has a real batch to coalesce, small enough to spread across the pool.
constexpr std::size_t kParallelBatch = 32;

}  // namespace

Result<std::vector<TupleId>> HammingSelect(const HammingTable& s,
                                           const BinaryCode& query,
                                           std::size_t h,
                                           const OperatorOptions& opts) {
  if (opts.plan == JoinPlan::kNestedLoops) {
    HAMMING_ASSIGN_OR_RETURN(kernels::CodeStore store,
                             kernels::CodeStore::FromCodes(s.codes()));
    // Single query: the one-shot transpose would cost more than it saves.
    return ScanSelect(store, nullptr, query, h);
  }
  HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index, BuildIndex(s, opts.index));
  std::vector<TupleId> out;
  HAMMING_RETURN_NOT_OK(
      BatchSelectInto(index, {&query, 1}, h, {&out, 1}));
  return out;
}

Result<std::vector<std::vector<TupleId>>> HammingSelectBatch(
    const HammingTable& s, const std::vector<BinaryCode>& queries,
    std::size_t h, const OperatorOptions& opts) {
  std::vector<std::vector<TupleId>> out(queries.size());
  if (opts.plan == JoinPlan::kNestedLoops) {
    // Pack once, scan per query — the pack cost amortizes over the batch.
    HAMMING_ASSIGN_OR_RETURN(kernels::CodeStore store,
                             kernels::CodeStore::FromCodes(s.codes()));
    // Transpose once for the whole batch when any query could take the
    // vertical kernel (queries.size() > 1 amortizes the transpose).
    kernels::VerticalCodeStore mirror;
    const kernels::VerticalCodeStore* mirror_ptr = nullptr;
    if (queries.size() > 1 &&
        kernels::ChooseLayout(store.bits(), h, store.size()) ==
            kernels::KernelLayout::kVertical) {
      store.TransposeInto(&mirror);
      mirror_ptr = &mirror;
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      HAMMING_ASSIGN_OR_RETURN(out[q],
                               ScanSelect(store, mirror_ptr, queries[q], h));
    }
    return out;
  }
  HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index, BuildIndex(s, opts.index));
  if (opts.pool == nullptr) {
    HAMMING_RETURN_NOT_OK(BatchSelectInto(index, queries, h, out));
    return out;
  }
  // Parallel probing: the index is immutable during the batch, so worker
  // threads share it without synchronization. Each task answers one
  // contiguous chunk through the coalesced batch plan.
  const std::size_t nchunks =
      (queries.size() + kParallelBatch - 1) / kParallelBatch;
  Mutex error_mu;
  Status first_error = Status::OK();
  ParallelFor(opts.pool, nchunks, [&](std::size_t c) {
    const std::size_t begin = c * kParallelBatch;
    const std::size_t count = std::min(kParallelBatch, queries.size() - begin);
    Status st = BatchSelectInto(
        index, std::span<const BinaryCode>(queries).subspan(begin, count), h,
        std::span<std::vector<TupleId>>(out).subspan(begin, count));
    if (!st.ok()) {
      MutexLock lock(&error_mu);
      if (first_error.ok()) first_error = st;
    }
  });
  if (!first_error.ok()) return first_error;
  return out;
}

Result<std::vector<JoinPair>> HammingJoin(const HammingTable& r,
                                          const HammingTable& s,
                                          std::size_t h,
                                          const OperatorOptions& opts) {
  if (!r.codes().empty() && !s.codes().empty() &&
      r.code_bits() != s.code_bits()) {
    return Status::InvalidArgument("joining tables of different code length");
  }
  switch (opts.plan) {
    case JoinPlan::kNestedLoops:
      return NestedLoopsJoin(r.codes(), s.codes(), h);
    case JoinPlan::kIndexProbe: {
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index,
                               BuildIndex(r, opts.index));
      std::vector<JoinPair> out;
      const auto& s_codes = s.codes();
      std::vector<std::vector<TupleId>> matches(s_codes.size());
      if (opts.pool == nullptr) {
        HAMMING_RETURN_NOT_OK(BatchSelectInto(index, s_codes, h, matches));
      } else {
        const std::size_t nchunks =
            (s_codes.size() + kParallelBatch - 1) / kParallelBatch;
        Mutex error_mu;
        Status first_error = Status::OK();
        ParallelFor(opts.pool, nchunks, [&](std::size_t c) {
          const std::size_t begin = c * kParallelBatch;
          const std::size_t count =
              std::min(kParallelBatch, s_codes.size() - begin);
          Status st = BatchSelectInto(
              index,
              std::span<const BinaryCode>(s_codes).subspan(begin, count), h,
              std::span<std::vector<TupleId>>(matches).subspan(begin, count));
          if (!st.ok()) {
            MutexLock lock(&error_mu);
            if (first_error.ok()) first_error = st;
          }
        });
        if (!first_error.ok()) return first_error;
      }
      for (std::size_t j = 0; j < s_codes.size(); ++j) {
        for (TupleId rid : matches[j]) {
          out.push_back({rid, static_cast<TupleId>(j)});
        }
      }
      return out;
    }
    case JoinPlan::kDualTree: {
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex r_index,
                               BuildIndex(r, opts.index));
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex s_index,
                               BuildIndex(s, opts.index));
      return r_index.JoinWith(s_index, h);
    }
  }
  return Status::InvalidArgument("unknown join plan");
}

Result<std::vector<TupleId>> SimilarityIntersect(const HammingTable& r,
                                                 const HammingTable& s,
                                                 std::size_t h,
                                                 const OperatorOptions& opts) {
  // Semi-join: index S once, probe with each R tuple, keep the ids whose
  // probe found anything (existence is enough — no pair materialization).
  if (opts.plan == JoinPlan::kNestedLoops) {
    std::vector<TupleId> out;
    for (std::size_t i = 0; i < r.codes().size(); ++i) {
      for (const auto& sc : s.codes()) {
        if (r.codes()[i].WithinDistance(sc, h)) {
          out.push_back(static_cast<TupleId>(i));
          break;
        }
      }
    }
    return out;
  }
  HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index, BuildIndex(s, opts.index));
  std::vector<std::vector<TupleId>> matches(r.codes().size());
  HAMMING_RETURN_NOT_OK(BatchSelectInto(index, r.codes(), h, matches));
  std::vector<TupleId> out;
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (!matches[i].empty()) out.push_back(static_cast<TupleId>(i));
  }
  return out;
}

Result<std::vector<TupleId>> SimilarityDifference(
    const HammingTable& r, const HammingTable& s, std::size_t h,
    const OperatorOptions& opts) {
  HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> in,
                           SimilarityIntersect(r, s, h, opts));
  std::vector<bool> present(r.size(), false);
  for (TupleId id : in) present[id] = true;
  std::vector<TupleId> out;
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (!present[i]) out.push_back(static_cast<TupleId>(i));
  }
  return out;
}

}  // namespace hamming::ops

#include "ops/operators.h"

#include <algorithm>
#include <atomic>

#include "common/sync.h"
#include "join/centralized_join.h"
#include "kernels/code_store.h"
#include "kernels/hamming_kernels.h"
#include "kernels/vertical_code_store.h"

namespace hamming::ops {

namespace {

// Builds the configured index over a table's codes.
Result<DynamicHAIndex> BuildIndex(const HammingTable& t,
                                  const DynamicHAIndexOptions& opts) {
  DynamicHAIndex index(opts);
  HAMMING_RETURN_NOT_OK(index.Build(t.codes()));
  return index;
}

// Full-table selection through the batched kernels; slot i is tuple id i.
// `mirror` (optional) is the bit-plane transpose of `store`; when present
// the layout dispatch may take the vertical plane-pruning kernel.
Result<std::vector<TupleId>> ScanSelect(
    const kernels::CodeStore& store,
    const kernels::VerticalCodeStore* mirror, const BinaryCode& query,
    std::size_t h) {
  std::vector<uint32_t> slots;
  kernels::BatchWithinDistanceDual(query, store, mirror, h, &slots);
  return std::vector<TupleId>(slots.begin(), slots.end());
}

}  // namespace

Result<std::vector<TupleId>> HammingSelect(const HammingTable& s,
                                           const BinaryCode& query,
                                           std::size_t h,
                                           const OperatorOptions& opts) {
  if (opts.plan == JoinPlan::kNestedLoops) {
    HAMMING_ASSIGN_OR_RETURN(kernels::CodeStore store,
                             kernels::CodeStore::FromCodes(s.codes()));
    // Single query: the one-shot transpose would cost more than it saves.
    return ScanSelect(store, nullptr, query, h);
  }
  HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index, BuildIndex(s, opts.index));
  return index.Search(query, h);
}

Result<std::vector<std::vector<TupleId>>> HammingSelectBatch(
    const HammingTable& s, const std::vector<BinaryCode>& queries,
    std::size_t h, const OperatorOptions& opts) {
  std::vector<std::vector<TupleId>> out(queries.size());
  if (opts.plan == JoinPlan::kNestedLoops) {
    // Pack once, scan per query — the pack cost amortizes over the batch.
    HAMMING_ASSIGN_OR_RETURN(kernels::CodeStore store,
                             kernels::CodeStore::FromCodes(s.codes()));
    // Transpose once for the whole batch when any query could take the
    // vertical kernel (queries.size() > 1 amortizes the transpose).
    kernels::VerticalCodeStore mirror;
    const kernels::VerticalCodeStore* mirror_ptr = nullptr;
    if (queries.size() > 1 &&
        kernels::ChooseLayout(store.bits(), h, store.size()) ==
            kernels::KernelLayout::kVertical) {
      store.TransposeInto(&mirror);
      mirror_ptr = &mirror;
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      HAMMING_ASSIGN_OR_RETURN(out[q],
                               ScanSelect(store, mirror_ptr, queries[q], h));
    }
    return out;
  }
  HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index, BuildIndex(s, opts.index));
  if (opts.pool == nullptr) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      HAMMING_ASSIGN_OR_RETURN(out[q], index.Search(queries[q], h));
    }
    return out;
  }
  // Parallel probing: the index is immutable during the batch, so worker
  // threads share it without synchronization.
  Mutex error_mu;
  Status first_error = Status::OK();
  ParallelFor(opts.pool, queries.size(), [&](std::size_t q) {
    auto got = index.Search(queries[q], h);
    if (got.ok()) {
      out[q] = std::move(*got);
    } else {
      MutexLock lock(&error_mu);
      if (first_error.ok()) first_error = got.status();
    }
  });
  if (!first_error.ok()) return first_error;
  return out;
}

Result<std::vector<JoinPair>> HammingJoin(const HammingTable& r,
                                          const HammingTable& s,
                                          std::size_t h,
                                          const OperatorOptions& opts) {
  if (!r.codes().empty() && !s.codes().empty() &&
      r.code_bits() != s.code_bits()) {
    return Status::InvalidArgument("joining tables of different code length");
  }
  switch (opts.plan) {
    case JoinPlan::kNestedLoops:
      return NestedLoopsJoin(r.codes(), s.codes(), h);
    case JoinPlan::kIndexProbe: {
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index,
                               BuildIndex(r, opts.index));
      std::vector<JoinPair> out;
      const auto& s_codes = s.codes();
      if (opts.pool == nullptr) {
        for (std::size_t j = 0; j < s_codes.size(); ++j) {
          HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> matches,
                                   index.Search(s_codes[j], h));
          for (TupleId rid : matches) {
            out.push_back({rid, static_cast<TupleId>(j)});
          }
        }
        return out;
      }
      std::vector<std::vector<JoinPair>> partial(s_codes.size());
      Mutex error_mu;
      Status first_error = Status::OK();
      ParallelFor(opts.pool, s_codes.size(), [&](std::size_t j) {
        auto matches = index.Search(s_codes[j], h);
        if (!matches.ok()) {
          MutexLock lock(&error_mu);
          if (first_error.ok()) first_error = matches.status();
          return;
        }
        for (TupleId rid : *matches) {
          partial[j].push_back({rid, static_cast<TupleId>(j)});
        }
      });
      if (!first_error.ok()) return first_error;
      for (auto& p : partial) {
        out.insert(out.end(), p.begin(), p.end());
      }
      return out;
    }
    case JoinPlan::kDualTree: {
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex r_index,
                               BuildIndex(r, opts.index));
      HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex s_index,
                               BuildIndex(s, opts.index));
      return r_index.JoinWith(s_index, h);
    }
  }
  return Status::InvalidArgument("unknown join plan");
}

Result<std::vector<TupleId>> SimilarityIntersect(const HammingTable& r,
                                                 const HammingTable& s,
                                                 std::size_t h,
                                                 const OperatorOptions& opts) {
  // Semi-join: index S once, probe with each R tuple, stop at the first
  // match (existence is enough — no pair materialization).
  if (opts.plan == JoinPlan::kNestedLoops) {
    std::vector<TupleId> out;
    for (std::size_t i = 0; i < r.codes().size(); ++i) {
      for (const auto& sc : s.codes()) {
        if (r.codes()[i].WithinDistance(sc, h)) {
          out.push_back(static_cast<TupleId>(i));
          break;
        }
      }
    }
    return out;
  }
  HAMMING_ASSIGN_OR_RETURN(DynamicHAIndex index, BuildIndex(s, opts.index));
  std::vector<TupleId> out;
  for (std::size_t i = 0; i < r.codes().size(); ++i) {
    HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> matches,
                             index.Search(r.codes()[i], h));
    if (!matches.empty()) out.push_back(static_cast<TupleId>(i));
  }
  return out;
}

Result<std::vector<TupleId>> SimilarityDifference(
    const HammingTable& r, const HammingTable& s, std::size_t h,
    const OperatorOptions& opts) {
  HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> in,
                           SimilarityIntersect(r, s, h, opts));
  std::vector<bool> present(r.size(), false);
  for (TupleId id : in) present[id] = true;
  std::vector<TupleId> out;
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (!present[i]) out.push_back(static_cast<TupleId>(i));
  }
  return out;
}

}  // namespace hamming::ops

// Similarity-aware relational operators over HammingTables.
//
// Implements the operations the paper defines (h-select, Definition 1;
// h-join, Definition 2) plus its stated future work: the similarity-aware
// relational *intersection* operator of Al Marri et al. [27] — here the
// Hamming semi-join / anti-join family: which tuples of R have (or lack) a
// similar counterpart in S.
#pragma once

#include <memory>

#include "common/threadpool.h"
#include "index/dynamic_ha_index.h"
#include "ops/table.h"

namespace hamming::ops {

/// \brief Which physical plan executes a join-shaped operator.
enum class JoinPlan {
  kNestedLoops,  // O(|R||S|) scan
  kIndexProbe,   // HA-Index on R, H-Search per S tuple (Section 5 intro)
  kDualTree,     // HA-Index on both sides, simultaneous traversal
};

/// \brief Options shared by the operators.
struct OperatorOptions {
  JoinPlan plan = JoinPlan::kIndexProbe;
  DynamicHAIndexOptions index;
  /// Thread pool for batched probes; null = single-threaded.
  ThreadPool* pool = nullptr;
};

/// \brief h-select(tq, S): ids of S tuples within distance h of the query
/// code (Definition 1).
Result<std::vector<TupleId>> HammingSelect(const HammingTable& s,
                                           const BinaryCode& query,
                                           std::size_t h,
                                           const OperatorOptions& opts = {});

/// \brief Batched h-select: one result vector per query, executed in
/// parallel when a pool is supplied.
Result<std::vector<std::vector<TupleId>>> HammingSelectBatch(
    const HammingTable& s, const std::vector<BinaryCode>& queries,
    std::size_t h, const OperatorOptions& opts = {});

/// \brief h-join(R, S) (Definition 2): all pairs within distance h.
Result<std::vector<JoinPair>> HammingJoin(const HammingTable& r,
                                          const HammingTable& s,
                                          std::size_t h,
                                          const OperatorOptions& opts = {});

/// \brief Similarity-aware intersection [27]: ids of R tuples that have
/// at least one S tuple within distance h (a Hamming semi-join).
Result<std::vector<TupleId>> SimilarityIntersect(
    const HammingTable& r, const HammingTable& s, std::size_t h,
    const OperatorOptions& opts = {});

/// \brief Similarity-aware difference: ids of R tuples with *no* S tuple
/// within distance h (the anti-join complement of the intersection).
Result<std::vector<TupleId>> SimilarityDifference(
    const HammingTable& r, const HammingTable& s, std::size_t h,
    const OperatorOptions& opts = {});

}  // namespace hamming::ops

#include "ops/planner.h"

#include <algorithm>
#include <unordered_set>

namespace hamming::ops {

TableStats TableStats::Collect(const HammingTable& table, std::size_t pairs,
                               uint64_t seed) {
  TableStats stats;
  const auto& codes = table.codes();
  stats.num_tuples_ = codes.size();
  stats.code_bits_ = table.code_bits();
  if (codes.empty()) return stats;

  stats.cdf_.assign(stats.code_bits_ + 1, 0.0);
  Rng rng(seed);
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto& a = codes[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(codes.size()) - 1))];
    const auto& b = codes[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(codes.size()) - 1))];
    stats.cdf_[a.Distance(b)] += 1.0;
  }
  // Histogram -> CDF.
  double acc = 0.0;
  for (double& v : stats.cdf_) {
    acc += v;
    v = acc / static_cast<double>(pairs);
  }

  // Distinct ratio from a hash-set over a sample.
  std::size_t probe = std::min<std::size_t>(codes.size(), 4096);
  std::unordered_set<uint64_t> distinct;
  for (std::size_t i = 0; i < probe; ++i) {
    distinct.insert(codes[i * codes.size() / probe].Hash());
  }
  stats.distinct_ratio_ = static_cast<double>(distinct.size()) /
                          static_cast<double>(probe);
  return stats;
}

double TableStats::EstimateSelectivity(std::size_t h) const {
  if (cdf_.empty()) return 0.0;
  return cdf_[std::min(h, cdf_.size() - 1)];
}

PlanChoice ChooseSelectPlan(const TableStats& stats, std::size_t num_queries,
                            std::size_t h) {
  PlanChoice choice;
  choice.estimated_selectivity = stats.EstimateSelectivity(h);

  // One H-Build costs ~ n log n; it amortizes over the batch. A scan
  // costs n per query. With selectivity s the index still touches ~s*n
  // leaves, so its per-query advantage shrinks as s -> 1.
  const double n = static_cast<double>(stats.num_tuples());
  const double q = static_cast<double>(num_queries);
  const double s = choice.estimated_selectivity;
  const double scan_cost = q * n;
  // Index probe: build (~3n) + per query a pruned traversal, modeled as
  // n * (0.1 + s) — pruning saves most of the scan at low selectivity,
  // nothing at high selectivity.
  const double index_cost = 3.0 * n + q * n * (0.1 + s);
  if (index_cost < scan_cost) {
    choice.plan = JoinPlan::kIndexProbe;
    choice.reason = "batch amortizes H-Build; low selectivity favours "
                    "pruned traversal";
  } else {
    choice.plan = JoinPlan::kNestedLoops;
    choice.reason = "scan is cheaper: batch too small or Hamming ball too "
                    "dense for pruning to pay";
  }
  return choice;
}

PlanChoice ChooseJoinPlan(const TableStats& r_stats,
                          const TableStats& s_stats, std::size_t h) {
  PlanChoice choice;
  choice.estimated_selectivity =
      std::max(r_stats.EstimateSelectivity(h), s_stats.EstimateSelectivity(h));
  const double m = static_cast<double>(r_stats.num_tuples());
  const double n = static_cast<double>(s_stats.num_tuples());
  const double s = choice.estimated_selectivity;

  if (s > 0.5) {
    // Output is near-quadratic anyway; pair emission dominates and the
    // scan has the smallest constant factor.
    choice.plan = JoinPlan::kNestedLoops;
    choice.reason = "join is non-selective; output cost dominates";
    return choice;
  }
  // Dual-tree pruning compounds on both sides when codes are duplicated /
  // clustered (low distinct ratio); per-tuple probing wins when one side
  // is tiny.
  const double smaller = std::min(m, n);
  if (smaller < 512) {
    choice.plan = JoinPlan::kIndexProbe;
    choice.reason = "one side is small: index it, probe with the other";
  } else if (r_stats.distinct_ratio() < 0.9 ||
             s_stats.distinct_ratio() < 0.9) {
    choice.plan = JoinPlan::kDualTree;
    choice.reason = "both sides sizable and clustered: subtree-pair "
                    "pruning pays on both sides";
  } else {
    choice.plan = JoinPlan::kDualTree;
    choice.reason = "both sides sizable; dual traversal still avoids "
                    "per-tuple descent";
  }
  return choice;
}

}  // namespace hamming::ops

#include "join/centralized_join.h"

#include <algorithm>

#include "kernels/code_store.h"
#include "kernels/hamming_kernels.h"
#include "kernels/vertical_code_store.h"

namespace hamming {

std::vector<JoinPair> NestedLoopsJoin(const std::vector<BinaryCode>& r_codes,
                                      const std::vector<BinaryCode>& s_codes,
                                      std::size_t h) {
  std::vector<JoinPair> out;
  if (r_codes.empty() || s_codes.empty()) return out;
  // Pack the inner side once; each outer tuple then verifies the whole
  // inner relation with one batched kernel pass. Mixed-length inputs
  // (which can't share a store) fall back to the scalar pairwise loop.
  auto store = kernels::CodeStore::FromCodes(s_codes);
  if (store.ok()) {
    // With many outer probes a one-time transpose of the inner side lets
    // every probe take the vertical plane-pruning kernel when profitable.
    kernels::VerticalCodeStore mirror;
    const kernels::VerticalCodeStore* mirror_ptr = nullptr;
    if (r_codes.size() > 1 &&
        kernels::ChooseLayout(store->bits(), h, store->size()) ==
            kernels::KernelLayout::kVertical) {
      store->TransposeInto(&mirror);
      mirror_ptr = &mirror;
    }
    std::vector<uint32_t> slots;
    for (std::size_t i = 0; i < r_codes.size(); ++i) {
      if (r_codes[i].size() != store->bits()) continue;
      slots.clear();  // the batch kernels append
      kernels::BatchWithinDistanceDual(r_codes[i], *store, mirror_ptr, h,
                                       &slots);
      for (uint32_t j : slots) {
        out.push_back({static_cast<TupleId>(i), static_cast<TupleId>(j)});
      }
    }
    return out;
  }
  for (std::size_t i = 0; i < r_codes.size(); ++i) {
    for (std::size_t j = 0; j < s_codes.size(); ++j) {
      if (r_codes[i].WithinDistance(s_codes[j], h)) {
        out.push_back({static_cast<TupleId>(i), static_cast<TupleId>(j)});
      }
    }
  }
  return out;
}

Result<std::vector<JoinPair>> IndexProbeJoin(
    HammingIndex* index, const std::vector<BinaryCode>& r_codes,
    const std::vector<BinaryCode>& s_codes, std::size_t h) {
  HAMMING_RETURN_NOT_OK(index->Build(r_codes));
  std::vector<JoinPair> out;
  // Probe in coalesced batches: one SearchBatch streams the R side once
  // for every query in the chunk instead of once per S tuple.
  constexpr std::size_t kProbeBatch = 64;
  std::vector<QueryRequest> reqs;
  std::vector<QueryResponse> resps;
  for (std::size_t begin = 0; begin < s_codes.size(); begin += kProbeBatch) {
    const std::size_t count = std::min(kProbeBatch, s_codes.size() - begin);
    reqs.clear();
    reqs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      reqs.push_back(QueryRequest::Range(s_codes[begin + i], h));
    }
    resps.resize(count);
    HAMMING_RETURN_NOT_OK(index->SearchBatch(reqs, resps));
    for (std::size_t i = 0; i < count; ++i) {
      HAMMING_RETURN_NOT_OK(resps[i].status);
      for (TupleId r : resps[i].ids) {
        out.push_back({r, static_cast<TupleId>(begin + i)});
      }
    }
  }
  return out;
}

void NormalizePairs(std::vector<JoinPair>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

}  // namespace hamming

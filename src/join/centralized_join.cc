#include "join/centralized_join.h"

#include <algorithm>

namespace hamming {

std::vector<JoinPair> NestedLoopsJoin(const std::vector<BinaryCode>& r_codes,
                                      const std::vector<BinaryCode>& s_codes,
                                      std::size_t h) {
  std::vector<JoinPair> out;
  for (std::size_t i = 0; i < r_codes.size(); ++i) {
    for (std::size_t j = 0; j < s_codes.size(); ++j) {
      if (r_codes[i].WithinDistance(s_codes[j], h)) {
        out.push_back({static_cast<TupleId>(i), static_cast<TupleId>(j)});
      }
    }
  }
  return out;
}

Result<std::vector<JoinPair>> IndexProbeJoin(
    HammingIndex* index, const std::vector<BinaryCode>& r_codes,
    const std::vector<BinaryCode>& s_codes, std::size_t h) {
  HAMMING_RETURN_NOT_OK(index->Build(r_codes));
  std::vector<JoinPair> out;
  for (std::size_t j = 0; j < s_codes.size(); ++j) {
    HAMMING_ASSIGN_OR_RETURN(std::vector<TupleId> matches,
                             index->Search(s_codes[j], h));
    for (TupleId r : matches) {
      out.push_back({r, static_cast<TupleId>(j)});
    }
  }
  return out;
}

void NormalizePairs(std::vector<JoinPair>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

}  // namespace hamming

// Centralized Hamming-join plans (Definition 2, Section 5 introduction).
//
// h-join(R, S) returns every pair (r, s), r in R, s in S, with
// ||r, s||_h <= h. The nested-loops plan is the O(mn) strawman; the
// index-probe plan builds a Hamming index on R and runs one H-Search per
// tuple of S — the "straightforward approach" Section 5 starts from before
// distributing it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/hamming_index.h"

namespace hamming {

/// \brief O(|R||S|) nested-loops Hamming join.
std::vector<JoinPair> NestedLoopsJoin(const std::vector<BinaryCode>& r_codes,
                                      const std::vector<BinaryCode>& s_codes,
                                      std::size_t h);

/// \brief Index-probe join: builds `index` over R, probes with each S
/// tuple. The index object is supplied by the caller so every
/// HammingIndex implementation can serve as the join engine.
Result<std::vector<JoinPair>> IndexProbeJoin(
    HammingIndex* index, const std::vector<BinaryCode>& r_codes,
    const std::vector<BinaryCode>& s_codes, std::size_t h);

/// \brief Sorts and deduplicates a pair list (for test comparison).
void NormalizePairs(std::vector<JoinPair>* pairs);

}  // namespace hamming

// High-level save/load for the library's persistent artifacts.
#pragma once

#include <string>

#include "index/dynamic_ha_index.h"
#include "ops/table.h"
#include "storage/file_io.h"

namespace hamming::storage {

/// \brief Saves a Dynamic HA-Index to a checksummed container file.
Status SaveIndex(const std::string& path, const DynamicHAIndex& index);

/// \brief Loads a Dynamic HA-Index previously written by SaveIndex.
Result<DynamicHAIndex> LoadIndex(const std::string& path);

/// \brief Saves a HammingTable (codes + optional features + optional
/// Spectral Hashing model).
Status SaveTable(const std::string& path, const HammingTable& table);

/// \brief Loads a HammingTable written by SaveTable. Tables saved with a
/// non-SpectralHashing model reload without a hash function.
Result<HammingTable> LoadTable(const std::string& path);

}  // namespace hamming::storage

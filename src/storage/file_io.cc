#include "storage/file_io.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/serde.h"

namespace hamming::storage {

namespace {

constexpr uint32_t kMagic = 0x48444246;  // "HDBF"
constexpr uint32_t kFormatVersion = 1;

// Table-driven CRC-32; the table is built once.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, std::size_t len) {
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteContainer(const std::string& path, PayloadKind kind,
                      const std::vector<uint8_t>& payload) {
  BufferWriter header;
  header.PutFixed32(kMagic);
  header.PutFixed32(kFormatVersion);
  header.PutFixed32(static_cast<uint32_t>(kind));
  header.PutFixed64(payload.size());

  // CRC covers header + payload.
  uint32_t crc = Crc32(header.buffer().data(), header.size());
  // Chain the payload into the same CRC by recomputing over the
  // concatenation (simple and allocation-free enough at these sizes).
  std::vector<uint8_t> all(header.buffer());
  all.insert(all.end(), payload.begin(), payload.end());
  crc = Crc32(all.data(), all.size());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  bool ok = std::fwrite(all.data(), 1, all.size(), f) == all.size();
  uint8_t crc_bytes[4];
  for (int i = 0; i < 4; ++i) {
    crc_bytes[i] = static_cast<uint8_t>((crc >> (8 * i)) & 0xFF);
  }
  ok = ok && std::fwrite(crc_bytes, 1, 4, f) == 4;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadContainer(const std::string& path,
                                           PayloadKind expected_kind) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 24) {  // header (20) + crc (4)
    std::fclose(f);
    return Status::IOError(path + " is too short to be a container file");
  }
  std::vector<uint8_t> bytes(static_cast<std::size_t>(size));
  bool ok = std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short read from " + path);

  const std::size_t body_len = bytes.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[body_len + i]) << (8 * i);
  }
  if (Crc32(bytes.data(), body_len) != stored_crc) {
    return Status::IOError(path + " failed checksum verification");
  }

  BufferReader r(bytes.data(), body_len);
  uint32_t magic, version, kind;
  uint64_t payload_len;
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&magic));
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&version));
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&kind));
  HAMMING_RETURN_NOT_OK(r.GetFixed64(&payload_len));
  if (magic != kMagic) return Status::IOError(path + " has bad magic");
  if (version != kFormatVersion) {
    return Status::IOError(path + " has unsupported format version");
  }
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::IOError(path + " holds a different payload kind");
  }
  if (payload_len != r.remaining()) {
    return Status::IOError(path + " payload length mismatch");
  }
  std::vector<uint8_t> payload(r.remaining());
  HAMMING_RETURN_NOT_OK(r.GetRaw(payload.data(), payload.size()));
  return payload;
}

}  // namespace hamming::storage

#include "storage/file_io.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/serde.h"

namespace hamming::storage {

namespace {

constexpr uint32_t kMagic = 0x48444246;  // "HDBF"
constexpr uint32_t kFormatVersion = 1;

// Table-driven CRC-32; the table is built once.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, std::size_t len) {
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteContainer(const std::string& path, PayloadKind kind,
                      const std::vector<uint8_t>& payload) {
  BufferWriter header;
  header.PutFixed32(kMagic);
  header.PutFixed32(kFormatVersion);
  header.PutFixed32(static_cast<uint32_t>(kind));
  header.PutFixed64(payload.size());

  // CRC covers header + payload.
  uint32_t crc = Crc32(header.buffer().data(), header.size());
  // Chain the payload into the same CRC by recomputing over the
  // concatenation (simple and allocation-free enough at these sizes).
  std::vector<uint8_t> all(header.buffer());
  all.insert(all.end(), payload.begin(), payload.end());
  crc = Crc32(all.data(), all.size());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  bool ok = std::fwrite(all.data(), 1, all.size(), f) == all.size();
  uint8_t crc_bytes[4];
  for (int i = 0; i < 4; ++i) {
    crc_bytes[i] = static_cast<uint8_t>((crc >> (8 * i)) & 0xFF);
  }
  ok = ok && std::fwrite(crc_bytes, 1, 4, f) == 4;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadContainer(const std::string& path,
                                           PayloadKind expected_kind) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 24) {  // header (20) + crc (4)
    std::fclose(f);
    return Status::IOError(path + " is too short to be a container file");
  }
  std::vector<uint8_t> bytes(static_cast<std::size_t>(size));
  bool ok = std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short read from " + path);

  const std::size_t body_len = bytes.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[body_len + i]) << (8 * i);
  }
  if (Crc32(bytes.data(), body_len) != stored_crc) {
    return Status::IOError(path + " failed checksum verification");
  }

  BufferReader r(bytes.data(), body_len);
  uint32_t magic, version, kind;
  uint64_t payload_len;
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&magic));
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&version));
  HAMMING_RETURN_NOT_OK(r.GetFixed32(&kind));
  HAMMING_RETURN_NOT_OK(r.GetFixed64(&payload_len));
  if (magic != kMagic) return Status::IOError(path + " has bad magic");
  if (version != kFormatVersion) {
    return Status::IOError(path + " has unsupported format version");
  }
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::IOError(path + " holds a different payload kind");
  }
  if (payload_len != r.remaining()) {
    return Status::IOError(path + " payload length mismatch");
  }
  std::vector<uint8_t> payload(r.remaining());
  HAMMING_RETURN_NOT_OK(r.GetRaw(payload.data(), payload.size()));
  return payload;
}

// ---------------------------------------------------------------------------
// Paged spill files
// ---------------------------------------------------------------------------

namespace {

// Header: magic, version, kind, num_segments (4 x fixed32), then the
// index (3 x fixed64 per segment), then the header CRC (fixed32).
std::size_t SpillHeaderBytes(std::size_t num_segments) {
  return 16 + 24 * num_segments + 4;
}

constexpr std::size_t kSpillPageFraming = 8;  // fixed32 len + fixed32 crc

void PutFixed32To(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

Result<std::unique_ptr<SpillFileWriter>> SpillFileWriter::Create(
    const std::string& path, std::size_t num_segments,
    std::size_t page_target_bytes) {
  if (num_segments == 0) {
    return Status::InvalidArgument("spill file needs at least one segment");
  }
  if (page_target_bytes == 0) {
    return Status::InvalidArgument("spill page target must be positive");
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  // Reserve the header region; Finish seeks back and fills it in. Until
  // then the magic field reads as zero, so a crash mid-write leaves a
  // file no reader accepts.
  std::vector<uint8_t> zeros(SpillHeaderBytes(num_segments), 0);
  if (std::fwrite(zeros.data(), 1, zeros.size(), f) != zeros.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  std::unique_ptr<SpillFileWriter> w(
      new SpillFileWriter(path, f, num_segments, page_target_bytes));
  return w;
}

SpillFileWriter::SpillFileWriter(std::string path, std::FILE* file,
                                 std::size_t num_segments,
                                 std::size_t page_target_bytes)
    : path_(std::move(path)),
      file_(file),
      page_target_(page_target_bytes),
      segments_(num_segments),
      offset_(SpillHeaderBytes(num_segments)) {
  segments_[0].offset = offset_;
}

SpillFileWriter::~SpillFileWriter() {
  if (finished_) return;
  if (file_ != nullptr) std::fclose(file_);
  std::remove((path_ + ".tmp").c_str());
}

Status SpillFileWriter::FlushPage() {
  if (page_.empty()) return Status::OK();
  uint8_t framing[4];
  const uint32_t len = static_cast<uint32_t>(page_.size());
  for (int i = 0; i < 4; ++i) framing[i] = (len >> (8 * i)) & 0xff;
  bool ok = std::fwrite(framing, 1, 4, file_) == 4;
  ok = ok && std::fwrite(page_.data(), 1, page_.size(), file_) == page_.size();
  const uint32_t crc = Crc32(page_.data(), page_.size());
  for (int i = 0; i < 4; ++i) framing[i] = (crc >> (8 * i)) & 0xff;
  ok = ok && std::fwrite(framing, 1, 4, file_) == 4;
  if (!ok) return Status::IOError("short write to " + path_ + ".tmp");
  const uint64_t on_disk = page_.size() + kSpillPageFraming;
  offset_ += on_disk;
  segments_[current_segment_].bytes += on_disk;
  segments_[current_segment_].records += page_records_;
  page_.clear();
  page_records_ = 0;
  return Status::OK();
}

Status SpillFileWriter::Append(std::size_t segment, const uint8_t* key,
                               std::size_t key_len, const uint8_t* value,
                               std::size_t value_len) {
  if (finished_) return Status::InvalidArgument("spill writer finished");
  if (segment >= segments_.size() || segment < current_segment_) {
    return Status::InvalidArgument(
        "spill segments must be appended in order");
  }
  if (segment != current_segment_) {
    HAMMING_RETURN_NOT_OK(FlushPage());
    for (std::size_t s = current_segment_ + 1; s <= segment; ++s) {
      segments_[s].offset = offset_;
    }
    current_segment_ = segment;
  }
  BufferWriter rec;
  rec.PutVarint64(key_len);
  rec.PutRaw(key, key_len);
  rec.PutVarint64(value_len);
  rec.PutRaw(value, value_len);
  // Records never span pages: cut the current page first if this record
  // would push it past the target (an oversized record gets its own
  // page).
  if (!page_.empty() && page_.size() + rec.size() > page_target_) {
    HAMMING_RETURN_NOT_OK(FlushPage());
  }
  page_.insert(page_.end(), rec.buffer().begin(), rec.buffer().end());
  ++page_records_;
  if (page_.size() >= page_target_) HAMMING_RETURN_NOT_OK(FlushPage());
  return Status::OK();
}

Status SpillFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("spill writer finished");
  HAMMING_RETURN_NOT_OK(FlushPage());
  // Segments past the last one appended are empty runs starting at EOF.
  for (std::size_t s = current_segment_ + 1; s < segments_.size(); ++s) {
    segments_[s].offset = offset_;
  }
  std::vector<uint8_t> header;
  header.reserve(SpillHeaderBytes(segments_.size()));
  PutFixed32To(&header, kMagic);
  PutFixed32To(&header, kFormatVersion);
  PutFixed32To(&header, static_cast<uint32_t>(PayloadKind::kShuffleSpill));
  PutFixed32To(&header, static_cast<uint32_t>(segments_.size()));
  for (const SpillSegmentMeta& m : segments_) {
    for (uint64_t v : {m.offset, m.bytes, m.records}) {
      for (int i = 0; i < 8; ++i) {
        header.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
      }
    }
  }
  PutFixed32To(&header, Crc32(header.data(), header.size()));

  const std::string tmp = path_ + ".tmp";
  bool ok = std::fseek(file_, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(header.data(), 1, header.size(), file_) ==
                 header.size();
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  if (!ok) {
    std::remove(tmp.c_str());
    finished_ = true;  // nothing left to clean up in the destructor
    return Status::IOError("short header write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    finished_ = true;
    return Status::IOError("cannot rename " + tmp + " to " + path_);
  }
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<SpillSegmentCursor>> SpillSegmentCursor::Open(
    const std::string& path, std::size_t segment) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  uint8_t fixed[16];
  if (file_size < 16 || std::fread(fixed, 1, 16, f) != 16) {
    std::fclose(f);
    return Status::IOError(path + " is too short to be a spill file");
  }
  BufferReader fr(fixed, 16);
  uint32_t magic, version, kind, num_segments;
  // Reads from a 16-byte in-memory buffer cannot run short; the decoded
  // values are validated immediately below.
  (void)fr.GetFixed32(&magic);
  (void)fr.GetFixed32(&version);
  (void)fr.GetFixed32(&kind);
  (void)fr.GetFixed32(&num_segments);
  if (magic != kMagic || version != kFormatVersion ||
      kind != static_cast<uint32_t>(PayloadKind::kShuffleSpill)) {
    std::fclose(f);
    return Status::IOError(path + " is not a spill file");
  }
  if (segment >= num_segments) {
    std::fclose(f);
    return Status::InvalidArgument(path + " has no segment " +
                                   std::to_string(segment));
  }
  const std::size_t header_bytes = SpillHeaderBytes(num_segments);
  // num_segments is not yet CRC-verified here; bound the claimed header
  // by the real file size before allocating, or a flipped count byte
  // turns into a multi-gigabyte zero-filled allocation (found by
  // fuzz_spill; regression: SpillFuzzRegression.HugeSegmentCount).
  if (header_bytes > static_cast<std::size_t>(file_size)) {
    std::fclose(f);
    return Status::IOError(path + " has a truncated spill header");
  }
  std::vector<uint8_t> header(header_bytes);
  std::memcpy(header.data(), fixed, 16);
  if (std::fread(header.data() + 16, 1, header_bytes - 16, f) !=
      header_bytes - 16) {
    std::fclose(f);
    return Status::IOError(path + " has a truncated spill header");
  }
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |=
        static_cast<uint32_t>(header[header_bytes - 4 + i]) << (8 * i);
  }
  if (Crc32(header.data(), header_bytes - 4) != stored_crc) {
    std::fclose(f);
    return Status::IOError(path + " failed spill header checksum");
  }
  BufferReader ir(header.data() + 16 + 24 * segment, 24);
  SpillSegmentMeta meta;
  // The 24-byte per-segment record sits inside the CRC-verified header;
  // in-memory fixed-width reads cannot run short.
  (void)ir.GetFixed64(&meta.offset);
  (void)ir.GetFixed64(&meta.bytes);
  (void)ir.GetFixed64(&meta.records);
  // The extent is CRC-covered, but a crafted index with a recomputed
  // checksum could still claim gigabytes; clamp to the real file size so
  // page allocations in LoadNextPage stay bounded by what exists.
  if (meta.offset > static_cast<uint64_t>(file_size) ||
      meta.bytes > static_cast<uint64_t>(file_size) - meta.offset) {
    std::fclose(f);
    return Status::IOError(path + " spill segment extent exceeds file size");
  }
  if (std::fseek(f, static_cast<long>(meta.offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek in " + path);
  }
  std::unique_ptr<SpillSegmentCursor> c(
      new SpillSegmentCursor(path, f, meta));
  return c;
}

SpillSegmentCursor::SpillSegmentCursor(std::string path, std::FILE* file,
                                       SpillSegmentMeta meta)
    : path_(std::move(path)), file_(file), meta_(meta) {}

SpillSegmentCursor::~SpillSegmentCursor() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillSegmentCursor::LoadNextPage() {
  uint8_t framing[4];
  if (consumed_bytes_ + kSpillPageFraming > meta_.bytes) {
    return Status::IOError(path_ + " spill segment framing overruns");
  }
  if (std::fread(framing, 1, 4, file_) != 4) {
    return Status::IOError(path_ + " spill page truncated");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(framing[i]) << (8 * i);
  }
  if (len == 0 ||
      consumed_bytes_ + kSpillPageFraming + len > meta_.bytes) {
    return Status::IOError(path_ + " spill page length corrupt");
  }
  page_.resize(len);
  if (std::fread(page_.data(), 1, len, file_) != len) {
    return Status::IOError(path_ + " spill page truncated");
  }
  if (std::fread(framing, 1, 4, file_) != 4) {
    return Status::IOError(path_ + " spill page truncated");
  }
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(framing[i]) << (8 * i);
  }
  if (Crc32(page_.data(), page_.size()) != stored_crc) {
    return Status::IOError(path_ + " spill page failed checksum");
  }
  consumed_bytes_ += len + kSpillPageFraming;
  page_pos_ = 0;
  return Status::OK();
}

Status SpillSegmentCursor::Next(std::vector<uint8_t>* key,
                                std::vector<uint8_t>* value, bool* done) {
  if (page_pos_ >= page_.size()) {
    if (consumed_bytes_ >= meta_.bytes) {
      if (records_returned_ != meta_.records) {
        return Status::IOError(path_ + " spill segment record count " +
                               "mismatch");
      }
      *done = true;
      return Status::OK();
    }
    HAMMING_RETURN_NOT_OK(LoadNextPage());
  }
  BufferReader r(page_.data() + page_pos_, page_.size() - page_pos_);
  HAMMING_RETURN_NOT_OK(r.GetBytes(key));
  HAMMING_RETURN_NOT_OK(r.GetBytes(value));
  page_pos_ = page_.size() - r.remaining();
  ++records_returned_;
  if (records_returned_ > meta_.records) {
    return Status::IOError(path_ + " spill segment has extra records");
  }
  *done = false;
  return Status::OK();
}

}  // namespace hamming::storage

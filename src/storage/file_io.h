// Checksummed on-disk persistence for indexes and tables.
//
// A production deployment builds the HA-Index once and reopens it across
// process restarts (the paper keeps it "in memory for fast query
// processing"; real services also need it on disk). The container format
// is a fixed header — magic, format version, payload kind, payload length
// — followed by the payload bytes and a CRC-32 of everything before it,
// so truncation and bit-rot surface as IOError instead of garbage
// results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hamming::storage {

/// \brief What a container file holds.
enum class PayloadKind : uint32_t {
  kDynamicHAIndex = 1,
  kHammingTable = 2,
  kGeneric = 100,
};

/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
uint32_t Crc32(const uint8_t* data, std::size_t len);

/// \brief Writes a checksummed container file (atomically via a temp file
/// + rename so readers never observe a half-written file).
Status WriteContainer(const std::string& path, PayloadKind kind,
                      const std::vector<uint8_t>& payload);

/// \brief Reads and verifies a container file; fails with IOError on
/// missing file, bad magic, version or kind mismatch, truncation, or
/// checksum failure.
Result<std::vector<uint8_t>> ReadContainer(const std::string& path,
                                           PayloadKind expected_kind);

}  // namespace hamming::storage

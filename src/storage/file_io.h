// Checksummed on-disk persistence for indexes and tables.
//
// A production deployment builds the HA-Index once and reopens it across
// process restarts (the paper keeps it "in memory for fast query
// processing"; real services also need it on disk). The container format
// is a fixed header — magic, format version, payload kind, payload length
// — followed by the payload bytes and a CRC-32 of everything before it,
// so truncation and bit-rot surface as IOError instead of garbage
// results.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hamming::storage {

/// \brief What a container file holds.
enum class PayloadKind : uint32_t {
  kDynamicHAIndex = 1,
  kHammingTable = 2,
  kShuffleSpill = 3,
  kGeneric = 100,
};

/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
uint32_t Crc32(const uint8_t* data, std::size_t len);

/// \brief Writes a checksummed container file (atomically via a temp file
/// + rename so readers never observe a half-written file).
Status WriteContainer(const std::string& path, PayloadKind kind,
                      const std::vector<uint8_t>& payload);

/// \brief Reads and verifies a container file; fails with IOError on
/// missing file, bad magic, version or kind mismatch, truncation, or
/// checksum failure.
Result<std::vector<uint8_t>> ReadContainer(const std::string& path,
                                           PayloadKind expected_kind);

// ---------------------------------------------------------------------------
// Paged spill files (the external shuffle's on-disk format)
// ---------------------------------------------------------------------------
//
// A spill file carries `num_segments` independent sorted runs (the
// external shuffle writes one per reduce partition) behind a CRC-framed
// header and segment index:
//
//   [fixed32 magic][fixed32 version][fixed32 kind=kShuffleSpill]
//   [fixed32 num_segments]
//   num_segments x { [fixed64 offset][fixed64 bytes][fixed64 records] }
//   [fixed32 crc32 of everything above]
//   segment 0 pages ... segment num_segments-1 pages
//
// Each segment is a sequence of pages, and each page is independently
// CRC-framed:
//
//   page := [fixed32 payload_len][payload bytes][fixed32 crc32(payload)]
//
// A page's payload is a run of length-prefixed records
// (varint key_len, key, varint value_len, value); records never span
// pages, so a reader holds one page in memory at a time and truncation or
// bit-rot anywhere — header, index, or page — surfaces as IOError before
// a damaged record is handed out. Writers fill a zeroed header first and
// rewrite it on Finish, then rename `<path>.tmp` into place, so a crash
// mid-write leaves either nothing at `path` or a temp file whose zero
// magic fails validation.

/// \brief Index entry for one segment of a spill file.
struct SpillSegmentMeta {
  uint64_t offset = 0;   ///< file offset of the segment's first page
  uint64_t bytes = 0;    ///< on-disk bytes of all its pages, framing included
  uint64_t records = 0;  ///< number of records in the segment
};

/// \brief Streaming writer for one spill file. Records must be appended
/// in nondecreasing segment order (the shuffle writes partition 0's run,
/// then partition 1's, ...).
class SpillFileWriter {
 public:
  /// Creates `path`.tmp with room for `num_segments` index entries; a
  /// page is cut whenever its payload reaches `page_target_bytes` (a
  /// single record larger than that gets a page of its own).
  static Result<std::unique_ptr<SpillFileWriter>> Create(
      const std::string& path, std::size_t num_segments,
      std::size_t page_target_bytes);

  /// Aborts (closes and removes the temp file) unless Finish succeeded.
  ~SpillFileWriter();

  SpillFileWriter(const SpillFileWriter&) = delete;
  SpillFileWriter& operator=(const SpillFileWriter&) = delete;

  /// \brief Appends one record to `segment`.
  Status Append(std::size_t segment, const uint8_t* key, std::size_t key_len,
                const uint8_t* value, std::size_t value_len);

  /// \brief Flushes the last page, writes the header + index, and renames
  /// the temp file into place.
  Status Finish();

  /// Valid after Finish.
  const std::vector<SpillSegmentMeta>& segments() const { return segments_; }
  uint64_t file_bytes() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  SpillFileWriter(std::string path, std::FILE* file,
                  std::size_t num_segments, std::size_t page_target_bytes);
  Status FlushPage();

  std::string path_;
  std::FILE* file_;
  std::size_t page_target_;
  std::vector<SpillSegmentMeta> segments_;
  std::size_t current_segment_ = 0;
  uint64_t offset_ = 0;  // next write position (== bytes written so far)
  std::vector<uint8_t> page_;
  uint64_t page_records_ = 0;
  bool finished_ = false;
};

/// \brief Streams the records of one segment out of a spill file, one
/// CRC-verified page at a time.
class SpillSegmentCursor {
 public:
  /// Opens `path`, validates the header/index CRC, and positions at the
  /// start of `segment`.
  static Result<std::unique_ptr<SpillSegmentCursor>> Open(
      const std::string& path, std::size_t segment);

  ~SpillSegmentCursor();

  SpillSegmentCursor(const SpillSegmentCursor&) = delete;
  SpillSegmentCursor& operator=(const SpillSegmentCursor&) = delete;

  /// \brief Reads the next record into *key/*value; sets *done = true
  /// (leaving the outputs untouched) once the segment is exhausted.
  Status Next(std::vector<uint8_t>* key, std::vector<uint8_t>* value,
              bool* done);

  /// \brief The segment's record count, from the file's index.
  uint64_t records() const { return meta_.records; }

 private:
  SpillSegmentCursor(std::string path, std::FILE* file,
                     SpillSegmentMeta meta);
  Status LoadNextPage();

  std::string path_;
  std::FILE* file_;
  SpillSegmentMeta meta_;
  uint64_t consumed_bytes_ = 0;    // on-disk segment bytes consumed
  uint64_t records_returned_ = 0;
  std::vector<uint8_t> page_;
  std::size_t page_pos_ = 0;
};

}  // namespace hamming::storage

#include "storage/persist.h"

#include "common/serde.h"
#include "hashing/spectral_hashing.h"

namespace hamming::storage {

Status SaveIndex(const std::string& path, const DynamicHAIndex& index) {
  BufferWriter w;
  index.Serialize(&w);
  return WriteContainer(path, PayloadKind::kDynamicHAIndex, w.buffer());
}

Result<DynamicHAIndex> LoadIndex(const std::string& path) {
  HAMMING_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                           ReadContainer(path, PayloadKind::kDynamicHAIndex));
  BufferReader r(payload);
  return DynamicHAIndex::Deserialize(&r);
}

Status SaveTable(const std::string& path, const HammingTable& table) {
  BufferWriter w;
  // Features.
  w.PutVarint64(table.has_features() ? 1 : 0);
  if (table.has_features()) {
    w.PutVarint64(table.data().rows());
    w.PutVarint64(table.data().cols());
    for (double v : table.data().data()) w.PutDouble(v);
  }
  // Codes.
  w.PutVarint64(table.codes().size());
  for (const auto& c : table.codes()) c.Serialize(&w);
  // Hash model: only Spectral Hashing round-trips; other models are
  // dropped with a flag so the reader knows.
  const auto* sh =
      dynamic_cast<const SpectralHashing*>(table.hash().get());
  w.PutVarint64(sh != nullptr ? 1 : 0);
  if (sh != nullptr) sh->Serialize(&w);
  return WriteContainer(path, PayloadKind::kHammingTable, w.buffer());
}

Result<HammingTable> LoadTable(const std::string& path) {
  HAMMING_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                           ReadContainer(path, PayloadKind::kHammingTable));
  BufferReader r(payload);
  uint64_t has_features;
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&has_features));
  FloatMatrix data;
  if (has_features) {
    uint64_t rows, cols;
    HAMMING_RETURN_NOT_OK(r.GetVarint64(&rows));
    HAMMING_RETURN_NOT_OK(r.GetVarint64(&cols));
    data = FloatMatrix(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      auto row = data.MutableRow(i);
      for (std::size_t j = 0; j < cols; ++j) {
        HAMMING_RETURN_NOT_OK(r.GetDouble(&row[j]));
      }
    }
  }
  uint64_t num_codes;
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&num_codes));
  std::vector<BinaryCode> codes(num_codes);
  for (auto& c : codes) {
    HAMMING_RETURN_NOT_OK(BinaryCode::Deserialize(&r, &c));
  }
  uint64_t has_hash;
  HAMMING_RETURN_NOT_OK(r.GetVarint64(&has_hash));
  std::shared_ptr<const SimilarityHash> hash;
  if (has_hash) {
    HAMMING_ASSIGN_OR_RETURN(std::unique_ptr<SpectralHashing> sh,
                             SpectralHashing::Deserialize(&r));
    hash = std::shared_ptr<const SimilarityHash>(sh.release());
  }
  return HammingTable::FromParts(std::move(data), std::move(codes),
                                 std::move(hash));
}

}  // namespace hamming::storage

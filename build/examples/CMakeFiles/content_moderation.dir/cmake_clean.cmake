file(REMOVE_RECURSE
  "CMakeFiles/content_moderation.dir/content_moderation.cpp.o"
  "CMakeFiles/content_moderation.dir/content_moderation.cpp.o.d"
  "content_moderation"
  "content_moderation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_moderation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

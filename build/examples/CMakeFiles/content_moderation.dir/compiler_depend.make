# Empty compiler generated dependencies file for content_moderation.
# This may be replaced when dependencies are built.

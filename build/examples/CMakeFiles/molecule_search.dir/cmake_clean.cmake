file(REMOVE_RECURSE
  "CMakeFiles/molecule_search.dir/molecule_search.cpp.o"
  "CMakeFiles/molecule_search.dir/molecule_search.cpp.o.d"
  "molecule_search"
  "molecule_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for molecule_search.
# This may be replaced when dependencies are built.

# Empty dependencies file for doc_neardup_join.
# This may be replaced when dependencies are built.

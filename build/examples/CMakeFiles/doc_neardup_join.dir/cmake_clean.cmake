file(REMOVE_RECURSE
  "CMakeFiles/doc_neardup_join.dir/doc_neardup_join.cpp.o"
  "CMakeFiles/doc_neardup_join.dir/doc_neardup_join.cpp.o.d"
  "doc_neardup_join"
  "doc_neardup_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_neardup_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/image_dedup.dir/image_dedup.cpp.o"
  "CMakeFiles/image_dedup.dir/image_dedup.cpp.o.d"
  "image_dedup"
  "image_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

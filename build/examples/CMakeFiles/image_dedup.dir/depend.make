# Empty dependencies file for image_dedup.
# This may be replaced when dependencies are built.

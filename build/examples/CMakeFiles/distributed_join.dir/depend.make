# Empty dependencies file for distributed_join.
# This may be replaced when dependencies are built.

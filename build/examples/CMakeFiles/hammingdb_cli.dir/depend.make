# Empty dependencies file for hammingdb_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hammingdb_cli.dir/hammingdb_cli.cpp.o"
  "CMakeFiles/hammingdb_cli.dir/hammingdb_cli.cpp.o.d"
  "hammingdb_cli"
  "hammingdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammingdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for knn_image_search.
# This may be replaced when dependencies are built.

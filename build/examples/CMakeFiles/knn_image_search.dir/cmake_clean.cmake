file(REMOVE_RECURSE
  "CMakeFiles/knn_image_search.dir/knn_image_search.cpp.o"
  "CMakeFiles/knn_image_search.dir/knn_image_search.cpp.o.d"
  "knn_image_search"
  "knn_image_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_image_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

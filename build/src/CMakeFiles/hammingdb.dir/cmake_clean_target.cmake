file(REMOVE_RECURSE
  "libhammingdb.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/tanimoto.cc" "src/CMakeFiles/hammingdb.dir/chem/tanimoto.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/chem/tanimoto.cc.o.d"
  "/root/repo/src/code/binary_code.cc" "src/CMakeFiles/hammingdb.dir/code/binary_code.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/code/binary_code.cc.o.d"
  "/root/repo/src/code/gray.cc" "src/CMakeFiles/hammingdb.dir/code/gray.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/code/gray.cc.o.d"
  "/root/repo/src/code/masked_code.cc" "src/CMakeFiles/hammingdb.dir/code/masked_code.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/code/masked_code.cc.o.d"
  "/root/repo/src/common/memtrack.cc" "src/CMakeFiles/hammingdb.dir/common/memtrack.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/common/memtrack.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/hammingdb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/hammingdb.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hammingdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/hammingdb.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/hammingdb.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/common/threadpool.cc.o.d"
  "/root/repo/src/dataset/generators.cc" "src/CMakeFiles/hammingdb.dir/dataset/generators.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/dataset/generators.cc.o.d"
  "/root/repo/src/dataset/matrix.cc" "src/CMakeFiles/hammingdb.dir/dataset/matrix.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/dataset/matrix.cc.o.d"
  "/root/repo/src/dataset/pivots.cc" "src/CMakeFiles/hammingdb.dir/dataset/pivots.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/dataset/pivots.cc.o.d"
  "/root/repo/src/dataset/sampling.cc" "src/CMakeFiles/hammingdb.dir/dataset/sampling.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/dataset/sampling.cc.o.d"
  "/root/repo/src/dataset/scale.cc" "src/CMakeFiles/hammingdb.dir/dataset/scale.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/dataset/scale.cc.o.d"
  "/root/repo/src/hashing/eigen.cc" "src/CMakeFiles/hammingdb.dir/hashing/eigen.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/hashing/eigen.cc.o.d"
  "/root/repo/src/hashing/simhash.cc" "src/CMakeFiles/hammingdb.dir/hashing/simhash.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/hashing/simhash.cc.o.d"
  "/root/repo/src/hashing/similarity_hash.cc" "src/CMakeFiles/hammingdb.dir/hashing/similarity_hash.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/hashing/similarity_hash.cc.o.d"
  "/root/repo/src/hashing/spectral_hashing.cc" "src/CMakeFiles/hammingdb.dir/hashing/spectral_hashing.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/hashing/spectral_hashing.cc.o.d"
  "/root/repo/src/hashing/zorder.cc" "src/CMakeFiles/hammingdb.dir/hashing/zorder.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/hashing/zorder.cc.o.d"
  "/root/repo/src/index/bitsample_lsh.cc" "src/CMakeFiles/hammingdb.dir/index/bitsample_lsh.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/bitsample_lsh.cc.o.d"
  "/root/repo/src/index/dynamic_ha_index.cc" "src/CMakeFiles/hammingdb.dir/index/dynamic_ha_index.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/dynamic_ha_index.cc.o.d"
  "/root/repo/src/index/hamming_index.cc" "src/CMakeFiles/hammingdb.dir/index/hamming_index.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/hamming_index.cc.o.d"
  "/root/repo/src/index/hengine.cc" "src/CMakeFiles/hammingdb.dir/index/hengine.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/hengine.cc.o.d"
  "/root/repo/src/index/hmsearch.cc" "src/CMakeFiles/hammingdb.dir/index/hmsearch.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/hmsearch.cc.o.d"
  "/root/repo/src/index/linear_scan.cc" "src/CMakeFiles/hammingdb.dir/index/linear_scan.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/linear_scan.cc.o.d"
  "/root/repo/src/index/multi_hash_table.cc" "src/CMakeFiles/hammingdb.dir/index/multi_hash_table.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/multi_hash_table.cc.o.d"
  "/root/repo/src/index/radix_tree.cc" "src/CMakeFiles/hammingdb.dir/index/radix_tree.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/radix_tree.cc.o.d"
  "/root/repo/src/index/static_ha_index.cc" "src/CMakeFiles/hammingdb.dir/index/static_ha_index.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/static_ha_index.cc.o.d"
  "/root/repo/src/index/yao_index.cc" "src/CMakeFiles/hammingdb.dir/index/yao_index.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/index/yao_index.cc.o.d"
  "/root/repo/src/join/centralized_join.cc" "src/CMakeFiles/hammingdb.dir/join/centralized_join.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/join/centralized_join.cc.o.d"
  "/root/repo/src/knn/bptree.cc" "src/CMakeFiles/hammingdb.dir/knn/bptree.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/knn/bptree.cc.o.d"
  "/root/repo/src/knn/e2lsh.cc" "src/CMakeFiles/hammingdb.dir/knn/e2lsh.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/knn/e2lsh.cc.o.d"
  "/root/repo/src/knn/exact_knn.cc" "src/CMakeFiles/hammingdb.dir/knn/exact_knn.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/knn/exact_knn.cc.o.d"
  "/root/repo/src/knn/hamming_knn.cc" "src/CMakeFiles/hammingdb.dir/knn/hamming_knn.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/knn/hamming_knn.cc.o.d"
  "/root/repo/src/knn/lsb_tree.cc" "src/CMakeFiles/hammingdb.dir/knn/lsb_tree.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/knn/lsb_tree.cc.o.d"
  "/root/repo/src/mapreduce/cluster.cc" "src/CMakeFiles/hammingdb.dir/mapreduce/cluster.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mapreduce/cluster.cc.o.d"
  "/root/repo/src/mapreduce/counters.cc" "src/CMakeFiles/hammingdb.dir/mapreduce/counters.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mapreduce/counters.cc.o.d"
  "/root/repo/src/mapreduce/distributed_cache.cc" "src/CMakeFiles/hammingdb.dir/mapreduce/distributed_cache.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mapreduce/distributed_cache.cc.o.d"
  "/root/repo/src/mapreduce/job.cc" "src/CMakeFiles/hammingdb.dir/mapreduce/job.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mapreduce/job.cc.o.d"
  "/root/repo/src/mrjoin/common.cc" "src/CMakeFiles/hammingdb.dir/mrjoin/common.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mrjoin/common.cc.o.d"
  "/root/repo/src/mrjoin/mrha.cc" "src/CMakeFiles/hammingdb.dir/mrjoin/mrha.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mrjoin/mrha.cc.o.d"
  "/root/repo/src/mrjoin/mrha_knn.cc" "src/CMakeFiles/hammingdb.dir/mrjoin/mrha_knn.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mrjoin/mrha_knn.cc.o.d"
  "/root/repo/src/mrjoin/mrselect.cc" "src/CMakeFiles/hammingdb.dir/mrjoin/mrselect.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mrjoin/mrselect.cc.o.d"
  "/root/repo/src/mrjoin/pgbj.cc" "src/CMakeFiles/hammingdb.dir/mrjoin/pgbj.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mrjoin/pgbj.cc.o.d"
  "/root/repo/src/mrjoin/pmh.cc" "src/CMakeFiles/hammingdb.dir/mrjoin/pmh.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/mrjoin/pmh.cc.o.d"
  "/root/repo/src/ops/operators.cc" "src/CMakeFiles/hammingdb.dir/ops/operators.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/ops/operators.cc.o.d"
  "/root/repo/src/ops/planner.cc" "src/CMakeFiles/hammingdb.dir/ops/planner.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/ops/planner.cc.o.d"
  "/root/repo/src/ops/table.cc" "src/CMakeFiles/hammingdb.dir/ops/table.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/ops/table.cc.o.d"
  "/root/repo/src/storage/file_io.cc" "src/CMakeFiles/hammingdb.dir/storage/file_io.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/storage/file_io.cc.o.d"
  "/root/repo/src/storage/persist.cc" "src/CMakeFiles/hammingdb.dir/storage/persist.cc.o" "gcc" "src/CMakeFiles/hammingdb.dir/storage/persist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

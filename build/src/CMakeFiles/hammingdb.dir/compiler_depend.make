# Empty compiler generated dependencies file for hammingdb.
# This may be replaced when dependencies are built.

# Empty dependencies file for hamming_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_binary_code.cc" "tests/CMakeFiles/hamming_tests.dir/test_binary_code.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_binary_code.cc.o.d"
  "/root/repo/tests/test_bptree.cc" "tests/CMakeFiles/hamming_tests.dir/test_bptree.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_bptree.cc.o.d"
  "/root/repo/tests/test_chem.cc" "tests/CMakeFiles/hamming_tests.dir/test_chem.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_chem.cc.o.d"
  "/root/repo/tests/test_concurrency.cc" "tests/CMakeFiles/hamming_tests.dir/test_concurrency.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_concurrency.cc.o.d"
  "/root/repo/tests/test_dataset.cc" "tests/CMakeFiles/hamming_tests.dir/test_dataset.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_dataset.cc.o.d"
  "/root/repo/tests/test_dynamic_ha.cc" "tests/CMakeFiles/hamming_tests.dir/test_dynamic_ha.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_dynamic_ha.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/hamming_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_gray.cc" "tests/CMakeFiles/hamming_tests.dir/test_gray.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_gray.cc.o.d"
  "/root/repo/tests/test_hashing.cc" "tests/CMakeFiles/hamming_tests.dir/test_hashing.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_hashing.cc.o.d"
  "/root/repo/tests/test_indexes.cc" "tests/CMakeFiles/hamming_tests.dir/test_indexes.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_indexes.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/hamming_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_join.cc" "tests/CMakeFiles/hamming_tests.dir/test_join.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_join.cc.o.d"
  "/root/repo/tests/test_knn.cc" "tests/CMakeFiles/hamming_tests.dir/test_knn.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_knn.cc.o.d"
  "/root/repo/tests/test_mapreduce.cc" "tests/CMakeFiles/hamming_tests.dir/test_mapreduce.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_mapreduce.cc.o.d"
  "/root/repo/tests/test_masked_code.cc" "tests/CMakeFiles/hamming_tests.dir/test_masked_code.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_masked_code.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/hamming_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_mrjoin.cc" "tests/CMakeFiles/hamming_tests.dir/test_mrjoin.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_mrjoin.cc.o.d"
  "/root/repo/tests/test_ops.cc" "tests/CMakeFiles/hamming_tests.dir/test_ops.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_ops.cc.o.d"
  "/root/repo/tests/test_planner.cc" "tests/CMakeFiles/hamming_tests.dir/test_planner.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_planner.cc.o.d"
  "/root/repo/tests/test_radix_tree.cc" "tests/CMakeFiles/hamming_tests.dir/test_radix_tree.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_radix_tree.cc.o.d"
  "/root/repo/tests/test_serde.cc" "tests/CMakeFiles/hamming_tests.dir/test_serde.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_serde.cc.o.d"
  "/root/repo/tests/test_static_ha.cc" "tests/CMakeFiles/hamming_tests.dir/test_static_ha.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_static_ha.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/hamming_tests.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_status.cc.o.d"
  "/root/repo/tests/test_storage.cc" "tests/CMakeFiles/hamming_tests.dir/test_storage.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_storage.cc.o.d"
  "/root/repo/tests/test_threadpool.cc" "tests/CMakeFiles/hamming_tests.dir/test_threadpool.cc.o" "gcc" "tests/CMakeFiles/hamming_tests.dir/test_threadpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hammingdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

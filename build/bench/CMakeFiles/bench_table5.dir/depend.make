# Empty dependencies file for bench_table5.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5.dir/bench_table5.cc.o"
  "CMakeFiles/bench_table5.dir/bench_table5.cc.o.d"
  "bench_table5"
  "bench_table5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

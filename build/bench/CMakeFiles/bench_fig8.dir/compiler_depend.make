# Empty compiler generated dependencies file for bench_fig8.
# This may be replaced when dependencies are built.

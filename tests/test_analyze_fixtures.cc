// Compiled fixtures for tools/analyze.
//
// Two roles:
//  1. Runtime tests (run under ctest, ASan, TSan) proving the idioms the
//     analyzer models as *clean* really are clean: sequential scoped
//     locks, branch-local ReleasableMutexLock release, and the
//     unlock-work-relock loop.
//  2. A seeded negative fixture: ReversedOrderNeverRun() below acquires
//     LockB before LockA, the reverse of the order declared in
//     tools/analyze/selftest/spec.toml.  `analyze.py --self-test`
//     parses this file and must flag that edge; the function is never
//     executed at runtime.
//
// If the analyzer self-test starts failing on this file, either the
// frontend regressed or someone "fixed" the deliberate reversal.

#include <gtest/gtest.h>

#include <functional>

#include "common/sync.h"

namespace hamming {
namespace {

struct LockA {
  Mutex mu_;
  int value HAMMING_GUARDED_BY(mu_) = 0;
};

struct LockB {
  Mutex mu_;
  int value HAMMING_GUARDED_BY(mu_) = 0;
};

// Seeded analyzer fixture: acquires b then a against the declared
// a -> b order.  Compiled (so it stays parseable C++) but never called.
void ReversedOrderNeverRun(LockA* a, LockB* b) {
  MutexLock lb(&b->mu_);
  MutexLock la(&a->mu_);
  a->value = b->value;
}

TEST(AnalyzeFixtures, SeededFixtureIsCompiledButNeverRun) {
  // Reference (without calling) so -Wunused-function stays quiet.
  EXPECT_NE(reinterpret_cast<void*>(&ReversedOrderNeverRun), nullptr);
}

TEST(AnalyzeFixtures, SequentialScopedLocksDoNotNest) {
  LockA a;
  LockB b;
  {
    MutexLock la(&a.mu_);
    a.value = 1;
  }
  {
    MutexLock lb(&b.mu_);
    b.value = 2;
  }
  MutexLock la(&a.mu_);
  EXPECT_EQ(a.value, 1);
}

TEST(AnalyzeFixtures, ReleasableBranchRelease) {
  Mutex mu;
  int hits = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    ReleasableMutexLock lock(&mu);
    if (attempt == 0) {
      lock.Release();
      continue;  // released on the early-exit branch
    }
    ++hits;  // still held here on the fall-through branch
  }
  EXPECT_EQ(hits, 1);
}

TEST(AnalyzeFixtures, UnlockWorkRelockLoopRunsWorkUnlocked) {
  Mutex mu;
  int done = 0;
  std::function<void()> work = [&done] { ++done; };
  mu.Lock();
  for (int i = 0; i < 3; ++i) {
    mu.Unlock();
    work();  // no lock held: the analyzer models this as callback-safe
    mu.Lock();
  }
  mu.Unlock();
  EXPECT_EQ(done, 3);
}

}  // namespace
}  // namespace hamming

// ConcurrentHAIndex tests: the epoch/snapshot layer must (a) answer
// exactly like the single-threaded DynamicHAIndex it wraps, (b) freeze
// pinned snapshots byte-for-byte while the live index churns, (c) answer
// every request of one batch against exactly ONE published epoch, and
// (d) survive an N-reader/1-mutator stress race-free — the
// ConcurrentIndex*/ChurnStress* filters run under TSan in
// scripts/check.sh. The DynamicHAAudit suite exercises the
// SwapRemove-era cross-structure invariants via CheckConsistency.
#include "index/concurrent_ha_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>

#include "common/rng.h"
#include "common/sync.h"
#include "index/dynamic_ha_index.h"
#include "observability/metrics.h"
#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

// Brute force over an exported corpus — the ground truth every snapshot
// result is compared against.
std::vector<TupleId> BruteForce(
    const std::vector<std::pair<TupleId, BinaryCode>>& tuples,
    const BinaryCode& query, std::size_t h) {
  std::vector<TupleId> out;
  for (const auto& [id, code] : tuples) {
    if (query.WithinDistance(code, h)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ConcurrentIndexBasic, BuildAndSearchMatchDynamicHA) {
  auto codes = RandomCodes(400, 64, /*seed=*/3, /*clusters=*/8);
  auto queries = RandomCodes(32, 64, /*seed=*/4, /*clusters=*/8);

  ConcurrentHAIndex cha;
  DynamicHAIndex dha;
  ASSERT_TRUE(cha.Build(codes).ok());
  ASSERT_TRUE(dha.Build(codes).ok());
  EXPECT_EQ(cha.size(), dha.size());
  EXPECT_EQ(cha.name(), "CHA-Index");

  for (const auto& q : queries) {
    auto got = cha.Search(q, 4);
    auto ref = dha.Search(q, 4);
    ASSERT_TRUE(got.ok() && ref.ok());
    EXPECT_EQ(Sorted(*got), Sorted(*ref));
  }

  // The batch surface reports exact distances (has_distances), same as
  // the wrapped DynamicHA plan.
  std::vector<QueryRequest> reqs;
  for (const auto& q : queries) reqs.push_back(QueryRequest::Range(q, 4));
  std::vector<QueryResponse> resps(reqs.size());
  ASSERT_TRUE(cha.SearchBatch(reqs, resps).ok());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(resps[i].status.ok());
    EXPECT_TRUE(resps[i].has_distances);
    auto ref = dha.Search(queries[i], 4);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(Sorted(resps[i].ids), Sorted(*ref)) << "query " << i;
    for (std::size_t j = 0; j < resps[i].ids.size(); ++j) {
      EXPECT_EQ(resps[i].distances[j],
                queries[i].Distance(codes[resps[i].ids[j]]));
    }
  }
}

TEST(ConcurrentIndexBasic, KnnMatchesDynamicHA) {
  auto codes = RandomCodes(300, 64, /*seed=*/5, /*clusters=*/6);
  ConcurrentHAIndex cha;
  DynamicHAIndex dha;
  ASSERT_TRUE(cha.Build(codes).ok());
  ASSERT_TRUE(dha.Build(codes).ok());
  auto queries = RandomCodes(16, 64, /*seed=*/6, /*clusters=*/6);
  for (const auto& q : queries) {
    auto got = cha.Knn(q, 9);
    auto ref = dha.Knn(q, 9);
    ASSERT_TRUE(got.ok() && ref.ok());
    ASSERT_EQ(got->size(), ref->size());
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].second, (*ref)[i].second) << "rank " << i;
    }
  }
}

TEST(ConcurrentIndexBasic, SnapshotIsImmutable) {
  auto codes = RandomCodes(64, 32, /*seed=*/7);
  ConcurrentHAIndex cha;
  ASSERT_TRUE(cha.Build(codes).ok());
  ConcurrentHAIndex::SnapshotPtr snap = cha.Pin();
  ASSERT_NE(snap, nullptr);
  EXPECT_FALSE(snap->SupportsDynamicUpdates());
  // The const entry points are the whole surface; mutators refuse.
  auto* mutable_snap = const_cast<ConcurrentHAIndex::Snapshot*>(snap.get());
  EXPECT_TRUE(mutable_snap->Build(codes).IsNotImplemented());
  EXPECT_TRUE(mutable_snap->Insert(999, codes[0]).IsNotImplemented());
  EXPECT_TRUE(mutable_snap->Delete(0, codes[0]).IsNotImplemented());
}

TEST(ConcurrentIndexBasic, InsertDeleteDifferentialVsDynamicHA) {
  // Sequential differential churn: after every mutation (each published,
  // publish_threshold = 1) the wrapper must answer exactly like a
  // DynamicHAIndex mirror of the same live corpus.
  auto pool = RandomCodes(256, 48, /*seed=*/11, /*clusters=*/8);
  std::vector<BinaryCode> initial(pool.begin(), pool.begin() + 128);

  ConcurrentHAIndex cha;
  DynamicHAIndex mirror;
  ASSERT_TRUE(cha.Build(initial).ok());
  ASSERT_TRUE(mirror.Build(initial).ok());

  std::map<TupleId, BinaryCode> live;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    live.emplace(static_cast<TupleId>(i), initial[i]);
  }

  Rng rng(13);
  TupleId next_id = 1000;
  const auto queries = RandomCodes(8, 48, /*seed=*/17, /*clusters=*/8);
  for (std::size_t step = 0; step < 300; ++step) {
    const bool do_insert = live.empty() || rng.Bernoulli(0.55);
    if (do_insert) {
      const TupleId id = next_id++;
      const BinaryCode& code = pool[id % pool.size()];
      ASSERT_TRUE(cha.Insert(id, code).ok()) << "step " << step;
      ASSERT_TRUE(mirror.Insert(id, code).ok());
      live.emplace(id, code);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(
                           0, static_cast<int64_t>(live.size()) - 1)));
      ASSERT_TRUE(cha.Delete(it->first, it->second).ok()) << "step " << step;
      ASSERT_TRUE(mirror.Delete(it->first, it->second).ok());
      live.erase(it);
    }
    ASSERT_EQ(cha.size(), live.size()) << "step " << step;
    if (step % 25 == 0) {
      for (const auto& q : queries) {
        auto got = cha.Search(q, 4);
        auto ref = mirror.Search(q, 4);
        ASSERT_TRUE(got.ok() && ref.ok());
        ASSERT_EQ(Sorted(*got), Sorted(*ref)) << "step " << step;
      }
    }
  }
  // Epochs advanced once per mutation (plus ctor + build).
  EXPECT_GE(cha.epoch(), 300u);
}

TEST(ConcurrentIndexBasic, ReinsertAfterDeleteUsesNewCode) {
  // Delete a base-resident tuple, then re-insert the same id with a
  // DIFFERENT code: the tombstone must keep hiding the base copy while
  // the delta carries the new one.
  auto codes = RandomCodes(32, 32, /*seed=*/19);
  ConcurrentHAIndex cha;
  ASSERT_TRUE(cha.Build(codes).ok());
  BinaryCode replacement(32);
  for (std::size_t b = 0; b < 32; ++b) replacement.SetBit(b, b % 3 == 0);
  ASSERT_TRUE(cha.Delete(7, codes[7]).ok());
  ASSERT_TRUE(cha.Insert(7, replacement).ok());

  auto at_new = cha.Search(replacement, 0);
  ASSERT_TRUE(at_new.ok());
  EXPECT_TRUE(std::find(at_new->begin(), at_new->end(), 7) != at_new->end());
  auto at_old = cha.Search(codes[7], 0);
  ASSERT_TRUE(at_old.ok());
  EXPECT_TRUE(std::find(at_old->begin(), at_old->end(), 7) == at_old->end());
}

TEST(ConcurrentIndexBasic, DuplicateInsertAndMismatchedDeleteRejected) {
  auto codes = RandomCodes(16, 32, /*seed=*/23);
  ConcurrentHAIndex cha;
  ASSERT_TRUE(cha.Build(codes).ok());
  EXPECT_TRUE(cha.Insert(3, codes[3]).IsInvalidArgument());
  EXPECT_TRUE(cha.Delete(9999, codes[0]).IsKeyError());
  EXPECT_TRUE(cha.Delete(0, codes[1]).IsKeyError());  // wrong code
  EXPECT_EQ(cha.size(), codes.size());  // failed mutations change nothing
}

TEST(ConcurrentIndexBasic, RebuildCompactsDelta) {
  auto codes = RandomCodes(128, 48, /*seed=*/29, /*clusters=*/8);
  ConcurrentHAIndexOptions opts;
  opts.rebuild_threshold = 16;
  ConcurrentHAIndex cha(opts);
  DynamicHAIndex mirror;
  ASSERT_TRUE(cha.Build(codes).ok());
  ASSERT_TRUE(mirror.Build(codes).ok());

  // 64 delete+insert cycles over base-resident ids: tombstones + delta
  // pairs accumulate and must cross the rebuild threshold repeatedly.
  for (TupleId id = 0; id < 64; ++id) {
    ASSERT_TRUE(cha.Delete(id, codes[id]).ok());
    ASSERT_TRUE(cha.Insert(id, codes[id]).ok());
    ASSERT_TRUE(mirror.Delete(id, codes[id]).ok());
    ASSERT_TRUE(mirror.Insert(id, codes[id]).ok());
  }
  EXPECT_GT(cha.rebuilds(), 0u);
  ConcurrentHAIndex::SnapshotPtr snap = cha.Pin();
  EXPECT_LT(snap->delta_inserts() + snap->delta_tombstones(), 16u);

  auto queries = RandomCodes(8, 48, /*seed=*/31, /*clusters=*/8);
  for (const auto& q : queries) {
    auto got = cha.Search(q, 4);
    auto ref = mirror.Search(q, 4);
    ASSERT_TRUE(got.ok() && ref.ok());
    EXPECT_EQ(Sorted(*got), Sorted(*ref));
  }
}

TEST(ConcurrentIndexBasic, EpochMetricsRecorded) {
  obs::MetricsRegistry metrics;
  ConcurrentHAIndexOptions opts;
  opts.metrics = &metrics;
  ConcurrentHAIndex cha(opts);
  auto codes = RandomCodes(64, 32, /*seed=*/37);
  ASSERT_TRUE(cha.Build(codes).ok());
  for (TupleId id = 0; id < 8; ++id) {
    ASSERT_TRUE(cha.Delete(id, codes[id]).ok());
  }
  auto probe = cha.Search(codes[20], 2);
  ASSERT_TRUE(probe.ok());

  auto snap = metrics.Snapshot();
  // ctor (empty epoch 0) + Build + 8 deletes.
  EXPECT_EQ(snap.counters.at("index.epoch_published"), 10);
  EXPECT_GT(snap.counters.at("index.epoch_pins"), 0);
  EXPECT_GE(snap.counters.at("index.epoch_reclaimed"), 1);
  EXPECT_EQ(snap.gauges.at("index.epoch_current"), 9);
  EXPECT_TRUE(snap.gauges.count("index.epoch_retired"));
}

TEST(ConcurrentIndexBasic, RetiredSnapshotsReclaimedAfterReadersUnpin) {
  auto codes = RandomCodes(64, 32, /*seed=*/41);
  ConcurrentHAIndex cha;
  ASSERT_TRUE(cha.Build(codes).ok());
  {
    // A long-lived pin keeps its epoch alive across publishes...
    ConcurrentHAIndex::SnapshotPtr pinned = cha.Pin();
    for (TupleId id = 0; id < 4; ++id) {
      ASSERT_TRUE(cha.Delete(id, codes[id]).ok());
    }
    EXPECT_GE(cha.retired_snapshots(), 1u);
    EXPECT_EQ(pinned->size(), codes.size());  // still the frozen corpus
  }
  // ...and once dropped, the next publish sweeps everything retired.
  ASSERT_TRUE(cha.Publish().ok());
  EXPECT_EQ(cha.retired_snapshots(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrent suites (run under TSan via scripts/check.sh)
// ---------------------------------------------------------------------------

TEST(ConcurrentIndexSnapshot, PinnedSnapshotFrozenDuringChurn) {
  auto codes = RandomCodes(300, 48, /*seed=*/43, /*clusters=*/8);
  auto queries = RandomCodes(12, 48, /*seed=*/47, /*clusters=*/8);
  ConcurrentHAIndex cha;
  ASSERT_TRUE(cha.Build(codes).ok());

  ConcurrentHAIndex::SnapshotPtr pinned = cha.Pin();
  // Reference answers = brute force over the pinned epoch's frozen
  // corpus, captured before any churn starts.
  std::vector<std::vector<TupleId>> want;
  const auto frozen = pinned->ExportTuples();
  ASSERT_EQ(frozen.size(), codes.size());
  for (const auto& q : queries) want.push_back(BruteForce(frozen, q, 4));

  std::atomic<bool> stop{false};
  Thread mutator([&] {
    Rng rng(53);
    TupleId next = 50000;
    while (!stop.load()) {
      const TupleId victim =
          static_cast<TupleId>(rng.UniformInt(0, 299));
      // Best-effort churn: repeat deletes of the same victim fail with
      // KeyError, which is fine — the point is published-state motion.
      (void)cha.Delete(victim, codes[victim]);
      (void)cha.Insert(next++, codes[victim]);
    }
  });

  // Wait until the mutator has demonstrably published past the pin —
  // otherwise a slow thread spawn would make the race vacuous.
  while (cha.epoch() <= pinned->epoch() + 10) {
    SleepFor(std::chrono::microseconds(100));
  }

  // While the mutator races, the pinned snapshot must keep answering
  // byte-identically to its frozen corpus.
  for (int round = 0; round < 60; ++round) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto got = pinned->Search(queries[i], 4);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(Sorted(*got), want[i]) << "round " << round;
    }
  }
  stop.store(true);
  mutator.join();
  // The live index moved on while the pin held still.
  EXPECT_GT(cha.epoch(), pinned->epoch());
}

TEST(ConcurrentIndexSnapshot, BatchSeesExactlyOneEpoch) {
  // Toggle churn: each published epoch contains tuple X xor tuple Y
  // (publish_threshold = 2 makes the delete+insert pair atomic). A
  // batch probing both at h = 0 must find EXACTLY one — finding both or
  // neither would prove the batch straddled two epochs.
  const std::size_t kBits = 48;
  auto codes = RandomCodes(200, kBits, /*seed=*/59, /*clusters=*/8);
  BinaryCode code_x(kBits), code_y(kBits);
  for (std::size_t b = 0; b < kBits; ++b) {
    code_x.SetBit(b, b % 2 == 0);
    code_y.SetBit(b, b % 2 == 1);
  }
  // The crafted probes must be unique in the corpus for the h=0 test.
  for (const auto& c : codes) {
    ASSERT_FALSE(c == code_x);
    ASSERT_FALSE(c == code_y);
  }
  constexpr TupleId kIdX = 70001, kIdY = 70002;

  ConcurrentHAIndexOptions opts;
  opts.publish_threshold = 2;
  ConcurrentHAIndex cha(opts);
  {
    std::vector<TupleId> ids;
    std::vector<BinaryCode> all = codes;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      ids.push_back(static_cast<TupleId>(i));
    }
    all.push_back(code_x);
    ids.push_back(kIdX);  // initial state: X live, Y absent
    ASSERT_TRUE(cha.BuildWithIds(ids, all).ok());
  }

  std::atomic<bool> stop{false};
  Thread mutator([&] {
    bool x_live = true;
    while (!stop.load()) {
      if (x_live) {
        ASSERT_TRUE(cha.Delete(kIdX, code_x).ok());
        ASSERT_TRUE(cha.Insert(kIdY, code_y).ok());  // publishes here
      } else {
        ASSERT_TRUE(cha.Delete(kIdY, code_y).ok());
        ASSERT_TRUE(cha.Insert(kIdX, code_x).ok());  // publishes here
      }
      x_live = !x_live;
    }
  });

  // Probe until BOTH phases have been observed (at least 200 rounds) —
  // waiting out thread-spawn/preemption skew instead of assuming the
  // scheduler interleaves. The round cap bounds a genuinely broken run.
  std::vector<QueryRequest> reqs = {QueryRequest::Range(code_x, 0),
                                    QueryRequest::Range(code_y, 0)};
  std::size_t saw_x = 0, saw_y = 0;
  for (int round = 0;
       round < 200 || ((saw_x == 0 || saw_y == 0) && round < 2000000);
       ++round) {
    std::vector<QueryResponse> resps(2);
    ASSERT_TRUE(cha.SearchBatch(reqs, resps).ok());
    ASSERT_TRUE(resps[0].status.ok() && resps[1].status.ok());
    const bool found_x = !resps[0].ids.empty();
    const bool found_y = !resps[1].ids.empty();
    ASSERT_NE(found_x, found_y)
        << "round " << round << ": batch mixed two epochs (x=" << found_x
        << " y=" << found_y << ")";
    saw_x += found_x;
    saw_y += found_y;
    if (saw_x == 0 || saw_y == 0) {
      SleepFor(std::chrono::microseconds(50));  // let the mutator run
    }
  }
  stop.store(true);
  mutator.join();
  // The toggle actually ran: both phases were observed.
  EXPECT_GT(saw_x, 0u);
  EXPECT_GT(saw_y, 0u);
}

TEST(ChurnStress, ManyReadersOneMutator) {
  auto codes = RandomCodes(400, 48, /*seed=*/61, /*clusters=*/8);
  auto queries = RandomCodes(16, 48, /*seed=*/67, /*clusters=*/8);
  ConcurrentHAIndexOptions opts;
  opts.rebuild_threshold = 64;  // exercise rebuild-during-reads too
  ConcurrentHAIndex cha(opts);
  ASSERT_TRUE(cha.Build(codes).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mutations{0};
  Thread mutator([&] {
    Rng rng(71);
    TupleId next = 90000;
    std::vector<std::pair<TupleId, BinaryCode>> mine;
    while (!stop.load()) {
      if (mine.empty() || rng.Bernoulli(0.6)) {
        const TupleId id = next++;
        const BinaryCode& code = codes[id % codes.size()];
        ASSERT_TRUE(cha.Insert(id, code).ok());
        mine.emplace_back(id, code);
      } else {
        auto& victim = mine[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<int64_t>(mine.size()) - 1))];
        ASSERT_TRUE(cha.Delete(victim.first, victim.second).ok());
        victim = mine.back();
        mine.pop_back();
      }
      ++mutations;
    }
  });

  constexpr std::size_t kReaders = 4;
  std::atomic<uint64_t> reads{0};
  {
    std::vector<Thread> readers;
    for (std::size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Rng rng(100 + r);
        for (int round = 0; round < 120; ++round) {
          // Every read pins some epoch; its answers must match brute
          // force over that same epoch's frozen corpus.
          ConcurrentHAIndex::SnapshotPtr snap = cha.Pin();
          const auto frozen = snap->ExportTuples();
          const auto& q = queries[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<int64_t>(queries.size()) - 1))];
          auto got = snap->Search(q, 4);
          ASSERT_TRUE(got.ok());
          ASSERT_EQ(Sorted(*got), BruteForce(frozen, q, 4))
              << "reader " << r << " round " << round << " epoch "
              << snap->epoch();
          // And the live surface stays well-formed under the same race.
          QueryRequest req = QueryRequest::Knn(q, 5);
          QueryResponse resp;
          ASSERT_TRUE(cha.KnnBatch({&req, 1}, {&resp, 1}).ok());
          ASSERT_TRUE(resp.status.ok());
          ++reads;
        }
      });
    }
    for (Thread& t : readers) t.join();
  }
  stop.store(true);
  mutator.join();

  EXPECT_EQ(reads.load(), kReaders * 120u);
  EXPECT_GT(mutations.load(), 0u);
  // Quiescent now: one more publish sweeps every retired snapshot.
  ASSERT_TRUE(cha.Publish().ok());
  EXPECT_EQ(cha.retired_snapshots(), 0u);
}

// ---------------------------------------------------------------------------
// DynamicHAIndex SwapRemove-era invariant audit (satellite of the epoch
// work: the snapshot layer trusts the base structure it freezes).
// ---------------------------------------------------------------------------

TEST(DynamicHAAudit, CheckConsistencyCleanAfterBuild) {
  auto codes = RandomCodes(200, 48, /*seed=*/73, /*clusters=*/8);
  DynamicHAIndex dha;
  ASSERT_TRUE(dha.Build(codes).ok());
  EXPECT_TRUE(dha.CheckConsistency().ok());
  EXPECT_EQ(dha.ExportTuples().size(), codes.size());
}

TEST(DynamicHAAudit, CheckConsistencyDifferentialChurn) {
  // Random insert/delete churn with periodic audits: the word-stride
  // buffer mirror, its bit-plane transpose, the forest frequencies and
  // the size accounting must agree after every SwapRemove-era mutation
  // pattern (delete-from-buffer, delete-from-leaf, flush, re-insert).
  auto pool = RandomCodes(256, 48, /*seed=*/79, /*clusters=*/8);
  DynamicHAIndexOptions dopts;
  dopts.insert_flush_threshold = 16;  // force frequent flushes
  DynamicHAIndex dha(dopts);
  std::vector<BinaryCode> initial(pool.begin(), pool.begin() + 64);
  ASSERT_TRUE(dha.Build(initial).ok());

  std::map<TupleId, BinaryCode> live;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    live.emplace(static_cast<TupleId>(i), initial[i]);
  }
  Rng rng(83);
  TupleId next_id = 5000;
  for (std::size_t step = 0; step < 400; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const TupleId id = next_id++;
      const BinaryCode& code = pool[id % pool.size()];
      ASSERT_TRUE(dha.Insert(id, code).ok());
      live.emplace(id, code);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(
                           0, static_cast<int64_t>(live.size()) - 1)));
      ASSERT_TRUE(dha.Delete(it->first, it->second).ok());
      live.erase(it);
    }
    if (step % 20 == 0) {
      ASSERT_TRUE(dha.CheckConsistency().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(dha.CheckConsistency().ok());

  // ExportTuples is exactly the live corpus.
  auto exported = dha.ExportTuples();
  ASSERT_EQ(exported.size(), live.size());
  for (const auto& [id, code] : exported) {
    auto it = live.find(id);
    ASSERT_TRUE(it != live.end()) << "exported unknown id " << id;
    EXPECT_TRUE(it->second == code) << "id " << id;
  }
}

}  // namespace
}  // namespace hamming

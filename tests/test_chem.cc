#include "chem/tanimoto.h"

#include <gtest/gtest.h>

#include "index/yao_index.h"
#include "index/linear_scan.h"
#include "test_util.h"

namespace hamming {
namespace {

TEST(Tanimoto, KnownSimilarities) {
  using chem::TanimotoSimilarity;
  auto a = BinaryCode::FromString("11110000").ValueOrDie();
  auto b = BinaryCode::FromString("11000000").ValueOrDie();
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, b), 2.0 / 4.0);
  auto zero = BinaryCode::FromString("00000000").ValueOrDie();
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, zero), 0.0);
}

TEST(Tanimoto, HammingBoundIsValid) {
  // For every random pair: T >= t must imply distance <= bound(t).
  Rng rng(5);
  auto fps = chem::GenerateFingerprints(200, 166, 8, 3);
  for (int trial = 0; trial < 500; ++trial) {
    const auto& a = fps[static_cast<std::size_t>(rng.UniformInt(0, 199))];
    const auto& b = fps[static_cast<std::size_t>(rng.UniformInt(0, 199))];
    double t = chem::TanimotoSimilarity(a, b);
    if (t <= 0.0) continue;
    std::size_t bound =
        chem::TanimotoHammingBound(t, a.PopCount(), b.PopCount());
    EXPECT_LE(a.Distance(b), bound);
  }
}

TEST(Tanimoto, SearcherMatchesLinearScan) {
  auto fps = chem::GenerateFingerprints(1500, 166, 16, 7);
  auto searcher = chem::TanimotoSearcher::Build(fps).ValueOrDie();
  EXPECT_GT(searcher.num_buckets(), 1u);
  Rng rng(9);
  for (double t : {0.95, 0.85, 0.7}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto& q = fps[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(fps.size()) - 1))];
      auto got = searcher.Search(q, t).ValueOrDie();
      std::vector<TupleId> expect;
      for (std::size_t i = 0; i < fps.size(); ++i) {
        if (chem::TanimotoSimilarity(q, fps[i]) >= t - 1e-12) {
          expect.push_back(static_cast<TupleId>(i));
        }
      }
      EXPECT_EQ(got, expect) << "t=" << t;
    }
  }
}

TEST(Tanimoto, ThresholdValidation) {
  auto fps = chem::GenerateFingerprints(10);
  auto searcher = chem::TanimotoSearcher::Build(fps).ValueOrDie();
  EXPECT_FALSE(searcher.Search(fps[0], 0.0).ok());
  EXPECT_FALSE(searcher.Search(fps[0], 1.5).ok());
  auto got = searcher.Search(fps[0], 1.0).ValueOrDie();
  EXPECT_FALSE(got.empty());  // the query itself qualifies
}

TEST(Tanimoto, FingerprintGeneratorShape) {
  auto fps = chem::GenerateFingerprints(100, 166, 8, 1);
  ASSERT_EQ(fps.size(), 100u);
  for (const auto& fp : fps) {
    EXPECT_EQ(fp.size(), 166u);
    EXPECT_GT(fp.PopCount(), 5u);
    EXPECT_LT(fp.PopCount(), 100u);
  }
}

TEST(YaoIndexTest, MatchesLinearScanAtH1) {
  auto codes = testutil::RandomCodes(800, 32, /*seed=*/3, /*clusters=*/8,
                                     /*flip_bits=*/2);
  YaoIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  for (std::size_t i = 0; i < codes.size(); i += 31) {
    for (std::size_t h : {0u, 1u}) {
      EXPECT_EQ(Sorted(*index.Search(codes[i], h)),
                Sorted(*truth.Search(codes[i], h)));
    }
    // Flipped-bit query exercises the other-half match path.
    BinaryCode q = codes[i];
    q.FlipBit(i % 32);
    EXPECT_EQ(Sorted(*index.Search(q, 1)), Sorted(*truth.Search(q, 1)));
  }
}

TEST(YaoIndexTest, RejectsLargerThresholds) {
  auto codes = testutil::RandomCodes(10, 32);
  YaoIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  EXPECT_FALSE(index.Search(codes[0], 2).ok());
}

TEST(YaoIndexTest, DynamicUpdates) {
  auto codes = testutil::RandomCodes(100, 32, /*seed=*/5);
  YaoIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  ASSERT_TRUE(index.Delete(42, codes[42]).ok());
  auto got = index.Search(codes[42], 0).ValueOrDie();
  for (TupleId id : got) EXPECT_NE(id, 42u);
  ASSERT_TRUE(index.Insert(42, codes[42]).ok());
  EXPECT_EQ(index.size(), 100u);
  EXPECT_GT(index.Memory().total(), 0u);
}

TEST(YaoIndexTest, OddLengthCodes) {
  auto codes = testutil::RandomCodes(100, 33, /*seed=*/7);
  YaoIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  for (std::size_t i = 0; i < 100; i += 9) {
    EXPECT_EQ(Sorted(*index.Search(codes[i], 1)),
              Sorted(*truth.Search(codes[i], 1)));
  }
}

}  // namespace
}  // namespace hamming

// End-to-end integration sweeps across module boundaries: the full
// feature-vectors -> hash -> index -> query pipeline, the distributed
// select across partition counts, and persistence in the middle of a
// workflow.
#include <gtest/gtest.h>

#include <cstdio>

#include "dataset/generators.h"
#include "dataset/scale.h"
#include "hashing/spectral_hashing.h"
#include "index/linear_scan.h"
#include "mrjoin/mrselect.h"
#include "ops/operators.h"
#include "storage/persist.h"
#include "test_util.h"

namespace hamming {
namespace {

// ---------------------------------------------------------------------------
// Distributed select across partition counts.
// ---------------------------------------------------------------------------

class MrSelectPartitionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MrSelectPartitionTest, PartitionCountNeverChangesAnswers) {
  const std::size_t partitions = GetParam();
  FloatMatrix data = GenerateDataset(DatasetKind::kNusWide, 400,
                                     {.num_clusters = 8, .seed = 4});
  FloatMatrix queries = GenerateQueries(DatasetKind::kNusWide, 5,
                                        {.num_clusters = 8, .seed = 4});
  mr::Cluster cluster({partitions, 2, 4});
  mrjoin::MrSelectOptions opts;
  opts.num_partitions = partitions;
  auto result = mrjoin::RunMrSelect(data, queries, opts, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();

  // Reference run with one partition.
  mr::Cluster ref_cluster({1, 2, 2});
  mrjoin::MrSelectOptions ref_opts = opts;
  ref_opts.num_partitions = 1;
  auto ref = mrjoin::RunMrSelect(data, queries, ref_opts, &ref_cluster);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(result->matches, ref->matches);
}

INSTANTIATE_TEST_SUITE_P(Partitions, MrSelectPartitionTest,
                         ::testing::Values(1u, 2u, 5u, 16u));

// ---------------------------------------------------------------------------
// Full pipeline: generate -> scale -> hash -> table -> operators.
// ---------------------------------------------------------------------------

TEST(Integration, ScaledDatasetThroughFullPipeline) {
  auto base = GenerateDataset(DatasetKind::kDbpedia, 150);
  auto scaled = ScaleDataset(base, 3);
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  auto hash = std::shared_ptr<const SimilarityHash>(
      SpectralHashing::Train(base, hopts).ValueOrDie().release());
  auto table =
      HammingTable::FromFeatures(std::move(scaled), hash).ValueOrDie();
  EXPECT_EQ(table.size(), 450u);

  // Every base row's scaled copy of itself is its own h=0 match.
  auto q = table.codes()[10];
  auto got = ops::HammingSelect(table, q, 0, {}).ValueOrDie();
  bool found = false;
  for (TupleId id : got) {
    if (id == 10) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Integration, PersistenceMidWorkflow) {
  // Build, save, reload, continue inserting, query — the index must
  // behave as if never serialized.
  auto codes = testutil::RandomCodes(300, 32, /*seed=*/21, /*clusters=*/8);
  DynamicHAIndex index;
  std::vector<BinaryCode> first(codes.begin(), codes.begin() + 200);
  ASSERT_TRUE(index.Build(first).ok());
  const char* path = "/tmp/hammingdb_test_midflow.hdb";
  ASSERT_TRUE(storage::SaveIndex(path, index).ok());
  auto reloaded = storage::LoadIndex(path).ValueOrDie();
  std::remove(path);
  for (std::size_t i = 200; i < 300; ++i) {
    ASSERT_TRUE(
        reloaded.Insert(static_cast<TupleId>(i), codes[i]).ok());
  }
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto queries = testutil::RandomCodes(10, 32, /*seed=*/22, /*clusters=*/8);
  for (const auto& q : queries) {
    EXPECT_EQ(Sorted(*reloaded.Search(q, 3)), Sorted(*truth.Search(q, 3)));
  }
}

// ---------------------------------------------------------------------------
// Code-length sweep through the whole centralized stack.
// ---------------------------------------------------------------------------

class CodeLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodeLengthTest, EndToEndExactAtEveryCodeLength) {
  const std::size_t bits = GetParam();
  auto data = GenerateDataset(DatasetKind::kNusWide, 300,
                              {.num_clusters = 8, .seed = 6});
  SpectralHashingOptions hopts;
  hopts.code_bits = bits;
  auto hash = std::shared_ptr<const SimilarityHash>(
      SpectralHashing::Train(data, hopts).ValueOrDie().release());
  auto table =
      HammingTable::FromFeatures(std::move(data), hash).ValueOrDie();
  EXPECT_EQ(table.code_bits(), bits);
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(table.codes()).ok());
  for (std::size_t qi = 0; qi < 5; ++qi) {
    const auto& q = table.codes()[qi * 31];
    auto got = ops::HammingSelect(table, q, 3, {}).ValueOrDie();
    EXPECT_EQ(Sorted(got), Sorted(*truth.Search(q, 3))) << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CodeLengthTest,
                         ::testing::Values(16u, 32u, 48u, 64u, 96u, 128u));

}  // namespace
}  // namespace hamming

// Shared helpers for the hamming-db test suite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "code/binary_code.h"
#include "index/dynamic_ha_index.h"
#include "index/hamming_index.h"
#include "index/hengine.h"
#include "index/hmsearch.h"
#include "index/linear_scan.h"
#include "index/multi_hash_table.h"
#include "index/radix_tree.h"
#include "index/static_ha_index.h"

namespace hamming::testutil {

/// \brief `n` random codes of `bits` bits. When cluster > 1, codes are
/// generated around cluster centers with few flipped bits so the data has
/// the clustered structure hashed real datasets exhibit.
inline std::vector<BinaryCode> RandomCodes(std::size_t n, std::size_t bits,
                                           uint64_t seed = 42,
                                           std::size_t clusters = 1,
                                           std::size_t flip_bits = 4) {
  Rng rng(seed);
  std::vector<BinaryCode> out;
  out.reserve(n);
  if (clusters <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      BinaryCode c(bits);
      for (std::size_t b = 0; b < bits; ++b) {
        if (rng.Bernoulli(0.5)) c.SetBit(b, true);
      }
      out.push_back(c);
    }
    return out;
  }
  std::vector<BinaryCode> centers = RandomCodes(clusters, bits, seed ^ 0x77);
  for (std::size_t i = 0; i < n; ++i) {
    BinaryCode c = centers[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(clusters) - 1))];
    std::size_t flips = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(flip_bits)));
    for (std::size_t f = 0; f < flips; ++f) {
      c.FlipBit(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bits) - 1)));
    }
    out.push_back(c);
  }
  return out;
}

/// \brief Names of all index implementations under test.
inline std::vector<std::string> AllIndexNames() {
  return {"linear", "mh4",  "mh10", "hengine", "hmsearch",
          "radix",  "sha8", "sha4", "dha",     "dha-w4",
          "dha-w32"};
}

/// \brief Factory keyed by name; h_max sizes the signature indexes.
inline std::unique_ptr<HammingIndex> MakeIndex(const std::string& name,
                                               std::size_t h_max = 8) {
  if (name == "linear") return std::make_unique<LinearScanIndex>();
  if (name == "mh4") return std::make_unique<MultiHashTableIndex>(4);
  if (name == "mh10") return std::make_unique<MultiHashTableIndex>(10);
  if (name == "hengine") return std::make_unique<HEngineIndex>(h_max);
  if (name == "hmsearch") return std::make_unique<HmSearchIndex>(h_max);
  if (name == "radix") return std::make_unique<RadixTreeIndex>();
  if (name == "sha8") {
    return std::make_unique<StaticHAIndex>(StaticHAIndexOptions{8});
  }
  if (name == "sha4") {
    return std::make_unique<StaticHAIndex>(StaticHAIndexOptions{4});
  }
  if (name == "dha") return std::make_unique<DynamicHAIndex>();
  if (name == "dha-w4") {
    DynamicHAIndexOptions o;
    o.window = 4;
    return std::make_unique<DynamicHAIndex>(o);
  }
  if (name == "dha-w32") {
    DynamicHAIndexOptions o;
    o.window = 32;
    return std::make_unique<DynamicHAIndex>(o);
  }
  return nullptr;
}

/// \brief The Table 2a example codes from the paper.
inline std::vector<BinaryCode> PaperTableS() {
  const char* rows[] = {"001001010", "001011101", "011001100", "101001010",
                        "101110110", "101011101", "101101010", "111001100"};
  std::vector<BinaryCode> out;
  for (const char* r : rows) {
    out.push_back(BinaryCode::FromString(r).ValueOrDie());
  }
  return out;
}

/// \brief The Table 2b example codes (dataset R).
inline std::vector<BinaryCode> PaperTableR() {
  const char* rows[] = {"101100010", "101010010", "110000010"};
  std::vector<BinaryCode> out;
  for (const char* r : rows) {
    out.push_back(BinaryCode::FromString(r).ValueOrDie());
  }
  return out;
}

}  // namespace hamming::testutil

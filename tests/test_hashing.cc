#include <gtest/gtest.h>

#include <cmath>

#include "dataset/generators.h"
#include "hashing/eigen.h"
#include "hashing/simhash.h"
#include "hashing/spectral_hashing.h"
#include "hashing/zorder.h"

namespace hamming {
namespace {

// ---------------------------------------------------------------------------
// Jacobi eigensolver
// ---------------------------------------------------------------------------

TEST(Eigen, DiagonalMatrix) {
  FloatMatrix a(3, 3);
  a.At(0, 0) = 3.0;
  a.At(1, 1) = 1.0;
  a.At(2, 2) = 2.0;
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1, eigenvectors (1,1) and (1,-1).
  FloatMatrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 2.0;
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  auto v0 = eig.eigenvectors.Row(0);
  EXPECT_NEAR(std::abs(v0[0]), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0[0], v0[1], 1e-8);
}

TEST(Eigen, ReconstructsMatrix) {
  // A = V^T diag(w) V must reproduce the input.
  Rng rng(3);
  const std::size_t n = 8;
  FloatMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double v = rng.Gaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eig.eigenvectors.At(k, i) * eig.eigenvalues[k] *
               eig.eigenvectors.At(k, j);
      }
      EXPECT_NEAR(sum, a.At(i, j), 1e-8);
    }
  }
}

TEST(Eigen, EigenvectorsAreOrthonormal) {
  Rng rng(5);
  const std::size_t n = 10;
  FloatMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double v = rng.Gaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        dot += eig.eigenvectors.At(i, k) * eig.eigenvectors.At(j, k);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Eigen, RejectsNonSquare) {
  FloatMatrix a(2, 3);
  EigenDecomposition eig;
  EXPECT_TRUE(JacobiEigenSymmetric(a, &eig).IsInvalidArgument());
}

TEST(Eigen, CovarianceOfKnownData) {
  // Two perfectly correlated columns.
  FloatMatrix data(3, 2);
  data.At(0, 0) = 1.0;
  data.At(0, 1) = 2.0;
  data.At(1, 0) = 2.0;
  data.At(1, 1) = 4.0;
  data.At(2, 0) = 3.0;
  data.At(2, 1) = 6.0;
  auto cov = CovarianceMatrix(data);
  EXPECT_NEAR(cov.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov.At(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov.At(1, 1), 4.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Spectral Hashing
// ---------------------------------------------------------------------------

TEST(SpectralHashing, TrainValidation) {
  FloatMatrix tiny(1, 4);
  SpectralHashingOptions opts;
  EXPECT_FALSE(SpectralHashing::Train(tiny, opts).ok());
  FloatMatrix data = GenerateDataset(DatasetKind::kNusWide, 50);
  opts.code_bits = 0;
  EXPECT_FALSE(SpectralHashing::Train(data, opts).ok());
}

TEST(SpectralHashing, ProducesRequestedCodeLength) {
  auto data = GenerateDataset(DatasetKind::kNusWide, 200);
  for (std::size_t bits : {16u, 32u, 64u}) {
    SpectralHashingOptions opts;
    opts.code_bits = bits;
    auto hash = SpectralHashing::Train(data, opts);
    ASSERT_TRUE(hash.ok());
    EXPECT_EQ((*hash)->code_bits(), bits);
    BinaryCode code = (*hash)->Hash(data.Row(0));
    EXPECT_EQ(code.size(), bits);
  }
}

TEST(SpectralHashing, PreservesLocality) {
  // The defining property: nearby feature vectors get nearby codes.
  auto data = GenerateDataset(DatasetKind::kNusWide, 400);
  SpectralHashingOptions opts;
  opts.code_bits = 32;
  auto hash = SpectralHashing::Train(data, opts).ValueOrDie();

  Rng rng(7);
  double near_dist = 0.0, far_dist = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::size_t i = static_cast<std::size_t>(rng.UniformInt(0, 399));
    // A small perturbation of row i vs an unrelated row.
    std::vector<double> nearby(data.Row(i).begin(), data.Row(i).end());
    for (double& v : nearby) v += rng.Gaussian(0.0, 1e-4);
    std::size_t j = static_cast<std::size_t>(rng.UniformInt(0, 399));
    BinaryCode ci = hash->Hash(data.Row(i));
    near_dist += static_cast<double>(ci.Distance(hash->Hash(nearby)));
    far_dist += static_cast<double>(ci.Distance(hash->Hash(data.Row(j))));
  }
  EXPECT_LT(near_dist / trials, 2.0);
  EXPECT_GT(far_dist / trials, near_dist / trials * 2.0);
}

TEST(SpectralHashing, DeterministicAndSerializable) {
  auto data = GenerateDataset(DatasetKind::kDbpedia, 100);
  SpectralHashingOptions opts;
  opts.code_bits = 32;
  auto hash = SpectralHashing::Train(data, opts).ValueOrDie();
  BufferWriter w;
  hash->Serialize(&w);
  BufferReader r(w.buffer());
  auto back = SpectralHashing::Deserialize(&r).ValueOrDie();
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hash->Hash(data.Row(i)), back->Hash(data.Row(i)));
  }
}

TEST(SpectralHashing, CodesAreNotDegenerate) {
  // Bits must actually vary across the dataset (no constant code).
  auto data = GenerateDataset(DatasetKind::kFlickr, 150);
  SpectralHashingOptions opts;
  opts.code_bits = 32;
  auto hash = SpectralHashing::Train(data, opts).ValueOrDie();
  auto codes = hash->HashAll(data);
  std::size_t distinct = 0;
  for (std::size_t i = 1; i < codes.size(); ++i) {
    if (codes[i] != codes[0]) ++distinct;
  }
  EXPECT_GT(distinct, codes.size() / 4);
}

// ---------------------------------------------------------------------------
// SimHash
// ---------------------------------------------------------------------------

TEST(SimHash, CreateValidation) {
  EXPECT_FALSE(SimHash::Create(0, 32).ok());
  EXPECT_FALSE(SimHash::Create(8, 0).ok());
  EXPECT_FALSE(SimHash::Create(8, 1024).ok());
}

TEST(SimHash, AngularLocality) {
  // Pr[bit differs] = angle/pi: scaled copies of a vector collide.
  auto hash = SimHash::Create(16, 64, /*seed=*/5).ValueOrDie();
  Rng rng(9);
  std::vector<double> v(16);
  for (double& x : v) x = rng.Gaussian();
  std::vector<double> scaled(v);
  for (double& x : scaled) x *= 3.7;
  EXPECT_EQ(hash->Hash(v), hash->Hash(scaled));
  std::vector<double> negated(v);
  for (double& x : negated) x = -x;
  EXPECT_EQ(hash->Hash(v).Distance(hash->Hash(negated)), 64u);
}

TEST(SimHash, SerializationRoundTrip) {
  auto hash = SimHash::Create(8, 32, /*seed=*/11).ValueOrDie();
  BufferWriter w;
  hash->Serialize(&w);
  BufferReader r(w.buffer());
  auto back = SimHash::Deserialize(&r).ValueOrDie();
  Rng rng(13);
  std::vector<double> v(8);
  for (double& x : v) x = rng.Gaussian();
  EXPECT_EQ(hash->Hash(v), back->Hash(v));
}

// ---------------------------------------------------------------------------
// Z-order encoder
// ---------------------------------------------------------------------------

TEST(ZOrder, Validation) {
  EXPECT_FALSE(ZOrderEncoder::Create(0, 4, 8).ok());
  EXPECT_FALSE(ZOrderEncoder::Create(8, 65, 8).ok());
}

TEST(ZOrder, CodeLengthAndDeterminism) {
  auto enc = ZOrderEncoder::Create(10, 4, 8, /*seed=*/3).ValueOrDie();
  auto data = GenerateDataset(DatasetKind::kNusWide, 50);
  FloatMatrix proj(50, 10);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 10; ++j) proj.At(i, j) = data.At(i, j);
  }
  enc.Fit(proj);
  BinaryCode a = enc.Encode(proj.Row(0));
  BinaryCode b = enc.Encode(proj.Row(0));
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);
}

TEST(ZOrder, NearbyPointsShareHighOrderBits) {
  auto enc = ZOrderEncoder::Create(4, 4, 8, /*seed=*/3).ValueOrDie();
  FloatMatrix fit(100, 4);
  Rng rng(15);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 4; ++j) fit.At(i, j) = rng.UniformReal(0, 1);
  }
  enc.Fit(fit);
  // Identical points encode identically; distant points differ.
  std::vector<double> p{0.2, 0.4, 0.6, 0.8};
  std::vector<double> q{0.2, 0.4, 0.6, 0.8};
  EXPECT_EQ(enc.Encode(p), enc.Encode(q));
}

}  // namespace
}  // namespace hamming

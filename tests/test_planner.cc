#include "ops/planner.h"

#include <gtest/gtest.h>

#include "join/centralized_join.h"
#include "test_util.h"

namespace hamming::ops {
namespace {

HammingTable MakeTable(std::size_t n, std::size_t clusters,
                       std::size_t flip_bits = 4, uint64_t seed = 3) {
  return HammingTable::FromCodes(
             testutil::RandomCodes(n, 32, seed, clusters, flip_bits))
      .ValueOrDie();
}

TEST(TableStats, SelectivityIsMonotoneInH) {
  auto table = MakeTable(2000, 8);
  auto stats = TableStats::Collect(table);
  double prev = 0.0;
  for (std::size_t h = 0; h <= 32; ++h) {
    double s = stats.EstimateSelectivity(h);
    EXPECT_GE(s, prev);
    EXPECT_LE(s, 1.0);
    prev = s;
  }
  EXPECT_NEAR(stats.EstimateSelectivity(32), 1.0, 1e-9);
}

TEST(TableStats, ClusteredDataHasHigherSmallHSelectivity) {
  auto clustered = TableStats::Collect(MakeTable(2000, 4, 2));
  auto dispersed = TableStats::Collect(MakeTable(2000, 1));
  EXPECT_GT(clustered.EstimateSelectivity(4),
            dispersed.EstimateSelectivity(4));
}

TEST(TableStats, DistinctRatioDetectsDuplication) {
  // 2000 tuples drawn from only 4 centers with <=1 flip: few distinct.
  auto dup = TableStats::Collect(MakeTable(2000, 4, 1));
  auto uniq = TableStats::Collect(MakeTable(2000, 1));
  EXPECT_LT(dup.distinct_ratio(), 0.2);
  EXPECT_GT(uniq.distinct_ratio(), 0.9);
}

TEST(TableStats, EmptyTable) {
  auto table = HammingTable::FromCodes({}).ValueOrDie();
  auto stats = TableStats::Collect(table);
  EXPECT_EQ(stats.num_tuples(), 0u);
  EXPECT_EQ(stats.EstimateSelectivity(3), 0.0);
}

TEST(Planner, SingleQueryPrefersScan) {
  auto stats = TableStats::Collect(MakeTable(5000, 8));
  auto choice = ChooseSelectPlan(stats, /*num_queries=*/1, /*h=*/3);
  EXPECT_EQ(choice.plan, JoinPlan::kNestedLoops);
  EXPECT_FALSE(choice.reason.empty());
}

TEST(Planner, LargeBatchPrefersIndex) {
  auto stats = TableStats::Collect(MakeTable(5000, 8));
  auto choice = ChooseSelectPlan(stats, /*num_queries=*/1000, /*h=*/3);
  EXPECT_EQ(choice.plan, JoinPlan::kIndexProbe);
}

TEST(Planner, DenseBallFallsBackToScan) {
  // h = 32 covers everything: selectivity 1, index pruning buys nothing.
  auto stats = TableStats::Collect(MakeTable(5000, 8));
  auto choice = ChooseSelectPlan(stats, /*num_queries=*/1000, /*h=*/32);
  EXPECT_EQ(choice.plan, JoinPlan::kNestedLoops);
  EXPECT_NEAR(choice.estimated_selectivity, 1.0, 1e-9);
}

TEST(Planner, JoinOfClusteredSidesPrefersDualTree) {
  auto r = TableStats::Collect(MakeTable(4000, 8, 3));
  auto s = TableStats::Collect(MakeTable(4000, 8, 3, /*seed=*/7));
  auto choice = ChooseJoinPlan(r, s, 3);
  EXPECT_EQ(choice.plan, JoinPlan::kDualTree);
}

TEST(Planner, JoinWithTinySidePrefersProbe) {
  auto r = TableStats::Collect(MakeTable(100, 4));
  auto s = TableStats::Collect(MakeTable(4000, 8));
  auto choice = ChooseJoinPlan(r, s, 3);
  EXPECT_EQ(choice.plan, JoinPlan::kIndexProbe);
}

TEST(Planner, ChosenPlansExecuteAndAgree) {
  // End-to-end: whatever the planner picks must produce the exact result.
  auto r = MakeTable(600, 8, 3, /*seed=*/11);
  auto s = MakeTable(900, 8, 3, /*seed=*/12);
  auto r_stats = TableStats::Collect(r);
  auto s_stats = TableStats::Collect(s);
  auto choice = ChooseJoinPlan(r_stats, s_stats, 3);
  OperatorOptions opts;
  opts.plan = choice.plan;
  auto chosen = HammingJoin(r, s, 3, opts).ValueOrDie();
  OperatorOptions nested;
  nested.plan = JoinPlan::kNestedLoops;
  auto truth = HammingJoin(r, s, 3, nested).ValueOrDie();
  NormalizePairs(&chosen);
  NormalizePairs(&truth);
  EXPECT_EQ(chosen, truth);
}

TEST(Planner, NonSelectiveJoinPrefersScan) {
  auto r = TableStats::Collect(MakeTable(2000, 4, 1));
  auto s = TableStats::Collect(MakeTable(2000, 4, 1));
  // Same 4 centers, tiny perturbation: at h = 32 everything joins.
  auto choice = ChooseJoinPlan(r, s, 32);
  EXPECT_EQ(choice.plan, JoinPlan::kNestedLoops);
}

}  // namespace
}  // namespace hamming::ops

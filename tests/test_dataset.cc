#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "code/gray.h"
#include "dataset/generators.h"
#include "dataset/matrix.h"
#include "dataset/pivots.h"
#include "dataset/sampling.h"
#include "dataset/scale.h"
#include "test_util.h"

namespace hamming {
namespace {

TEST(FloatMatrix, BasicAccessors) {
  FloatMatrix m(3, 2);
  m.At(0, 0) = 1.0;
  m.At(2, 1) = -4.5;
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.Row(2)[1], -4.5);
  EXPECT_EQ(m.Row(0)[0], 1.0);
  EXPECT_EQ(m.Row(1)[0], 0.0);
}

TEST(FloatMatrix, AppendRowChecksWidth) {
  FloatMatrix m;
  std::vector<double> r1{1.0, 2.0};
  std::vector<double> r2{3.0};
  ASSERT_TRUE(m.AppendRow(r1).ok());
  EXPECT_TRUE(m.AppendRow(r2).IsInvalidArgument());
  EXPECT_EQ(m.rows(), 1u);
}

TEST(FloatMatrix, GatherRows) {
  FloatMatrix m(4, 1);
  for (std::size_t i = 0; i < 4; ++i) m.At(i, 0) = static_cast<double>(i);
  auto g = m.GatherRows({3, 1});
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.At(0, 0), 3.0);
  EXPECT_EQ(g.At(1, 0), 1.0);
}

TEST(FloatMatrix, ColumnMeansAndDistances) {
  FloatMatrix m(2, 2);
  m.At(0, 0) = 1.0;
  m.At(0, 1) = 2.0;
  m.At(1, 0) = 3.0;
  m.At(1, 1) = 6.0;
  auto mean = m.ColumnMeans();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
  EXPECT_DOUBLE_EQ(FloatMatrix::SquaredL2(m.Row(0), m.Row(1)), 4.0 + 16.0);
  EXPECT_DOUBLE_EQ(FloatMatrix::L2(m.Row(0), m.Row(1)), std::sqrt(20.0));
}

TEST(Generators, DimensionsMatchPaper) {
  EXPECT_EQ(DatasetDimension(DatasetKind::kNusWide), 225u);
  EXPECT_EQ(DatasetDimension(DatasetKind::kFlickr), 512u);
  EXPECT_EQ(DatasetDimension(DatasetKind::kDbpedia), 250u);
}

TEST(Generators, ShapesAndDeterminism) {
  for (auto kind : {DatasetKind::kNusWide, DatasetKind::kFlickr,
                    DatasetKind::kDbpedia}) {
    auto a = GenerateDataset(kind, 50);
    auto b = GenerateDataset(kind, 50);
    EXPECT_EQ(a.rows(), 50u);
    EXPECT_EQ(a.cols(), DatasetDimension(kind));
    EXPECT_EQ(a.data(), b.data()) << "same seed must reproduce";
  }
}

TEST(Generators, QueriesDifferFromDataset) {
  auto data = GenerateDataset(DatasetKind::kNusWide, 20);
  auto queries = GenerateQueries(DatasetKind::kNusWide, 20);
  EXPECT_NE(data.data(), queries.data());
}

TEST(Generators, DbpediaRowsAreSimplexVectors) {
  auto data = GenerateDataset(DatasetKind::kDbpedia, 30);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    double sum = 0.0;
    for (double v : data.Row(i)) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Generators, MixtureIsClustered) {
  // Within-cluster spread must be visible: nearest-neighbour distances
  // should be much smaller than the average pairwise distance.
  auto data = GenerateDataset(DatasetKind::kNusWide, 200);
  double nn_sum = 0.0, all_sum = 0.0;
  std::size_t all_cnt = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < data.rows(); ++j) {
      if (i == j) continue;
      double d = FloatMatrix::SquaredL2(data.Row(i), data.Row(j));
      best = std::min(best, d);
      all_sum += d;
      ++all_cnt;
    }
    nn_sum += best;
  }
  EXPECT_LT(nn_sum / 100.0, 0.3 * all_sum / static_cast<double>(all_cnt));
}

TEST(Scale, GrowsByFactorAndKeepsBasePrefix) {
  auto base = GenerateDataset(DatasetKind::kNusWide, 40);
  auto scaled = ScaleDataset(base, 5);
  EXPECT_EQ(scaled.rows(), 200u);
  for (std::size_t i = 0; i < base.rows(); ++i) {
    for (std::size_t j = 0; j < base.cols(); ++j) {
      EXPECT_EQ(scaled.At(i, j), base.At(i, j));
    }
  }
}

TEST(Scale, FactorOneIsIdentity) {
  auto base = GenerateDataset(DatasetKind::kDbpedia, 10);
  auto scaled = ScaleDataset(base, 1);
  EXPECT_EQ(scaled.rows(), base.rows());
  EXPECT_EQ(scaled.data(), base.data());
}

TEST(Scale, DerivedValuesComeFromOriginalColumns) {
  // Every value in a scaled copy must exist in the original column's
  // value set (the successor scheme never invents values).
  auto base = GenerateDataset(DatasetKind::kNusWide, 25);
  auto scaled = ScaleDataset(base, 3);
  for (std::size_t j = 0; j < base.cols(); ++j) {
    std::set<double> pool;
    for (std::size_t i = 0; i < base.rows(); ++i) pool.insert(base.At(i, j));
    for (std::size_t i = base.rows(); i < scaled.rows(); ++i) {
      EXPECT_TRUE(pool.count(scaled.At(i, j)))
          << "row " << i << " col " << j;
    }
  }
}

TEST(Sampling, ReservoirSizeAndRange) {
  Rng rng(3);
  auto s = ReservoirSampleIndices(1000, 100, &rng);
  EXPECT_EQ(s.size(), 100u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 100u) << "sample must not repeat indices";
  for (std::size_t idx : s) EXPECT_LT(idx, 1000u);
}

TEST(Sampling, SmallPopulationReturnsAll) {
  Rng rng(3);
  auto s = ReservoirSampleIndices(5, 100, &rng);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Sampling, ReservoirIsApproximatelyUniform) {
  // Each of 100 items should land in a 20-slot reservoir ~200 times over
  // 1000 trials; allow generous slack.
  std::vector<int> hits(100, 0);
  Rng rng(17);
  for (int trial = 0; trial < 1000; ++trial) {
    auto s = ReservoirSampleIndices(100, 20, &rng);
    for (std::size_t idx : s) ++hits[idx];
  }
  for (int h : hits) {
    EXPECT_GT(h, 120);
    EXPECT_LT(h, 290);
  }
}

TEST(Sampling, StreamingReservoir) {
  Rng rng(21);
  Reservoir<int> res(10, &rng);
  for (int i = 0; i < 1000; ++i) res.Offer(i);
  EXPECT_EQ(res.sample().size(), 10u);
  EXPECT_EQ(res.seen(), 1000u);
}

TEST(Pivots, EquiDepthPartitioning) {
  auto codes = testutil::RandomCodes(2000, 32, /*seed=*/5, /*clusters=*/8);
  GrayPivots pivots = GrayPivots::FromSample(codes, 8);
  EXPECT_EQ(pivots.num_partitions(), 8u);
  std::vector<std::size_t> counts(8, 0);
  for (const auto& c : codes) {
    std::size_t p = pivots.PartitionOf(c);
    ASSERT_LT(p, 8u);
    ++counts[p];
  }
  // Pivots are exact quantiles of this very sample: balance within 2x.
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_GT(counts[p], 2000u / 16) << "partition " << p << " starved";
    EXPECT_LT(counts[p], 2000u / 2) << "partition " << p << " overloaded";
  }
}

TEST(Pivots, SinglePartitionTakesEverything) {
  auto codes = testutil::RandomCodes(50, 16);
  GrayPivots pivots = GrayPivots::FromSample(codes, 1);
  for (const auto& c : codes) EXPECT_EQ(pivots.PartitionOf(c), 0u);
}

TEST(Pivots, PartitionRespectsGrayOrder) {
  // A code Gray-less than another must land in the same or an earlier
  // partition.
  auto codes = testutil::RandomCodes(500, 32, /*seed=*/9);
  GrayPivots pivots = GrayPivots::FromSample(codes, 6);
  for (std::size_t i = 1; i < codes.size(); ++i) {
    const auto& a = codes[i - 1];
    const auto& b = codes[i];
    if (GrayRank(a) < GrayRank(b)) {
      EXPECT_LE(pivots.PartitionOf(a), pivots.PartitionOf(b));
    }
  }
}

TEST(Pivots, SerializationRoundTrip) {
  auto codes = testutil::RandomCodes(100, 32, /*seed=*/13);
  GrayPivots pivots = GrayPivots::FromSample(codes, 4);
  BufferWriter w;
  pivots.Serialize(&w);
  BufferReader r(w.buffer());
  GrayPivots back;
  ASSERT_TRUE(GrayPivots::Deserialize(&r, &back).ok());
  EXPECT_EQ(back.num_partitions(), pivots.num_partitions());
  for (const auto& c : codes) {
    EXPECT_EQ(back.PartitionOf(c), pivots.PartitionOf(c));
  }
}

}  // namespace
}  // namespace hamming

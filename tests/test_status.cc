#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace hamming {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad h");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad h");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad h");
}

TEST(Status, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::IndexError("x").IsIndexError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(Status, ServingCodesRenderTheirNames) {
  EXPECT_EQ(Status::ResourceExhausted("queue full").ToString(),
            "ResourceExhausted: queue full");
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
}

TEST(Status, CopyAndMoveSemantics) {
  Status st = Status::IOError("disk");
  Status copy = st;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_TRUE(st.IsIOError());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsIOError());
  Status assigned;
  assigned = moved;
  EXPECT_EQ(assigned.message(), "disk");
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::KeyError("missing"); };
  auto wrapper = [&fails]() -> Status {
    HAMMING_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsKeyError());
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::OutOfRange("too big"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(Result, AssignOrReturnMacro) {
  auto provider = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::IOError("nope");
  };
  auto consumer = [&provider](bool ok) -> Status {
    HAMMING_ASSIGN_OR_RETURN(int v, provider(ok));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(consumer(true).ok());
  EXPECT_TRUE(consumer(false).IsIOError());
}

}  // namespace
}  // namespace hamming

// Live-telemetry tests (all suites prefixed Telemetry* — the TSan stage
// of scripts/check.sh runs them under the race detector):
//
//  * TraceSampler determinism: head-sampling is a pure function of
//    (seed, id), so replays sample the same requests; the sampled
//    fraction lands near 1/N.
//  * SpanSink plumbing: ScopedRequestSpan records into the installed
//    thread-local sink, is a no-op without one, and End() is idempotent.
//  * QueryLog: reservoir stays bounded and seed-deterministic, the slow
//    set keeps exactly the K slowest, and 8 concurrent recorders leave
//    the invariants intact.
//  * TimeSeriesCollector: snapshot-diff windows carry deltas/rates and
//    ordered percentiles; the background exporter survives start /
//    export / concurrent-Stop / double-Stop races and drains to JSONL.
//  * End-to-end: a traced QueryEngine over a ConcurrentHAIndex exports
//    per-request spans (including the epoch pin recorded below the
//    serving layer) and feeds every request to the query log.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "index/concurrent_ha_index.h"
#include "observability/metric_names.h"
#include "observability/metrics.h"
#include "observability/query_log.h"
#include "observability/request_trace.h"
#include "observability/time_series.h"
#include "observability/trace.h"
#include "serving/query_engine.h"
#include "test_util.h"

namespace hamming::obs {
namespace {

using testutil::RandomCodes;

// ---------------------------------------------------------------------------
// TraceSampler
// ---------------------------------------------------------------------------

TEST(TelemetrySampler, HeadSamplingIsDeterministicInSeedAndId) {
  TraceSamplerOptions opts;
  opts.sample_every = 16;
  opts.seed = 12345;
  TraceSampler a(opts), b(opts);
  for (uint64_t id = 1; id <= 2000; ++id) {
    EXPECT_EQ(a.HeadSampled(id), b.HeadSampled(id)) << id;
  }
  // A different seed flips some decisions (overwhelmingly likely over
  // 2000 ids at 1-in-16).
  opts.seed = 54321;
  TraceSampler c(opts);
  bool any_diff = false;
  for (uint64_t id = 1; id <= 2000 && !any_diff; ++id) {
    any_diff = a.HeadSampled(id) != c.HeadSampled(id);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TelemetrySampler, SampledFractionIsNearOneInN) {
  TraceSamplerOptions opts;
  opts.sample_every = 64;
  TraceSampler s(opts);
  std::size_t sampled = 0;
  const std::size_t kIds = 64 * 1000;
  for (uint64_t id = 1; id <= kIds; ++id) {
    if (s.HeadSampled(id)) ++sampled;
  }
  // Expect ~1000; a well-mixed hash stays within +-30% at this volume.
  EXPECT_GT(sampled, 700u);
  EXPECT_LT(sampled, 1300u);
}

TEST(TelemetrySampler, SampleEveryOneTakesAllAndIdsAreUnique) {
  TraceSamplerOptions opts;
  opts.sample_every = 1;
  opts.slow_threshold = std::chrono::microseconds(500);
  TraceSampler s(opts);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    uint64_t id = s.NextTraceId();
    EXPECT_GT(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
    EXPECT_TRUE(s.HeadSampled(id));
  }
  EXPECT_FALSE(s.Slow(std::chrono::microseconds(499)));
  EXPECT_TRUE(s.Slow(std::chrono::microseconds(500)));
  // Zero threshold disables tail capture entirely.
  TraceSampler off;
  EXPECT_FALSE(off.Slow(std::chrono::hours(1)));
}

// ---------------------------------------------------------------------------
// SpanSink / ScopedRequestSpan
// ---------------------------------------------------------------------------

TEST(TelemetrySpans, ScopedSpanRecordsIntoInstalledSink) {
  EXPECT_EQ(CurrentSpanSink(), nullptr);
  {
    // No sink installed: constructing and destroying a span is a no-op.
    ScopedRequestSpan ignored(RequestPhase::kEpochPin, 7);
  }
  SpanSink sink;
  {
    SpanSinkScope scope(&sink);
    EXPECT_EQ(CurrentSpanSink(), &sink);
    ScopedRequestSpan pin(RequestPhase::kEpochPin);
    pin.SetDetail(42);
    pin.End();
    pin.End();  // idempotent: the destructor must not double-record
    { ScopedRequestSpan kernel(RequestPhase::kKernel, 3); }
    // Nested scope replaces and restores.
    SpanSink inner;
    {
      SpanSinkScope nested(&inner);
      EXPECT_EQ(CurrentSpanSink(), &inner);
      ScopedRequestSpan respond(RequestPhase::kRespond);
    }
    EXPECT_EQ(CurrentSpanSink(), &sink);
  }
  EXPECT_EQ(CurrentSpanSink(), nullptr);
  ASSERT_EQ(sink.spans().size(), 2u);
  EXPECT_EQ(sink.spans()[0].phase, RequestPhase::kEpochPin);
  EXPECT_EQ(sink.spans()[0].detail, 42u);
  EXPECT_GE(sink.spans()[0].end_ns, sink.spans()[0].start_ns);
  EXPECT_EQ(sink.spans()[1].phase, RequestPhase::kKernel);
  EXPECT_EQ(sink.spans()[1].detail, 3u);
  sink.Clear();
  EXPECT_TRUE(sink.spans().empty());
}

// ---------------------------------------------------------------------------
// QueryLog
// ---------------------------------------------------------------------------

QueryLogEntry MakeEntry(uint64_t trace_id, bool slow, double e2e_us) {
  QueryLogEntry e;
  e.trace_id = trace_id;
  e.slow = slow;
  e.e2e_us = e2e_us;
  e.kind = (trace_id % 2 == 0) ? 'k' : 'r';
  e.param = 3;
  return e;
}

TEST(TelemetryQueryLog, ReservoirIsBoundedAndSeedDeterministic) {
  QueryLogOptions opts;
  opts.reservoir_capacity = 32;
  opts.slow_capacity = 8;
  opts.seed = 99;
  QueryLog a(opts), b(opts);
  for (uint64_t id = 1; id <= 5000; ++id) {
    a.Record(MakeEntry(id, /*slow=*/false, 100.0));
    b.Record(MakeEntry(id, /*slow=*/false, 100.0));
  }
  EXPECT_EQ(a.recorded(), 5000u);
  EXPECT_EQ(a.slow_seen(), 0u);
  auto ra = a.ReservoirSnapshot();
  auto rb = b.ReservoirSnapshot();
  ASSERT_EQ(ra.size(), 32u);
  ASSERT_EQ(rb.size(), 32u);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].trace_id, rb[i].trace_id) << i;  // same seed, same sample
    EXPECT_GE(ra[i].t_s, 0.0);  // Record stamps the arrival time
  }
}

TEST(TelemetryQueryLog, SlowSetKeepsExactlyTheKSlowest) {
  QueryLogOptions opts;
  opts.reservoir_capacity = 4;
  opts.slow_capacity = 5;
  QueryLog log(opts);
  // 100 slow queries with distinct latencies 1..100 ms, shuffled order
  // via a stride walk; the 5 slowest (96..100 ms) must survive.
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t latency_ms = (i * 37) % 100 + 1;
    log.Record(MakeEntry(1000 + latency_ms, /*slow=*/true,
                         static_cast<double>(latency_ms) * 1000.0));
  }
  EXPECT_EQ(log.slow_seen(), 100u);
  auto slow = log.SlowSnapshot();
  ASSERT_EQ(slow.size(), 5u);
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_DOUBLE_EQ(slow[i].e2e_us, (100.0 - static_cast<double>(i)) * 1000.0);
  }
  // Slowest-first ordering.
  EXPECT_TRUE(std::is_sorted(slow.begin(), slow.end(),
                             [](const QueryLogEntry& x, const QueryLogEntry& y) {
                               return x.e2e_us > y.e2e_us;
                             }));
}

TEST(TelemetryQueryLog, ConcurrentRecordersKeepBoundsAndTotals) {
  QueryLogOptions opts;
  opts.reservoir_capacity = 64;
  opts.slow_capacity = 16;
  QueryLog log(opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<hamming::Thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        const bool slow = (i % 50) == 0;
        log.Record(MakeEntry(id, slow, slow ? 50000.0 + i : 100.0));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.slow_seen(),
            static_cast<uint64_t>(kThreads) * (kPerThread / 50));
  EXPECT_EQ(log.ReservoirSnapshot().size(), 64u);
  EXPECT_EQ(log.SlowSnapshot().size(), 16u);
  // JSONL export: one line per retained entry, each a JSON object.
  std::istringstream jsonl(log.ToJsonl());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 64u + 16u);
}

// ---------------------------------------------------------------------------
// TimeSeriesCollector
// ---------------------------------------------------------------------------

TEST(TelemetryTimeSeries, WindowsCarryDeltasRatesAndOrderedPercentiles) {
  MetricsRegistry reg;
  const MetricId requests = reg.Counter("serving.accepted");
  const MetricId latency = reg.Histogram("serving.e2e_us");
  TimeSeriesOptions opts;
  opts.interval = std::chrono::milliseconds(3600 * 1000);  // manual ticks only
  TimeSeriesCollector ts(&reg, opts);

  for (int i = 0; i < 100; ++i) {
    reg.Add(requests, 1);
    reg.Observe(latency, 100 + i * 10);
  }
  TimeSeriesWindow w1 = ts.CloseWindowNow();
  EXPECT_EQ(w1.counter_deltas.at("serving.accepted"), 100);
  EXPECT_GT(w1.counter_rates.at("serving.accepted"), 0.0);
  const WindowHistogram& h1 = w1.histograms.at("serving.e2e_us");
  EXPECT_EQ(h1.count, 100u);
  EXPECT_GT(h1.mean, 0.0);
  EXPECT_LE(h1.p50, h1.p99);
  EXPECT_LE(h1.p99, h1.p999);

  // A second window sees only the increments since the first.
  reg.Add(requests, 5);
  TimeSeriesWindow w2 = ts.CloseWindowNow();
  EXPECT_EQ(w2.counter_deltas.at("serving.accepted"), 5);
  EXPECT_EQ(w2.histograms.count("serving.e2e_us"), 0u);  // zero-count omitted
  EXPECT_EQ(w2.index, w1.index + 1);
  EXPECT_GE(w2.t_start_s, w1.t_start_s);

  // An idle window omits the unchanged counter entirely.
  TimeSeriesWindow w3 = ts.CloseWindowNow();
  EXPECT_EQ(w3.counter_deltas.count("serving.accepted"), 0u);
  EXPECT_EQ(ts.windows_closed(), 3u);
  EXPECT_EQ(ts.Windows().size(), 3u);
}

TEST(TelemetryTimeSeries, RingEvictsOldestBeyondCapacity) {
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.interval = std::chrono::milliseconds(3600 * 1000);
  opts.ring_capacity = 4;
  TimeSeriesCollector ts(&reg, opts);
  for (int i = 0; i < 10; ++i) ts.CloseWindowNow();
  EXPECT_EQ(ts.windows_closed(), 10u);
  EXPECT_EQ(ts.windows_evicted(), 6u);
  auto windows = ts.Windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows.front().index, 6u);  // oldest surviving
  EXPECT_EQ(windows.back().index, 9u);
}

TEST(TelemetryTimeSeries, ExporterThreadSurvivesConcurrentStopAndDrains) {
  const std::string path =
      ::testing::TempDir() + "/telemetry_timeseries_race.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  const MetricId requests = reg.Counter("serving.accepted");
  const MetricId latency = reg.Histogram("serving.e2e_us");
  TimeSeriesOptions opts;
  opts.interval = std::chrono::milliseconds(5);
  opts.export_path = path;
  TimeSeriesCollector ts(&reg, opts);
  ASSERT_TRUE(ts.Start().ok());
  ASSERT_TRUE(ts.Start().ok());  // idempotent

  std::atomic<bool> stop{false};
  std::vector<hamming::Thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        reg.Add(requests, 1);
        reg.Observe(latency, 250);
      }
    });
  }
  hamming::SleepFor(std::chrono::milliseconds(40));
  // Two threads race Stop against each other (and the exporter).
  hamming::Thread s1([&ts] { ts.Stop(); });
  hamming::Thread s2([&ts] { ts.Stop(); });
  s1.join();
  s2.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  ts.Stop();  // third Stop after the fact: still safe

  EXPECT_GE(ts.windows_closed(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"window\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, ts.windows_closed());
  std::remove(path.c_str());
}

TEST(TelemetryTimeSeries, StopWithoutStartAndDestructorAreSafe) {
  MetricsRegistry reg;
  {
    TimeSeriesCollector ts(&reg, {});
    ts.Stop();  // never started
  }
  {
    TimeSeriesCollector ts(&reg, {});
    ASSERT_TRUE(ts.Start().ok());
    // Destructor stops the exporter.
  }
}

// ---------------------------------------------------------------------------
// End-to-end: traced engine over a concurrent index
// ---------------------------------------------------------------------------

TEST(TelemetryEngine, ExportsSpansAndFeedsQueryLog) {
  auto codes = RandomCodes(400, 64, /*seed=*/11, /*clusters=*/8);
  ConcurrentHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());

  MetricsRegistry reg;
  TraceSamplerOptions sopts;
  sopts.sample_every = 1;  // trace everything: the assertions are exact
  TraceSampler sampler(sopts);
  TraceCollector trace;
  QueryLog qlog;

  serving::QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  opts.metrics = &reg;
  opts.sampler = &sampler;
  opts.trace = &trace;
  opts.query_log = &qlog;
  serving::QueryEngine engine(&index, opts);
  ASSERT_TRUE(engine.Start().ok());

  auto queries = RandomCodes(48, 64, /*seed=*/23, /*clusters=*/8);
  std::vector<std::future<serving::ServeResult>> futures;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto got = i % 2 == 0
                   ? engine.Submit(QueryRequest::Range(queries[i], 3))
                   : engine.Submit(QueryRequest::Knn(queries[i], 5));
    ASSERT_TRUE(got.ok()) << got.status();
    futures.push_back(std::move(*got));
  }
  for (auto& f : futures) {
    serving::ServeResult r = f.get();
    EXPECT_TRUE(r.response.status.ok()) << r.response.status;
  }
  engine.Shutdown();

  // Every request was offered to the log; trace ids are unique.
  EXPECT_EQ(qlog.recorded(), queries.size());
  auto reservoir = qlog.ReservoirSnapshot();
  ASSERT_FALSE(reservoir.empty());
  std::set<uint64_t> ids;
  std::size_t range_seen = 0, knn_seen = 0;
  for (const auto& e : reservoir) {
    EXPECT_TRUE(ids.insert(e.trace_id).second);
    EXPECT_TRUE(e.head_sampled);  // sample_every = 1
    EXPECT_TRUE(e.ok);
    EXPECT_GE(e.batch_size, 1u);
    (e.kind == 'r' ? range_seen : knn_seen) += 1;
    if (e.kind == 'r') {
      EXPECT_EQ(e.param, 3u);
    } else {
      EXPECT_EQ(e.param, 5u);
    }
    // Span stack: queue, batch_form, the epoch pin recorded *below*
    // the serving layer, kernel, respond — in that order.
    ASSERT_GE(e.spans.size(), 5u);
    std::vector<RequestPhase> phases;
    for (const auto& s : e.spans) {
      phases.push_back(s.phase);
      EXPECT_GE(s.end_ns, s.start_ns);
    }
    EXPECT_EQ(phases.front(), RequestPhase::kQueue);
    EXPECT_EQ(phases.back(), RequestPhase::kRespond);
    EXPECT_NE(std::find(phases.begin(), phases.end(), RequestPhase::kEpochPin),
              phases.end());
    EXPECT_NE(std::find(phases.begin(), phases.end(), RequestPhase::kKernel),
              phases.end());
  }
  EXPECT_GT(range_seen, 0u);
  EXPECT_GT(knn_seen, 0u);

  // The Chrome export carries the serving process, its worker lanes,
  // and the per-request span family.
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"serving\""), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("req 1"), std::string::npos);
  EXPECT_NE(json.find("epoch_pin"), std::string::npos);
  EXPECT_NE(json.find("batch_form"), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  // JSONL of the log embeds the stats object and span breakdowns.
  const std::string jsonl = qlog.ToJsonl();
  EXPECT_NE(jsonl.find("\"stats\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"spans\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"epoch_pin\""), std::string::npos);
}

TEST(TelemetryEngine, UntracedEngineRecordsNothing) {
  auto codes = RandomCodes(100, 64, /*seed=*/5, /*clusters=*/4);
  ConcurrentHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  serving::QueryEngineOptions opts;
  opts.num_workers = 1;
  serving::QueryEngine engine(&index, opts);
  ASSERT_TRUE(engine.Start().ok());
  auto got = engine.Serve(QueryRequest::Range(codes[0], 2));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->response.status.ok());
  engine.Shutdown();
}

}  // namespace
}  // namespace hamming::obs

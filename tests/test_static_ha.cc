// Structural tests specific to the Static HA-Index beyond the cross-index
// exactness sweep.
#include "index/static_ha_index.h"

#include <gtest/gtest.h>

#include "index/linear_scan.h"
#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

TEST(StaticHAIndex, SharedNodesAreFarFewerThanTuples) {
  // The Figure 2 claim: distinct segment values are shared, so the node
  // count is bounded by levels * 2^seg_bits, not by n.
  auto codes = RandomCodes(5000, 32, /*seed=*/3, /*clusters=*/16);
  StaticHAIndex index(StaticHAIndexOptions{8});
  ASSERT_TRUE(index.Build(codes).ok());
  EXPECT_LE(index.NodeCount(), 4u * 256u);
  EXPECT_LT(index.NodeCount(), codes.size());
}

TEST(StaticHAIndex, PaperSegmentExample) {
  // Section 4.3: with 3-bit segments, tuples t2 = "011001100" and
  // t7 = "111001100" share the nodes for segments "001" and "100".
  auto codes = testutil::PaperTableS();
  StaticHAIndex index(StaticHAIndexOptions{3});
  ASSERT_TRUE(index.Build(codes).ok());
  // 3 levels x at most 8 distinct 3-bit values, but sharing keeps the
  // real count low; Figure 2 shows 12 nodes for this dataset.
  EXPECT_EQ(index.NodeCount(), 12u);
}

TEST(StaticHAIndex, RejectsBadSegmentWidth) {
  auto codes = RandomCodes(10, 32);
  StaticHAIndex zero(StaticHAIndexOptions{0});
  EXPECT_FALSE(zero.Build(codes).ok());
  StaticHAIndex wide(StaticHAIndexOptions{65});
  EXPECT_FALSE(wide.Build(codes).ok());
}

TEST(StaticHAIndex, RejectsDuplicateTupleId) {
  StaticHAIndex index(StaticHAIndexOptions{8});
  auto codes = RandomCodes(2, 32);
  ASSERT_TRUE(index.Insert(7, codes[0]).ok());
  EXPECT_TRUE(index.Insert(7, codes[1]).IsInvalidArgument());
}

TEST(StaticHAIndex, DeleteVerifiesCode) {
  StaticHAIndex index(StaticHAIndexOptions{8});
  auto codes = RandomCodes(2, 32, /*seed=*/5);
  ASSERT_TRUE(index.Insert(1, codes[0]).ok());
  EXPECT_TRUE(index.Delete(1, codes[1]).IsKeyError());
  EXPECT_TRUE(index.Delete(1, codes[0]).ok());
  EXPECT_EQ(index.size(), 0u);
}

TEST(StaticHAIndex, StaysExactUnderHeavyChurn) {
  StaticHAIndex index(StaticHAIndexOptions{8});
  LinearScanIndex truth;
  auto codes = RandomCodes(400, 32, /*seed=*/11, /*clusters=*/8);
  Rng rng(13);
  std::vector<bool> present(codes.size(), false);
  for (int op = 0; op < 2000; ++op) {
    TupleId id = static_cast<TupleId>(
        rng.UniformInt(0, static_cast<int64_t>(codes.size()) - 1));
    if (present[id]) {
      ASSERT_TRUE(index.Delete(id, codes[id]).ok());
      ASSERT_TRUE(truth.Delete(id, codes[id]).ok());
      present[id] = false;
    } else {
      ASSERT_TRUE(index.Insert(id, codes[id]).ok());
      ASSERT_TRUE(truth.Insert(id, codes[id]).ok());
      present[id] = true;
    }
    if (op % 101 == 0) {
      const BinaryCode& q = codes[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(codes.size()) - 1))];
      auto got = index.Search(q, 3);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Sorted(*got), Sorted(*truth.Search(q, 3))) << "op " << op;
    }
  }
}

TEST(StaticHAIndex, SegmentWidthSweepStaysExact) {
  auto codes = RandomCodes(300, 32, /*seed=*/17, /*clusters=*/8);
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto queries = RandomCodes(10, 32, /*seed=*/18, /*clusters=*/8);
  for (std::size_t seg : {1u, 2u, 3u, 5u, 8u, 16u, 32u}) {
    StaticHAIndex index(StaticHAIndexOptions{seg});
    ASSERT_TRUE(index.Build(codes).ok());
    for (const auto& q : queries) {
      auto got = index.Search(q, 4);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Sorted(*got), Sorted(*truth.Search(q, 4))) << "seg=" << seg;
    }
  }
}

TEST(StaticHAIndex, NonDivisibleSegmentWidth) {
  // 32 bits with 5-bit segments: last segment is 2 bits wide.
  auto codes = RandomCodes(100, 32, /*seed=*/21);
  StaticHAIndex index(StaticHAIndexOptions{5});
  ASSERT_TRUE(index.Build(codes).ok());
  auto got = index.Search(codes[0], 0);
  ASSERT_TRUE(got.ok());
  bool found = false;
  for (TupleId id : *got) {
    if (id == 0) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hamming

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mapreduce/job.h"

namespace hamming::mr {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

// The canonical MapReduce smoke test: word count.
TEST(MapReduce, WordCount) {
  Cluster cluster({/*num_nodes=*/4, /*slots_per_node=*/2, /*num_threads=*/4});
  JobSpec spec;
  spec.name = "wordcount";
  spec.options.num_reducers = 3;
  std::vector<Record> docs;
  docs.push_back({{}, Bytes("the quick brown fox")});
  docs.push_back({{}, Bytes("the lazy dog")});
  docs.push_back({{}, Bytes("the fox")});
  spec.input_splits = SplitEvenly(std::move(docs), 2);
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    std::string text = Str(rec.value);
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t end = text.find(' ', pos);
      if (end == std::string::npos) end = text.size();
      out->Emit(Bytes(text.substr(pos, end - pos)), Bytes("1"));
      pos = end + 1;
    }
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      Emitter* out) -> Status {
    out->Emit(key, Bytes(std::to_string(values.size())));
    return Status::OK();
  };
  auto result = RunJob(spec, &cluster).ValueOrDie();

  std::map<std::string, std::string> counts;
  for (const auto& part : result.outputs) {
    for (const auto& rec : part) counts[Str(rec.key)] = Str(rec.value);
  }
  EXPECT_EQ(counts["the"], "3");
  EXPECT_EQ(counts["fox"], "2");
  EXPECT_EQ(counts["dog"], "1");
  EXPECT_EQ(counts.size(), 6u);

  EXPECT_EQ(result.counters.Get(kMapInputRecords), 3);
  EXPECT_EQ(result.counters.Get(kMapOutputRecords), 9);
  EXPECT_EQ(result.counters.Get(kReduceInputGroups), 6);
  EXPECT_GT(result.counters.Get(kShuffleBytes), 0);
}

TEST(MapReduce, ShuffleBytesMatchRecordSizes) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "bytes";
  spec.options.num_reducers = 1;
  spec.input_splits = {{{{}, Bytes("x")}}};
  spec.map_fn = [](const Record&, Emitter* out) -> Status {
    out->Emit(Bytes("key"), Bytes("value"));  // 3 + 5 + 8 framing = 16
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>&,
                      Emitter* out) -> Status {
    out->Emit(key, {});
    return Status::OK();
  };
  auto result = RunJob(spec, &cluster).ValueOrDie();
  EXPECT_EQ(result.counters.Get(kShuffleBytes), 16);
}

TEST(MapReduce, GroupsAllValuesOfAKey) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "grouping";
  spec.options.num_reducers = 4;
  std::vector<Record> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back({{}, Bytes(std::to_string(i))});
  }
  spec.input_splits = SplitEvenly(std::move(input), 7);
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    int v = std::stoi(Str(rec.value));
    out->Emit(Bytes(std::to_string(v % 5)), rec.value);
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      Emitter* out) -> Status {
    EXPECT_EQ(values.size(), 20u) << "key " << Str(key);
    out->Emit(key, Bytes(std::to_string(values.size())));
    return Status::OK();
  };
  auto result = RunJob(spec, &cluster).ValueOrDie();
  std::size_t groups = 0;
  for (const auto& part : result.outputs) groups += part.size();
  EXPECT_EQ(groups, 5u);
}

TEST(MapReduce, CustomPartitionerRoutesKeys) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "routing";
  spec.options.num_reducers = 2;
  std::vector<Record> input;
  for (int i = 0; i < 10; ++i) input.push_back({{}, Bytes("x")});
  spec.input_splits = SplitEvenly(std::move(input), 3);
  spec.map_fn = [](const Record&, Emitter* out) -> Status {
    out->Emit(Bytes("even"), Bytes("1"));
    out->Emit(Bytes("odd"), Bytes("1"));
    return Status::OK();
  };
  spec.options.partition_fn = [](const std::vector<uint8_t>& key, std::size_t) {
    return Str(key) == "even" ? 0u : 1u;
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>&,
                      Emitter* out) -> Status {
    out->Emit(key, {});
    return Status::OK();
  };
  auto result = RunJob(spec, &cluster).ValueOrDie();
  ASSERT_EQ(result.outputs.size(), 2u);
  ASSERT_EQ(result.outputs[0].size(), 1u);
  ASSERT_EQ(result.outputs[1].size(), 1u);
  EXPECT_EQ(Str(result.outputs[0][0].key), "even");
  EXPECT_EQ(Str(result.outputs[1][0].key), "odd");
}

TEST(MapReduce, MapOnlyJob) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "map-only";
  spec.options.num_reducers = 2;
  spec.input_splits = {{{{}, Bytes("a")}, {{}, Bytes("b")}}};
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    out->Emit(rec.value, rec.value);
    return Status::OK();
  };
  auto result = RunJob(spec, &cluster).ValueOrDie();
  std::size_t total = 0;
  for (const auto& part : result.outputs) total += part.size();
  EXPECT_EQ(total, 2u);
}

TEST(MapReduce, MapErrorAbortsJob) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "map-error";
  spec.options.num_reducers = 1;
  spec.input_splits = {{{{}, Bytes("boom")}}};
  spec.map_fn = [](const Record&, Emitter*) -> Status {
    return Status::ExecutionError("mapper exploded");
  };
  spec.reduce_fn = [](const std::vector<uint8_t>&,
                      const std::vector<std::vector<uint8_t>>&,
                      Emitter*) -> Status { return Status::OK(); };
  auto result = RunJob(spec, &cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
}

TEST(MapReduce, ReduceErrorAbortsJob) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "reduce-error";
  spec.options.num_reducers = 1;
  spec.input_splits = {{{{}, Bytes("x")}}};
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    out->Emit(rec.value, rec.value);
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>&,
                      const std::vector<std::vector<uint8_t>>&,
                      Emitter*) -> Status {
    return Status::ExecutionError("reducer exploded");
  };
  EXPECT_FALSE(RunJob(spec, &cluster).ok());
}

TEST(MapReduce, ValidationErrors) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.options.num_reducers = 0;
  spec.map_fn = [](const Record&, Emitter*) -> Status {
    return Status::OK();
  };
  EXPECT_FALSE(RunJob(spec, &cluster).ok());
  JobSpec no_map;
  no_map.options.num_reducers = 1;
  EXPECT_FALSE(RunJob(no_map, &cluster).ok());
}

TEST(MapReduce, CumulativeCountersAccumulateAcrossJobs) {
  Cluster cluster({2, 2, 2});
  JobSpec spec;
  spec.name = "twice";
  spec.options.num_reducers = 1;
  spec.input_splits = {{{{}, Bytes("x")}}};
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    out->Emit(rec.value, rec.value);
    return Status::OK();
  };
  ASSERT_TRUE(RunJob(spec, &cluster).ok());
  int64_t after_one = cluster.cumulative_counters()->Get(kShuffleBytes);
  ASSERT_TRUE(RunJob(spec, &cluster).ok());
  EXPECT_EQ(cluster.cumulative_counters()->Get(kShuffleBytes), 2 * after_one);
}

TEST(DistributedCacheTest, BroadcastFetchAndAccounting) {
  Counters counters;
  DistributedCache cache(/*num_nodes=*/8);
  cache.Broadcast("model", {1, 2, 3, 4}, &counters);
  EXPECT_EQ(counters.Get(kBroadcastBytes), 4 * 8);
  auto blob = cache.Fetch("model");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->size(), 4u);
  EXPECT_TRUE(cache.Fetch("missing").status().IsKeyError());
  cache.Clear();
  EXPECT_FALSE(cache.Fetch("model").ok());
}

TEST(CountersTest, MergeAndSnapshot) {
  Counters a, b;
  a.Add("x", 5);
  b.Add("x", 2);
  b.Add("y", 1);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 7);
  EXPECT_EQ(a.Get("y"), 1);
  EXPECT_EQ(a.Get("z"), 0);
  auto snap = a.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
}

TEST(MapReduce, SplitEvenlyCoversAllRecords) {
  std::vector<Record> records;
  for (int i = 0; i < 17; ++i) records.push_back({{}, {}});
  auto splits = SplitEvenly(std::move(records), 4);
  EXPECT_EQ(splits.size(), 4u);
  std::size_t total = 0;
  for (const auto& s : splits) {
    total += s.size();
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 5u);
  }
  EXPECT_EQ(total, 17u);
}

}  // namespace
}  // namespace hamming::mr

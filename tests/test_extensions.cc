// Tests for the extension modules: bit-sampling LSH and the distributed
// Hamming-select plan.
#include <gtest/gtest.h>

#include "dataset/generators.h"
#include "dataset/sampling.h"
#include "index/bitsample_lsh.h"
#include "index/linear_scan.h"
#include "mrjoin/mrha_knn.h"
#include "mrjoin/mrselect.h"
#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

TEST(BitSampleLsh, NeverReturnsFalsePositives) {
  auto codes = RandomCodes(500, 32, /*seed=*/3, /*clusters=*/8);
  BitSampleLshIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto queries = RandomCodes(20, 32, /*seed=*/4, /*clusters=*/8);
  for (const auto& q : queries) {
    auto got = Sorted(*index.Search(q, 3));
    auto expect = Sorted(*truth.Search(q, 3));
    EXPECT_TRUE(std::includes(expect.begin(), expect.end(), got.begin(),
                              got.end()));
  }
}

TEST(BitSampleLsh, ExactMatchAlwaysFound) {
  // h=0 collides in every table (all sampled bits equal), so recall at
  // distance 0 is 1.
  auto codes = RandomCodes(300, 32, /*seed=*/5, /*clusters=*/8);
  BitSampleLshIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  for (std::size_t i = 0; i < codes.size(); i += 17) {
    auto got = index.Search(codes[i], 0).ValueOrDie();
    bool found = false;
    for (TupleId id : got) {
      if (id == i) found = true;
    }
    EXPECT_TRUE(found) << i;
  }
}

TEST(BitSampleLsh, RecallIsReasonableAtSmallH) {
  auto codes = RandomCodes(1000, 32, /*seed=*/7, /*clusters=*/16);
  BitSampleLshOptions opts;
  opts.num_tables = 16;
  opts.bits_per_table = 10;
  BitSampleLshIndex index(opts);
  ASSERT_TRUE(index.Build(codes).ok());
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  std::size_t got_total = 0, expect_total = 0;
  // Queries: dataset members with one flipped bit (guaranteed h<=2
  // neighbourhoods).
  Rng qrng(8);
  std::vector<BinaryCode> queries;
  for (int i = 0; i < 30; ++i) {
    BinaryCode q = codes[static_cast<std::size_t>(qrng.UniformInt(0, 999))];
    q.FlipBit(static_cast<std::size_t>(qrng.UniformInt(0, 31)));
    queries.push_back(q);
  }
  for (const auto& q : queries) {
    got_total += index.Search(q, 2).ValueOrDie().size();
    expect_total += truth.Search(q, 2).ValueOrDie().size();
  }
  ASSERT_GT(expect_total, 0u);
  double recall = static_cast<double>(got_total) /
                  static_cast<double>(expect_total);
  // Theory: per-table collision prob (1 - 2/32)^10 = 0.52; with 16
  // tables overall recall should approach 1.
  EXPECT_GT(recall, 0.9);
  EXPECT_GT(index.CollisionProbability(2), 0.4);
}

TEST(BitSampleLsh, DynamicUpdates) {
  BitSampleLshIndex index;
  auto codes = RandomCodes(50, 32, /*seed=*/9);
  ASSERT_TRUE(index.Build(codes).ok());
  ASSERT_TRUE(index.Delete(10, codes[10]).ok());
  EXPECT_TRUE(index.Delete(10, codes[10]).IsKeyError());
  auto got = index.Search(codes[10], 0).ValueOrDie();
  for (TupleId id : got) EXPECT_NE(id, 10u);
  ASSERT_TRUE(index.Insert(10, codes[10]).ok());
  EXPECT_EQ(index.size(), 50u);
  EXPECT_GT(index.Memory().total(), 0u);
}

TEST(BitSampleLsh, Validation) {
  BitSampleLshOptions bad;
  bad.bits_per_table = 0;
  BitSampleLshIndex index(bad);
  EXPECT_FALSE(index.Build(RandomCodes(5, 32)).ok());
}

TEST(MrSelect, MatchesCentralizedSelect) {
  FloatMatrix data = GenerateDataset(DatasetKind::kNusWide, 500,
                                     {.num_clusters = 8, .seed = 2});
  FloatMatrix queries = GenerateQueries(DatasetKind::kNusWide, 10,
                                        {.num_clusters = 8, .seed = 2});
  mr::Cluster cluster({4, 2, 4});
  mrjoin::MrSelectOptions opts;
  opts.num_partitions = 4;
  opts.h = 3;
  auto result = mrjoin::RunMrSelect(data, queries, opts, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->matches.size(), queries.rows());
  EXPECT_GT(result->shuffle_bytes, 0);
  EXPECT_GT(result->broadcast_bytes, 0);

  // Centralized truth with an identically trained pipeline.
  Rng rng(opts.seed);
  std::size_t sample_n = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.sample_rate * data.rows()));
  auto ids = ReservoirSampleIndices(data.rows(), sample_n, &rng);
  auto sample = data.GatherRows(ids);
  SpectralHashingOptions hopts;
  hopts.code_bits = opts.code_bits;
  auto hash = SpectralHashing::Train(sample, hopts).ValueOrDie();
  auto codes = hash->HashAll(data);
  auto qcodes = hash->HashAll(queries);
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  for (std::size_t q = 0; q < qcodes.size(); ++q) {
    EXPECT_EQ(result->matches[q], Sorted(*truth.Search(qcodes[q], opts.h)))
        << "query " << q;
  }
}

TEST(MrhaKnnJoin, ReturnsKGoodNeighborsPerTuple) {
  FloatMatrix r = GenerateDataset(DatasetKind::kNusWide, 150,
                                  {.num_clusters = 8, .seed = 3});
  FloatMatrix s = GenerateDataset(DatasetKind::kNusWide, 400,
                                  {.num_clusters = 8, .seed = 3});
  mr::Cluster cluster({4, 2, 4});
  mrjoin::MrhaKnnOptions opts;
  opts.num_partitions = 4;
  opts.k = 5;
  auto result = mrjoin::RunMrhaKnnJoin(r, s, opts, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), r.rows());
  EXPECT_GT(result->broadcast_bytes, 0);

  // Every row has k neighbours (escalation guarantees it while S has
  // enough tuples), and they approximate the code-space kNN well: check
  // that neighbours are within the code distance of the true kth code
  // neighbour for a sample of rows.
  for (const auto& row : result->rows) {
    EXPECT_EQ(row.neighbors.size(), opts.k) << "r=" << row.r;
  }
}

TEST(MrhaKnnJoin, MatchesCentralizedCodeSpaceKnn) {
  FloatMatrix r = GenerateDataset(DatasetKind::kNusWide, 80,
                                  {.num_clusters = 4, .seed = 5});
  FloatMatrix s = GenerateDataset(DatasetKind::kNusWide, 200,
                                  {.num_clusters = 4, .seed = 5});
  // Pre-train a shared hash so the centralized truth is identical.
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  std::shared_ptr<const SpectralHashing> hash(
      SpectralHashing::Train(s, hopts).ValueOrDie().release());

  mr::Cluster cluster({4, 2, 4});
  mrjoin::MrhaKnnOptions opts;
  opts.num_partitions = 4;
  opts.k = 3;
  opts.pretrained = hash;
  auto result = mrjoin::RunMrhaKnnJoin(r, s, opts, &cluster).ValueOrDie();

  // Centralized: rank S by code distance per R tuple.
  auto r_codes = hash->HashAll(r);
  auto s_codes = hash->HashAll(s);
  for (const auto& row : result.rows) {
    // The plan's kth neighbour distance must equal the true kth smallest
    // code distance (the id sets can differ on ties).
    std::vector<std::size_t> dists;
    for (const auto& sc : s_codes) {
      dists.push_back(r_codes[row.r].Distance(sc));
    }
    std::sort(dists.begin(), dists.end());
    ASSERT_EQ(row.neighbors.size(), 3u);
    std::size_t got_worst = 0;
    for (TupleId sid : row.neighbors) {
      got_worst =
          std::max(got_worst, r_codes[row.r].Distance(s_codes[sid]));
    }
    EXPECT_EQ(got_worst, dists[2]) << "r=" << row.r;
  }
}

TEST(MrSelect, Validation) {
  mr::Cluster cluster({2, 2, 2});
  mrjoin::MrSelectOptions opts;
  FloatMatrix data(10, 5), queries(2, 7);
  EXPECT_FALSE(
      mrjoin::RunMrSelect(FloatMatrix(), queries, opts, &cluster).ok());
  EXPECT_FALSE(mrjoin::RunMrSelect(data, queries, opts, &cluster).ok());
}

}  // namespace
}  // namespace hamming

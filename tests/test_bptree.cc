#include "knn/bptree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

BinaryCode Key(uint64_t v) {
  return BinaryCode::FromUint64(v, 32).ValueOrDie();
}

TEST(BPlusTree, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.SeekCeiling(Key(5)).Valid());
  EXPECT_FALSE(tree.Last().Valid());
}

TEST(BPlusTree, InsertAndIterateInOrder) {
  BPlusTree tree;
  for (uint64_t v : {5u, 1u, 9u, 3u, 7u}) {
    tree.Insert(Key(v), static_cast<uint32_t>(v));
  }
  EXPECT_EQ(tree.size(), 5u);
  std::vector<uint32_t> order;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    order.push_back(it.value());
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 3, 5, 7, 9}));
}

TEST(BPlusTree, SeekCeilingSemantics) {
  BPlusTree tree;
  for (uint64_t v : {10u, 20u, 30u}) {
    tree.Insert(Key(v), static_cast<uint32_t>(v));
  }
  EXPECT_EQ(tree.SeekCeiling(Key(10)).value(), 10u);
  EXPECT_EQ(tree.SeekCeiling(Key(15)).value(), 20u);
  EXPECT_EQ(tree.SeekCeiling(Key(30)).value(), 30u);
  EXPECT_FALSE(tree.SeekCeiling(Key(31)).Valid());
  EXPECT_EQ(tree.SeekCeiling(Key(0)).value(), 10u);
}

TEST(BPlusTree, BidirectionalIteration) {
  BPlusTree tree;
  for (uint64_t v = 0; v < 500; ++v) {
    tree.Insert(Key(v), static_cast<uint32_t>(v));
  }
  auto it = tree.SeekCeiling(Key(250));
  it.Prev();
  EXPECT_EQ(it.value(), 249u);
  it.Prev();
  EXPECT_EQ(it.value(), 248u);
  it.Next();
  it.Next();
  EXPECT_EQ(it.value(), 250u);
  // Walk off the front.
  auto front = tree.Begin();
  front.Prev();
  EXPECT_FALSE(front.Valid());
  // Last entry.
  EXPECT_EQ(tree.Last().value(), 499u);
}

TEST(BPlusTree, SplitsKeepInvariants) {
  BPlusTree tree;
  for (uint64_t v = 0; v < 5000; ++v) {
    tree.Insert(Key(v * 2654435761u % 100000), static_cast<uint32_t>(v));
  }
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_GT(tree.height(), 1u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // In-order iteration must be sorted.
  BinaryCode prev;
  bool first = true;
  std::size_t count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    if (!first) {
      EXPECT_LE(prev.Compare(it.key()), 0);
    }
    prev = it.key();
    first = false;
    ++count;
  }
  EXPECT_EQ(count, 5000u);
}

TEST(BPlusTree, DuplicateKeysSupported) {
  BPlusTree tree;
  for (uint32_t i = 0; i < 10; ++i) tree.Insert(Key(42), i);
  std::size_t seen = 0;
  for (auto it = tree.SeekCeiling(Key(42)); it.Valid() && it.key() == Key(42);
       it.Next()) {
    ++seen;
  }
  EXPECT_EQ(seen, 10u);
}

TEST(BPlusTree, DeleteSpecificValue) {
  BPlusTree tree;
  tree.Insert(Key(7), 1);
  tree.Insert(Key(7), 2);
  tree.Insert(Key(9), 3);
  ASSERT_TRUE(tree.Delete(Key(7), 2).ok());
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Delete(Key(7), 2).IsKeyError());
  EXPECT_TRUE(tree.Delete(Key(100), 1).IsKeyError());
  ASSERT_TRUE(tree.Delete(Key(7), 1).ok());
  EXPECT_EQ(tree.SeekCeiling(Key(0)).value(), 3u);
}

TEST(BPlusTree, RandomizedAgainstStdMultimap) {
  BPlusTree tree;
  std::multimap<std::string, uint32_t> model;
  Rng rng(77);
  for (int op = 0; op < 4000; ++op) {
    uint64_t raw = static_cast<uint64_t>(rng.UniformInt(0, 300));
    BinaryCode key = Key(raw);
    uint32_t value = static_cast<uint32_t>(rng.UniformInt(0, 10));
    if (rng.Bernoulli(0.7) || model.empty()) {
      tree.Insert(key, value);
      model.emplace(key.ToString(), value);
    } else {
      bool model_has = false;
      for (auto [it, end] = model.equal_range(key.ToString()); it != end;
           ++it) {
        if (it->second == value) {
          model_has = true;
          model.erase(it);
          break;
        }
      }
      Status st = tree.Delete(key, value);
      EXPECT_EQ(st.ok(), model_has) << "op " << op;
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Full in-order comparison.
  auto mit = model.begin();
  for (auto it = tree.Begin(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key().ToString(), mit->first);
  }
  EXPECT_EQ(mit, model.end());
}

TEST(BPlusTree, MoveSemantics) {
  BPlusTree tree;
  for (uint64_t v = 0; v < 100; ++v) {
    tree.Insert(Key(v), static_cast<uint32_t>(v));
  }
  BPlusTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(tree.size(), 0u);  // NOLINT(bugprone-use-after-move): reset state
  tree.Insert(Key(1), 1);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, MemoryGrowsWithContent) {
  BPlusTree small, big;
  for (uint64_t v = 0; v < 10; ++v) small.Insert(Key(v), 0);
  for (uint64_t v = 0; v < 1000; ++v) big.Insert(Key(v), 0);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace hamming

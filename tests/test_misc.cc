// Odds and ends: memory formatting, MH serialization, index naming,
// Manku block-combination layout.
#include <gtest/gtest.h>

#include "observability/memtrack.h"
#include "index/multi_hash_table.h"
#include "test_util.h"

namespace hamming {
namespace {

TEST(MemTrack, FormatBytes) {
  EXPECT_EQ(obs::FormatBytes(0), "0B");
  EXPECT_EQ(obs::FormatBytes(473), "473B");
  EXPECT_EQ(obs::FormatBytes(1536), "1.5KB");
  EXPECT_EQ(obs::FormatBytes(28 * 1024 * 1024), "28.0MB");
  EXPECT_EQ(obs::FormatBytes(3ull << 30), "3.00GB");
}

TEST(MemTrack, BreakdownArithmetic) {
  obs::MemoryBreakdown a{100, 200};
  obs::MemoryBreakdown b{1, 2};
  a += b;
  EXPECT_EQ(a.internal_bytes, 101u);
  EXPECT_EQ(a.leaf_bytes, 202u);
  EXPECT_EQ(a.total(), 303u);
  EXPECT_NE(a.ToString().find("internal"), std::string::npos);
}

TEST(MultiHashTable, MankuLayoutMatchesPaperConfigurations) {
  // MH-4 at h=3: 4 blocks, C(4,3)=4 tables keyed on 1 block.
  // MH-10 at h=3: 5 blocks, C(5,3)=10 tables keyed on 2 blocks.
  auto codes = testutil::RandomCodes(50, 32, /*seed=*/3);
  MultiHashTableIndex mh4(4, 3);
  MultiHashTableIndex mh10(10, 3);
  ASSERT_TRUE(mh4.Build(codes).ok());
  ASSERT_TRUE(mh10.Build(codes).ok());
  EXPECT_EQ(mh4.num_blocks(), 4u);
  EXPECT_EQ(mh4.num_tables(), 4u);
  EXPECT_EQ(mh10.num_blocks(), 5u);
  EXPECT_EQ(mh10.num_tables(), 10u);
  EXPECT_TRUE(mh4.ExactFor(3));
  EXPECT_FALSE(mh4.ExactFor(4));
}

TEST(MultiHashTable, SerializationRoundTrip) {
  auto codes = testutil::RandomCodes(200, 32, /*seed=*/5, /*clusters=*/8);
  MultiHashTableIndex index(10, 3);
  ASSERT_TRUE(index.Build(codes).ok());
  BufferWriter w;
  index.Serialize(&w);
  BufferReader r(w.buffer());
  auto back = MultiHashTableIndex::Deserialize(&r).ValueOrDie();
  EXPECT_EQ(back.size(), index.size());
  auto queries = testutil::RandomCodes(10, 32, /*seed=*/6, /*clusters=*/8);
  for (const auto& q : queries) {
    EXPECT_EQ(Sorted(*back.Search(q, 3)), Sorted(*index.Search(q, 3)));
  }
}

TEST(MultiHashTable, SerializedSizeReflectsReplication) {
  // 10 tables must serialize to roughly 2.5x the bytes of 4 tables —
  // the broadcast cost PMH pays (Section 2 / Figure 7).
  auto codes = testutil::RandomCodes(500, 32, /*seed=*/7);
  MultiHashTableIndex mh4(4, 3), mh10(10, 3);
  ASSERT_TRUE(mh4.Build(codes).ok());
  ASSERT_TRUE(mh10.Build(codes).ok());
  BufferWriter w4, w10;
  mh4.Serialize(&w4);
  mh10.Serialize(&w10);
  EXPECT_GT(w10.size(), w4.size() * 2);
}

TEST(IndexNames, AreStable) {
  EXPECT_EQ(testutil::MakeIndex("linear")->name(), "Nested-Loops");
  EXPECT_EQ(testutil::MakeIndex("mh4")->name(), "MH-4");
  EXPECT_EQ(testutil::MakeIndex("mh10")->name(), "MH-10");
  EXPECT_EQ(testutil::MakeIndex("hengine")->name(), "HEngine");
  EXPECT_EQ(testutil::MakeIndex("hmsearch")->name(), "HmSearch");
  EXPECT_EQ(testutil::MakeIndex("radix")->name(), "Radix-Tree");
  EXPECT_EQ(testutil::MakeIndex("sha8")->name(), "SHA-Index");
  EXPECT_EQ(testutil::MakeIndex("dha")->name(), "DHA-Index");
}

TEST(MultiHashTable, RejectsOverlongKeys) {
  // 512-bit codes with MH-4: 1 kept block of 128 bits exceeds the 64-bit
  // key limit and must be rejected, not silently truncated.
  auto codes = testutil::RandomCodes(5, 512, /*seed=*/9);
  MultiHashTableIndex index(4, 3);
  EXPECT_FALSE(index.Build(codes).ok());
}

}  // namespace
}  // namespace hamming

// Structural and lifecycle tests specific to the Dynamic HA-Index beyond
// the cross-index exactness sweep in test_indexes.cc.
#include "index/dynamic_ha_index.h"

#include <gtest/gtest.h>

#include "index/linear_scan.h"
#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

TEST(DynamicHAIndex, StatsReflectStructure) {
  auto codes = RandomCodes(500, 32, /*seed=*/3, /*clusters=*/8);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  auto stats = index.Stats();
  EXPECT_GT(stats.num_leaves, 0u);
  EXPECT_LE(stats.num_leaves, 500u);
  EXPECT_GT(stats.num_internal_nodes, 0u);
  EXPECT_GT(stats.num_edges, 0u);
  EXPECT_GT(stats.depth, 1u);
  EXPECT_LE(stats.depth, index.options().max_depth + 1);
}

TEST(DynamicHAIndex, SublinearInternalNodesOnClusteredData) {
  // Section 4.7: on favourable (clustered) data the internal structure
  // stays far below one node per tuple.
  auto codes = RandomCodes(4000, 32, /*seed=*/5, /*clusters=*/16,
                           /*flip_bits=*/3);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  auto stats = index.Stats();
  EXPECT_LT(stats.num_internal_nodes, stats.num_leaves)
      << "internal nodes should be shared across leaves";
}

TEST(DynamicHAIndex, FullSpaceExample) {
  // Example 4: indexing all 2^L codes of a tiny space. Every distinct
  // code must be a leaf and searches must be exact.
  std::vector<BinaryCode> codes;
  for (uint64_t v = 0; v < 8; ++v) {
    codes.push_back(BinaryCode::FromUint64(v, 3).ValueOrDie());
  }
  DynamicHAIndexOptions opts;
  opts.window = 2;
  DynamicHAIndex index(opts);
  ASSERT_TRUE(index.Build(codes).ok());
  EXPECT_EQ(index.Stats().num_leaves, 8u);
  for (uint64_t v = 0; v < 8; ++v) {
    auto got = index.Search(codes[v], 1);
    ASSERT_TRUE(got.ok());
    // Distance <= 1 from a 3-bit code: itself + 3 neighbours.
    EXPECT_EQ(got->size(), 4u) << "v=" << v;
  }
}

TEST(DynamicHAIndex, SerializationPreservesSearchResults) {
  auto codes = RandomCodes(300, 32, /*seed=*/11, /*clusters=*/8);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  // Leave some inserts in the buffer to exercise buffer serialization.
  ASSERT_TRUE(index.Insert(1000, codes[0]).ok());

  BufferWriter w;
  index.Serialize(&w);
  BufferReader r(w.buffer());
  auto back = DynamicHAIndex::Deserialize(&r).ValueOrDie();

  auto queries = RandomCodes(10, 32, /*seed=*/77, /*clusters=*/8);
  for (const auto& q : queries) {
    auto a = index.Search(q, 3);
    auto b = back.Search(q, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Sorted(*a), Sorted(*b));
  }
  EXPECT_EQ(back.size(), index.size());
}

TEST(DynamicHAIndex, SerializationCompactsDeadNodes) {
  auto codes = RandomCodes(200, 32, /*seed=*/13, /*clusters=*/4);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  // Delete half the tuples; serialized form must stay consistent.
  for (TupleId id = 0; id < 100; ++id) {
    ASSERT_TRUE(index.Delete(id, codes[id]).ok());
  }
  BufferWriter w;
  index.Serialize(&w);
  BufferReader r(w.buffer());
  auto back = DynamicHAIndex::Deserialize(&r).ValueOrDie();
  EXPECT_EQ(back.size(), 100u);
  auto got = back.Search(codes[150], 0);
  ASSERT_TRUE(got.ok());
  bool found = false;
  for (TupleId id : *got) {
    if (id == 150) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DynamicHAIndex, MergePreservesAllTuples) {
  // The Section 5.2 global merge: two local indexes over disjoint id
  // ranges must answer like one index over the union.
  auto codes_a = RandomCodes(150, 32, /*seed=*/21, /*clusters=*/6);
  auto codes_b = RandomCodes(150, 32, /*seed=*/22, /*clusters=*/6);
  DynamicHAIndex a, b;
  std::vector<TupleId> ids_a(150), ids_b(150);
  for (std::size_t i = 0; i < 150; ++i) {
    ids_a[i] = static_cast<TupleId>(i);
    ids_b[i] = static_cast<TupleId>(1000 + i);
  }
  ASSERT_TRUE(a.BuildWithIds(ids_a, codes_a).ok());
  ASSERT_TRUE(b.BuildWithIds(ids_b, codes_b).ok());
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.size(), 300u);

  LinearScanIndex truth;
  std::vector<BinaryCode> all = codes_a;
  all.insert(all.end(), codes_b.begin(), codes_b.end());
  ASSERT_TRUE(truth.Build(all).ok());

  auto queries = RandomCodes(15, 32, /*seed=*/99, /*clusters=*/6);
  for (const auto& q : queries) {
    auto got = a.Search(q, 3);
    ASSERT_TRUE(got.ok());
    auto expect = truth.Search(q, 3);
    // Translate expected ids: rows >= 150 belong to b's 1000+ range.
    std::vector<TupleId> expect_ids;
    for (TupleId id : *expect) {
      expect_ids.push_back(id < 150 ? id : 1000 + (id - 150));
    }
    EXPECT_EQ(Sorted(*got), Sorted(expect_ids));
  }
}

TEST(DynamicHAIndex, MergeRejectsMismatchedConfigs) {
  auto codes = RandomCodes(20, 32, /*seed=*/31);
  DynamicHAIndex a;
  DynamicHAIndexOptions leafless;
  leafless.store_tuple_ids = false;
  DynamicHAIndex b(leafless);
  ASSERT_TRUE(a.Build(codes).ok());
  ASSERT_TRUE(b.Build(codes).ok());
  EXPECT_FALSE(a.MergeFrom(b).ok());

  DynamicHAIndex c;
  auto short_codes = RandomCodes(20, 16, /*seed=*/32);
  ASSERT_TRUE(c.Build(short_codes).ok());
  EXPECT_FALSE(a.MergeFrom(c).ok());
}

TEST(DynamicHAIndex, LeaflessModeSearchCodes) {
  auto codes = RandomCodes(200, 32, /*seed=*/41, /*clusters=*/8);
  DynamicHAIndexOptions opts;
  opts.store_tuple_ids = false;
  DynamicHAIndex index(opts);
  ASSERT_TRUE(index.Build(codes).ok());
  // Search by id is unavailable...
  EXPECT_TRUE(index.Search(codes[0], 3).status().IsNotImplemented());
  EXPECT_TRUE(index.Delete(0, codes[0]).IsNotImplemented());
  // ...but SearchCodes returns exactly the qualifying distinct codes.
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto queries = RandomCodes(10, 32, /*seed=*/42, /*clusters=*/8);
  for (const auto& q : queries) {
    auto got = index.SearchCodes(q, 3).ValueOrDie();
    std::vector<std::string> got_str;
    for (const auto& c : got) got_str.push_back(c.ToString());
    std::sort(got_str.begin(), got_str.end());
    got_str.erase(std::unique(got_str.begin(), got_str.end()),
                  got_str.end());

    auto ids = truth.Search(q, 3).ValueOrDie();
    std::vector<std::string> expect_str;
    for (TupleId id : ids) expect_str.push_back(codes[id].ToString());
    std::sort(expect_str.begin(), expect_str.end());
    expect_str.erase(std::unique(expect_str.begin(), expect_str.end()),
                     expect_str.end());
    EXPECT_EQ(got_str, expect_str);
  }
}

TEST(DynamicHAIndex, LeaflessUsesLessMemoryThanLeafful) {
  // Table 4's DHA "28/11" column: dropping leaf hash tables shrinks the
  // footprint substantially.
  auto codes = RandomCodes(3000, 32, /*seed=*/51, /*clusters=*/16);
  DynamicHAIndex leafful;
  DynamicHAIndexOptions lopts;
  lopts.store_tuple_ids = false;
  DynamicHAIndex leafless(lopts);
  ASSERT_TRUE(leafful.Build(codes).ok());
  ASSERT_TRUE(leafless.Build(codes).ok());
  EXPECT_LT(leafless.Memory().total(), leafful.Memory().total());
}

TEST(DynamicHAIndex, BufferFlushKeepsAnswersCorrect) {
  DynamicHAIndexOptions opts;
  opts.insert_flush_threshold = 64;
  DynamicHAIndex index(opts);
  LinearScanIndex truth;
  auto codes = RandomCodes(500, 32, /*seed=*/61, /*clusters=*/8);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_TRUE(index.Insert(static_cast<TupleId>(i), codes[i]).ok());
    ASSERT_TRUE(truth.Insert(static_cast<TupleId>(i), codes[i]).ok());
    if (i % 97 == 0) {
      auto got = index.Search(codes[i / 2], 3);
      auto expect = truth.Search(codes[i / 2], 3);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Sorted(*got), Sorted(*expect)) << "after " << i;
    }
  }
  EXPECT_EQ(index.size(), 500u);
}

TEST(DynamicHAIndex, DeleteEverythingLeavesEmptyIndex) {
  auto codes = RandomCodes(100, 32, /*seed=*/71, /*clusters=*/4);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  for (TupleId id = 0; id < 100; ++id) {
    ASSERT_TRUE(index.Delete(id, codes[id]).ok()) << id;
  }
  EXPECT_EQ(index.size(), 0u);
  auto got = index.Search(codes[0], 32);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  auto stats = index.Stats();
  EXPECT_EQ(stats.num_leaves, 0u);
}

TEST(DynamicHAIndex, DualTreeJoinMatchesNestedLoops) {
  auto r_codes = RandomCodes(250, 32, /*seed=*/91, /*clusters=*/8);
  auto s_codes = RandomCodes(300, 32, /*seed=*/92, /*clusters=*/8);
  DynamicHAIndex r_index, s_index;
  ASSERT_TRUE(r_index.Build(r_codes).ok());
  ASSERT_TRUE(s_index.Build(s_codes).ok());
  for (std::size_t h : {0u, 2u, 4u}) {
    auto pairs = r_index.JoinWith(s_index, h).ValueOrDie();
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    std::vector<JoinPair> truth;
    for (std::size_t i = 0; i < r_codes.size(); ++i) {
      for (std::size_t j = 0; j < s_codes.size(); ++j) {
        if (r_codes[i].WithinDistance(s_codes[j], h)) {
          truth.push_back(
              {static_cast<TupleId>(i), static_cast<TupleId>(j)});
        }
      }
    }
    std::sort(truth.begin(), truth.end());
    EXPECT_EQ(pairs, truth) << "h=" << h;
  }
}

TEST(DynamicHAIndex, DualTreeJoinHandlesBufferedInserts) {
  DynamicHAIndexOptions opts;
  opts.insert_flush_threshold = 1000;  // keep everything buffered
  DynamicHAIndex r_index, s_index(opts);
  auto r_codes = RandomCodes(100, 32, /*seed=*/93, /*clusters=*/4);
  auto s_codes = RandomCodes(100, 32, /*seed=*/94, /*clusters=*/4);
  ASSERT_TRUE(r_index.Build(r_codes).ok());
  // Half of S is bulk-built, half stays in the insert buffer.
  std::vector<BinaryCode> s_half(s_codes.begin(), s_codes.begin() + 50);
  ASSERT_TRUE(s_index.Build(s_half).ok());
  for (std::size_t i = 50; i < 100; ++i) {
    ASSERT_TRUE(
        s_index.Insert(static_cast<TupleId>(i), s_codes[i]).ok());
  }
  auto pairs = r_index.JoinWith(s_index, 3).ValueOrDie();
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<JoinPair> truth;
  for (std::size_t i = 0; i < r_codes.size(); ++i) {
    for (std::size_t j = 0; j < s_codes.size(); ++j) {
      if (r_codes[i].WithinDistance(s_codes[j], 3)) {
        truth.push_back({static_cast<TupleId>(i), static_cast<TupleId>(j)});
      }
    }
  }
  std::sort(truth.begin(), truth.end());
  EXPECT_EQ(pairs, truth);
}

TEST(DynamicHAIndex, DualTreeJoinRequiresTupleIds) {
  DynamicHAIndexOptions leafless;
  leafless.store_tuple_ids = false;
  DynamicHAIndex a, b(leafless);
  auto codes = RandomCodes(20, 32, /*seed=*/95);
  ASSERT_TRUE(a.Build(codes).ok());
  ASSERT_TRUE(b.Build(codes).ok());
  EXPECT_TRUE(a.JoinWith(b, 3).status().IsNotImplemented());
}

TEST(DynamicHAIndex, WindowSizeSweepStaysExact) {
  // Figure 8's tuning knobs must never affect correctness.
  auto codes = RandomCodes(400, 32, /*seed=*/81, /*clusters=*/8);
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto q = RandomCodes(5, 32, /*seed=*/82, /*clusters=*/8);
  for (std::size_t window : {2u, 4u, 8u, 16u, 64u, 400u}) {
    for (std::size_t depth : {1u, 2u, 4u, 7u, 16u}) {
      DynamicHAIndexOptions opts;
      opts.window = window;
      opts.max_depth = depth;
      DynamicHAIndex index(opts);
      ASSERT_TRUE(index.Build(codes).ok());
      for (const auto& query : q) {
        auto got = index.Search(query, 3);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(Sorted(*got), Sorted(*truth.Search(query, 3)))
            << "window=" << window << " depth=" << depth;
      }
    }
  }
}

}  // namespace
}  // namespace hamming

// Replays every seed-corpus file under fuzz/corpus/ through its fuzz
// harness. The harness sources (fuzz/fuzz_*.cc) are compiled into the
// test binary with HAMMING_FUZZ_NO_ENTRY, so the exact code the fuzzers
// run is what executes here — under ASan in scripts/check.sh — and a
// checked-in crash input can never quietly regress.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_targets.h"

namespace {

using Runner = void (*)(const uint8_t*, std::size_t);

void ReplayCorpus(const std::string& name, Runner run) {
  const std::filesystem::path dir =
      std::filesystem::path(HAMMING_FUZZ_CORPUS_DIR) / name;
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "missing seed corpus " << dir;
  std::size_t replayed = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) {
    SCOPED_TRACE(p.string());
    std::ifstream in(p, std::ios::binary);
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    // data() may be null for an empty vector; harnesses expect a valid
    // pointer like libFuzzer provides.
    static const uint8_t kEmpty = 0;
    const uint8_t* data = bytes.empty()
                              ? &kEmpty
                              : reinterpret_cast<const uint8_t*>(bytes.data());
    run(data, bytes.size());
    ++replayed;
  }
  EXPECT_GT(replayed, 0u) << "empty seed corpus " << dir;
}

TEST(FuzzCorpus, SerdeSeedsReplayClean) {
  ReplayCorpus("serde", hamming_fuzz::RunSerdeFuzzInput);
}

TEST(FuzzCorpus, SpillSeedsReplayClean) {
  ReplayCorpus("spill", hamming_fuzz::RunSpillFuzzInput);
}

TEST(FuzzCorpus, JsonSeedsReplayClean) {
  ReplayCorpus("json", hamming_fuzz::RunJsonFuzzInput);
}

TEST(FuzzCorpus, VerticalSeedsReplayClean) {
  ReplayCorpus("vertical", hamming_fuzz::RunVerticalFuzzInput);
}

}  // namespace

// Tests for the relational operator layer (HammingTable + operators),
// including the paper's future-work similarity intersection [27].
#include "ops/operators.h"

#include <gtest/gtest.h>

#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "join/centralized_join.h"
#include "test_util.h"

namespace hamming::ops {
namespace {

OperatorOptions Opts(JoinPlan plan) {
  OperatorOptions o;
  o.plan = plan;
  return o;
}

class OpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FloatMatrix r_data = GenerateDataset(DatasetKind::kNusWide, 200,
                                         {.num_clusters = 8, .seed = 1});
    FloatMatrix s_data = GenerateDataset(DatasetKind::kNusWide, 300,
                                         {.num_clusters = 8, .seed = 1});
    SpectralHashingOptions hopts;
    hopts.code_bits = 32;
    hash_ = std::shared_ptr<const SimilarityHash>(
        SpectralHashing::Train(r_data, hopts).ValueOrDie().release());
    r_ = std::make_unique<HammingTable>(
        HammingTable::FromFeatures(std::move(r_data), hash_).ValueOrDie());
    s_ = std::make_unique<HammingTable>(
        HammingTable::FromFeatures(std::move(s_data), hash_).ValueOrDie());
  }

  std::shared_ptr<const SimilarityHash> hash_;
  std::unique_ptr<HammingTable> r_;
  std::unique_ptr<HammingTable> s_;
};

TEST_F(OpsTest, TableConstruction) {
  EXPECT_EQ(r_->size(), 200u);
  EXPECT_EQ(r_->code_bits(), 32u);
  EXPECT_TRUE(r_->has_features());
  EXPECT_FALSE(
      HammingTable::FromFeatures(FloatMatrix(3, 7), hash_).ok());
  EXPECT_FALSE(HammingTable::FromFeatures(FloatMatrix(3, 225), nullptr).ok());
}

TEST_F(OpsTest, TableFromCodesOnly) {
  auto codes = testutil::RandomCodes(20, 16);
  auto t = HammingTable::FromCodes(codes).ValueOrDie();
  EXPECT_EQ(t.size(), 20u);
  EXPECT_FALSE(t.has_features());
  EXPECT_FALSE(t.HashQuery(std::vector<double>(5, 0.0)).ok());

  auto mixed = testutil::RandomCodes(2, 16);
  mixed.push_back(testutil::RandomCodes(1, 24)[0]);
  EXPECT_FALSE(HammingTable::FromCodes(mixed).ok());
}

TEST_F(OpsTest, SelectAgreesAcrossPlans) {
  auto q = r_->codes()[17];
  auto scan = HammingSelect(*s_, q, 3, Opts(JoinPlan::kNestedLoops));
  auto idx = HammingSelect(*s_, q, 3, Opts(JoinPlan::kIndexProbe));
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(Sorted(*scan), Sorted(*idx));
}

TEST_F(OpsTest, BatchSelectSerialAndParallelAgree) {
  std::vector<BinaryCode> queries(r_->codes().begin(),
                                  r_->codes().begin() + 40);
  auto serial = HammingSelectBatch(*s_, queries, 3, {});
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  OperatorOptions popts;
  popts.pool = &pool;
  auto parallel = HammingSelectBatch(*s_, queries, 3, popts);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Sorted((*serial)[q]), Sorted((*parallel)[q])) << q;
  }
}

TEST_F(OpsTest, JoinPlansAllAgree) {
  auto nested = HammingJoin(*r_, *s_, 3, Opts(JoinPlan::kNestedLoops));
  auto probe = HammingJoin(*r_, *s_, 3, Opts(JoinPlan::kIndexProbe));
  auto dual = HammingJoin(*r_, *s_, 3, Opts(JoinPlan::kDualTree));
  ASSERT_TRUE(nested.ok());
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(dual.ok());
  auto norm = [](std::vector<JoinPair> p) {
    NormalizePairs(&p);
    return p;
  };
  EXPECT_EQ(norm(*probe), norm(*nested));
  EXPECT_EQ(norm(*dual), norm(*nested));
}

TEST_F(OpsTest, ParallelProbeJoinAgrees) {
  ThreadPool pool(4);
  OperatorOptions popts;
  popts.pool = &pool;
  auto serial = HammingJoin(*r_, *s_, 3, {});
  auto parallel = HammingJoin(*r_, *s_, 3, popts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  auto a = *serial;
  auto b = *parallel;
  NormalizePairs(&a);
  NormalizePairs(&b);
  EXPECT_EQ(a, b);
}

TEST_F(OpsTest, JoinRejectsMixedCodeLengths) {
  auto t16 = HammingTable::FromCodes(testutil::RandomCodes(10, 16))
                 .ValueOrDie();
  auto t32 = HammingTable::FromCodes(testutil::RandomCodes(10, 32))
                 .ValueOrDie();
  EXPECT_FALSE(HammingJoin(t16, t32, 3, {}).ok());
}

TEST_F(OpsTest, SimilarityIntersectMatchesDefinition) {
  auto in = SimilarityIntersect(*r_, *s_, 3, {});
  ASSERT_TRUE(in.ok());
  // Ground truth from the join.
  auto join = HammingJoin(*r_, *s_, 3, Opts(JoinPlan::kNestedLoops));
  ASSERT_TRUE(join.ok());
  std::vector<bool> has_match(r_->size(), false);
  for (const auto& p : *join) has_match[p.r] = true;
  std::vector<TupleId> expect;
  for (std::size_t i = 0; i < r_->size(); ++i) {
    if (has_match[i]) expect.push_back(static_cast<TupleId>(i));
  }
  EXPECT_EQ(Sorted(*in), expect);

  // Scan plan agrees.
  auto scan = SimilarityIntersect(*r_, *s_, 3,
                                  Opts(JoinPlan::kNestedLoops));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(Sorted(*scan), expect);
}

TEST_F(OpsTest, IntersectAndDifferencePartitionR) {
  auto in = SimilarityIntersect(*r_, *s_, 3, {}).ValueOrDie();
  auto diff = SimilarityDifference(*r_, *s_, 3, {}).ValueOrDie();
  EXPECT_EQ(in.size() + diff.size(), r_->size());
  std::vector<TupleId> all = in;
  all.insert(all.end(), diff.begin(), diff.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<TupleId>(i));
  }
}

TEST_F(OpsTest, SelfIntersectAtZeroIsEverything) {
  auto in = SimilarityIntersect(*r_, *r_, 0, {}).ValueOrDie();
  EXPECT_EQ(in.size(), r_->size());
}

TEST_F(OpsTest, HashQueryRoundTrip) {
  auto code = r_->HashQuery(r_->data().Row(5)).ValueOrDie();
  EXPECT_EQ(code, r_->codes()[5]);
}

}  // namespace
}  // namespace hamming::ops
